// smpx: command-line XML prefilter -- the paper's SMP prototype as a tool.
//
//   smpx --dtd schema.dtd --paths "/site//item/name# /*" [in.xml [out.xml]]
//   smpx --dtd schema.dtd --query "for $i in /site//item return $i/name" ...
//   smpx --dtd schema.dtd --paths-file paths.txt --stats in.xml out.xml
//   smpx --dtd schema.dtd --paths ... --threads 8 big.xml out.xml
//   smpx --dtd schema.dtd --paths ... --batch a.xml b.xml    # a.proj.xml ...
//   smpx --dtd schema.dtd --paths ... --batch a.xml b.xml --out all.xml
//   smpx --dtd schema.dtd --paths ... --index-build big.idx big.xml
//   smpx --dtd schema.dtd --paths ... --index big.idx --seek 512M big.xml
//
// Reads stdin/writes stdout when files are omitted; all output goes
// through a write-coalescing BufferedFileSink. File inputs are mmap'ed
// (sequential madvise); --threads > 1 shards one document across a thread
// pool speculatively, each shard projecting into a SpillSink segment
// bounded by --max-buffer and committed to the output in document order as
// verification succeeds -- a multi-GB single document stays shardable at
// O(threads x (window + budget)) resident memory. --batch prefilters many
// documents concurrently, *streaming* each through its session in bounded
// chunks and writing per-input output files (in.xml -> in.proj.xml);
// --out FILE instead concatenates the outputs in argument order through
// the same budgeted ordered-commit pipeline; per-input output files are
// written through the ordered-commit machinery too, so at most one output
// file is open at a time regardless of batch size. --stats prints the
// paper's measurement columns to stderr (per document and as a total in
// batch mode). --tables dumps the compiled A/V/J/T tables and exits.
//
// Random access: --index-build FILE runs the speculative indexing pass
// over one document and saves a boundary skip-index (--index-granularity
// sets the entry spacing); --index FILE --seek OFF [--count N] then
// resumes a cursor at the nearest indexed boundary at or before OFF --
// without prefiltering the prefix -- and emits N indexed spans (one
// top-level record each at granularity 1; or everything to the end),
// byte-identical to the corresponding slice of a full serial run.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "dtd/dtd.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "paths/projection_path.h"
#include "paths/xquery_extract.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dtd FILE (--paths LIST | --paths-file FILE | --query XQ)\n"
      "          [--stats] [--tables] [--window SIZE] [--chunk SIZE]\n"
      "          [--max-buffer SIZE] [--threads N] [--batch] [--out FILE]\n"
      "          [--index-build FILE [--index-granularity SIZE]]\n"
      "          [--index FILE [--seek OFFSET] [--count N]]\n"
      "          [in.xml ... [out.xml]]\n"
      "\n"
      "Prefilters XML documents valid w.r.t. the given nonrecursive DTD\n"
      "down to the nodes relevant for the projection paths (or for the\n"
      "XQuery expression, via path extraction). SIZE arguments accept\n"
      "K/M/G suffixes (binary units: 64K, 1M, 1MiB, ...).\n"
      "\n"
      "  --threads N     run on N threads: one document is sharded at\n"
      "                  top-level element boundaries and run\n"
      "                  speculatively; with --batch, the documents are\n"
      "                  prefiltered concurrently\n"
      "  --batch         every positional argument is an input file; each\n"
      "                  is streamed through the prefilter in bounded\n"
      "                  chunks and written to its own output file\n"
      "                  (in.xml -> in.proj.xml). With --out FILE, outputs\n"
      "                  are instead concatenated into FILE in argument\n"
      "                  order through the ordered-commit pipeline\n"
      "  --chunk S       streaming read granularity in batch mode\n"
      "                  (default 1M): bytes fed to a session per resume\n"
      "  --max-buffer S  per-segment output buffering budget (default\n"
      "                  64M, 0 = unbounded): each shard / batch document\n"
      "                  buffers at most S projected bytes in memory and\n"
      "                  overflows to an unlinked temp file until its\n"
      "                  turn in the document-order commit. Peak resident\n"
      "                  memory is O(threads x (window + chunk +\n"
      "                  max-buffer)) regardless of input size; shrink\n"
      "                  --max-buffer (and --chunk) to shard multi-GB\n"
      "                  documents on small machines, grow them to avoid\n"
      "                  spill I/O when memory is plentiful\n"
      "  --index-build F index one document for random access: record the\n"
      "                  verified engine checkpoint at top-level element\n"
      "                  boundaries (one per --index-granularity bytes,\n"
      "                  default 1M) and save the skip-index to F\n"
      "  --index F       load the skip-index F for the input document and\n"
      "                  resume at the nearest indexed boundary at or\n"
      "                  before --seek OFFSET (default 0), emitting\n"
      "                  --count N indexed spans (default: to the end)\n"
      "                  exactly as a full serial run would have. A span\n"
      "                  is one top-level record when the index was built\n"
      "                  with --index-granularity 1, and about one\n"
      "                  granularity's worth of records otherwise\n",
      argv0);
  return 2;
}

/// Reads all of stdin.
std::string ReadStdin() {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) out.append(buf, n);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dtd_file;
  std::string paths_text;
  std::string query;
  std::vector<std::string> inputs;
  std::string out_file;
  bool stats_flag = false;
  bool tables_flag = false;
  bool batch_flag = false;
  int threads = 1;
  size_t window = smpx::SlidingWindow::kDefaultCapacity;
  size_t chunk = 1 << 20;
  size_t max_buffer = 64 << 20;
  std::string index_build_file;
  std::string index_file;
  size_t index_granularity = 1 << 20;
  size_t seek_offset = 0;
  long long count = -1;  // -1 = drain to the end

  bool bad_size = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Parses a size argument ("4096", "64K", "1MiB"); flags usage errors.
    auto next_size = [&](size_t* out) -> bool {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = smpx::ParseByteSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        bad_size = true;
        return true;  // consumed; the error is reported above
      }
      *out = static_cast<size_t>(*parsed);
      return true;
    };
    if (arg == "--dtd") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dtd_file = v;
    } else if (arg == "--paths") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      paths_text = v;
    } else if (arg == "--paths-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto content = smpx::ReadFileToString(v);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      paths_text = *content;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      query = v;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--tables") {
      tables_flag = true;
    } else if (arg == "--batch") {
      batch_flag = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
      if (threads < 1) threads = 1;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_file = v;
    } else if (arg == "--window") {
      if (!next_size(&window)) return Usage(argv[0]);
    } else if (arg == "--chunk") {
      if (!next_size(&chunk)) return Usage(argv[0]);
      if (chunk == 0) chunk = 1;
    } else if (arg == "--max-buffer") {
      if (!next_size(&max_buffer)) return Usage(argv[0]);
    } else if (arg == "--index-build") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      index_build_file = v;
    } else if (arg == "--index") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      index_file = v;
    } else if (arg == "--index-granularity") {
      if (!next_size(&index_granularity)) return Usage(argv[0]);
      if (index_granularity == 0) index_granularity = 1;
    } else if (arg == "--seek") {
      if (!next_size(&seek_offset)) return Usage(argv[0]);
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      count = std::atoll(v);
      if (count < 0) count = 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (bad_size) return 2;
  if (dtd_file.empty() || (paths_text.empty() && query.empty())) {
    return Usage(argv[0]);
  }
  const bool index_mode = !index_build_file.empty() || !index_file.empty();
  if (index_mode &&
      (batch_flag || (!index_build_file.empty() && !index_file.empty()))) {
    return Usage(argv[0]);
  }
  if (!batch_flag) {
    // Classic positional form: [in.xml [out.xml]].
    if (inputs.size() > 2) return Usage(argv[0]);
    if (inputs.size() == 2) {
      if (!out_file.empty()) return Usage(argv[0]);
      out_file = inputs[1];
      inputs.pop_back();
    }
  } else if (inputs.empty()) {
    return Usage(argv[0]);
  }
  // --index-build writes the index file, never a projection; an output
  // file (flag or positional, resolved above) has nothing to receive.
  if (!index_build_file.empty() && !out_file.empty()) return Usage(argv[0]);

  auto dtd_text = smpx::ReadFileToString(dtd_file);
  if (!dtd_text.ok()) {
    std::fprintf(stderr, "%s\n", dtd_text.status().ToString().c_str());
    return 1;
  }
  auto dtd = smpx::dtd::Dtd::Parse(*dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  std::vector<smpx::paths::ProjectionPath> paths;
  if (!query.empty()) {
    auto extracted = smpx::paths::ExtractProjectionPaths(query);
    if (!extracted.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   extracted.status().ToString().c_str());
      return 1;
    }
    paths = std::move(*extracted);
    std::fprintf(stderr, "extracted projection paths:");
    for (const auto& p : paths) {
      std::fprintf(stderr, " %s", p.ToString().c_str());
    }
    std::fprintf(stderr, "\n");
  }
  if (!paths_text.empty()) {
    auto parsed = smpx::paths::ProjectionPath::ParseList(paths_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "paths: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    paths.insert(paths.end(), parsed->begin(), parsed->end());
  }

  smpx::WallTimer compile_timer;
  auto pf = smpx::core::Prefilter::Compile(std::move(*dtd),
                                           std::move(paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  if (tables_flag) {
    std::printf("%s", pf->tables().DebugString().c_str());
    return 0;
  }

  // Input plumbing: mmap file inputs (zero copy, sequential madvise);
  // stdin falls back to an in-memory buffer.
  std::string stdin_buffer;
  std::vector<std::unique_ptr<smpx::MmapSource>> sources;
  std::vector<std::string_view> docs;
  if (inputs.empty()) {
    stdin_buffer = ReadStdin();
    docs.push_back(stdin_buffer);
  } else {
    for (const std::string& path : inputs) {
      auto src = smpx::MmapSource::Open(path);
      if (!src.ok()) {
        std::fprintf(stderr, "%s\n", src.status().ToString().c_str());
        return 1;
      }
      docs.push_back((*src)->Contiguous());
      sources.push_back(std::move(*src));
    }
  }
  smpx::core::RunStats stats;
  smpx::core::EngineOptions eopts;
  eopts.window_capacity = window;
  smpx::WallTimer run_timer;
  smpx::CpuTimer cpu_timer;
  int failures = 0;

  if (!index_build_file.empty()) {
    // One speculative indexing pass over the document, then the versioned
    // skip-index file; the projection itself is discarded.
    smpx::parallel::ThreadPool pool(threads);
    smpx::index::BoundaryIndexOptions iopts;
    iopts.granularity_bytes = index_granularity;
    iopts.engine = eopts;
    auto idx = smpx::index::BoundaryIndex::Build(pf->tables(), docs[0],
                                                 &pool, iopts);
    if (!idx.ok()) {
      std::fprintf(stderr, "index build: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    std::string serialized = idx->Serialize();
    smpx::Status s = smpx::WriteStringToFile(index_build_file, serialized);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (stats_flag) {
      double secs = run_timer.Seconds();
      std::fprintf(
          stderr,
          "index: entries=%zu index_bytes=%zu doc_bytes=%zu "
          "build=%.3fs (%.1f MB/s)\n",
          idx->entries().size(), serialized.size(), docs[0].size(), secs,
          secs > 0 ? static_cast<double>(docs[0].size()) / 1048576.0 / secs
                   : 0.0);
    }
    return 0;
  }

  if (!index_file.empty()) {
    auto idx = smpx::index::BoundaryIndex::LoadFromFile(index_file);
    if (!idx.ok()) {
      std::fprintf(stderr, "index: %s\n", idx.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<smpx::BufferedFileSink> sink;
    if (out_file.empty()) {
      sink = smpx::BufferedFileSink::Wrap(stdout);
    } else {
      auto file_sink = smpx::BufferedFileSink::Open(out_file);
      if (!file_sink.ok()) {
        std::fprintf(stderr, "%s\n", file_sink.status().ToString().c_str());
        return 1;
      }
      sink = std::move(*file_sink);
    }
    smpx::index::CursorOptions copts;
    copts.engine = eopts;
    auto cur = smpx::index::Cursor::OpenAt(*idx, pf->tables(), docs[0],
                                           seek_offset, copts);
    if (!cur.ok()) {
      std::fprintf(stderr, "seek: %s\n", cur.status().ToString().c_str());
      return 1;
    }
    uint64_t opened_at = cur->position();
    uint64_t out_offset = cur->output_position();
    size_t records = 0;
    smpx::Status s;
    if (count >= 0) {
      auto n = cur->Next(static_cast<size_t>(count), sink.get());
      if (!n.ok()) {
        s = n.status();
      } else {
        records = *n;
      }
    } else {
      s = cur->Drain(sink.get());
    }
    if (s.ok()) s = sink->Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "cursor: %s\n", s.ToString().c_str());
      return 1;
    }
    if (stats_flag) {
      std::fprintf(
          stderr,
          "seek=%llu opened_at=%llu out_offset=%llu records=%zu "
          "emitted=%llu time=%.3fs\n",
          static_cast<unsigned long long>(seek_offset),
          static_cast<unsigned long long>(opened_at),
          static_cast<unsigned long long>(out_offset), records,
          static_cast<unsigned long long>(cur->output_position() -
                                          out_offset),
          run_timer.Seconds());
    }
    return 0;
  }

  if (batch_flag && out_file.empty()) {
    // Streaming batch with per-input output files: every document is
    // pulled through its own session in bounded chunks into a budgeted
    // segment, and segments are written to their in.proj.xml files in
    // document order through the ordered-commit machinery -- at most one
    // output file open at a time, so thousand-document batches do not
    // exhaust fd limits, and peak memory never depends on document size.
    // Errors are isolated per document; stats stay in argument order.
    smpx::parallel::ThreadPool pool(threads);
    smpx::parallel::StreamOptions sopts;
    sopts.engine = eopts;
    sopts.chunk_bytes = chunk;
    sopts.max_buffer_bytes = max_buffer;
    std::vector<const smpx::InputSource*> srcs;
    std::vector<std::string> out_paths;
    for (size_t i = 0; i < sources.size(); ++i) {
      out_paths.push_back(smpx::ProjectedOutputPath(inputs[i]));
      // Repeated inputs would collapse two documents onto one output file.
      for (size_t j = 0; j < i; ++j) {
        if (out_paths[j] == out_paths.back()) {
          std::fprintf(stderr,
                       "duplicate batch output file %s (inputs %s, %s)\n",
                       out_paths.back().c_str(), inputs[j].c_str(),
                       inputs[i].c_str());
          return 1;
        }
      }
      srcs.push_back(sources[i].get());
    }
    std::vector<smpx::core::RunStats> doc_stats;
    std::vector<smpx::Status> statuses =
        smpx::parallel::BatchRunStreamingToFiles(pf->tables(), srcs,
                                                 out_paths, &doc_stats,
                                                 &pool, sopts);
    for (size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) {
        std::fprintf(stderr, "%s: %s\n", inputs[i].c_str(),
                     statuses[i].ToString().c_str());
        ++failures;
        continue;
      }
      if (stats_flag) {
        std::fprintf(
            stderr, "%s -> %s: input=%llu output=%llu matches=%llu\n",
            inputs[i].c_str(), out_paths[i].c_str(),
            static_cast<unsigned long long>(doc_stats[i].input_bytes),
            static_cast<unsigned long long>(doc_stats[i].output_bytes),
            static_cast<unsigned long long>(doc_stats[i].matches));
      }
      smpx::parallel::MergeRunStats(&stats, doc_stats[i]);
    }
  } else {
    // Single merged output (file or stdout), always through the
    // write-coalescing sink -- nothing below buffers the whole projection.
    std::unique_ptr<smpx::BufferedFileSink> sink;
    if (out_file.empty()) {
      sink = smpx::BufferedFileSink::Wrap(stdout);
    } else {
      auto file_sink = smpx::BufferedFileSink::Open(out_file);
      if (!file_sink.ok()) {
        std::fprintf(stderr, "%s\n", file_sink.status().ToString().c_str());
        return 1;
      }
      sink = std::move(*file_sink);
    }
    smpx::Status s;
    if (batch_flag) {
      // --batch --out: concatenate in argument order through the
      // budgeted ordered-commit pipeline (documents stream, completed
      // ones park on disk until their turn).
      smpx::parallel::ThreadPool pool(threads);
      smpx::parallel::StreamOptions sopts;
      sopts.engine = eopts;
      sopts.chunk_bytes = chunk;
      sopts.max_buffer_bytes = max_buffer;
      std::vector<const smpx::InputSource*> srcs;
      for (const auto& src : sources) srcs.push_back(src.get());
      s = smpx::parallel::BatchRunStreamingMerged(pf->tables(), srcs,
                                                 sink.get(), &stats, &pool,
                                                 sopts);
    } else if (threads > 1) {
      smpx::parallel::ThreadPool pool(threads);
      smpx::parallel::ShardOptions popts;
      popts.engine = eopts;
      popts.max_buffer_bytes = max_buffer;
      s = smpx::parallel::ShardedRun(pf->tables(), docs[0], sink.get(),
                                     &stats, &pool, popts);
    } else {
      smpx::MemoryInputStream in(docs[0]);
      s = pf->Run(&in, sink.get(), &stats, eopts);
    }
    if (s.ok()) s = sink->Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (stats_flag) {
    std::fprintf(
        stderr,
        "states=%zu input=%llu output=%llu time=%.3fs usr+sys=%.3fs "
        "charcomp=%.2f%% avg_shift=%.2f initial_jumps=%.2f%% "
        "matches=%llu false_matches=%llu window_peak=%zu\n",
        pf->num_states(),
        static_cast<unsigned long long>(stats.input_bytes),
        static_cast<unsigned long long>(stats.output_bytes),
        run_timer.Seconds() + compile_timer.Seconds(), cpu_timer.Seconds(),
        stats.CharCompPct(), stats.AvgShift(), stats.InitialJumpPct(),
        static_cast<unsigned long long>(stats.matches),
        static_cast<unsigned long long>(stats.false_matches),
        stats.window_peak);
  }
  return failures == 0 ? 0 : 1;
}
