// smpx: command-line XML prefilter -- the paper's SMP prototype as a tool.
//
//   smpx --dtd schema.dtd --paths "/site//item/name# /*" [in.xml [out.xml]]
//   smpx --dtd schema.dtd --query "for $i in /site//item return $i/name" ...
//   smpx --dtd schema.dtd --paths-file paths.txt --stats in.xml out.xml
//   smpx --dtd schema.dtd --paths ... --threads 8 big.xml out.xml
//   smpx --dtd schema.dtd --paths ... --batch a.xml b.xml c.xml --out all.xml
//
// Reads stdin/writes stdout when files are omitted. File inputs are
// mmap'ed (sequential madvise); --threads > 1 shards one document across a
// thread pool, --batch prefilters many documents concurrently (outputs
// concatenated in argument order). --stats prints the paper's measurement
// columns to stderr. --tables dumps the compiled A/V/J/T tables and exits.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "dtd/dtd.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "paths/projection_path.h"
#include "paths/xquery_extract.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dtd FILE (--paths LIST | --paths-file FILE | --query XQ)\n"
      "          [--stats] [--tables] [--window BYTES] [--threads N]\n"
      "          [--batch] [--out FILE] [in.xml ... [out.xml]]\n"
      "\n"
      "Prefilters XML documents valid w.r.t. the given nonrecursive DTD\n"
      "down to the nodes relevant for the projection paths (or for the\n"
      "XQuery expression, via path extraction).\n"
      "\n"
      "  --threads N  run on N threads: one document is sharded at\n"
      "               top-level element boundaries; with --batch, the\n"
      "               documents are prefiltered concurrently\n"
      "  --batch      every positional argument is an input file; outputs\n"
      "               are concatenated in argument order (use --out FILE\n"
      "               to write somewhere other than stdout)\n",
      argv0);
  return 2;
}

/// Reads all of stdin.
std::string ReadStdin() {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) out.append(buf, n);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dtd_file;
  std::string paths_text;
  std::string query;
  std::vector<std::string> inputs;
  std::string out_file;
  bool stats_flag = false;
  bool tables_flag = false;
  bool batch_flag = false;
  int threads = 1;
  size_t window = smpx::SlidingWindow::kDefaultCapacity;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dtd") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dtd_file = v;
    } else if (arg == "--paths") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      paths_text = v;
    } else if (arg == "--paths-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto content = smpx::ReadFileToString(v);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      paths_text = *content;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      query = v;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--tables") {
      tables_flag = true;
    } else if (arg == "--batch") {
      batch_flag = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
      if (threads < 1) threads = 1;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_file = v;
    } else if (arg == "--window") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      window = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (dtd_file.empty() || (paths_text.empty() && query.empty())) {
    return Usage(argv[0]);
  }
  if (!batch_flag) {
    // Classic positional form: [in.xml [out.xml]].
    if (inputs.size() > 2) return Usage(argv[0]);
    if (inputs.size() == 2) {
      if (!out_file.empty()) return Usage(argv[0]);
      out_file = inputs[1];
      inputs.pop_back();
    }
  } else if (inputs.empty()) {
    return Usage(argv[0]);
  }

  auto dtd_text = smpx::ReadFileToString(dtd_file);
  if (!dtd_text.ok()) {
    std::fprintf(stderr, "%s\n", dtd_text.status().ToString().c_str());
    return 1;
  }
  auto dtd = smpx::dtd::Dtd::Parse(*dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  std::vector<smpx::paths::ProjectionPath> paths;
  if (!query.empty()) {
    auto extracted = smpx::paths::ExtractProjectionPaths(query);
    if (!extracted.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   extracted.status().ToString().c_str());
      return 1;
    }
    paths = std::move(*extracted);
    std::fprintf(stderr, "extracted projection paths:");
    for (const auto& p : paths) {
      std::fprintf(stderr, " %s", p.ToString().c_str());
    }
    std::fprintf(stderr, "\n");
  }
  if (!paths_text.empty()) {
    auto parsed = smpx::paths::ProjectionPath::ParseList(paths_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "paths: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    paths.insert(paths.end(), parsed->begin(), parsed->end());
  }

  smpx::WallTimer compile_timer;
  auto pf = smpx::core::Prefilter::Compile(std::move(*dtd),
                                           std::move(paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  if (tables_flag) {
    std::printf("%s", pf->tables().DebugString().c_str());
    return 0;
  }

  // Input plumbing: mmap file inputs (zero copy, sequential madvise);
  // stdin falls back to an in-memory buffer.
  std::string stdin_buffer;
  std::vector<std::unique_ptr<smpx::MmapSource>> sources;
  std::vector<std::string_view> docs;
  if (inputs.empty()) {
    stdin_buffer = ReadStdin();
    docs.push_back(stdin_buffer);
  } else {
    for (const std::string& path : inputs) {
      auto src = smpx::MmapSource::Open(path);
      if (!src.ok()) {
        std::fprintf(stderr, "%s\n", src.status().ToString().c_str());
        return 1;
      }
      docs.push_back((*src)->Contiguous());
      sources.push_back(std::move(*src));
    }
  }
  std::unique_ptr<smpx::OutputSink> sink;
  if (out_file.empty()) {
    sink = std::make_unique<smpx::StringSink>();
  } else {
    auto file_sink = smpx::FileSink::Open(out_file);
    if (!file_sink.ok()) {
      std::fprintf(stderr, "%s\n", file_sink.status().ToString().c_str());
      return 1;
    }
    sink = std::move(*file_sink);
  }

  smpx::core::RunStats stats;
  smpx::core::EngineOptions eopts;
  eopts.window_capacity = window;
  smpx::WallTimer run_timer;
  smpx::CpuTimer cpu_timer;
  smpx::Status s;
  if (batch_flag && docs.size() > 1) {
    smpx::parallel::ThreadPool pool(threads);
    s = smpx::parallel::BatchRunMerged(pf->tables(), docs, sink.get(),
                                       &stats, &pool, eopts);
  } else if (threads > 1) {
    smpx::parallel::ThreadPool pool(threads);
    smpx::parallel::ShardOptions popts;
    popts.engine = eopts;
    s = smpx::parallel::ShardedRun(pf->tables(), docs[0], sink.get(),
                                   &stats, &pool, popts);
  } else {
    smpx::MemoryInputStream in(docs[0]);
    s = pf->Run(&in, sink.get(), &stats, eopts);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
    return 1;
  }
  if (out_file.empty()) {
    const std::string& out =
        static_cast<smpx::StringSink*>(sink.get())->str();
    std::fwrite(out.data(), 1, out.size(), stdout);
  }
  if (stats_flag) {
    std::fprintf(
        stderr,
        "states=%zu input=%llu output=%llu time=%.3fs usr+sys=%.3fs "
        "charcomp=%.2f%% avg_shift=%.2f initial_jumps=%.2f%% "
        "matches=%llu false_matches=%llu window_peak=%zu\n",
        pf->num_states(),
        static_cast<unsigned long long>(stats.input_bytes),
        static_cast<unsigned long long>(stats.output_bytes),
        run_timer.Seconds() + compile_timer.Seconds(), cpu_timer.Seconds(),
        stats.CharCompPct(), stats.AvgShift(), stats.InitialJumpPct(),
        static_cast<unsigned long long>(stats.matches),
        static_cast<unsigned long long>(stats.false_matches),
        stats.window_peak);
  }
  return 0;
}
