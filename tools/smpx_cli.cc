// smpx: command-line XML prefilter -- the paper's SMP prototype as a tool.
//
//   smpx --dtd schema.dtd --paths "/site//item/name# /*" [in.xml [out.xml]]
//   smpx --dtd schema.dtd --query "for $i in /site//item return $i/name" ...
//   smpx --dtd schema.dtd --paths-file paths.txt --stats in.xml out.xml
//   smpx --dtd schema.dtd --paths ... --threads 8 big.xml out.xml
//   smpx --dtd schema.dtd --paths ... --batch a.xml b.xml    # a.proj.xml ...
//   smpx --dtd schema.dtd --paths ... --batch a.xml b.xml --out all.xml
//   smpx --dtd schema.dtd --paths ... --index-build big.idx big.xml
//   smpx --dtd schema.dtd --paths ... --index big.idx --seek 512M big.xml
//
// Reads stdin/writes stdout when files are omitted; all output goes
// through a write-coalescing BufferedFileSink. File inputs are mmap'ed
// (sequential madvise); --threads > 1 shards one document across a thread
// pool speculatively, each shard projecting into a SpillSink segment
// bounded by --max-buffer and committed to the output in document order as
// verification succeeds -- a multi-GB single document stays shardable at
// O(threads x (window + budget)) resident memory. --batch prefilters many
// documents concurrently, *streaming* each through its session in bounded
// chunks and writing per-input output files (in.xml -> in.proj.xml);
// --out FILE instead concatenates the outputs in argument order through
// the same budgeted ordered-commit pipeline; per-input output files are
// written through the ordered-commit machinery too, so at most one output
// file is open at a time regardless of batch size. --stats prints the
// paper's measurement columns to stderr (per document and as a total in
// batch mode). --tables dumps the compiled A/V/J/T tables and exits.
//
// Random access: --index-build FILE runs the speculative indexing pass
// over one document and saves a boundary skip-index (--index-granularity
// sets the entry spacing); --index FILE --seek OFF [--count N] then
// resumes a cursor at the nearest indexed boundary at or before OFF --
// without prefiltering the prefix -- and emits N indexed spans (one
// top-level record each at granularity 1; or everything to the end),
// byte-identical to the corresponding slice of a full serial run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "dtd/dtd.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "paths/projection_path.h"
#include "paths/xquery_extract.h"
#include "query/equivalence.h"
#include "query/multiquery.h"
#include "server/client.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dtd FILE (--paths LIST | --paths-file FILE | --query XQ\n"
      "          | --query-file FILE)\n"
      "          [--stats] [--tables] [--window SIZE] [--chunk SIZE]\n"
      "          [--max-buffer SIZE] [--threads N] [--batch] [--out FILE]\n"
      "          [--fused]\n"
      "          [--index-build FILE [--index-granularity SIZE]\n"
      "                             [--index-chunk SIZE]]\n"
      "          [--index FILE [--seek OFFSET|@recordN] [--count N]]\n"
      "          [in.xml ... [out.xml]]\n"
      "\n"
      "Prefilters XML documents valid w.r.t. the given nonrecursive DTD\n"
      "down to the nodes relevant for the projection paths (or for the\n"
      "XQuery expression, via path extraction). SIZE arguments accept\n"
      "K/M/G suffixes (binary units: 64K, 1M, 1MiB, ...).\n"
      "\n"
      "  --query-file F  MULTI-QUERY mode: one query (a projection-path\n"
      "                  list) per line; '#'-prefixed lines are comments.\n"
      "                  All N queries run in ONE pass over the input\n"
      "                  through a shared product automaton; equivalent\n"
      "                  queries are collapsed and each query's output is\n"
      "                  byte-identical to running it alone. Output file\n"
      "                  out.xml becomes out.q1.xml, out.q2.xml, ...\n"
      "                  (query order). Repeating --paths enters the same\n"
      "                  mode, one query per occurrence. Works with\n"
      "                  --threads (sharded one-pass) and --batch\n"
      "                  (in.xml -> in.proj.q1.xml, ...)\n"
      "  --fused         multi-query mode: emit ONE superset projection\n"
      "                  (union of all queries' paths, safe for each of\n"
      "                  them) instead of per-query outputs\n"
      "  --threads N     run on N threads: one document is sharded at\n"
      "                  top-level element boundaries and run\n"
      "                  speculatively; with --batch, the documents are\n"
      "                  prefiltered concurrently\n"
      "  --batch         every positional argument is an input file; each\n"
      "                  is streamed through the prefilter in bounded\n"
      "                  chunks and written to its own output file\n"
      "                  (in.xml -> in.proj.xml). With --out FILE, outputs\n"
      "                  are instead concatenated into FILE in argument\n"
      "                  order through the ordered-commit pipeline\n"
      "  --chunk S       streaming read granularity in batch mode\n"
      "                  (default 1M): bytes fed to a session per resume\n"
      "  --max-buffer S  per-segment output buffering budget (default\n"
      "                  64M, 0 = unbounded): each shard / batch document\n"
      "                  buffers at most S projected bytes in memory and\n"
      "                  overflows to an unlinked temp file until its\n"
      "                  turn in the document-order commit. Peak resident\n"
      "                  memory is O(threads x (window + chunk +\n"
      "                  max-buffer)) regardless of input size; shrink\n"
      "                  --max-buffer (and --chunk) to shard multi-GB\n"
      "                  documents on small machines, grow them to avoid\n"
      "                  spill I/O when memory is plentiful\n"
      "  --index-build F index one document for random access: record the\n"
      "                  verified engine checkpoint at top-level element\n"
      "                  boundaries (one per --index-granularity bytes,\n"
      "                  default 1M) and save the skip-index to F\n"
      "  --index-chunk S build the index through a rolling buffer of S\n"
      "                  bytes instead of mapping the whole document:\n"
      "                  resident memory stays O(S + window) however large\n"
      "                  the input, so documents beyond the address space\n"
      "                  (or any mmap window) stay indexable. Identical\n"
      "                  entries, single-threaded, about twice the read\n"
      "                  I/O. 0 (default) maps the document and runs the\n"
      "                  parallel speculative wave\n"
      "  --index F       load the skip-index F for the input document and\n"
      "                  resume at the nearest indexed boundary at or\n"
      "                  before --seek OFFSET (default 0) -- or, as\n"
      "                  '--seek @recordN', at top-level record number N\n"
      "                  (0-based; exact for granularity-1 indexes) --\n"
      "                  emitting\n"
      "                  --count N indexed spans (default: to the end)\n"
      "                  exactly as a full serial run would have. A span\n"
      "                  is one top-level record when the index was built\n"
      "                  with --index-granularity 1, and about one\n"
      "                  granularity's worth of records otherwise\n",
      argv0);
  return 2;
}

/// Per-query output file name: inserts ".qN" (1-based, query order) before
/// the extension -- out.xml -> out.q3.xml; extensionless names get the
/// suffix appended.
std::string QueryOutputPath(const std::string& base, size_t q) {
  const size_t slash = base.find_last_of('/');
  const size_t dot = base.find_last_of('.');
  const std::string suffix = ".q" + std::to_string(q);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

/// Reads all of stdin.
std::string ReadStdin() {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) out.append(buf, n);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dtd_file;
  std::string paths_text;
  std::string query;
  std::vector<std::string> query_texts;  // one entry per --paths occurrence
  std::string query_file;
  bool fused = false;
  std::vector<std::string> inputs;
  std::string out_file;
  bool stats_flag = false;
  bool tables_flag = false;
  bool batch_flag = false;
  int threads = 1;
  size_t window = smpx::SlidingWindow::kDefaultCapacity;
  size_t chunk = 1 << 20;
  size_t max_buffer = 64 << 20;
  std::string index_build_file;
  std::string index_file;
  size_t index_granularity = 1 << 20;
  size_t index_chunk = 0;  // 0 = in-memory build
  size_t seek_offset = 0;
  bool seek_by_record = false;
  bool seek_given = false;
  uint64_t seek_record = 0;
  long long count = -1;  // -1 = drain to the end
  std::string connect_endpoint;
  std::string resume_token_hex;

  bool bad_size = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Parses a size argument ("4096", "64K", "1MiB"); flags usage errors.
    auto next_size = [&](size_t* out) -> bool {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = smpx::ParseByteSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        bad_size = true;
        return true;  // consumed; the error is reported above
      }
      *out = static_cast<size_t>(*parsed);
      return true;
    };
    if (arg == "--dtd") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dtd_file = v;
    } else if (arg == "--paths") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      query_texts.push_back(v);
    } else if (arg == "--paths-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      auto content = smpx::ReadFileToString(v);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      paths_text = *content;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      query = v;
    } else if (arg == "--query-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      query_file = v;
    } else if (arg == "--fused") {
      fused = true;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--tables") {
      tables_flag = true;
    } else if (arg == "--batch") {
      batch_flag = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      threads = std::atoi(v);
      if (threads < 1) threads = 1;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_file = v;
    } else if (arg == "--window") {
      if (!next_size(&window)) return Usage(argv[0]);
    } else if (arg == "--chunk") {
      if (!next_size(&chunk)) return Usage(argv[0]);
      if (chunk == 0) chunk = 1;
    } else if (arg == "--max-buffer") {
      if (!next_size(&max_buffer)) return Usage(argv[0]);
    } else if (arg == "--index-build") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      index_build_file = v;
    } else if (arg == "--index") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      index_file = v;
    } else if (arg == "--index-granularity") {
      if (!next_size(&index_granularity)) return Usage(argv[0]);
      if (index_granularity == 0) index_granularity = 1;
    } else if (arg == "--index-chunk") {
      if (!next_size(&index_chunk)) return Usage(argv[0]);
    } else if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      connect_endpoint = v;
    } else if (arg == "--resume-token") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      resume_token_hex = v;
    } else if (arg == "--seek") {
      seek_given = true;
      // "@recordN" (or shorthand "@N") addresses the N-th top-level
      // record; anything else is a byte offset with size suffixes.
      const char* peek = i + 1 < argc ? argv[i + 1] : nullptr;
      if (peek != nullptr && peek[0] == '@') {
        ++i;
        const char* num = peek + 1;
        if (std::strncmp(num, "record", 6) == 0) num += 6;
        char* end = nullptr;
        unsigned long long v = std::strtoull(num, &end, 10);
        if (end == num || *end != '\0') {
          std::fprintf(stderr, "--seek: bad record address '%s'\n", peek);
          return 2;
        }
        seek_by_record = true;
        seek_record = v;
      } else if (!next_size(&seek_offset)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      count = std::atoll(v);
      if (count < 0) count = 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (bad_size) return 2;
  if (!query_file.empty()) {
    // One query (a projection-path list) per line; blank lines and
    // '#'-prefixed comment lines are skipped. '#' only ever SUFFIXES a
    // path ("/a/b#"), so a leading '#' is unambiguous.
    auto content = smpx::ReadFileToString(query_file);
    if (!content.ok()) {
      std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
      return 1;
    }
    size_t pos = 0;
    while (pos <= content->size()) {
      const size_t eol = content->find('\n', pos);
      std::string line = content->substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      pos = eol == std::string::npos ? content->size() + 1 : eol + 1;
      const size_t b = line.find_first_not_of(" \t\r");
      if (b == std::string::npos || line[b] == '#') continue;
      const size_t e = line.find_last_not_of(" \t\r");
      query_texts.push_back(line.substr(b, e - b + 1));
    }
    if (query_texts.empty()) {
      std::fprintf(stderr, "%s: no queries\n", query_file.c_str());
      return 1;
    }
  }
  // Multi-query mode: a query file, or more than one --paths occurrence
  // (each occurrence is one query). A single --paths keeps the classic
  // single-query form.
  bool multi_mode = !query_file.empty() || query_texts.size() > 1;
  if (!multi_mode && query_texts.size() == 1) paths_text = query_texts[0];
  if (multi_mode && (!query.empty() || !paths_text.empty())) {
    std::fprintf(stderr,
                 "multi-query mode (--query-file / repeated --paths) cannot "
                 "be combined with --query or --paths-file\n");
    return 2;
  }
  if (fused && !multi_mode) return Usage(argv[0]);
  if (dtd_file.empty() ||
      (paths_text.empty() && query.empty() && !multi_mode)) {
    return Usage(argv[0]);
  }
  const bool index_mode = !index_build_file.empty() || !index_file.empty();
  // Client mode talks to a running smpxd; the daemon owns the documents
  // and indexes, so the offline index/batch/multi machinery is moot.
  if (!connect_endpoint.empty() &&
      (index_mode || batch_flag || multi_mode || tables_flag)) {
    return Usage(argv[0]);
  }
  if (!resume_token_hex.empty() && connect_endpoint.empty()) {
    std::fprintf(stderr, "--resume-token requires --connect\n");
    return 2;
  }
  if (index_mode &&
      (batch_flag || (!index_build_file.empty() && !index_file.empty()))) {
    return Usage(argv[0]);
  }
  // Per-query product tables have no --tables dump and no skip-index
  // support (index each query's single-query tables instead).
  if (multi_mode && !fused && (tables_flag || index_mode)) {
    return Usage(argv[0]);
  }
  if (!batch_flag) {
    // Classic positional form: [in.xml [out.xml]].
    if (inputs.size() > 2) return Usage(argv[0]);
    if (inputs.size() == 2) {
      if (!out_file.empty()) return Usage(argv[0]);
      out_file = inputs[1];
      inputs.pop_back();
    }
  } else if (inputs.empty()) {
    return Usage(argv[0]);
  }
  // --index-build writes the index file, never a projection; an output
  // file (flag or positional, resolved above) has nothing to receive.
  if (!index_build_file.empty() && !out_file.empty()) return Usage(argv[0]);

  auto dtd_text = smpx::ReadFileToString(dtd_file);
  if (!dtd_text.ok()) {
    std::fprintf(stderr, "%s\n", dtd_text.status().ToString().c_str());
    return 1;
  }
  if (!connect_endpoint.empty()) {
    // Client mode: ship the raw DTD and path texts to the daemon (it
    // compiles and caches them by content hash) and stream the response
    // to the usual output. The document is named by its server-side
    // path; resolve it to an absolute path so the daemon's cwd is moot.
    if (inputs.size() != 1) return Usage(argv[0]);
    std::string doc_path = inputs[0];
    if (char* abs = ::realpath(doc_path.c_str(), nullptr)) {
      doc_path = abs;
      std::free(abs);
    }
    smpx::server::Request req;
    if (!resume_token_hex.empty()) {
      req.op = smpx::server::Op::kResume;
      auto token = smpx::server::HexDecode(resume_token_hex);
      if (!token.ok()) {
        std::fprintf(stderr, "--resume-token: %s\n",
                     token.status().ToString().c_str());
        return 2;
      }
      req.token = std::move(*token);
    } else if (seek_given || count >= 0) {
      req.op = smpx::server::Op::kSeek;
      req.by_record = seek_by_record;
      req.target = seek_by_record ? seek_record : seek_offset;
    } else {
      req.op = smpx::server::Op::kProject;
    }
    req.dtd_text = *dtd_text;
    req.paths_text = paths_text;
    req.doc_path = doc_path;
    req.window = window;
    req.count = count >= 0 ? static_cast<uint64_t>(count) : 0;

    std::unique_ptr<smpx::BufferedFileSink> sink;
    if (out_file.empty()) {
      sink = smpx::BufferedFileSink::Wrap(stdout);
    } else {
      auto opened = smpx::BufferedFileSink::Open(out_file);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return 1;
      }
      sink = std::move(*opened);
    }

    smpx::WallTimer timer;
    auto client = smpx::server::Client::Connect(connect_endpoint);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
      return 1;
    }
    smpx::Result<smpx::server::Trailer> resp = smpx::Status::Ok();
    for (int attempt = 0;; ++attempt) {
      resp = client->Call(req, sink.get());
      // The retryable contract: admission rejections mean "resend
      // verbatim after backing off", and the connection stays usable.
      if (resp.ok() || !client->last_error_retryable() || attempt >= 5) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20 << attempt));
    }
    if (!resp.ok()) {
      std::fprintf(stderr, "server: %s\n", resp.status().ToString().c_str());
      return 1;
    }
    smpx::Status fs = sink->Flush();
    if (!fs.ok()) {
      std::fprintf(stderr, "%s\n", fs.ToString().c_str());
      return 1;
    }
    if (stats_flag) {
      std::fprintf(
          stderr,
          "connect=%s op=%d emitted=%llu records=%llu position=%llu "
          "out_offset=%llu record=%llu at_end=%d token=%s time=%.3fs\n",
          connect_endpoint.c_str(), static_cast<int>(req.op),
          static_cast<unsigned long long>(resp->emitted_bytes),
          static_cast<unsigned long long>(resp->records),
          static_cast<unsigned long long>(resp->position),
          static_cast<unsigned long long>(resp->out_position),
          static_cast<unsigned long long>(resp->record_position),
          resp->at_end ? 1 : 0,
          resp->token.empty() ? "-"
                              : smpx::server::HexEncode(resp->token).c_str(),
          timer.Seconds());
    }
    return 0;
  }

  auto dtd = smpx::dtd::Dtd::Parse(*dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<smpx::paths::ProjectionPath>> mq_queries;
  if (multi_mode) {
    for (const std::string& text : query_texts) {
      auto parsed = smpx::paths::ProjectionPath::ParseList(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "query %zu: %s\n", mq_queries.size() + 1,
                     parsed.status().ToString().c_str());
        return 1;
      }
      if (parsed->empty()) {
        std::fprintf(stderr, "query %zu: empty path list\n",
                     mq_queries.size() + 1);
        return 1;
      }
      mq_queries.push_back(std::move(*parsed));
    }
  }

  std::vector<smpx::paths::ProjectionPath> paths;
  if (multi_mode && fused) {
    // One superset projection: the union of every query's paths is
    // projection-safe for each query individually
    // (query::CheckProjectionSafety), so the run falls through to the
    // ordinary single-query pipeline below with one output.
    for (const auto& q : mq_queries) {
      paths.insert(paths.end(), q.begin(), q.end());
    }
    paths = smpx::query::CanonicalizePathSet(std::move(paths));
    multi_mode = false;
  }
  if (!query.empty()) {
    auto extracted = smpx::paths::ExtractProjectionPaths(query);
    if (!extracted.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   extracted.status().ToString().c_str());
      return 1;
    }
    paths = std::move(*extracted);
    std::fprintf(stderr, "extracted projection paths:");
    for (const auto& p : paths) {
      std::fprintf(stderr, " %s", p.ToString().c_str());
    }
    std::fprintf(stderr, "\n");
  }
  if (!paths_text.empty()) {
    auto parsed = smpx::paths::ProjectionPath::ParseList(paths_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "paths: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    paths.insert(paths.end(), parsed->begin(), parsed->end());
  }

  if (multi_mode) {
    // N queries, ONE pass: compile the mix into shared product tables
    // (equivalent queries collapse to one component; duplicates fan out
    // through FanoutSink) and run it under the requested driver. Every
    // query's output file is byte-identical to its own single-query run.
    smpx::WallTimer mq_compile_timer;
    auto mq = smpx::query::MultiQuery::Compile(std::move(*dtd),
                                               std::move(mq_queries));
    if (!mq.ok()) {
      std::fprintf(stderr, "multi-query compile: %s\n",
                   mq.status().ToString().c_str());
      return 1;
    }
    const int nq = mq->num_queries();
    std::string mq_stdin_buffer;
    std::vector<std::unique_ptr<smpx::MmapSource>> mq_sources;
    std::vector<std::string_view> mq_docs;
    if (inputs.empty()) {
      mq_stdin_buffer = ReadStdin();
      mq_docs.push_back(mq_stdin_buffer);
    } else {
      for (const std::string& path : inputs) {
        auto src = smpx::MmapSource::Open(path);
        if (!src.ok()) {
          std::fprintf(stderr, "%s\n", src.status().ToString().c_str());
          return 1;
        }
        mq_docs.push_back((*src)->Contiguous());
        mq_sources.push_back(std::move(*src));
      }
    }
    smpx::core::EngineOptions eopts;
    eopts.window_capacity = window;
    smpx::core::RunStats stats;
    std::vector<smpx::core::QueryRunStats> qstats;  // per ORIGINAL query
    smpx::WallTimer run_timer;
    smpx::CpuTimer cpu_timer;
    int failures = 0;

    if (batch_flag) {
      // Per-input per-query files: in.xml -> in.proj.q1.xml, ... A merged
      // --out has no meaning when each query owns its byte stream.
      if (!out_file.empty()) return Usage(argv[0]);
      smpx::parallel::ThreadPool pool(threads);
      smpx::parallel::StreamOptions sopts;
      sopts.engine = eopts;
      sopts.chunk_bytes = chunk;
      sopts.max_buffer_bytes = max_buffer;
      std::vector<const smpx::InputSource*> srcs;
      std::vector<std::vector<std::unique_ptr<smpx::BufferedFileSink>>>
          files(mq_docs.size());
      std::vector<std::vector<std::unique_ptr<smpx::FanoutSink>>> owned(
          mq_docs.size());
      std::vector<std::vector<smpx::OutputSink*>> doc_sinks(mq_docs.size());
      std::vector<std::vector<std::string>> names(mq_docs.size());
      for (size_t i = 0; i < mq_sources.size(); ++i) {
        srcs.push_back(mq_sources[i].get());
        std::vector<smpx::OutputSink*> originals;
        for (int j = 0; j < nq; ++j) {
          names[i].push_back(QueryOutputPath(
              smpx::ProjectedOutputPath(inputs[i]), static_cast<size_t>(j) + 1));
          auto f = smpx::BufferedFileSink::Open(names[i].back());
          if (!f.ok()) {
            std::fprintf(stderr, "%s\n", f.status().ToString().c_str());
            return 1;
          }
          originals.push_back(f->get());
          files[i].push_back(std::move(*f));
        }
        mq->RouteSinks(originals, &owned[i], &doc_sinks[i]);
      }
      std::vector<std::vector<smpx::core::QueryRunStats>> doc_qstats;
      std::vector<smpx::core::RunStats> doc_stats;
      std::vector<smpx::Status> statuses =
          smpx::parallel::MultiQueryBatchRunStreaming(
              mq->tables(), srcs, doc_sinks, &doc_qstats, &doc_stats, &pool,
              sopts);
      for (size_t i = 0; i < statuses.size(); ++i) {
        for (auto& f : files[i]) {
          smpx::Status fs = f->Flush();
          if (statuses[i].ok() && !fs.ok()) statuses[i] = fs;
        }
        if (!statuses[i].ok()) {
          std::fprintf(stderr, "%s: %s\n", inputs[i].c_str(),
                       statuses[i].ToString().c_str());
          ++failures;
          continue;
        }
        smpx::parallel::MergeRunStats(&stats, doc_stats[i]);
        if (stats_flag) {
          std::vector<smpx::core::QueryRunStats> per_original;
          mq->ExpandStats(doc_qstats[i], &per_original);
          for (int j = 0; j < nq; ++j) {
            std::fprintf(stderr, "%s q%d -> %s: output=%llu matches=%llu\n",
                         inputs[i].c_str(), j + 1, names[i][j].c_str(),
                         static_cast<unsigned long long>(
                             per_original[j].output_bytes),
                         static_cast<unsigned long long>(
                             per_original[j].matches));
          }
        }
      }
    } else {
      // One document, N output files named off the single output name.
      if (out_file.empty()) {
        std::fprintf(stderr,
                     "multi-query mode writes one file per query; name the "
                     "output (--out FILE or a positional out.xml)\n");
        return 2;
      }
      std::vector<std::unique_ptr<smpx::BufferedFileSink>> files;
      std::vector<smpx::OutputSink*> originals;
      std::vector<std::string> names;
      for (int j = 0; j < nq; ++j) {
        names.push_back(QueryOutputPath(out_file, static_cast<size_t>(j) + 1));
        auto f = smpx::BufferedFileSink::Open(names.back());
        if (!f.ok()) {
          std::fprintf(stderr, "%s\n", f.status().ToString().c_str());
          return 1;
        }
        originals.push_back(f->get());
        files.push_back(std::move(*f));
      }
      smpx::Status s;
      if (threads > 1) {
        smpx::parallel::ThreadPool pool(threads);
        smpx::parallel::ShardOptions popts;
        popts.engine = eopts;
        popts.max_buffer_bytes = max_buffer;
        std::vector<std::unique_ptr<smpx::FanoutSink>> owned;
        std::vector<smpx::OutputSink*> unique_sinks;
        mq->RouteSinks(originals, &owned, &unique_sinks);
        std::vector<smpx::core::QueryRunStats> uq_stats;
        s = smpx::parallel::MultiQueryShardedRun(mq->tables(), mq_docs[0],
                                                 unique_sinks, &uq_stats,
                                                 &stats, &pool, popts);
        if (s.ok()) mq->ExpandStats(uq_stats, &qstats);
      } else {
        smpx::MemoryInputStream in(mq_docs[0]);
        s = mq->Run(&in, originals, &qstats, &stats, eopts, chunk);
      }
      for (auto& f : files) {
        if (s.ok()) s = f->Flush();
      }
      if (!s.ok()) {
        std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
        return 1;
      }
      if (stats_flag) {
        for (int j = 0; j < nq; ++j) {
          std::fprintf(
              stderr, "q%d -> %s: output=%llu matches=%llu\n", j + 1,
              names[j].c_str(),
              static_cast<unsigned long long>(qstats[j].output_bytes),
              static_cast<unsigned long long>(qstats[j].matches));
        }
      }
    }
    if (stats_flag) {
      std::fprintf(
          stderr,
          "multi: queries=%d unique=%d states=%zu input=%llu output=%llu "
          "time=%.3fs usr+sys=%.3fs matches=%llu\n",
          nq, mq->num_unique(), mq->tables().states.size(),
          static_cast<unsigned long long>(stats.input_bytes),
          static_cast<unsigned long long>(stats.output_bytes),
          run_timer.Seconds() + mq_compile_timer.Seconds(),
          cpu_timer.Seconds(),
          static_cast<unsigned long long>(stats.matches));
    }
    return failures == 0 ? 0 : 1;
  }

  smpx::WallTimer compile_timer;
  auto pf = smpx::core::Prefilter::Compile(std::move(*dtd),
                                           std::move(paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  if (tables_flag) {
    std::printf("%s", pf->tables().DebugString().c_str());
    return 0;
  }

  if (!index_build_file.empty() && index_chunk > 0) {
    // Chunked index build: the document is never mapped -- it streams
    // through a rolling buffer, so this path works for inputs larger
    // than the address space. Placed before the mmap plumbing on
    // purpose.
    smpx::WallTimer chunked_timer;
    std::string stdin_buffer;
    std::unique_ptr<smpx::InputSource> src;
    if (inputs.empty()) {
      stdin_buffer = ReadStdin();
      src = std::make_unique<smpx::MemorySource>(stdin_buffer);
    } else {
      auto f = smpx::FileSource::Open(inputs[0]);
      if (!f.ok()) {
        std::fprintf(stderr, "%s\n", f.status().ToString().c_str());
        return 1;
      }
      src = std::move(*f);
    }
    smpx::index::BoundaryIndexOptions iopts;
    iopts.granularity_bytes = index_granularity;
    iopts.chunk_bytes = index_chunk;
    iopts.engine.window_capacity = window;
    auto idx = smpx::index::BoundaryIndex::Build(pf->tables(), *src,
                                                 /*pool=*/nullptr, iopts);
    if (!idx.ok()) {
      std::fprintf(stderr, "index build: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    std::string serialized = idx->Serialize();
    smpx::Status s = smpx::WriteStringToFile(index_build_file, serialized);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (stats_flag) {
      double secs = chunked_timer.Seconds();
      std::fprintf(
          stderr,
          "index: entries=%zu index_bytes=%zu doc_bytes=%llu chunked=%zu "
          "build=%.3fs (%.1f MB/s)\n",
          idx->entries().size(), serialized.size(),
          static_cast<unsigned long long>(src->size()), index_chunk, secs,
          secs > 0
              ? static_cast<double>(src->size()) / 1048576.0 / secs
              : 0.0);
    }
    return 0;
  }

  // Input plumbing: mmap file inputs (zero copy, sequential madvise);
  // stdin falls back to an in-memory buffer.
  std::string stdin_buffer;
  std::vector<std::unique_ptr<smpx::MmapSource>> sources;
  std::vector<std::string_view> docs;
  if (inputs.empty()) {
    stdin_buffer = ReadStdin();
    docs.push_back(stdin_buffer);
  } else {
    for (const std::string& path : inputs) {
      auto src = smpx::MmapSource::Open(path);
      if (!src.ok()) {
        std::fprintf(stderr, "%s\n", src.status().ToString().c_str());
        return 1;
      }
      docs.push_back((*src)->Contiguous());
      sources.push_back(std::move(*src));
    }
  }
  smpx::core::RunStats stats;
  smpx::core::EngineOptions eopts;
  eopts.window_capacity = window;
  smpx::WallTimer run_timer;
  smpx::CpuTimer cpu_timer;
  int failures = 0;

  if (!index_build_file.empty()) {
    // One speculative indexing pass over the document, then the versioned
    // skip-index file; the projection itself is discarded.
    smpx::parallel::ThreadPool pool(threads);
    smpx::index::BoundaryIndexOptions iopts;
    iopts.granularity_bytes = index_granularity;
    iopts.engine = eopts;
    auto idx = smpx::index::BoundaryIndex::Build(pf->tables(), docs[0],
                                                 &pool, iopts);
    if (!idx.ok()) {
      std::fprintf(stderr, "index build: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    std::string serialized = idx->Serialize();
    smpx::Status s = smpx::WriteStringToFile(index_build_file, serialized);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (stats_flag) {
      double secs = run_timer.Seconds();
      std::fprintf(
          stderr,
          "index: entries=%zu index_bytes=%zu doc_bytes=%zu "
          "build=%.3fs (%.1f MB/s)\n",
          idx->entries().size(), serialized.size(), docs[0].size(), secs,
          secs > 0 ? static_cast<double>(docs[0].size()) / 1048576.0 / secs
                   : 0.0);
    }
    return 0;
  }

  if (!index_file.empty()) {
    auto idx = smpx::index::BoundaryIndex::LoadFromFile(index_file);
    if (!idx.ok()) {
      std::fprintf(stderr, "index: %s\n", idx.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<smpx::BufferedFileSink> sink;
    if (out_file.empty()) {
      sink = smpx::BufferedFileSink::Wrap(stdout);
    } else {
      auto file_sink = smpx::BufferedFileSink::Open(out_file);
      if (!file_sink.ok()) {
        std::fprintf(stderr, "%s\n", file_sink.status().ToString().c_str());
        return 1;
      }
      sink = std::move(*file_sink);
    }
    smpx::index::CursorOptions copts;
    copts.engine = eopts;
    auto cur = seek_by_record
                   ? smpx::index::Cursor::OpenAtRecord(
                         *idx, pf->tables(), docs[0], seek_record, copts)
                   : smpx::index::Cursor::OpenAt(*idx, pf->tables(), docs[0],
                                                 seek_offset, copts);
    if (!cur.ok()) {
      std::fprintf(stderr, "seek: %s\n", cur.status().ToString().c_str());
      return 1;
    }
    uint64_t opened_at = cur->position();
    uint64_t out_offset = cur->output_position();
    uint64_t opened_record = cur->record_position();
    smpx::index::StatsPrefix prefix = cur->stats_prefix();
    size_t records = 0;
    smpx::Status s;
    if (count >= 0) {
      auto n = cur->Next(static_cast<size_t>(count), sink.get());
      if (!n.ok()) {
        s = n.status();
      } else {
        records = *n;
      }
    } else {
      s = cur->Drain(sink.get());
    }
    if (s.ok()) s = sink->Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "cursor: %s\n", s.ToString().c_str());
      return 1;
    }
    if (stats_flag) {
      // prefix_* are the indexing pass's cumulative counters for the
      // skipped document prefix: seek-point totals instead of zeros.
      std::fprintf(
          stderr,
          "seek=%s%llu opened_at=%llu record=%llu out_offset=%llu "
          "records=%zu emitted=%llu prefix_matches=%llu "
          "prefix_false_matches=%llu prefix_scan_chars=%llu time=%.3fs\n",
          seek_by_record ? "@" : "",
          static_cast<unsigned long long>(seek_by_record ? seek_record
                                                         : seek_offset),
          static_cast<unsigned long long>(opened_at),
          static_cast<unsigned long long>(opened_record),
          static_cast<unsigned long long>(out_offset), records,
          static_cast<unsigned long long>(cur->output_position() -
                                          out_offset),
          static_cast<unsigned long long>(prefix.matches),
          static_cast<unsigned long long>(prefix.false_matches),
          static_cast<unsigned long long>(prefix.scan_chars),
          run_timer.Seconds());
    }
    return 0;
  }

  if (batch_flag && out_file.empty()) {
    // Streaming batch with per-input output files: every document is
    // pulled through its own session in bounded chunks into a budgeted
    // segment, and segments are written to their in.proj.xml files in
    // document order through the ordered-commit machinery -- at most one
    // output file open at a time, so thousand-document batches do not
    // exhaust fd limits, and peak memory never depends on document size.
    // Errors are isolated per document; stats stay in argument order.
    smpx::parallel::ThreadPool pool(threads);
    smpx::parallel::StreamOptions sopts;
    sopts.engine = eopts;
    sopts.chunk_bytes = chunk;
    sopts.max_buffer_bytes = max_buffer;
    std::vector<const smpx::InputSource*> srcs;
    std::vector<std::string> out_paths;
    for (size_t i = 0; i < sources.size(); ++i) {
      out_paths.push_back(smpx::ProjectedOutputPath(inputs[i]));
      // Repeated inputs would collapse two documents onto one output file.
      for (size_t j = 0; j < i; ++j) {
        if (out_paths[j] == out_paths.back()) {
          std::fprintf(stderr,
                       "duplicate batch output file %s (inputs %s, %s)\n",
                       out_paths.back().c_str(), inputs[j].c_str(),
                       inputs[i].c_str());
          return 1;
        }
      }
      srcs.push_back(sources[i].get());
    }
    std::vector<smpx::core::RunStats> doc_stats;
    std::vector<smpx::Status> statuses =
        smpx::parallel::BatchRunStreamingToFiles(pf->tables(), srcs,
                                                 out_paths, &doc_stats,
                                                 &pool, sopts);
    for (size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) {
        std::fprintf(stderr, "%s: %s\n", inputs[i].c_str(),
                     statuses[i].ToString().c_str());
        ++failures;
        continue;
      }
      if (stats_flag) {
        std::fprintf(
            stderr, "%s -> %s: input=%llu output=%llu matches=%llu\n",
            inputs[i].c_str(), out_paths[i].c_str(),
            static_cast<unsigned long long>(doc_stats[i].input_bytes),
            static_cast<unsigned long long>(doc_stats[i].output_bytes),
            static_cast<unsigned long long>(doc_stats[i].matches));
      }
      smpx::parallel::MergeRunStats(&stats, doc_stats[i]);
    }
  } else {
    // Single merged output (file or stdout), always through the
    // write-coalescing sink -- nothing below buffers the whole projection.
    std::unique_ptr<smpx::BufferedFileSink> sink;
    if (out_file.empty()) {
      sink = smpx::BufferedFileSink::Wrap(stdout);
    } else {
      auto file_sink = smpx::BufferedFileSink::Open(out_file);
      if (!file_sink.ok()) {
        std::fprintf(stderr, "%s\n", file_sink.status().ToString().c_str());
        return 1;
      }
      sink = std::move(*file_sink);
    }
    smpx::Status s;
    if (batch_flag) {
      // --batch --out: concatenate in argument order through the
      // budgeted ordered-commit pipeline (documents stream, completed
      // ones park on disk until their turn).
      smpx::parallel::ThreadPool pool(threads);
      smpx::parallel::StreamOptions sopts;
      sopts.engine = eopts;
      sopts.chunk_bytes = chunk;
      sopts.max_buffer_bytes = max_buffer;
      std::vector<const smpx::InputSource*> srcs;
      for (const auto& src : sources) srcs.push_back(src.get());
      s = smpx::parallel::BatchRunStreamingMerged(pf->tables(), srcs,
                                                 sink.get(), &stats, &pool,
                                                 sopts);
    } else if (threads > 1) {
      smpx::parallel::ThreadPool pool(threads);
      smpx::parallel::ShardOptions popts;
      popts.engine = eopts;
      popts.max_buffer_bytes = max_buffer;
      s = smpx::parallel::ShardedRun(pf->tables(), docs[0], sink.get(),
                                     &stats, &pool, popts);
    } else {
      smpx::MemoryInputStream in(docs[0]);
      s = pf->Run(&in, sink.get(), &stats, eopts);
    }
    if (s.ok()) s = sink->Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "run: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (stats_flag) {
    std::fprintf(
        stderr,
        "states=%zu input=%llu output=%llu time=%.3fs usr+sys=%.3fs "
        "charcomp=%.2f%% avg_shift=%.2f initial_jumps=%.2f%% "
        "matches=%llu false_matches=%llu window_peak=%zu\n",
        pf->num_states(),
        static_cast<unsigned long long>(stats.input_bytes),
        static_cast<unsigned long long>(stats.output_bytes),
        run_timer.Seconds() + compile_timer.Seconds(), cpu_timer.Seconds(),
        stats.CharCompPct(), stats.AvgShift(), stats.InitialJumpPct(),
        static_cast<unsigned long long>(stats.matches),
        static_cast<unsigned long long>(stats.false_matches),
        stats.window_peak);
  }
  return failures == 0 ? 0 : 1;
}
