// smpxd: the long-lived projection daemon. Preloads compiled tables and
// boundary indexes into a keyed LRU cache and serves project / seek /
// resume requests over unix-domain and loopback TCP sockets (see
// server/protocol.h for the frame format and server/server.h for the
// threading and admission model).
//
//   smpxd --socket /tmp/smpx.sock [--port 7070] [--max-buffer 64M]
//         [--request-buffer 4M] [--window 1M] [--cache 16]
//         [--index-granularity 1] [--threads N]
//
// Prints one "smpxd ready ..." line on stdout once the listeners are
// bound (test and bench harnesses wait for it), then runs until SIGINT
// or SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/io.h"
#include "common/strings.h"
#include "server/server.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--port N] [--max-buffer SIZE]\n"
      "          [--request-buffer SIZE] [--window SIZE] [--cache N]\n"
      "          [--index-granularity SIZE] [--threads N]\n"
      "At least one of --socket / --port is required; --port 0 picks an\n"
      "ephemeral port (printed on the ready line).\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  smpx::server::ServerOptions opts;
  opts.cache.index_granularity = 1;

  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_size = [&](uint64_t* out) -> bool {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = smpx::ParseByteSize(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(),
                     parsed.status().ToString().c_str());
        return false;
      }
      *out = *parsed;
      return true;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.unix_path = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.tcp_port = std::atoi(v);
      have_port = true;
    } else if (arg == "--max-buffer") {
      if (!next_size(&opts.max_buffer_bytes)) return Usage(argv[0]);
    } else if (arg == "--request-buffer") {
      if (!next_size(&opts.per_request_bytes)) return Usage(argv[0]);
    } else if (arg == "--window") {
      if (!next_size(&opts.default_window)) return Usage(argv[0]);
    } else if (arg == "--cache") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.cache.max_tables = opts.cache.max_indexes =
          static_cast<size_t>(std::atoi(v));
    } else if (arg == "--index-granularity") {
      uint64_t g = 1;
      if (!next_size(&g)) return Usage(argv[0]);
      opts.cache.index_granularity = g;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.cache.build_threads = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (opts.unix_path.empty() && !have_port) return Usage(argv[0]);
  if (!have_port) opts.tcp_port = -1;
  if (opts.per_request_bytes > opts.max_buffer_bytes) {
    std::fprintf(stderr,
                 "--request-buffer exceeds --max-buffer: no request could "
                 "ever be admitted\n");
    return 2;
  }

  // Block the shutdown signals before any thread exists so the accept and
  // connection threads inherit the mask; main() alone takes delivery.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  smpx::server::Server server(opts);
  smpx::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "smpxd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("smpxd ready unix=%s tcp=%d max-buffer=%llu request-buffer=%llu\n",
              server.unix_path().empty() ? "-" : server.unix_path().c_str(),
              server.tcp_port(),
              static_cast<unsigned long long>(opts.max_buffer_bytes),
              static_cast<unsigned long long>(opts.per_request_bytes));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "smpxd: signal %d, shutting down\n", sig);
  server.Stop();
  return 0;
}
