// Reproduces Table III: "Projection of the XMark document" -- the
// tokenizing projector (stand-in for Type-Based Projection [6], which
// tokenizes its complete input) against SMP on queries XM3, XM6, XM7,
// XM19. The paper reports a ~90x Usr+Sys gap, of which it attributes a
// factor of 5-20 to OCaml-vs-C++; our baseline is C++ too, so the expected
// gap here is the *algorithmic* share (several-fold, driven by
// tokenize-everything vs skip-most).

#include <cstdio>

#include "baselines/sax_projector.h"
#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Run() {
  const std::string& doc = Dataset("xmark", ScaleBytes());
  std::printf(
      "== Table III: tokenizing projection (TBP substitute) vs SMP "
      "(XMark, %s) ==\n",
      Mb(static_cast<double>(doc.size())).c_str());

  TablePrinter table({"query", "TBP-dfa", "TBP-nfa", "TBP:Proj",
                      "SMP:Usr+Sys", "SMP:Mem", "SMP:Proj", "vs-dfa",
                      "vs-nfa"});

  for (const Workload& w : XmarkWorkloads()) {
    std::string id(w.id);
    if (id != "XM3" && id != "XM6" && id != "XM7" && id != "XM19") continue;

    // Tokenizing projector, type-lookup style (memoized decisions, like
    // TBP) and XFilter style (path NFAs re-stepped per node).
    double sax_s[2] = {0, 0};
    baselines::SaxProjectStats sax_stats;
    for (int mode = 0; mode < 2; ++mode) {
      baselines::SaxProjector projector(
          MustPaths(w.projection_paths),
          mode == 0 ? baselines::SaxProjector::Mode::kMemoizedDfa
                    : baselines::SaxProjector::Mode::kNfaPerNode);
      CpuTimer sax_cpu;
      CountingSink sax_out;
      Status s = projector.Project(doc, &sax_out, &sax_stats);
      sax_s[mode] = sax_cpu.Seconds();
      if (!s.ok()) {
        std::fprintf(stderr, "%s TBP failed: %s\n", w.id,
                     s.ToString().c_str());
        return 1;
      }
    }

    // SMP.
    auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(),
                                       MustPaths(w.projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s SMP compile failed: %s\n", w.id,
                   pf.status().ToString().c_str());
      return 1;
    }
    core::RunStats smp_stats;
    CpuTimer smp_cpu;
    MemoryInputStream in(doc);
    CountingSink smp_out;
    Status s = pf->Run(&in, &smp_out, &smp_stats);
    double smp_s = smp_cpu.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "%s SMP failed: %s\n", w.id,
                   s.ToString().c_str());
      return 1;
    }

    char vs_dfa[32];
    std::snprintf(vs_dfa, sizeof(vs_dfa), "%.1fx",
                  smp_s > 0 ? sax_s[0] / smp_s : 0.0);
    char vs_nfa[32];
    std::snprintf(vs_nfa, sizeof(vs_nfa), "%.1fx",
                  smp_s > 0 ? sax_s[1] / smp_s : 0.0);
    table.AddRow({w.id, Secs(sax_s[0]), Secs(sax_s[1]),
                  Mb(static_cast<double>(sax_stats.output_bytes)),
                  Secs(smp_s), Mb(static_cast<double>(smp_stats.window_peak)),
                  Mb(static_cast<double>(smp_stats.output_bytes)), vs_dfa,
                  vs_nfa});
  }
  table.Print("table3");
  std::printf(
      "\nTBP-dfa: decisions memoized per context (type-lookup, as TBP); "
      "TBP-nfa: path NFAs\nre-stepped per node (XFilter-style). Paper "
      "context: TBP (OCaml) needed 757-1170s vs\nSMP 5.4-9.8s on 1 GB "
      "(factor ~90-150, including the OCaml-vs-C++ gap); projection\n"
      "outputs here are byte-identical across all three systems "
      "(asserted by tests).\n");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
