// Parallel scaling benchmark: tags/sec and speedup versus one thread at
// 1/2/4/8 threads, for the two parallel execution modes.
//
//   batch    many documents prefiltered concurrently (one session per
//            document, shared tables) -- the multi-document server shape;
//            an XMark workload over a 16-document batch.
//   shard    one document split at top-level element boundaries and run
//            speculatively shard-by-shard -- the huge-single-file shape;
//            a MEDLINE workload (star-shaped root: one behavior class, so
//            speculation hits on every boundary) plus an XMark workload
//            (sectioned root: several behavior classes, so the wave
//            carries losers for early-kill to reclaim).
//
// Outputs are cross-checked against the serial engine before timing.
//
//   SMPX_SCALE_MB=64 ./bench_parallel_scaling
//   SMPX_THREADS="1 2 4 8 16"  thread counts to sweep
//   SMPX_REPS=5                best-of-N timing (default 3); every cell
//                              first runs one untimed warm-up pass, then
//                              keeps sampling past N until the timed reps
//                              accumulate SMPX_MIN_SECS of runtime, so a
//                              single descheduled rep cannot set the cell
//   SMPX_MIN_SECS=0.5          minimum accumulated timed seconds per cell
//   SMPX_MAX_BUFFER=1048576    per-segment output budget in bytes
//                              (default 0 = unbounded in-memory segments)
//   SMPX_CSV=1 / SMPX_JSON=1   machine-readable output
//
// Both tables report peakMB, the process-wide getrusage high-water RSS
// after the row's runs. It is a lifetime maximum (monotone across rows),
// so the interesting signals are the first row's level and whether later
// rows move it; with a budget set, the budgeted pipeline should hold it
// flat where the unbudgeted one grows with the projected output.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

constexpr int kBatchDocs = 16;

int Reps() {
  const char* env = std::getenv("SMPX_REPS");
  int reps = env != nullptr ? std::atoi(env) : 0;
  return reps > 0 ? reps : 3;
}

size_t MaxBufferBytes() {
  const char* env = std::getenv("SMPX_MAX_BUFFER");
  if (env == nullptr || env[0] == '\0') return 0;
  auto parsed = ParseByteSize(env);
  if (!parsed.ok()) {
    std::fprintf(stderr, "SMPX_MAX_BUFFER: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  return static_cast<size_t>(*parsed);
}

/// Process peak RSS in MiB (getrusage high-water mark; 0 if unavailable).
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1 << 20);  // bytes
#else
    return static_cast<double>(ru.ru_maxrss) / (1 << 10);  // KiB
#endif
  }
#endif
  return 0.0;
}

std::vector<int> ThreadCounts() {
  std::vector<int> counts;
  if (const char* env = std::getenv("SMPX_THREADS")) {
    int v = 0;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        v = v * 10 + (*p - '0');
      } else {
        if (v > 0) counts.push_back(v);
        v = 0;
        if (*p == '\0') break;
      }
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

std::string Rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
  }
  return buf;
}

std::string Fmt(const char* fmt, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

core::Prefilter MustCompile(dtd::Dtd dtd, const char* paths) {
  auto pf = core::Prefilter::Compile(std::move(dtd), MustPaths(paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 pf.status().ToString().c_str());
    std::abort();
  }
  return std::move(*pf);
}

struct Sample {
  double seconds = 0;
  uint64_t tags = 0;
  uint64_t bytes = 0;
};

double MinSecs() {
  const char* env = std::getenv("SMPX_MIN_SECS");
  double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0 ? v : 0.5;
}

/// One untimed warm-up, then `body` at least `reps` times -- continuing
/// until the timed samples accumulate MinSecs() of runtime -- keeping the
/// fastest sample. The warm-up faults the dataset in and spins up the
/// pool; the runtime floor keeps a cell from being decided by one or two
/// descheduled runs when the per-rep time is far below a scheduler slice.
template <typename Body>
Sample Best(int reps, Body body) {
  constexpr int kMaxReps = 256;  // floor guard for pathologically fast bodies
  (void)body();                  // warm-up, never timed
  const double min_secs = MinSecs();
  Sample best;
  double accumulated = 0;
  for (int r = 0; r < kMaxReps && (r < reps || accumulated < min_secs); ++r) {
    Sample s = body();
    accumulated += s.seconds;
    if (best.seconds == 0 || s.seconds < best.seconds) best = s;
  }
  return best;
}

int Run() {
  const uint64_t scale = ScaleBytes();
  const int reps = Reps();
  const std::vector<int> threads = ThreadCounts();

  // --- Batch: kBatchDocs logical documents over one generated buffer ----
  const std::string& xmark = Dataset("xmark", scale / 4);
  core::Prefilter xpf = MustCompile(
      xmlgen::XmarkDtd(),
      "/site/people/person@ /site/people/person/name# "
      "/site/open_auctions/open_auction/initial#");
  std::vector<std::string_view> batch(kBatchDocs, xmark);

  const size_t max_buffer = MaxBufferBytes();
  MemorySource xmark_src(xmark);
  std::vector<const InputSource*> batch_srcs(kBatchDocs, &xmark_src);
  parallel::StreamOptions batch_opts;
  batch_opts.max_buffer_bytes = max_buffer;

  // Cross-check: streaming merged batch output must equal per-document
  // serial runs (also with a tiny budget, so the spill path is covered).
  {
    auto serial = xpf.RunOnBuffer(xmark);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    std::string expected;
    for (int i = 0; i < kBatchDocs; ++i) expected += *serial;
    parallel::ThreadPool pool(2);
    for (size_t budget : {size_t{0}, size_t{1} << 16}) {
      parallel::StreamOptions sopts;
      sopts.max_buffer_bytes = budget;
      StringSink sink;
      Status s = parallel::BatchRunStreamingMerged(
          xpf.tables(), batch_srcs, &sink, nullptr, &pool, sopts);
      if (!s.ok() || sink.str() != expected) {
        std::fprintf(stderr, "batch output diverges from serial!\n");
        return 1;
      }
    }
  }

  std::printf(
      "== Parallel scaling (XMark batch %dx%s, MEDLINE shard %s, "
      "best of %d; %u hardware threads) ==\n",
      kBatchDocs, Mb(static_cast<double>(xmark.size())).c_str(),
      Mb(static_cast<double>(scale)).c_str(), reps,
      std::thread::hardware_concurrency());

  TablePrinter batch_table(
      {"mode", "threads", "secs", "tags/s", "MB/s", "speedup", "peakMB"});
  double batch_base = 0;
  for (int t : threads) {
    parallel::ThreadPool pool(t);
    Sample s = Best(reps, [&] {
      CountingSink sink;
      core::RunStats stats;
      WallTimer timer;
      Status st = parallel::BatchRunStreamingMerged(
          xpf.tables(), batch_srcs, &sink, &stats, &pool, batch_opts);
      Sample out;
      out.seconds = timer.Seconds();
      if (!st.ok()) {
        std::fprintf(stderr, "batch run failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
      out.tags = stats.matches;
      out.bytes = stats.input_bytes;
      return out;
    });
    if (batch_base == 0) batch_base = s.seconds;
    batch_table.AddRow(
        {"batch", std::to_string(t), Fmt("%.3f", s.seconds),
         Rate(static_cast<double>(s.tags) / s.seconds),
         Fmt("%.1f", static_cast<double>(s.bytes) / (1 << 20) / s.seconds),
         Fmt("%.2fx", batch_base / s.seconds), Fmt("%.1f", PeakRssMb())});
  }
  batch_table.Print("parallel_batch");

  // --- Shard: one huge document split across the pool -------------------
  // serial% is the Amdahl bound of the run: bytes prefiltered outside the
  // parallel wave (speculation misses re-run sequentially; with the static
  // candidate set the head no longer serializes, so a full hit rate shows
  // 0.0 serial%). accept is speculative shards verified / launched.
  // classes is the behavior-class count of the static candidate set (wave
  // width per segment before early-kill); wavex is total prefiltered bytes
  // (wave attempts + serial reruns) over document bytes -- with early-kill
  // it should sit near 1.0 instead of the classes multiple, and killed
  // counts the attempts reclaimed to get there (timing-dependent, like
  // the stolen-inline runs folded into wavex).
  auto shard_sweep = [&](const char* table_name, const core::Prefilter& pf,
                         const std::string& doc) -> int {
    {
      auto serial = pf.RunOnBuffer(doc);
      parallel::ThreadPool pool(2);
      for (size_t budget : {size_t{0}, size_t{1} << 16}) {
        StringSink sink;
        parallel::ShardOptions opts;
        opts.max_shards = 4;
        opts.max_buffer_bytes = budget;
        Status s = parallel::ShardedRun(pf.tables(), doc, &sink, nullptr,
                                        &pool, opts);
        if (!serial.ok() || !s.ok() || sink.str() != *serial) {
          std::fprintf(stderr, "%s: sharded output diverges from serial!\n",
                       table_name);
          return 1;
        }
      }
    }
    TablePrinter shard_table({"mode", "threads", "secs", "tags/s", "MB/s",
                              "speedup", "serial%", "accept", "classes",
                              "wavex", "killed", "peakMB"});
    double shard_base = 0;
    for (int t : threads) {
      parallel::ThreadPool pool(t);
      parallel::ShardReport report;
      Sample s = Best(reps, [&] {
        CountingSink sink;
        core::RunStats stats;
        parallel::ShardOptions opts;
        opts.max_shards = static_cast<size_t>(t);
        opts.max_buffer_bytes = max_buffer;
        WallTimer timer;
        Status st = parallel::ShardedRun(pf.tables(), doc, &sink, &stats,
                                         &pool, opts, &report);
        Sample out;
        out.seconds = timer.Seconds();
        if (!st.ok()) {
          std::fprintf(stderr, "sharded run failed: %s\n",
                       st.ToString().c_str());
          std::abort();
        }
        out.tags = stats.matches;
        out.bytes = stats.input_bytes;
        return out;
      });
      if (shard_base == 0) shard_base = s.seconds;
      shard_table.AddRow(
          {"shard", std::to_string(t), Fmt("%.3f", s.seconds),
           Rate(static_cast<double>(s.tags) / s.seconds),
           Fmt("%.1f", static_cast<double>(s.bytes) / (1 << 20) / s.seconds),
           Fmt("%.2fx", shard_base / s.seconds),
           Fmt("%.1f", s.bytes == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(report.serial_bytes) /
                                 static_cast<double>(s.bytes)),
           std::to_string(report.accepted) + "/" +
               std::to_string(report.speculated),
           std::to_string(report.candidate_classes),
           Fmt("%.2f", s.bytes == 0
                           ? 0.0
                           : static_cast<double>(report.wave_bytes +
                                                 report.serial_bytes) /
                                 static_cast<double>(s.bytes)),
           std::to_string(report.killed), Fmt("%.1f", PeakRssMb())});
    }
    shard_table.Print(table_name);
    return 0;
  };

  const std::string& medline = Dataset("medline", scale);
  core::Prefilter mpf = MustCompile(
      xmlgen::MedlineDtd(),
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#");
  if (int rc = shard_sweep("parallel_shard", mpf, medline)) return rc;

  // XMark's sectioned root has few top-level children but several
  // behavior classes -- the workload where early-kill reclaims the most
  // wave work (MEDLINE's star root collapses to one class).
  if (int rc = shard_sweep("parallel_shard_xmark", xpf, xmark)) return rc;

  std::printf(
      "note: speedups are bounded by the hardware thread count (%u here). "
      "Shards speculate their entry states from the static boundary-state "
      "analysis, so no shard serializes ahead of the wave (serial%% ~0 when "
      "speculation hits).\n",
      std::thread::hardware_concurrency());
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
