// Ablation: initial jump offsets J on vs off. The paper reports jumps help
// little on XMark (0.1-2.6% of input) but noticeably on MEDLINE M5 (7.6%);
// this bench verifies outputs stay identical and quantifies the delta.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Run() {
  struct Case {
    const char* dataset;
    const Workload* w;
    dtd::Dtd dtd;
  };
  std::vector<Case> cases;
  for (const Workload& w : XmarkWorkloads()) {
    std::string id(w.id);
    if (id == "XM5" || id == "XM6" || id == "XM13") {
      cases.push_back({"xmark", &w, xmlgen::XmarkDtd()});
    }
  }
  for (const Workload& w : MedlineWorkloads()) {
    cases.push_back({"medline", &w, xmlgen::MedlineDtd()});
  }

  std::printf("== Ablation: initial jump offsets (table J) on/off ==\n");
  TablePrinter table({"query", "jumps", "Usr+Sys", "CharComp", "JumpChars",
                      "delta"});
  for (Case& c : cases) {
    const std::string& doc = Dataset(c.dataset, ScaleBytes());
    double base_cpu = 0;
    std::string base_out;
    for (bool jumps : {true, false}) {
      core::CompileOptions copts;
      copts.tables.enable_initial_jumps = jumps;
      auto pf = core::Prefilter::Compile(c.dtd,
                                         MustPaths(c.w->projection_paths),
                                         copts);
      if (!pf.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     pf.status().ToString().c_str());
        return 1;
      }
      core::RunStats stats;
      CpuTimer cpu;
      auto out = pf->RunOnBuffer(doc, &stats);
      double cpu_s = cpu.Seconds();
      if (!out.ok()) {
        std::fprintf(stderr, "run: %s\n", out.status().ToString().c_str());
        return 1;
      }
      if (jumps) {
        base_cpu = cpu_s;
        base_out = *out;
      } else if (*out != base_out) {
        std::fprintf(stderr, "%s: jumps changed the output!\n", c.w->id);
        return 1;
      }
      char delta[32];
      std::snprintf(delta, sizeof(delta), "%+.0f%%",
                    jumps ? 0.0 : 100.0 * (cpu_s - base_cpu) /
                                      (base_cpu > 0 ? base_cpu : 1));
      table.AddRow({c.w->id, jumps ? "on" : "off", Secs(cpu_s),
                    Pct(stats.CharCompPct()),
                    Pct(stats.InitialJumpPct()), jumps ? "-" : delta});
    }
  }
  table.Print("ablation_jumps");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
