// Boundary skip-index benchmark: what random access into a huge indexed
// document costs, versus the streaming alternative of prefiltering the
// whole prefix.
//
//   build    index-build throughput (MB/s of document indexed) and index
//            size per granularity -- the one-time cost per corpus file.
//   seek     latency of Cursor::OpenAt + Next(1) (serve one record) at
//            evenly spread byte targets, per granularity, with the
//            content-digest verification hashed once up front the way a
//            server would (verify_document=false per seek; the hash cost
//            is its own row). The "scan-to" row is the baseline: a serial
//            prefilter run over the prefix up to the same average target,
//            which is what serving the seek would cost WITHOUT the index.
//
//   SMPX_SCALE_MB=64 ./bench_index_seek
//   SMPX_REPS=5                best-of-N timing (default 3)
//   SMPX_CSV=1 / SMPX_JSON=1   machine-readable output
//
// Workload: MEDLINE (star root, many uniform records -- the indexed-corpus
// serving shape) with the M-style journal-info projection.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/thread_pool.h"
#include "xmlgen/medline.h"

namespace smpx::bench {
namespace {

constexpr int kSeeksPerRow = 32;

int Reps() {
  const char* env = std::getenv("SMPX_REPS");
  int reps = env != nullptr ? std::atoi(env) : 0;
  return reps > 0 ? reps : 3;
}

int Run() {
  const uint64_t bytes = ScaleBytes();
  const std::string& doc = Dataset("medline", bytes);
  auto paths = MustPaths(
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#");
  auto pf = core::Prefilter::Compile(xmlgen::MedlineDtd(), std::move(paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  parallel::ThreadPool pool(4);
  const int reps = Reps();

  std::printf("== boundary skip-index: build + seek (MEDLINE, %s) ==\n",
              Mb(static_cast<double>(doc.size())).c_str());
  TablePrinter table({"granularity", "entries", "indexMB", "buildMBs",
                      "seek_us", "serve1_us", "scanto_ms", "speedup"});

  // Baseline: serial prefilter of the prefix up to the average seek
  // target (half the document) -- the no-index cost of the same entry.
  double scan_to_ms = 0;
  {
    StringSink sink;
    core::PrefilterSession session(pf->tables(), &sink, nullptr, {});
    WallTimer t;
    Status s = session.Resume(
        std::string_view(doc).substr(0, doc.size() / 2));
    if (!s.ok()) {
      std::fprintf(stderr, "baseline: %s\n", s.ToString().c_str());
      return 1;
    }
    scan_to_ms = t.Seconds() * 1e3;
  }

  for (uint64_t gran : {uint64_t{4} << 20, uint64_t{1} << 20,
                        uint64_t{64} << 10}) {
    index::BoundaryIndexOptions iopts;
    iopts.granularity_bytes = gran;
    double build_secs = 1e30;
    Result<index::BoundaryIndex> idx = Status::Internal("unset");
    for (int r = 0; r < reps; ++r) {
      WallTimer t;
      idx = index::BoundaryIndex::Build(pf->tables(), doc, &pool, iopts);
      build_secs = std::min(build_secs, t.Seconds());
      if (!idx.ok()) {
        std::fprintf(stderr, "build: %s\n", idx.status().ToString().c_str());
        return 1;
      }
    }
    const std::string serialized = idx->Serialize();

    // A server verifies the digest once when it maps the corpus file,
    // then serves every seek against the validated pair.
    if (!idx->Matches(doc, pf->tables()).ok()) {
      std::fprintf(stderr, "index does not match its own document\n");
      return 1;
    }
    index::CursorOptions copts;
    copts.verify_document = false;

    double open_secs = 0, serve_secs = 0;
    for (int i = 0; i < kSeeksPerRow; ++i) {
      uint64_t target = doc.size() * static_cast<uint64_t>(i + 1) /
                        (kSeeksPerRow + 1);
      double best_open = 1e30, best_serve = 1e30;
      for (int r = 0; r < reps; ++r) {
        WallTimer t_open;
        auto cur =
            index::Cursor::OpenAt(*idx, pf->tables(), doc, target, copts);
        best_open = std::min(best_open, t_open.Seconds());
        if (!cur.ok()) {
          std::fprintf(stderr, "seek: %s\n",
                       cur.status().ToString().c_str());
          return 1;
        }
        CountingSink sink;
        WallTimer t_serve;
        auto n = cur->Next(1, &sink);
        best_serve = std::min(best_serve, t_serve.Seconds());
        if (!n.ok()) {
          std::fprintf(stderr, "serve: %s\n",
                       n.status().ToString().c_str());
          return 1;
        }
      }
      open_secs += best_open;
      serve_secs += best_serve;
    }
    const double seek_us = open_secs / kSeeksPerRow * 1e6;
    const double serve_us = (open_secs + serve_secs) / kSeeksPerRow * 1e6;
    auto fixed = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return std::string(buf);
    };
    table.AddRow(
        {Mb(static_cast<double>(gran)),
         std::to_string(idx->entries().size()),
         Mb(static_cast<double>(serialized.size())),
         Mb(static_cast<double>(doc.size()) / build_secs),
         fixed(seek_us), fixed(serve_us), fixed(scan_to_ms),
         std::to_string(
             static_cast<long long>(scan_to_ms * 1e3 / serve_us)) +
             "x"});
  }
  table.Print("index_seek");
  std::printf(
      "(seek_us = OpenAt only; serve1_us = OpenAt + one record; scanto = "
      "serial prefilter of the half-document prefix, the no-index cost of "
      "the same entry point)\n");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
