// Reproduces the Protein Sequence results the paper defers to its
// companion website [27] ("Due to space limitations, we refer to [27] for
// the Protein Sequence results"): SMP characteristics on the third dataset
// of Section V-A. Protein data is the opposite mix of XMark -- few long
// text runs (sequences) under shallow markup -- so shifts are large and
// the inspected fraction drops further.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/protein.h"

namespace smpx::bench {
namespace {

int Run() {
  const std::string& doc = Dataset("protein", ScaleBytes());
  std::printf(
      "== Website results [27]: SMP on the Protein Sequence dataset (%s) "
      "==\n",
      Mb(static_cast<double>(doc.size())).c_str());

  TablePrinter table({"query", "Proj.Size", "Usr+Sys", "Thru",
                      "States(CW+BM)", "oShift", "Jumps", "CharComp"});
  for (const Workload& w : ProteinWorkloads()) {
    auto pf = core::Prefilter::Compile(xmlgen::ProteinDtd(),
                                       MustPaths(w.projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s compile: %s\n", w.id,
                   pf.status().ToString().c_str());
      return 1;
    }
    core::RunStats stats;
    CpuTimer cpu;
    WallTimer wall;
    MemoryInputStream in(doc);
    CountingSink out;
    Status s = pf->Run(&in, &out, &stats);
    if (!s.ok()) {
      std::fprintf(stderr, "%s run: %s\n", w.id, s.ToString().c_str());
      return 1;
    }
    size_t cw = 0;
    size_t bm = 0;
    for (const auto& st : pf->tables().states) {
      if (st.keywords.size() > 1) {
        ++cw;
      } else if (st.keywords.size() == 1) {
        ++bm;
      }
    }
    char states[48];
    std::snprintf(states, sizeof(states), "%zu (%zu+%zu)",
                  pf->num_states(), cw, bm);
    char thru[32];
    std::snprintf(thru, sizeof(thru), "%.0fMB/s",
                  static_cast<double>(doc.size()) / wall.Seconds() /
                      (1 << 20));
    char shift[16];
    std::snprintf(shift, sizeof(shift), "%.2f", stats.AvgShift());
    table.AddRow({w.id, Mb(static_cast<double>(stats.output_bytes)),
                  Secs(cpu.Seconds()), thru, states, shift,
                  Pct(stats.InitialJumpPct()), Pct(stats.CharCompPct())});
  }
  table.Print("protein");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
