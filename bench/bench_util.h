// Shared infrastructure for the paper-reproduction benchmark binaries:
// the query workload catalog (XMark XM1-XM20, MEDLINE M1-M5 with curated
// projection paths and XPath approximations), dataset caching, and
// paper-style table formatting.
//
// Environment knobs:
//   SMPX_SCALE_MB  dataset size in MB (default 24; the paper used 5 GB /
//                  656 MB -- all reported ratios are scale-free and the
//                  paper itself measured deviations < 1% across sizes)
//   SMPX_CSV=1     additionally emit machine-readable CSV rows
//   SMPX_JSON=1    additionally write BENCH_<tag>.json (header + rows) to
//                  the working directory, or to $SMPX_JSON when it names a
//                  directory -- lets CI track the perf trajectory

#ifndef SMPX_BENCH_BENCH_UTIL_H_
#define SMPX_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "paths/projection_path.h"

namespace smpx::bench {

/// One benchmark query: id, human description, projection paths (space
/// separated), and an XPath approximation used by the query-engine
/// substitutes (empty when not applicable).
struct Workload {
  const char* id;
  const char* projection_paths;
  const char* xpath;
  /// Paper-reported reference values for the table columns (negative when
  /// the paper does not report the value); used for the "paper=" columns.
  double paper_char_comp;   // % of characters inspected
  double paper_avg_shift;   // characters
  int paper_states;         // runtime-DFA states
};

/// XMark queries XM1-XM14, XM17-XM20 (Table I). Projection paths follow the
/// path-extraction results of Marian & Simeon [5] for the XMark queries, as
/// the paper prescribes (Example 4 spells out XM13).
const std::vector<Workload>& XmarkWorkloads();

/// MEDLINE queries M1-M5 (Table II).
const std::vector<Workload>& MedlineWorkloads();

/// Protein Sequence workloads (companion-website results [27]).
const std::vector<Workload>& ProteinWorkloads();

/// Dataset size from SMPX_SCALE_MB (default 24 MB).
uint64_t ScaleBytes();

/// True when SMPX_CSV=1.
bool CsvEnabled();

/// Non-empty when SMPX_JSON is set: the directory BENCH_*.json files go to
/// ("." when SMPX_JSON=1).
std::string JsonOutputDir();

/// Generates (and memoizes on disk under build dir) a dataset:
/// kind is "xmark", "medline", or "protein".
const std::string& Dataset(const std::string& kind, uint64_t bytes);

/// Parses projection paths, aborting on error (workloads are static).
std::vector<paths::ProjectionPath> MustPaths(const char* list);

/// Formatting helpers.
std::string Pct(double v);
std::string Mb(double bytes);
std::string Secs(double s);

/// Prints an aligned table: header row then data rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Writes the table to stdout; with CsvEnabled() also CSV lines prefixed
  /// by `csv_tag`.
  void Print(const std::string& csv_tag) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smpx::bench

#endif  // SMPX_BENCH_BENCH_UTIL_H_
