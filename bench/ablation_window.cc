// Ablation: sliding-window capacity sweep. The paper fixes the read buffer
// at 8x the system page size; this bench shows throughput as a function of
// window size (too small = frequent slides and tail rescans, large = flat)
// and verifies the output never changes.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Run() {
  const std::string& doc = Dataset("xmark", ScaleBytes());
  const Workload& w = XmarkWorkloads()[13];  // XM14, output-heavy
  auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(),
                                     MustPaths(w.projection_paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }

  std::printf("== Ablation: window capacity sweep (query %s, %s) ==\n",
              w.id, Mb(static_cast<double>(doc.size())).c_str());
  TablePrinter table({"window", "Usr+Sys", "Thru", "peak-mem"});
  std::string reference;
  for (size_t cap = 1 << 10; cap <= (4u << 20); cap *= 4) {
    core::EngineOptions eopts;
    eopts.window_capacity = cap;
    core::RunStats stats;
    CpuTimer cpu;
    WallTimer wall;
    auto out = pf->RunOnBuffer(doc, &stats, eopts);
    double cpu_s = cpu.Seconds();
    double wall_s = wall.Seconds();
    if (!out.ok()) {
      std::fprintf(stderr, "run: %s\n", out.status().ToString().c_str());
      return 1;
    }
    if (reference.empty()) {
      reference = *out;
    } else if (*out != reference) {
      std::fprintf(stderr, "window size changed the output!\n");
      return 1;
    }
    char thru[32];
    std::snprintf(thru, sizeof(thru), "%.0fMB/s",
                  static_cast<double>(doc.size()) / wall_s / (1 << 20));
    table.AddRow({Mb(static_cast<double>(cap)), Secs(cpu_s), thru,
                  Mb(static_cast<double>(stats.window_peak))});
  }
  table.Print("ablation_window");
  std::printf("\nThe paper's default is 8 pages = 32KB.\n");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
