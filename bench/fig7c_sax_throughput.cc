// Reproduces Fig. 7(c): throughput of bare SAX tokenization (Xerces
// substitute, SAX1 = tokenize only, SAX2 = tokenize + well-formedness)
// vs the *average* SMP prefiltering throughput over the full query set,
// for both XMark and MEDLINE. The paper's claim: SMP prefilters 3-9x
// faster than a SAX parser can even tokenize, so any tokenizing
// prefilterer is bounded away from SMP.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/sax_baseline.h"
#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

double SaxThroughput(const std::string& doc, bool well_formed) {
  WallTimer t;
  auto r = baselines::SaxParse(doc, well_formed);
  if (!r.ok()) {
    std::fprintf(stderr, "sax parse failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return static_cast<double>(doc.size()) / t.Seconds() / (1 << 20);
}

double AvgSmpThroughput(const dtd::Dtd& dtd,
                        const std::vector<Workload>& workloads,
                        const std::string& doc, double* min_thru,
                        double* max_thru) {
  double sum = 0;
  *min_thru = 1e18;
  *max_thru = 0;
  for (const Workload& w : workloads) {
    auto pf = core::Prefilter::Compile(dtd, MustPaths(w.projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s compile failed: %s\n", w.id,
                   pf.status().ToString().c_str());
      std::exit(1);
    }
    WallTimer t;
    MemoryInputStream in(doc);
    CountingSink out;
    Status s = pf->Run(&in, &out, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n", w.id,
                   s.ToString().c_str());
      std::exit(1);
    }
    double thru = static_cast<double>(doc.size()) / t.Seconds() / (1 << 20);
    sum += thru;
    *min_thru = std::min(*min_thru, thru);
    *max_thru = std::max(*max_thru, thru);
  }
  return sum / static_cast<double>(workloads.size());
}

int Run() {
  std::printf("== Fig. 7(c): SAX tokenization vs average SMP prefiltering "
              "throughput ==\n");
  TablePrinter table({"dataset", "Xerces-SAX1", "Xerces-SAX2", "avg SMP",
                      "min SMP", "max SMP", "SMP/SAX2"});
  struct Case {
    const char* name;
    const char* dataset;
    const std::vector<Workload>* workloads;
    dtd::Dtd dtd;
  };
  std::vector<Case> cases;
  cases.push_back({"XMARK", "xmark", &XmarkWorkloads(), xmlgen::XmarkDtd()});
  cases.push_back(
      {"MEDLINE", "medline", &MedlineWorkloads(), xmlgen::MedlineDtd()});
  for (Case& c : cases) {
    const std::string& doc = Dataset(c.dataset, ScaleBytes());
    double sax1 = SaxThroughput(doc, false);
    double sax2 = SaxThroughput(doc, true);
    double lo = 0;
    double hi = 0;
    double avg = AvgSmpThroughput(c.dtd, *c.workloads, doc, &lo, &hi);
    auto f = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0fMB/s", v);
      return std::string(buf);
    };
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.1fx", avg / sax2);
    table.AddRow({c.name, f(sax1), f(sax2), f(avg), f(lo), f(hi), ratio});
  }
  table.Print("fig7c");
  std::printf("\nPaper shape: SMP 3-9x above Xerces on both datasets.\n");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
