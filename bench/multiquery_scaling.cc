// Multi-query scaling benchmark + regression gate.
//
// Two sections:
//
//  1. Catalog scaling (informative): growing prefixes of the XMark
//     workload catalog (XM1..XM20) compiled into one shared product DFA
//     and prefiltered ONCE per mix, against the baseline of running every
//     query as its own independent serial pass. The paper's catalog
//     queries jointly cover most of the document, so the one-pass win
//     saturates around 2x here -- the table documents that honestly.
//
//  2. Multi-tenant gate (enforced): a 39-query mix of selective leaf
//     projections (per-region item fields, person contact fields,
//     category names) -- the many-subscribers shape multi-query
//     prefiltering exists for. Each independent pass re-scans the whole
//     document to extract a sliver; the one-pass run amortizes the scan
//     across all subscribers. The mix must beat the summed separate runs
//     by at least SMPX_MQ_MIN_SPEEDUP (default 5x), and EVERY query's
//     one-pass projection (in both sections) must be byte-identical to
//     its independent run, or the gate fails (exit 1).
//
// Columns: queries in the mix, unique components after equivalence
// collapse, product-DFA states, summed independent time, one-pass time,
// speedup, and the byte-identity verdict.
//
// Knobs:
//   SMPX_SCALE_MB          document size (default 24)
//   SMPX_REPS              best-of-N timed runs per mode (default 3)
//   SMPX_MQ_MIN_SPEEDUP    required speedup on the multi-tenant mix
//                          (default 5)
//   SMPX_CSV=1 / SMPX_JSON=1  machine-readable output (bench_util)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "query/multiquery.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  double parsed = std::atof(v);
  return parsed > 0 ? parsed : fallback;
}

// Selective leaf projections over the XMark DTD: six regions x five item
// fields, person contact/address fields, and category names. 39 queries,
// each touching a sliver of the document.
std::vector<std::string> MultiTenantMix() {
  std::vector<std::string> mix;
  for (const char* region :
       {"africa", "asia", "australia", "europe", "namerica", "samerica"}) {
    for (const char* field :
         {"name", "location", "quantity", "payment", "shipping"}) {
      mix.push_back(std::string("/site/regions/") + region + "/item/" +
                    field + "#");
    }
  }
  for (const char* field :
       {"phone", "emailaddress", "homepage", "creditcard"}) {
    mix.push_back(std::string("/site/people/person/") + field + "#");
  }
  for (const char* field : {"city", "country", "street", "zipcode"}) {
    mix.push_back(std::string("/site/people/person/address/") + field + "#");
  }
  mix.push_back("/site/categories/category/name#");
  return mix;
}

struct MixResult {
  double indep_s = 0.0;
  double onepass_s = 0.0;
  bool identical = true;
  int num_unique = 0;
  size_t states = 0;
  bool ok = false;
};

// Times a mix both ways (best of `reps`), byte-comparing every one-pass
// projection against its independent serial run on every rep. Compile
// time is amortized out of both sides: the engine compiles a query once
// and reuses it across documents either way.
MixResult RunMix(const std::string& doc,
                 const std::vector<std::vector<paths::ProjectionPath>>& queries,
                 int reps) {
  MixResult result;
  const size_t k = queries.size();

  std::vector<core::Prefilter> singles;
  for (size_t q = 0; q < k; ++q) {
    auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(), queries[q]);
    if (!pf.ok()) {
      std::fprintf(stderr, "compile query %zu failed: %s\n", q,
                   pf.status().ToString().c_str());
      return result;
    }
    singles.push_back(std::move(*pf));
  }
  std::vector<std::string> expected(k);
  for (int r = 0; r < reps; ++r) {
    double total = 0.0;
    for (size_t q = 0; q < k; ++q) {
      WallTimer timer;
      auto out = singles[q].RunOnBuffer(doc);
      total += timer.Seconds();
      if (!out.ok()) {
        std::fprintf(stderr, "independent run %zu failed: %s\n", q,
                     out.status().ToString().c_str());
        return result;
      }
      expected[q] = std::move(*out);
    }
    if (result.indep_s == 0.0 || total < result.indep_s) {
      result.indep_s = total;
    }
  }

  auto mq = query::MultiQuery::Compile(xmlgen::XmarkDtd(), queries);
  if (!mq.ok()) {
    std::fprintf(stderr, "multi-query compile (%zu queries) failed: %s\n", k,
                 mq.status().ToString().c_str());
    return result;
  }
  result.num_unique = mq->num_unique();
  result.states = mq->tables().states.size();
  for (int r = 0; r < reps; ++r) {
    std::vector<StringSink> sinks(k);
    std::vector<OutputSink*> ptrs;
    for (StringSink& s : sinks) ptrs.push_back(&s);
    WallTimer timer;
    Status s = mq->RunOnBuffer(doc, ptrs, nullptr, nullptr);
    const double secs = timer.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "one-pass run (%zu queries) failed: %s\n", k,
                   s.ToString().c_str());
      return result;
    }
    if (result.onepass_s == 0.0 || secs < result.onepass_s) {
      result.onepass_s = secs;
    }
    for (size_t q = 0; q < k; ++q) {
      if (sinks[q].str() != expected[q]) result.identical = false;
    }
  }
  result.ok = true;
  return result;
}

int Run() {
  const uint64_t scale = ScaleBytes();
  const int reps = static_cast<int>(EnvU64("SMPX_REPS", 3));
  const double min_speedup = EnvDouble("SMPX_MQ_MIN_SPEEDUP", 5.0);
  const std::string& doc = Dataset("xmark", scale);
  const std::vector<Workload>& catalog = XmarkWorkloads();

  std::printf(
      "== multi-query scaling (xmark %s, catalog of %zu queries, best of "
      "%d) ==\n",
      Mb(static_cast<double>(doc.size())).c_str(), catalog.size(), reps);

  TablePrinter table({"mix", "queries", "unique", "states", "indep_s",
                      "onepass_s", "speedup", "identical"});
  bool all_identical = true;

  // Section 1: catalog prefixes (informative).
  for (size_t k : std::vector<size_t>{1, 2, 4, 8, catalog.size()}) {
    if (k > catalog.size()) continue;
    std::vector<std::vector<paths::ProjectionPath>> queries;
    for (size_t q = 0; q < k; ++q) {
      queries.push_back(MustPaths(catalog[q].projection_paths));
    }
    MixResult r = RunMix(doc, queries, reps);
    if (!r.ok) return 1;
    all_identical = all_identical && r.identical;
    table.AddRow({"catalog", std::to_string(k), std::to_string(r.num_unique),
                  std::to_string(r.states), Fmt("%.3f", r.indep_s),
                  Fmt("%.3f", r.onepass_s),
                  Fmt("%.2fx", r.indep_s / r.onepass_s),
                  r.identical ? "yes" : "NO"});
  }

  // Section 2: the gated multi-tenant mix of selective leaf queries.
  std::vector<std::vector<paths::ProjectionPath>> tenant_queries;
  for (const std::string& q : MultiTenantMix()) {
    tenant_queries.push_back(MustPaths(q.c_str()));
  }
  MixResult tenant = RunMix(doc, tenant_queries, reps);
  if (!tenant.ok) return 1;
  all_identical = all_identical && tenant.identical;
  const double tenant_speedup =
      tenant.onepass_s > 0 ? tenant.indep_s / tenant.onepass_s : 0.0;
  table.AddRow({"tenant", std::to_string(tenant_queries.size()),
                std::to_string(tenant.num_unique),
                std::to_string(tenant.states), Fmt("%.3f", tenant.indep_s),
                Fmt("%.3f", tenant.onepass_s), Fmt("%.2fx", tenant_speedup),
                tenant.identical ? "yes" : "NO"});
  table.Print("multiquery_scaling");

  if (!all_identical) {
    std::fprintf(stderr,
                 "multiquery gate FAILED: a one-pass projection diverged "
                 "from its independent single-query run\n");
    return 1;
  }
  if (tenant_speedup < min_speedup) {
    std::fprintf(stderr,
                 "multiquery gate FAILED: %zu-query multi-tenant mix "
                 "achieved only %.2fx over separate runs (need >= %.2fx)\n",
                 tenant_queries.size(), tenant_speedup, min_speedup);
    return 1;
  }
  std::printf(
      "multiquery gate ok: %zu-query multi-tenant mix %.2fx over separate "
      "runs (>= %.2fx required), all projections byte-identical\n",
      tenant_queries.size(), tenant_speedup, min_speedup);
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
