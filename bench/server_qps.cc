// smpxd serving benchmark: queries per second and tail latency of the
// projection server under a mixed concurrent workload, the ROADMAP
// "serving" number (QPS + p99) for the long-lived daemon.
//
// An in-process Server (same code path as the smpxd binary, minus
// process startup) listens on a unix socket; N client threads hammer it
// with the three request shapes:
//
//   seek1    open a cursor at a random record ordinal, stream 1 record
//            (the pagination hot path; index + checkpoint resume)
//   resume1  restore the client-held token from the previous response
//            and stream 1 more record (the stateless load-balancer path)
//   project  stream the whole projected document (bulk transfer)
//
// Rows report per-op QPS and p50/p99 latency over all client threads.
//
//   SMPX_SCALE_MB=24 ./bench_server_qps
//   SMPX_CLIENTS=8      concurrent connections (default 8)
//   SMPX_REQS=400       requests per client for the cursor ops
//   SMPX_CSV=1 / SMPX_JSON=1   machine-readable output

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/server.h"
#include "xmlgen/medline.h"

namespace smpx::bench {
namespace {

constexpr const char* kPaths =
    "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
    "/MedlineCitationSet/MedlineCitation/DateCompleted#";

int EnvInt(const char* name, int def) {
  const char* env = std::getenv(name);
  int v = env != nullptr ? std::atoi(env) : 0;
  return v > 0 ? v : def;
}

struct OpResult {
  std::vector<double> latencies_us;
  uint64_t bytes = 0;
  uint64_t errors = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t i = static_cast<size_t>(p * (v->size() - 1));
  return (*v)[i];
}

int Run() {
  const uint64_t bytes = ScaleBytes();
  const std::string& doc = Dataset("medline", bytes);
  const std::string doc_path = "bench_server_qps_doc.xml";
  const std::string sock_path = "bench_server_qps.sock";
  Status w = WriteStringToFile(doc_path, doc);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  const std::string dtd_text = xmlgen::MedlineDtdText();

  server::ServerOptions sopts;
  sopts.unix_path = sock_path;
  sopts.cache.index_granularity = 1;
  server::Server srv(sopts);
  Status s = srv.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }

  const int clients = EnvInt("SMPX_CLIENTS", 8);
  const int reqs = EnvInt("SMPX_REQS", 400);

  server::Request base;
  base.dtd_text = dtd_text;
  base.paths_text = kPaths;
  base.doc_path = doc_path;

  // Warm the cache (tables compile + index build) outside the timed
  // region: steady-state serving is the number of interest.
  {
    auto c = server::Client::Connect("unix:" + sock_path);
    if (!c.ok()) {
      std::fprintf(stderr, "connect: %s\n", c.status().ToString().c_str());
      return 1;
    }
    server::Request warm = base;
    warm.op = server::Op::kSeek;
    warm.by_record = true;
    warm.target = 0;
    warm.count = 1;
    auto t = c->Call(warm, nullptr);
    if (!t.ok()) {
      std::fprintf(stderr, "warmup: %s\n", t.status().ToString().c_str());
      return 1;
    }
  }
  // Total records, for spreading seek targets: ask the index via a drain
  // trailer on a cheap seek to the far end.
  uint64_t total_records = 0;
  {
    auto c = server::Client::Connect("unix:" + sock_path);
    server::Request probe = base;
    probe.op = server::Op::kSeek;
    probe.target = doc.size();
    auto t = c->Call(probe, nullptr);
    if (t.ok()) total_records = t->record_position;
  }
  if (total_records == 0) total_records = 1;

  TablePrinter table({"op", "clients", "reqs", "qps", "p50_us", "p99_us",
                      "MB/s"});

  auto run_op = [&](const char* name, auto make_req, int per_client) {
    std::vector<OpResult> results(static_cast<size_t>(clients));
    WallTimer wall;
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        OpResult& r = results[static_cast<size_t>(t)];
        auto c = server::Client::Connect("unix:" + sock_path);
        if (!c.ok()) {
          r.errors = static_cast<uint64_t>(per_client);
          return;
        }
        uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
        std::string token;
        for (int i = 0; i < per_client; ++i) {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          server::Request req = make_req(rng, &token);
          WallTimer lt;
          auto resp = c->Call(req, nullptr);
          if (!resp.ok()) {
            ++r.errors;
            token.clear();
            continue;
          }
          r.latencies_us.push_back(lt.Seconds() * 1e6);
          r.bytes += resp->emitted_bytes;
          token = resp->at_end ? std::string() : resp->token;
        }
      });
    }
    for (auto& th : threads) th.join();
    double secs = wall.Seconds();
    OpResult all;
    for (auto& r : results) {
      all.latencies_us.insert(all.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
      all.bytes += r.bytes;
      all.errors += r.errors;
    }
    if (all.errors > 0) {
      std::fprintf(stderr, "%s: %llu errors\n", name,
                   static_cast<unsigned long long>(all.errors));
    }
    auto fixed = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", v);
      return std::string(buf);
    };
    table.AddRow({name, std::to_string(clients),
                  std::to_string(all.latencies_us.size()),
                  fixed(all.latencies_us.size() / secs),
                  fixed(Percentile(&all.latencies_us, 0.50)),
                  fixed(Percentile(&all.latencies_us, 0.99)),
                  fixed(static_cast<double>(all.bytes) / secs / 1e6)});
  };

  run_op(
      "seek1",
      [&](uint64_t rng, std::string*) {
        server::Request req = base;
        req.op = server::Op::kSeek;
        req.by_record = true;
        req.target = rng % total_records;
        req.count = 1;
        return req;
      },
      reqs);
  run_op(
      "resume1",
      [&](uint64_t rng, std::string* token) {
        server::Request req = base;
        if (token->empty()) {
          req.op = server::Op::kSeek;
          req.by_record = true;
          req.target = rng % total_records;
        } else {
          req.op = server::Op::kResume;
          req.token = *token;
        }
        req.count = 1;
        return req;
      },
      reqs);
  run_op(
      "project",
      [&](uint64_t, std::string*) {
        server::Request req = base;
        req.op = server::Op::kProject;
        return req;
      },
      std::max(2, reqs / 50));

  table.Print("server_qps");
  std::printf(
      "(seek1 = open cursor at random record + stream 1; resume1 = restore "
      "client token + stream 1; project = full projected document)\n");

  srv.Stop();
  std::remove(doc_path.c_str());
  std::remove(sock_path.c_str());
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
