// Ablation: swap the frontier search algorithm inside the full prefilter
// (the paper fixes BM/CW; DESIGN.md calls out the choice). Commentz-Walter
// vs Set-Horspool vs Aho-Corasick vs a memchr('<') scan vs naive, across
// representative XMark and MEDLINE queries -- runtime, characters
// inspected, and average shift.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Run() {
  struct Case {
    const char* dataset;
    const Workload* w;
    dtd::Dtd dtd;
  };
  std::vector<Case> cases;
  cases.push_back({"xmark", &XmarkWorkloads()[4], xmlgen::XmarkDtd()});
  cases.push_back({"xmark", &XmarkWorkloads()[12], xmlgen::XmarkDtd()});
  cases.push_back({"medline", &MedlineWorkloads()[1], xmlgen::MedlineDtd()});

  std::printf("== Ablation: frontier search algorithm inside the prefilter "
              "==\n");
  TablePrinter table({"query", "algo", "Usr+Sys", "Thru", "CharComp",
                      "oShift"});
  const strmatch::Algorithm algos[] = {
      strmatch::Algorithm::kAuto,        strmatch::Algorithm::kSetHorspool,
      strmatch::Algorithm::kAhoCorasick, strmatch::Algorithm::kMemchr,
      strmatch::Algorithm::kNaive,
  };
  for (Case& c : cases) {
    const std::string& doc = Dataset(c.dataset, ScaleBytes());
    std::string reference;
    for (strmatch::Algorithm algo : algos) {
      core::CompileOptions copts;
      copts.tables.algorithm = algo;
      auto pf = core::Prefilter::Compile(c.dtd,
                                         MustPaths(c.w->projection_paths),
                                         copts);
      if (!pf.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     pf.status().ToString().c_str());
        return 1;
      }
      core::RunStats stats;
      CpuTimer cpu;
      WallTimer wall;
      auto out = pf->RunOnBuffer(doc, &stats);
      double cpu_s = cpu.Seconds();
      double wall_s = wall.Seconds();
      if (!out.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     out.status().ToString().c_str());
        return 1;
      }
      if (reference.empty()) {
        reference = *out;
      } else if (*out != reference) {
        std::fprintf(stderr, "%s/%s: output differs across algorithms!\n",
                     c.w->id, strmatch::AlgorithmName(algo).data());
        return 1;
      }
      char thru[32];
      std::snprintf(thru, sizeof(thru), "%.0fMB/s",
                    static_cast<double>(doc.size()) / wall_s / (1 << 20));
      char shift[16];
      std::snprintf(shift, sizeof(shift), "%.2f", stats.AvgShift());
      std::string algo_name(strmatch::AlgorithmName(algo));
      if (algo == strmatch::Algorithm::kAuto) algo_name = "BM/CW (paper)";
      table.AddRow({c.w->id, algo_name, Secs(cpu_s), thru,
                    Pct(stats.CharCompPct()), shift});
    }
  }
  table.Print("ablation_frontier");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
