// Scaling-regression gate for intra-document sharding: runs the real smpx
// CLI as subprocesses over one generated huge document -- serial, then
// sharded at SMPX_GATE_THREADS -- and fails (exit 1) if the sharded run is
// not at least SMPX_MIN_SPEEDUP times faster, or if its output is not
// byte-identical to the serial reference. This is the CI teeth for the
// early-kill speculation work: before it, the wave ran every behavior
// class of every segment to completion and a 4-thread run could come out
// SLOWER than serial; the gate pins the recovered scaling next to the RSS
// tripwire so it cannot quietly regress.
//
// The workload is the selective bulk-scaling projection (star-rooted
// MEDLINE, a few small fields per citation): boundary speculation hits on
// every segment and the output stays small, so wall-clock is dominated by
// the prefilter wave itself -- exactly the thing the gate guards.
//
// On hosts with fewer than SMPX_GATE_THREADS hardware threads the gate
// SKIPS (exit 0): a machine that cannot run the wave in parallel measures
// scheduler fairness, not scaling (single-CPU regressions are still
// caught, by the work-accounting assertions in parallel_test and the
// wavex column of bench_parallel_scaling).
//
// Knobs:
//   SMPX_CLI           path to the smpx binary (default "./smpx")
//   SMPX_DATASET       medline (default) or xmark
//   SMPX_SCALE_MB      document size (default 64; CI uses 256)
//   SMPX_GATE_THREADS  sharded thread count under test (default 4)
//   SMPX_MIN_SPEEDUP   required serial/sharded ratio (default 2.0)
//   SMPX_REPS          best-of-N child runs per mode (default 3), after
//                      one untimed warm-up that faults the document into
//                      the page cache
//   SMPX_CSV=1 / SMPX_JSON=1  machine-readable output (bench_util)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SMPX_GATE_POSIX 1
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

#ifndef SMPX_GATE_POSIX

int main() {
  std::fprintf(stderr, "shard_speedup_gate needs POSIX fork/exec; skipping\n");
  return 0;
}

#else

namespace smpx::bench {
namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string EnvOr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? v : fallback;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  double parsed = std::atof(v);
  return parsed > 0 ? parsed : fallback;
}

/// Runs the CLI with `args` (argv[0] excluded) and waits. Returns false on
/// spawn failure or nonzero exit.
bool RunChild(const std::string& cli, const std::vector<std::string>& args) {
  std::vector<char*> argv;
  std::string cli_copy = cli;
  argv.push_back(cli_copy.data());
  std::vector<std::string> copies = args;
  for (std::string& a : copies) argv.push_back(a.data());
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv");
    std::_Exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    return false;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "child %s exited abnormally (status %d)\n",
                 cli.c_str(), status);
    return false;
  }
  return true;
}

/// Best-of-N wall-clock over child runs; 0.0 on any child failure.
double BestChildSeconds(int reps, const std::string& cli,
                        const std::vector<std::string>& args) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    if (!RunChild(cli, args)) return 0.0;
    double s = timer.Seconds();
    if (best == 0 || s < best) best = s;
  }
  return best;
}

/// Chunked byte comparison so a multi-hundred-MB reference never lives in
/// memory here either.
bool FilesIdentical(const std::string& a, const std::string& b) {
  auto fa = FileInputStream::Open(a);
  auto fb = FileInputStream::Open(b);
  if (!fa.ok() || !fb.ok()) return false;
  std::vector<char> ba(1 << 20), bb(1 << 20);
  for (;;) {
    auto na = (*fa)->Read(ba.data(), ba.size());
    auto nb = (*fb)->Read(bb.data(), bb.size());
    if (!na.ok() || !nb.ok() || *na != *nb) return false;
    if (*na == 0) return true;
    if (std::memcmp(ba.data(), bb.data(), *na) != 0) return false;
  }
}

int Run() {
  const int gate_threads =
      static_cast<int>(EnvU64("SMPX_GATE_THREADS", 4));
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < static_cast<unsigned>(gate_threads)) {
    std::printf(
        "shard_speedup_gate: SKIP -- %u hardware threads < %d required "
        "(scaling cannot be measured here)\n",
        hw, gate_threads);
    return 0;
  }

  const std::string cli = EnvOr("SMPX_CLI", "./smpx");
  if (::access(cli.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "smpx binary '%s' not found/executable; set SMPX_CLI\n",
                 cli.c_str());
    return 1;
  }
  const std::string dataset = EnvOr("SMPX_DATASET", "medline");
  const uint64_t scale = ScaleBytes();
  const double min_speedup = EnvDouble("SMPX_MIN_SPEEDUP", 2.0);
  const int reps = static_cast<int>(EnvU64("SMPX_REPS", 3));

  // The selective bulk-scaling projection: a few small fields per record,
  // so the run is prefilter-bound rather than output-bound.
  std::string dtd_text;
  std::string paths;
  if (dataset == "xmark") {
    dtd_text = xmlgen::XmarkDtdText();
    paths = "/site/people/person@ /site/people/person/name#";
  } else {
    dtd_text = xmlgen::MedlineDtdText();
    paths = "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
            "/MedlineCitationSet/MedlineCitation/DateCompleted#";
  }

  const std::string dtd_path = "speedup_gate." + dataset + ".dtd";
  const std::string doc_path = "speedup_gate." + dataset + ".xml";
  const std::string ref_path = "speedup_gate." + dataset + ".ref.xml";
  const std::string out_path = "speedup_gate." + dataset + ".out.xml";
  if (!WriteStringToFile(dtd_path, dtd_text).ok()) {
    std::fprintf(stderr, "cannot write %s\n", dtd_path.c_str());
    return 1;
  }
  {
    const std::string& doc = Dataset(dataset, scale);
    if (!WriteStringToFile(doc_path, doc).ok()) {
      std::fprintf(stderr, "cannot write %s\n", doc_path.c_str());
      return 1;
    }
  }

  std::printf(
      "== shard speedup gate (%s %s, %d threads, require >= %.2fx, "
      "best of %d) ==\n",
      dataset.c_str(), Mb(static_cast<double>(scale)).c_str(), gate_threads,
      min_speedup, reps);

  const std::vector<std::string> serial_args = {
      "--dtd", dtd_path, "--paths", paths, doc_path, ref_path};
  const std::vector<std::string> shard_args = {
      "--dtd",     dtd_path, "--paths", paths,
      "--threads", std::to_string(gate_threads),
      doc_path,    out_path};

  // Warm-up: fault the document into the page cache so the serial
  // reference is not charged the first-touch disk cost.
  if (!RunChild(cli, serial_args)) return 1;

  const double serial_s = BestChildSeconds(reps, cli, serial_args);
  const double shard_s = BestChildSeconds(reps, cli, shard_args);
  if (serial_s == 0 || shard_s == 0) return 1;
  const bool identical = FilesIdentical(ref_path, out_path);
  const double speedup = serial_s / shard_s;
  const bool ok = identical && speedup >= min_speedup;

  TablePrinter table({"threads", "serial_s", "shard_s", "speedup",
                      "required", "identical", "ok"});
  table.AddRow({std::to_string(gate_threads), Fmt("%.3f", serial_s),
                Fmt("%.3f", shard_s), Fmt("%.2fx", speedup),
                Fmt("%.2fx", min_speedup), identical ? "yes" : "NO",
                ok ? "yes" : "NO"});
  table.Print("shard_speedup_gate");

  std::remove(dtd_path.c_str());
  std::remove(doc_path.c_str());
  std::remove(ref_path.c_str());
  std::remove(out_path.c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "speedup gate FAILED: %d-thread sharded run %s (need >= "
                 "%.2fx%s)\n",
                 gate_threads,
                 identical ? Fmt("achieved only %.2fx", speedup).c_str()
                           : "diverged from the serial output",
                 min_speedup, identical ? "" : ", byte-identical");
    return 1;
  }
  std::printf("speedup gate ok: %.2fx at %d threads (>= %.2fx required), "
              "outputs byte-identical\n",
              speedup, gate_threads, min_speedup);
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }

#endif  // SMPX_GATE_POSIX
