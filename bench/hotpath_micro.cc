// Hot-path micro-benchmark: the reworked per-tag pipeline versus the seed
// baseline, layer by layer, on XMark generator output.
//
//   legacy    std::map tag dispatch + per-byte tag scanning + classical
//             BM/CW scan loops (TableOptions::use_map_dispatch +
//             disable_matcher_skip_loops) -- the seed hot path (prolog
//             skipping, a once-per-document cost, is shared).
//   interned  interned tag dispatch + bulk span scanning, matchers still
//             classical (isolates the dispatch/scan layers).
//   scalar/swar/simd
//             the full default pipeline (interned dispatch + span scanning
//             + matcher skip loops), measured under a forced structural-
//             classification tier (simd::SetIsa): per-byte scalar kernels,
//             8-byte SWAR word kernels, and the best vector tier the host
//             offers (the `isa` column names it). Same code path, same
//             output, same stats -- the columns isolate the kernel tier.
//   shared    full simd pipeline, but with the per-state keyword vectors
//             collapsed into one interner-wide vocabulary (TableOptions::
//             shared_vocabulary) -- answers whether the interner could
//             REPLACE the paper's per-state frontier vectors now that
//             batching amortizes table builds. It cannot: the global
//             vocabulary shortens BM/CW shifts and floods selective
//             states with no-transition candidates (see the shared/full
//             column), which is why both structures stay.
//   plane     full simd pipeline with the shared structural bitmap plane
//             enabled (TableOptions::use_bitmap_plane = true, default
//             off): scans bit-walk the memoized plane instead of
//             re-running the per-call kernels. The `plane` column
//             (default-pipeline time / plane time) is the
//             classify-once-consume-everywhere ratio at the same kernel
//             tier -- below 1.0 means the per-call kernels win, which
//             on XMark they do (see README "Measured ceiling"): each
//             consumer sweeps a disjoint monotonic region, so there is
//             no redundant classification for the plane to delete.
//
// Reports tags/sec and bytes/sec per workload plus speedups over legacy
// and the simd/swar tier ratio; the outputs of all paths (and all tiers)
// are cross-checked byte-for-byte before timing.
//
//   SMPX_SCALE_MB=64 ./bench_hotpath_micro
//   SMPX_REPS=5      best-of-N timing (default 3)
//   SMPX_CSV=1 / SMPX_JSON=1 for machine-readable output
//   SMPX_FORCE_ISA=  caps the tier the `simd` column selects

#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "simd/simd.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Reps() {
  const char* env = std::getenv("SMPX_REPS");
  int reps = env != nullptr ? std::atoi(env) : 0;
  return reps > 0 ? reps : 3;
}

struct Measurement {
  double seconds = 0;
  uint64_t tags = 0;
  uint64_t bytes = 0;

  double TagsPerSec() const { return static_cast<double>(tags) / seconds; }
  double MbPerSec() const {
    return static_cast<double>(bytes) / (1 << 20) / seconds;
  }
};

Measurement Measure(const core::Prefilter& pf, const std::string& doc,
                    int reps) {
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    MemoryInputStream in(doc);
    CountingSink sink;
    core::RunStats stats;
    WallTimer timer;
    Status s = pf.Run(&in, &sink, &stats);
    double seconds = timer.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    if (best.seconds == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.tags = stats.matches;
      best.bytes = stats.input_bytes;
    }
  }
  return best;
}

std::string Rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
  }
  return buf;
}

std::string Fmt(const char* fmt, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

core::Prefilter MustCompile(const Workload& w,
                            const core::CompileOptions& opts) {
  auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(),
                                     MustPaths(w.projection_paths), opts);
  if (!pf.ok()) {
    std::fprintf(stderr, "%s: compile failed: %s\n", w.id,
                 pf.status().ToString().c_str());
    std::abort();
  }
  return std::move(*pf);
}

int Run() {
  const uint64_t bytes = ScaleBytes();
  const std::string& doc = Dataset("xmark", bytes);
  const int reps = Reps();
  const simd::Isa best = simd::ActiveIsa();
  const char* isa = simd::IsaName(best);
  std::printf(
      "== Hot path: legacy (seed) vs interned dispatch + span scan vs "
      "full pipeline under scalar/swar/%s kernels (XMark %s, best of %d) "
      "==\n",
      isa, Mb(static_cast<double>(doc.size())).c_str(), reps);

  TablePrinter table({"query", "tags/s(legacy)", "tags/s(interned)",
                      "tags/s(scalar)", "tags/s(swar)", "tags/s(simd)",
                      "tags/s(plane)", "tags/s(shared)", "full/legacy",
                      "simd/swar", "plane", "shared/full", "MB/s(simd)",
                      "MB/s(plane)", "isa", "tags"});

  double worst_full = 0;
  double geomean_full = 1;
  double geomean_tier = 1;
  double worst_tier = 0;
  double geomean_shared = 1;
  double geomean_plane = 1;
  double worst_plane = 0;
  int rows = 0;
  for (const Workload& w : XmarkWorkloads()) {
    core::CompileOptions legacy_opts;
    legacy_opts.tables.use_map_dispatch = true;
    legacy_opts.tables.disable_matcher_skip_loops = true;
    core::CompileOptions interned_opts;
    interned_opts.tables.disable_matcher_skip_loops = true;
    core::CompileOptions full_opts;
    core::CompileOptions plane_opts;
    plane_opts.tables.use_bitmap_plane = true;
    core::CompileOptions shared_opts;
    shared_opts.tables.shared_vocabulary = true;

    core::Prefilter legacy = MustCompile(w, legacy_opts);
    core::Prefilter interned = MustCompile(w, interned_opts);
    core::Prefilter full = MustCompile(w, full_opts);
    core::Prefilter plane = MustCompile(w, plane_opts);
    core::Prefilter shared = MustCompile(w, shared_opts);

    // Cross-check before timing: no path -- and no kernel tier -- may
    // change the output.
    auto out_legacy = legacy.RunOnBuffer(doc);
    auto out_interned = interned.RunOnBuffer(doc);
    auto out_full = full.RunOnBuffer(doc);
    auto out_plane = plane.RunOnBuffer(doc);
    auto out_shared = shared.RunOnBuffer(doc);
    simd::SetIsa(simd::Isa::kScalar);
    auto out_scalar = full.RunOnBuffer(doc);
    simd::SetIsa(simd::Isa::kSwar);
    auto out_swar = full.RunOnBuffer(doc);
    simd::SetIsa(best);
    if (!out_legacy.ok() || !out_interned.ok() || !out_full.ok() ||
        !out_plane.ok() || !out_shared.ok() || !out_scalar.ok() ||
        !out_swar.ok() || *out_legacy != *out_interned ||
        *out_legacy != *out_full || *out_legacy != *out_plane ||
        *out_legacy != *out_shared || *out_legacy != *out_scalar ||
        *out_legacy != *out_swar) {
      std::fprintf(stderr, "%s: hot-path variants disagree!\n", w.id);
      return 1;
    }

    Measurement m_legacy = Measure(legacy, doc, reps);
    Measurement m_interned = Measure(interned, doc, reps);
    simd::SetIsa(simd::Isa::kScalar);
    Measurement m_scalar = Measure(full, doc, reps);
    simd::SetIsa(simd::Isa::kSwar);
    Measurement m_swar = Measure(full, doc, reps);
    simd::SetIsa(best);
    Measurement m_simd = Measure(full, doc, reps);
    Measurement m_plane = Measure(plane, doc, reps);
    Measurement m_shared = Measure(shared, doc, reps);
    double speedup_full = m_legacy.seconds / m_simd.seconds;
    double speedup_tier = m_swar.seconds / m_simd.seconds;
    double speedup_plane = m_simd.seconds / m_plane.seconds;
    double ratio_shared = m_simd.seconds / m_shared.seconds;
    if (rows == 0 || speedup_full < worst_full) worst_full = speedup_full;
    if (rows == 0 || speedup_tier < worst_tier) worst_tier = speedup_tier;
    if (rows == 0 || speedup_plane < worst_plane) worst_plane = speedup_plane;
    geomean_full *= speedup_full;
    geomean_tier *= speedup_tier;
    geomean_shared *= ratio_shared;
    geomean_plane *= speedup_plane;
    ++rows;

    table.AddRow({w.id, Rate(m_legacy.TagsPerSec()),
                  Rate(m_interned.TagsPerSec()), Rate(m_scalar.TagsPerSec()),
                  Rate(m_swar.TagsPerSec()), Rate(m_simd.TagsPerSec()),
                  Rate(m_plane.TagsPerSec()), Rate(m_shared.TagsPerSec()),
                  Fmt("%.2fx", speedup_full), Fmt("%.2fx", speedup_tier),
                  Fmt("%.2fx", speedup_plane), Fmt("%.2fx", ratio_shared),
                  Fmt("%.1f", m_simd.MbPerSec()),
                  Fmt("%.1f", m_plane.MbPerSec()), isa,
                  std::to_string(m_simd.tags)});
  }
  table.Print("hotpath_micro");
  std::printf(
      "full pipeline vs seed: worst %.2fx, geomean %.2fx; %s kernels vs "
      "swar skip loops: worst %.2fx, geomean %.2fx; bitmap plane vs "
      "per-call kernels (same tier): worst %.2fx, geomean %.2fx; "
      "shared-vocabulary ablation vs per-state keyword vectors: geomean "
      "%.2fx (below 1.0 means the per-state vectors earn their build "
      "cost)\n",
      worst_full, rows > 0 ? std::pow(geomean_full, 1.0 / rows) : 0.0, isa,
      worst_tier, rows > 0 ? std::pow(geomean_tier, 1.0 / rows) : 0.0,
      worst_plane, rows > 0 ? std::pow(geomean_plane, 1.0 / rows) : 0.0,
      rows > 0 ? std::pow(geomean_shared, 1.0 / rows) : 0.0);
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
