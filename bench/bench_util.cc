#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "common/io.h"
#include "xmlgen/medline.h"
#include "xmlgen/protein.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {

// Projection paths follow the extraction algorithm of Marian & Simeon [5]
// applied to the XMark query texts (the paper's Example 4 spells out XM13;
// the others are derived the same way). Paper reference numbers are the
// Table I / Table II values for the 5 GB XMark / 656 MB MEDLINE inputs.
const std::vector<Workload>& XmarkWorkloads() {
  static const std::vector<Workload>* w = new std::vector<Workload>{
      {"XM1",
       "/site/people/person@ /site/people/person/name#",
       "/site/people/person[@id = 'person0']/name", 18.86, 5.72, 9},
      {"XM2",
       "/site/open_auctions/open_auction/bidder/increase#",
       "/site/open_auctions/open_auction/bidder/increase", 15.8, 7.62, 11},
      {"XM3",
       "/site/open_auctions/open_auction/bidder/increase#",
       "/site/open_auctions/open_auction[bidder]/bidder/increase", 15.8,
       7.62, 11},
      {"XM4",
       "/site/open_auctions/open_auction/bidder/personref@ "
       "/site/open_auctions/open_auction/reserve#",
       "/site/open_auctions/open_auction[bidder/personref]/reserve", 16.37,
       7.65, 13},
      {"XM5",
       "/site/closed_auctions/closed_auction/price#",
       "/site/closed_auctions/closed_auction/price", 9.87, 10.83, 9},
      {"XM6", "/site/regions//item@", "/site/regions//item", 19.91, 5.17, 7},
      {"XM7",
       "//description //annotation //emailaddress",
       "//description", 18.40, 6.55, 11},
      {"XM8",
       "/site/people/person@ /site/people/person/name# "
       "/site/closed_auctions/closed_auction/buyer@",
       "/site/people/person/name", 15.10, 7.42, 15},
      {"XM9",
       "/site/people/person@ /site/people/person/name# "
       "/site/closed_auctions/closed_auction/buyer@ "
       "/site/closed_auctions/closed_auction/itemref@ "
       "/site/regions/europe/item@ /site/regions/europe/item/name#",
       "/site/regions/europe/item/name", 15.29, 7.50, 25},
      {"XM10",
       "/site/categories/category@ /site/categories/category/name# "
       "/site/people/person@ /site/people/person/name# "
       "/site/people/person/emailaddress# /site/people/person/homepage# "
       "/site/people/person/creditcard# /site/people/person/address# "
       "/site/people/person/profile#",
       "/site/people/person/profile", 22.38, 5.68, 33},
      {"XM11",
       "/site/people/person/name# /site/people/person/profile@ "
       "/site/open_auctions/open_auction/initial#",
       "/site/open_auctions/open_auction/initial", 17.15, 6.58, 17},
      {"XM12",
       "/site/people/person/profile@ "
       "/site/open_auctions/open_auction/initial#",
       "/site/open_auctions/open_auction/initial", 16.81, 6.60, 15},
      {"XM13",
       "/site/regions/australia/item/name# "
       "/site/regions/australia/item/description#",
       "/site/regions/australia/item/description", 17.17, 6.06, 13},
      {"XM14",
       "/site//item/name# /site//item/description#",
       "//item/description", 21.24, 5.16, 9},
      {"XM17",
       "/site/people/person/name# /site/people/person/homepage",
       "/site/people/person[not(homepage)]/name", 18.99, 5.72, 11},
      {"XM18",
       "/site/open_auctions/open_auction/initial#",
       "/site/open_auctions/open_auction/initial", 12.95, 8.29, 9},
      {"XM19",
       "/site/regions//item/location# /site/regions//item/name#",
       "/site/regions//item/name", 20.57, 5.17, 11},
      {"XM20",
       "/site/people/person/profile@",
       "/site/people/person/profile/@income", 18.67, 5.75, 9},
  };
  return *w;
}

const std::vector<Workload>& MedlineWorkloads() {
  static const std::vector<Workload>* w = new std::vector<Workload>{
      {"M1", "/MedlineCitationSet//CollectionTitle#",
       "/MedlineCitationSet//CollectionTitle", 8.37, 12.24, 5},
      {"M2",
       "/MedlineCitationSet//DataBank/DataBankName# "
       "/MedlineCitationSet//DataBank/AccessionNumberList#",
       "/MedlineCitationSet//DataBank[DataBankName = 'PDB']"
       "/AccessionNumberList",
       14.63, 6.86, 9},
      {"M3",
       "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject#",
       "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject"
       "[LastName = 'Hippocrates']/TitleAssociatedWithName",
       8.4, 12.49, 13},
      {"M4", "/MedlineCitationSet//CopyrightInformation#",
       "//CopyrightInformation[contains(text(), 'NASA')]", 8.52, 12.69, 5},
      {"M5",
       "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
       "/MedlineCitationSet/MedlineCitation/DateCompleted#",
       "/MedlineCitationSet/MedlineCitation"
       "[contains(MedlineJournalInfo//text(), 'Sterilization')]"
       "/DateCompleted",
       9.81, 13.43, 9},
  };
  return *w;
}

const std::vector<Workload>& ProteinWorkloads() {
  static const std::vector<Workload>* w = new std::vector<Workload>{
      {"P1", "/ProteinDatabase/ProteinEntry/header#",
       "/ProteinDatabase/ProteinEntry/header", -1, -1, -1},
      {"P2", "//refinfo/authors#", "//refinfo/authors", -1, -1, -1},
      {"P3", "/ProteinDatabase/ProteinEntry/sequence#",
       "/ProteinDatabase/ProteinEntry/sequence", -1, -1, -1},
  };
  return *w;
}

uint64_t ScaleBytes() {
  const char* env = std::getenv("SMPX_SCALE_MB");
  if (env != nullptr) {
    double mb = std::atof(env);
    if (mb > 0) return static_cast<uint64_t>(mb * (1 << 20));
  }
  return 24ull << 20;
}

bool CsvEnabled() {
  const char* env = std::getenv("SMPX_CSV");
  return env != nullptr && env[0] == '1';
}

std::string JsonOutputDir() {
  const char* env = std::getenv("SMPX_JSON");
  if (env == nullptr || env[0] == '\0') return "";
  if (env[0] == '0' && env[1] == '\0') return "";  // SMPX_JSON=0 disables
  if (env[0] == '1' && env[1] == '\0') return ".";
  return env;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const std::string& Dataset(const std::string& kind, uint64_t bytes) {
  static std::map<std::string, std::string>* cache =
      new std::map<std::string, std::string>();
  std::string key = kind + "/" + std::to_string(bytes);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  std::string doc;
  if (kind == "xmark") {
    xmlgen::XmarkOptions opts;
    opts.target_bytes = bytes;
    doc = xmlgen::GenerateXmark(opts);
  } else if (kind == "medline") {
    xmlgen::MedlineOptions opts;
    opts.target_bytes = bytes;
    doc = xmlgen::GenerateMedline(opts);
  } else if (kind == "protein") {
    xmlgen::ProteinOptions opts;
    opts.target_bytes = bytes;
    doc = xmlgen::GenerateProtein(opts);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", kind.c_str());
    std::abort();
  }
  return (*cache)[key] = std::move(doc);
}

std::vector<paths::ProjectionPath> MustPaths(const char* list) {
  auto r = paths::ProjectionPath::ParseList(list);
  if (!r.ok()) {
    std::fprintf(stderr, "bad workload paths '%s': %s\n", list,
                 r.status().ToString().c_str());
    std::abort();
  }
  return *r;
}

std::string Pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", v);
  return buf;
}

std::string Mb(double bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / (1 << 20));
  return buf;
}

std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(const std::string& csv_tag) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&width](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "" : "  ",
                  static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  if (CsvEnabled()) {
    for (const auto& row : rows_) {
      std::printf("CSV,%s", csv_tag.c_str());
      for (const auto& cell : row) std::printf(",%s", cell.c_str());
      std::printf("\n");
    }
  }
  std::string json_dir = JsonOutputDir();
  if (!json_dir.empty()) {
    // Machine-readable mirror of the table: one object per row keyed by
    // the header, so CI can diff BENCH_*.json across commits.
    std::string json = "{\n  \"bench\": \"" + JsonEscape(csv_tag) +
                       "\",\n  \"rows\": [\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      json += "    {";
      for (size_t c = 0; c < rows_[r].size() && c < header_.size(); ++c) {
        if (c != 0) json += ", ";
        json += "\"" + JsonEscape(header_[c]) + "\": \"" +
                JsonEscape(rows_[r][c]) + "\"";
      }
      json += r + 1 < rows_.size() ? "},\n" : "}\n";
    }
    json += "  ]\n}\n";
    std::string path = json_dir + "/BENCH_" + csv_tag + ".json";
    Status s = WriteStringToFile(path, json);
    if (s.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
    }
  }
}

}  // namespace smpx::bench
