// Reproduces Fig. 7(b): the streaming XPath engine (SPEX substitute) as a
// stand-alone tool vs pipelined behind SMP prefiltering, on the MEDLINE
// queries M1-M5. The paper's shape: pipelined runtime stays close to the
// prefiltering time alone (the "35 seconds line"), and pipelined
// throughput is a multiple of the stand-alone engine's; M5 narrows the gap
// because its projection stays comparatively large.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "query/stream_engine.h"
#include "xmlgen/medline.h"

namespace smpx::bench {
namespace {

int Run() {
  const std::string& doc = Dataset("medline", ScaleBytes());
  std::printf(
      "== Fig. 7(b): streaming XPath (SPEX substitute) vs SMP-pipelined, "
      "MEDLINE (%s) ==\n",
      Mb(static_cast<double>(doc.size())).c_str());

  TablePrinter table({"query", "SPEX", "SPEX:thru", "SMP", "ppl.SPEX",
                      "ppl:thru", "proj.size", "results"});

  double mb = static_cast<double>(doc.size()) / (1 << 20);
  for (const Workload& w : MedlineWorkloads()) {
    // Stand-alone streaming evaluation over the raw document.
    WallTimer alone_timer;
    CountingSink alone_out;
    query::StreamStats alone_stats;
    Status s = query::EvaluateStreaming(w.xpath, doc, &alone_out,
                                        &alone_stats);
    double alone_s = alone_timer.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "%s SPEX failed: %s\n", w.id,
                   s.ToString().c_str());
      return 1;
    }

    // Pipelined: SMP projects, the engine consumes the projection.
    auto pf = core::Prefilter::Compile(xmlgen::MedlineDtd(),
                                       MustPaths(w.projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s compile failed: %s\n", w.id,
                   pf.status().ToString().c_str());
      return 1;
    }
    WallTimer ppl_timer;
    auto projected = pf->RunOnBuffer(doc);
    double smp_s = ppl_timer.Seconds();
    if (!projected.ok()) {
      std::fprintf(stderr, "%s SMP failed: %s\n", w.id,
                   projected.status().ToString().c_str());
      return 1;
    }
    CountingSink ppl_out;
    query::StreamStats ppl_stats;
    s = query::EvaluateStreaming(w.xpath, *projected, &ppl_out, &ppl_stats);
    double ppl_s = ppl_timer.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "%s ppl failed: %s\n", w.id, s.ToString().c_str());
      return 1;
    }
    if (ppl_stats.result_nodes != alone_stats.result_nodes) {
      std::fprintf(stderr,
                   "%s: pipelined results differ (%llu vs %llu) -- "
                   "projection must preserve query results!\n",
                   w.id,
                   static_cast<unsigned long long>(ppl_stats.result_nodes),
                   static_cast<unsigned long long>(alone_stats.result_nodes));
      return 1;
    }

    char alone_thru[32];
    std::snprintf(alone_thru, sizeof(alone_thru), "%.0fMB/s", mb / alone_s);
    char ppl_thru[32];
    std::snprintf(ppl_thru, sizeof(ppl_thru), "%.0fMB/s", mb / ppl_s);
    table.AddRow({w.id, Secs(alone_s), alone_thru, Secs(smp_s), Secs(ppl_s),
                  ppl_thru, Mb(static_cast<double>(projected->size())),
                  std::to_string(alone_stats.result_nodes)});
  }
  table.Print("fig7b");
  std::printf(
      "\nPaper shape to compare: pipelined throughput up to ~190MB/s vs "
      "~25MB/s stand-alone;\nM5 remains slower because its projection is "
      "still large.\n");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
