// Micro-benchmarks of the string matching substrate (google-benchmark):
// the paper's core enabling claim is that Boyer-Moore/Commentz-Walter scan
// XML-shaped text far below one inspected character per input byte. We
// sweep algorithms x keyword lengths x keyword-set sizes on XMark text.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simd/simd.h"
#include "strmatch/matcher.h"

namespace smpx::bench {
namespace {

using strmatch::Algorithm;
using strmatch::Matcher;
using strmatch::SearchStats;

const std::string& Text() {
  static const std::string* text = new std::string(
      Dataset("xmark", std::min<uint64_t>(ScaleBytes(), 8 << 20)));
  return *text;
}

std::vector<std::string> Keywords(int count, bool long_names) {
  std::vector<std::string> all =
      long_names ? std::vector<std::string>{"<description", "<annotation",
                                            "<emailaddress", "<incategory",
                                            "<open_auction"}
                 : std::vector<std::string>{"<name", "<date", "<from", "<to",
                                            "<age"};
  all.resize(static_cast<size_t>(count));
  return all;
}

void RunSearch(benchmark::State& state, Algorithm algo, int keywords,
               bool long_names) {
  std::unique_ptr<Matcher> m =
      strmatch::MakeMatcher(Keywords(keywords, long_names), algo);
  if (m == nullptr) {
    state.SkipWithError("algorithm cannot handle this pattern set");
    return;
  }
  const std::string& text = Text();
  SearchStats stats;
  for (auto _ : state) {
    size_t from = 0;
    int found = 0;
    for (;;) {
      strmatch::Match r = m->Search(text, from, &stats);
      if (!r.found()) break;
      ++found;
      from = r.pos + 1;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["inspect%"] =
      100.0 * static_cast<double>(stats.comparisons) /
      (static_cast<double>(text.size()) *
       static_cast<double>(state.iterations()));
  state.counters["avg_shift"] = stats.AvgShift();
}

void BM_Single(benchmark::State& state) {
  RunSearch(state, Algorithm::kBoyerMoore, 1, state.range(0) != 0);
}
BENCHMARK(BM_Single)->Arg(0)->Arg(1);

void BM_Horspool(benchmark::State& state) {
  RunSearch(state, Algorithm::kHorspool, 1, state.range(0) != 0);
}
BENCHMARK(BM_Horspool)->Arg(0)->Arg(1);

void BM_CommentzWalter(benchmark::State& state) {
  RunSearch(state, Algorithm::kCommentzWalter,
            static_cast<int>(state.range(0)), state.range(1) != 0);
}
BENCHMARK(BM_CommentzWalter)
    ->Args({1, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({5, 1});

void BM_SetHorspool(benchmark::State& state) {
  RunSearch(state, Algorithm::kSetHorspool, static_cast<int>(state.range(0)),
            state.range(1) != 0);
}
BENCHMARK(BM_SetHorspool)->Args({3, 1})->Args({5, 1});

void BM_AhoCorasick(benchmark::State& state) {
  RunSearch(state, Algorithm::kAhoCorasick, static_cast<int>(state.range(0)),
            state.range(1) != 0);
}
BENCHMARK(BM_AhoCorasick)->Args({3, 1})->Args({5, 1});

void BM_Memchr(benchmark::State& state) {
  RunSearch(state, Algorithm::kMemchr, static_cast<int>(state.range(0)),
            state.range(1) != 0);
}
BENCHMARK(BM_Memchr)->Args({3, 1});

/// Pre-benchmark correctness gate: every algorithm must enumerate the
/// exact same (pos, pattern) match sequence on the bench text -- the
/// minimal-end contract all speed tricks (skip loops, plane probes, the
/// hoisted FindPattern memcmp verify) must preserve. A silent candidate
/// reorder would make the timing columns compare different work.
void CrossCheckMatchSequences() {
  const std::string& text = Text();
  const std::string_view probe(text.data(),
                               std::min<size_t>(text.size(), 1 << 20));
  for (int count : {1, 3, 5}) {
    const std::vector<std::string> keywords = Keywords(count, true);
    std::vector<std::vector<std::pair<size_t, int>>> seqs;
    std::vector<Algorithm> algos = {Algorithm::kCommentzWalter,
                                    Algorithm::kSetHorspool,
                                    Algorithm::kAhoCorasick};
    if (count == 1) {
      algos.push_back(Algorithm::kBoyerMoore);
      algos.push_back(Algorithm::kHorspool);
    }
    for (Algorithm algo : algos) {
      std::unique_ptr<Matcher> m = strmatch::MakeMatcher(keywords, algo);
      if (m == nullptr) continue;
      std::vector<std::pair<size_t, int>> seq;
      for (size_t from = 0;;) {
        strmatch::Match r = m->Search(probe, from, nullptr);
        if (!r.found()) break;
        seq.emplace_back(r.pos, r.pattern);
        from = r.pos + 1;
      }
      seqs.push_back(std::move(seq));
      if (seqs.size() > 1 && seqs.back() != seqs.front()) {
        std::fprintf(stderr,
                     "strmatch_micro: match sequences diverge "
                     "(keywords=%d, algo=%d)\n",
                     count, static_cast<int>(algo));
        std::abort();
      }
    }
  }
  // And the structural FindPattern primitive against the library oracle:
  // the hoisted middle-bytes memcmp must not shift reported positions.
  for (std::string_view term : {std::string_view("?>"),
                                std::string_view("-->"),
                                std::string_view("<description")}) {
    size_t want = probe.find(term);
    if (want == std::string_view::npos) want = probe.size();
    const size_t got = simd::FindPattern(probe.data(), probe.size(), term);
    if (got != want) {
      std::fprintf(stderr,
                   "strmatch_micro: FindPattern position mismatch "
                   "(term=%.*s, got=%zu, want=%zu)\n",
                   static_cast<int>(term.size()), term.data(), got, want);
      std::abort();
    }
  }
}

}  // namespace
}  // namespace smpx::bench

int main(int argc, char** argv) {
  smpx::bench::CrossCheckMatchSequences();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
