// Memory-regression tripwire for the bounded-memory output pipeline: runs
// the real smpx CLI as subprocesses over a generated single-document
// corpus with a small --max-buffer budget, sweeping --threads, and fails
// (exit 1) if any child's peak RSS exceeds
//
//     input_size + slack + multiple x threads x (budget + window)
//
// i.e. the mmap'ed input plus a fixed allowance plus the budgeted
// per-worker state. The projection is a near-full copy of the document,
// so an accidental return to whole-output buffering (the pre-budget
// StringSink-per-shard design) blows the bound by roughly the input size
// while the budgeted ordered-commit pipeline stays flat. Every sharded
// output is also compared byte-for-byte against the serial (--threads 1)
// reference, making this the end-to-end acceptance check for spill +
// ordered commit on a document that does not fit the budget.
//
// Knobs:
//   SMPX_CLI           path to the smpx binary (default "./smpx")
//   SMPX_DATASET       medline (default) or xmark
//   SMPX_SCALE_MB      document size (default 64; CI uses 256)
//   SMPX_MAX_BUFFER    --max-buffer in bytes (default 1 MiB)
//   SMPX_THREADS       sweep (default "1 2 4")
//   SMPX_RSS_SLACK_MB  fixed allowance (default 48)
//   SMPX_RSS_MULTIPLE  per-worker multiple (default 8)
//   SMPX_CSV=1 / SMPX_JSON=1  machine-readable output (bench_util)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SMPX_TRIPWIRE_POSIX 1
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench/bench_util.h"
#include "common/io.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

#ifndef SMPX_TRIPWIRE_POSIX

int main() {
  std::fprintf(stderr,
               "shard_rss_tripwire needs POSIX fork/wait4; skipping\n");
  return 0;
}

#else

namespace smpx::bench {
namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string EnvOr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? v : fallback;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

/// Runs the CLI with `args` (argv[0] excluded), waits, and reports the
/// child's own peak RSS in bytes via wait4. Returns false on spawn
/// failure or nonzero exit.
bool RunChild(const std::string& cli, const std::vector<std::string>& args,
              uint64_t* peak_rss_bytes) {
  std::vector<char*> argv;
  std::string cli_copy = cli;
  argv.push_back(cli_copy.data());
  std::vector<std::string> copies = args;
  for (std::string& a : copies) argv.push_back(a.data());
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv");
    std::_Exit(127);
  }
  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (::wait4(pid, &status, 0, &ru) < 0) {
    std::perror("wait4");
    return false;
  }
#if defined(__APPLE__)
  *peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss);
#else
  *peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) << 10;  // KiB
#endif
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "child %s exited abnormally (status %d)\n",
                 cli.c_str(), status);
    return false;
  }
  return true;
}

/// Chunked byte comparison so a multi-hundred-MB reference never lives in
/// memory here either.
bool FilesIdentical(const std::string& a, const std::string& b) {
  auto fa = FileInputStream::Open(a);
  auto fb = FileInputStream::Open(b);
  if (!fa.ok() || !fb.ok()) return false;
  std::vector<char> ba(1 << 20), bb(1 << 20);
  for (;;) {
    auto na = (*fa)->Read(ba.data(), ba.size());
    auto nb = (*fb)->Read(bb.data(), bb.size());
    if (!na.ok() || !nb.ok() || *na != *nb) return false;
    if (*na == 0) return true;
    if (std::memcmp(ba.data(), bb.data(), *na) != 0) return false;
  }
}

int Run() {
  const std::string cli = EnvOr("SMPX_CLI", "./smpx");
  if (::access(cli.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "smpx binary '%s' not found/executable; set SMPX_CLI\n",
                 cli.c_str());
    return 1;
  }
  const std::string dataset = EnvOr("SMPX_DATASET", "medline");
  const uint64_t scale = ScaleBytes();
  const uint64_t budget = EnvU64("SMPX_MAX_BUFFER", 1 << 20);
  const uint64_t slack = EnvU64("SMPX_RSS_SLACK_MB", 48) << 20;
  const uint64_t multiple = EnvU64("SMPX_RSS_MULTIPLE", 8);
  const uint64_t window = SlidingWindow::kDefaultCapacity;

  // A near-full-copy projection: the regression this wire trips on is
  // whole-OUTPUT buffering, so the output must dwarf the slack.
  std::string dtd_text;
  std::string paths;
  if (dataset == "xmark") {
    dtd_text = xmlgen::XmarkDtdText();
    paths = "/site/regions# /site/people# /site/open_auctions# "
            "/site/closed_auctions# /site/catgraph# /site/categories#";
  } else {
    dtd_text = xmlgen::MedlineDtdText();
    paths = "/MedlineCitationSet/MedlineCitation#";
  }

  const std::string dtd_path = "tripwire." + dataset + ".dtd";
  const std::string doc_path = "tripwire." + dataset + ".xml";
  const std::string ref_path = "tripwire." + dataset + ".ref.xml";
  const std::string out_path = "tripwire." + dataset + ".out.xml";
  if (!WriteStringToFile(dtd_path, dtd_text).ok()) {
    std::fprintf(stderr, "cannot write %s\n", dtd_path.c_str());
    return 1;
  }
  {
    const std::string& doc = Dataset(dataset, scale);
    if (!WriteStringToFile(doc_path, doc).ok()) {
      std::fprintf(stderr, "cannot write %s\n", doc_path.c_str());
      return 1;
    }
  }

  std::printf("== shard RSS tripwire (%s %s, budget %s, window %s) ==\n",
              dataset.c_str(), Mb(static_cast<double>(scale)).c_str(),
              Mb(static_cast<double>(budget)).c_str(),
              Mb(static_cast<double>(window)).c_str());

  // Serial reference (streams through the same CLI pipeline).
  uint64_t serial_rss = 0;
  if (!RunChild(cli,
                {"--dtd", dtd_path, "--paths", paths, "--max-buffer",
                 std::to_string(budget), doc_path, ref_path},
                &serial_rss)) {
    return 1;
  }

  const std::string threads_env = EnvOr("SMPX_THREADS", "1 2 4");
  std::vector<int> threads;
  int v = 0;
  for (const char* p = threads_env.c_str();; ++p) {
    if (*p >= '0' && *p <= '9') {
      v = v * 10 + (*p - '0');
    } else {
      if (v > 0) threads.push_back(v);
      v = 0;
      if (*p == '\0') break;
    }
  }

  TablePrinter table({"threads", "peakMB", "limitMB", "identical", "ok"});
  bool all_ok = true;
  for (int t : threads) {
    uint64_t rss = 0;
    bool ran = RunChild(
        cli,
        {"--dtd", dtd_path, "--paths", paths, "--threads",
         std::to_string(t), "--max-buffer", std::to_string(budget),
         doc_path, out_path},
        &rss);
    bool identical = ran && FilesIdentical(ref_path, out_path);
    const uint64_t limit =
        scale + slack +
        multiple * static_cast<uint64_t>(t) * (budget + window);
    bool ok = ran && identical && rss <= limit;
    all_ok = all_ok && ok;
    table.AddRow({std::to_string(t),
                  Fmt("%.1f", static_cast<double>(rss) / (1 << 20)),
                  Fmt("%.1f", static_cast<double>(limit) / (1 << 20)),
                  identical ? "yes" : "NO", ok ? "yes" : "NO"});
  }
  table.Print("shard_rss_tripwire");

  std::remove(dtd_path.c_str());
  std::remove(doc_path.c_str());
  std::remove(ref_path.c_str());
  std::remove(out_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr,
                 "RSS tripwire FAILED: a sharded run exceeded the memory "
                 "bound or diverged from the serial output\n");
    return 1;
  }
  std::printf("tripwire ok: sharded peak RSS within input + slack + "
              "%llu x threads x (budget + window), outputs byte-identical\n",
              static_cast<unsigned long long>(multiple));
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }

#endif  // SMPX_TRIPWIRE_POSIX
