// Reproduces Table II: "SMP on the MEDLINE document" -- queries M1-M5.
// Notable shapes to reproduce: M1 (a DTD-declared but absent element)
// projects to ~0 bytes with very large shifts; M1-M4 see (almost) no
// initial jumps because the MEDLINE DTD is optional-heavy; M5 gets
// noticeable jumps from the required DateCreated run.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/medline.h"

namespace smpx::bench {
namespace {

int Run() {
  const std::string& doc = Dataset("medline", ScaleBytes());
  std::printf("== Table II: SMP prefiltering, MEDLINE document (%s) ==\n",
              Mb(static_cast<double>(doc.size())).c_str());

  TablePrinter table({"query", "Proj.Size", "Mem", "Usr+Sys", "Thru",
                      "States(CW+BM)", "oShift", "Jumps", "CharComp",
                      "paper:CC", "paper:Shift", "paper:St"});

  for (const Workload& w : MedlineWorkloads()) {
    WallTimer compile_timer;
    auto pf = core::Prefilter::Compile(xmlgen::MedlineDtd(),
                                       MustPaths(w.projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s: compile failed: %s\n", w.id,
                   pf.status().ToString().c_str());
      return 1;
    }
    double compile_s = compile_timer.Seconds();

    core::RunStats stats;
    CpuTimer cpu;
    WallTimer wall;
    MemoryInputStream in(doc);
    CountingSink out;
    Status s = pf->Run(&in, &out, &stats);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: run failed: %s\n", w.id,
                   s.ToString().c_str());
      return 1;
    }
    double cpu_s = cpu.Seconds();

    size_t cw = 0;
    size_t bm = 0;
    for (const auto& st : pf->tables().states) {
      if (st.keywords.size() > 1) {
        ++cw;
      } else if (st.keywords.size() == 1) {
        ++bm;
      }
    }
    char states[48];
    std::snprintf(states, sizeof(states), "%zu (%zu+%zu)",
                  pf->num_states(), cw, bm);
    char thru[32];
    std::snprintf(thru, sizeof(thru), "%.0fMB/s",
                  static_cast<double>(doc.size()) / wall.Seconds() /
                      (1 << 20));
    char shift[16];
    std::snprintf(shift, sizeof(shift), "%.2f", stats.AvgShift());
    char paper_shift[16];
    std::snprintf(paper_shift, sizeof(paper_shift), "%.2f",
                  w.paper_avg_shift);

    table.AddRow({w.id, Mb(static_cast<double>(stats.output_bytes)),
                  Mb(static_cast<double>(stats.window_peak)),
                  Secs(cpu_s + compile_s), thru, states, shift,
                  Pct(stats.InitialJumpPct()), Pct(stats.CharCompPct()),
                  Pct(w.paper_char_comp), paper_shift,
                  std::to_string(w.paper_states)});
  }
  table.Print("table2");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
