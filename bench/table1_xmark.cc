// Reproduces Table I: "SMP on the XMark document" -- one row per XMark
// query (XM1-XM14, XM17-XM20) with Proj.Size, Mem, Usr+Sys, States
// (CW + BM), average shift size, initial-jump percentage and the
// percentage of characters inspected. Columns marked paper= carry the
// values the paper reports for its 5 GB input; the *shape* (who skips
// most, relative sizes) is the reproduction target, not absolute times.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Run() {
  uint64_t bytes = ScaleBytes();
  const std::string& doc = Dataset("xmark", bytes);
  std::printf("== Table I: SMP prefiltering, XMark document (%s) ==\n",
              Mb(static_cast<double>(doc.size())).c_str());

  TablePrinter table({"query", "Proj.Size", "Mem", "Usr+Sys", "Thru",
                      "States(CW+BM)", "oShift", "Jumps", "CharComp",
                      "paper:CC", "paper:Shift", "paper:St"});

  for (const Workload& w : XmarkWorkloads()) {
    WallTimer compile_timer;
    auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(),
                                       MustPaths(w.projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s: compile failed: %s\n", w.id,
                   pf.status().ToString().c_str());
      return 1;
    }
    double compile_s = compile_timer.Seconds();

    core::RunStats stats;
    CpuTimer cpu;
    WallTimer wall;
    MemoryInputStream in(doc);
    CountingSink out;
    Status s = pf->Run(&in, &out, &stats);
    double wall_s = wall.Seconds();
    double cpu_s = cpu.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: run failed: %s\n", w.id,
                   s.ToString().c_str());
      return 1;
    }

    size_t cw = 0;
    size_t bm = 0;
    for (const auto& st : pf->tables().states) {
      if (st.keywords.size() > 1) {
        ++cw;
      } else if (st.keywords.size() == 1) {
        ++bm;
      }
    }
    char states[48];
    std::snprintf(states, sizeof(states), "%zu (%zu+%zu)",
                  pf->num_states(), cw, bm);
    char thru[32];
    std::snprintf(thru, sizeof(thru), "%.0fMB/s",
                  static_cast<double>(doc.size()) / wall_s / (1 << 20));
    char shift[16];
    std::snprintf(shift, sizeof(shift), "%.2f", stats.AvgShift());
    char paper_shift[16];
    std::snprintf(paper_shift, sizeof(paper_shift), "%.2f",
                  w.paper_avg_shift);

    table.AddRow({w.id, Mb(static_cast<double>(stats.output_bytes)),
                  Mb(static_cast<double>(stats.window_peak)),
                  Secs(cpu_s + compile_s), thru, states, shift,
                  Pct(stats.InitialJumpPct()), Pct(stats.CharCompPct()),
                  Pct(w.paper_char_comp), paper_shift,
                  std::to_string(w.paper_states)});
  }
  table.Print("table1");
  std::printf(
      "\nNotes: Mem is the engine window high-water mark (the paper also "
      "reports ~1.6-2MB);\nstatic analysis time is included in Usr+Sys as "
      "in the paper.\n");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
