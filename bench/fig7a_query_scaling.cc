// Reproduces Fig. 7(a): in-memory query evaluation (QizX substitute with a
// memory budget) stand-alone vs in sequence with SMP prefiltering, across
// document sizes. The paper's shape: without projection the engine hits
// the memory wall between 200 MB and 1 GB; with SMP prefiltering it scales
// to the largest input, and total time is dominated by the (cheap)
// prefilter pass plus query evaluation on the small projected document.
//
// The memory budget scales with SMPX_SCALE_MB so the cliff is always
// visible: budget = 4x the smallest document size.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "query/mem_engine.h"
#include "xmlgen/xmark.h"

namespace smpx::bench {
namespace {

int Run() {
  uint64_t max_bytes = ScaleBytes();
  std::vector<uint64_t> sizes;
  for (uint64_t b = max_bytes / 16; b <= max_bytes; b *= 2) {
    sizes.push_back(b);
  }
  uint64_t budget = sizes.front() * 8;  // DOM inflation ~2-3x => cliff mid-sweep

  std::printf(
      "== Fig. 7(a): in-memory engine vs SMP + engine, XMark size sweep "
      "==\n(memory budget %s; FAIL = out of budget, the paper's "
      "out-of-memory outcome)\n\n",
      Mb(static_cast<double>(budget)).c_str());

  const Workload* workloads[] = {&XmarkWorkloads()[1],   // XM2
                                 &XmarkWorkloads()[12],  // XM13
                                 &XmarkWorkloads()[13]}; // XM14

  TablePrinter table({"query", "doc", "engine", "SMP", "SMP+engine",
                      "proj.size"});
  for (const Workload* w : workloads) {
    auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(),
                                       MustPaths(w->projection_paths));
    if (!pf.ok()) {
      std::fprintf(stderr, "%s compile: %s\n", w->id,
                   pf.status().ToString().c_str());
      return 1;
    }
    for (uint64_t bytes : sizes) {
      const std::string& doc = Dataset("xmark", bytes);
      query::MemEngineOptions mopts;
      mopts.memory_budget = budget;

      // Stand-alone engine.
      WallTimer alone_timer;
      auto alone = query::EvaluateInMemory(w->xpath, doc, mopts);
      double alone_s = alone_timer.Seconds();
      std::string alone_cell =
          alone.ok() ? Secs(alone_s)
                     : (alone.status().code() ==
                                StatusCode::kResourceExhausted
                            ? "FAIL(mem)"
                            : "FAIL");

      // SMP then engine on the projected document (sequential setup).
      WallTimer seq_timer;
      auto projected = pf->RunOnBuffer(doc);
      double smp_s = seq_timer.Seconds();
      std::string seq_cell = "FAIL";
      std::string proj_cell = "-";
      if (projected.ok()) {
        auto after = query::EvaluateInMemory(w->xpath, *projected, mopts);
        double seq_s = seq_timer.Seconds();
        proj_cell = Mb(static_cast<double>(projected->size()));
        seq_cell = after.ok() ? Secs(seq_s) : "FAIL(mem)";
      }
      table.AddRow({w->id, Mb(static_cast<double>(doc.size())), alone_cell,
                    Secs(smp_s), seq_cell, proj_cell});
    }
  }
  table.Print("fig7a");
  return 0;
}

}  // namespace
}  // namespace smpx::bench

int main() { return smpx::bench::Run(); }
