// The runtime algorithm (paper Fig. 4): an automaton over the statically
// compiled tables that schedules Boyer-Moore / Commentz-Walter searches per
// frontier vocabulary, verifies tag matches locally (including the
// prefix-tagname check, e.g. Abstract vs AbstractText), performs initial
// jumps, and executes copy actions -- all through a fixed-size sliding
// window over the input stream.
//
// Matched tags resolve through the interned fast path by default: the tag
// name is scanned with pointer loops over whole resident window spans
// (memchr for '>' and quote terminators), interned to a dense id
// (RuntimeTables::interner), and dispatched via one flat array load. The
// legacy std::map dispatch + per-byte scanner survives behind
// TableOptions::use_map_dispatch as the differential-testing baseline.

#ifndef SMPX_CORE_ENGINE_H_
#define SMPX_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "core/tables.h"
#include "strmatch/matcher.h"

namespace smpx::core {

/// Counters backing the paper's measurement columns.
struct RunStats {
  uint64_t input_bytes = 0;       ///< total bytes pulled from the stream
  uint64_t output_bytes = 0;      ///< bytes emitted (projected size)
  strmatch::SearchStats search;   ///< comparisons/shifts inside matchers
  uint64_t scan_chars = 0;        ///< chars inspected by local tag scans
  uint64_t initial_jumps = 0;     ///< number of initial jumps taken
  uint64_t initial_jump_chars = 0;///< chars skipped by initial jumps alone
  uint64_t matches = 0;           ///< accepted keyword matches
  uint64_t false_matches = 0;     ///< rejected candidates (prefix tags etc.)
  uint64_t states_visited = 0;    ///< distinct runtime states entered
  // Counted per Search invocation (false-match retries and window refills
  // each run a fresh search, so these can exceed the state-entry count).
  uint64_t bm_searches = 0;       ///< searches ran with a unary vocabulary
  uint64_t cw_searches = 0;       ///< searches ran with a multi vocabulary
  size_t window_peak = 0;         ///< high-water mark of the window buffer

  /// Fraction of input characters inspected (paper "Char Comp. %").
  double CharCompPct() const {
    return input_bytes == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(search.comparisons + scan_chars) /
                     static_cast<double>(input_bytes);
  }
  /// Average forward shift (paper "∅ Shift Size").
  double AvgShift() const { return search.AvgShift(); }
  /// Percentage of input skipped by initial jumps (paper "Initial Jumps").
  double InitialJumpPct() const {
    return input_bytes == 0 ? 0.0
                            : 100.0 * static_cast<double>(initial_jump_chars) /
                                  static_cast<double>(input_bytes);
  }
};

struct EngineOptions {
  /// Sliding window capacity; the paper uses 8x the system page size.
  size_t window_capacity = SlidingWindow::kDefaultCapacity;
  /// Skip an XML prolog (<?xml?>, <!DOCTYPE ...>, comments) before matching;
  /// keyword search would treat prolog bytes as opaque text otherwise, which
  /// is correct but slower and can trip on DTD-internal quoted tags.
  bool skip_prolog = true;
};

/// Executes one prefiltering run. `tables` must outlive the call.
Status RunEngine(const RuntimeTables& tables, InputStream* in,
                 OutputSink* out, RunStats* stats,
                 const EngineOptions& opts = {});

}  // namespace smpx::core

#endif  // SMPX_CORE_ENGINE_H_
