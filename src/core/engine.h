// The runtime algorithm (paper Fig. 4): an automaton over the statically
// compiled tables that schedules Boyer-Moore / Commentz-Walter searches per
// frontier vocabulary, verifies tag matches locally (including the
// prefix-tagname check, e.g. Abstract vs AbstractText), performs initial
// jumps, and executes copy actions -- all through a fixed-size sliding
// window over the input stream.
//
// Matched tags resolve through the interned fast path by default: the tag
// name is scanned with pointer loops over whole resident window spans
// (memchr for '>' and quote terminators), interned to a dense id
// (RuntimeTables::interner), and dispatched via one flat array load. The
// legacy std::map dispatch + per-byte scanner survives behind
// TableOptions::use_map_dispatch as the differential-testing baseline.

#ifndef SMPX_CORE_ENGINE_H_
#define SMPX_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "core/tables.h"
#include "strmatch/matcher.h"

namespace smpx::core {

/// Counters backing the paper's measurement columns.
struct RunStats {
  uint64_t input_bytes = 0;       ///< total bytes pulled from the stream
  uint64_t output_bytes = 0;      ///< bytes emitted (projected size)
  strmatch::SearchStats search;   ///< comparisons/shifts inside matchers
  uint64_t scan_chars = 0;        ///< chars inspected by local tag scans
  uint64_t initial_jumps = 0;     ///< number of initial jumps taken
  uint64_t initial_jump_chars = 0;///< chars skipped by initial jumps alone
  uint64_t matches = 0;           ///< accepted keyword matches
  uint64_t false_matches = 0;     ///< rejected candidates (prefix tags etc.)
  uint64_t states_visited = 0;    ///< distinct runtime states entered
  // Counted per Search invocation (false-match retries and window refills
  // each run a fresh search, so these can exceed the state-entry count).
  uint64_t bm_searches = 0;       ///< searches ran with a unary vocabulary
  uint64_t cw_searches = 0;       ///< searches ran with a multi vocabulary
  size_t window_peak = 0;         ///< high-water mark of the window buffer

  /// Fraction of input characters inspected (paper "Char Comp. %").
  double CharCompPct() const {
    return input_bytes == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(search.comparisons + scan_chars) /
                     static_cast<double>(input_bytes);
  }
  /// Average forward shift (paper "∅ Shift Size").
  double AvgShift() const { return search.AvgShift(); }
  /// Percentage of input skipped by initial jumps (paper "Initial Jumps").
  double InitialJumpPct() const {
    return input_bytes == 0 ? 0.0
                            : 100.0 * static_cast<double>(initial_jump_chars) /
                                  static_cast<double>(input_bytes);
  }
};

/// Per-query slice of a multi-query session's result statistics. The
/// aggregate RunStats of a multi-query run counts the shared scan work
/// (searches, jumps, scan chars) once; matches and output bytes are
/// attributed per query here.
struct QueryRunStats {
  uint64_t matches = 0;       ///< accepted transitions this query took
  uint64_t output_bytes = 0;  ///< bytes emitted into this query's sink
};

struct EngineOptions {
  /// Sliding window capacity; the paper uses 8x the system page size.
  size_t window_capacity = SlidingWindow::kDefaultCapacity;
  /// Skip an XML prolog (<?xml?>, <!DOCTYPE ...>, comments) before matching;
  /// keyword search would treat prolog bytes as opaque text otherwise, which
  /// is correct but slower and can trip on DTD-internal quoted tags.
  bool skip_prolog = true;
  /// Count the checkpoint's start state in visited()/states_visited. The
  /// parallel sharder disables this for speculative sessions launched from
  /// a *representative* of several behavior-equivalent candidate states:
  /// the true serial run may never enter the representative itself, and its
  /// bit is always owned by the predecessor shard's hand-off anyway.
  /// Ignored for sessions starting from scratch (no checkpoint).
  bool mark_start_state_visited = true;
  /// Cooperative cancellation token. When non-null, the session polls it
  /// (relaxed load) once per search-loop iteration -- i.e. at every safe
  /// point, roughly once per window view -- and aborts with a kCancelled
  /// status as soon as it reads true. The parallel sharder uses this to
  /// kill losing speculative attempts mid-wave; a cancelled session is
  /// dead (every later Resume/Finish returns the same status).
  const std::atomic<bool>* cancel = nullptr;
};

/// The engine state carried across chunk boundaries: everything a session
/// needs -- besides the immutable tables and the bytes themselves -- to
/// continue a run exactly where another one stopped. Plain data; two runs
/// over the same bytes from equal checkpoints produce identical output.
struct SessionCheckpoint {
  int state = 0;               ///< current runtime-DFA state
  uint64_t cursor = 0;         ///< absolute next-unsearched byte position
  uint64_t nesting_depth = 0;  ///< open-tag balance inside an opaque region
  int copy_depth = 0;          ///< nesting depth of active copy regions
  uint64_t copy_flushed = 0;   ///< copy output emitted below this position
  /// False when the run suspended while still scanning the document prolog
  /// (cursor then points at the unfinished construct). Defaults to true:
  /// a hand-crafted mid-document checkpoint has no prolog ahead.
  bool prolog_done = true;
  /// True when `state` was entered but its initial jump J[state] has not
  /// been applied yet (only possible before the first search, i.e. for the
  /// initial state while the prolog is still being skipped).
  bool jump_pending = false;

  /// Multi-query sessions only: per-unique-query copy depths and flushed
  /// positions. Empty means all-zero (e.g. at a clean top-level boundary,
  /// where no query is copying). The aggregate fields above remain valid
  /// on multi-query checkpoints -- copy_depth counts the actively copying
  /// queries and copy_flushed is the minimum flushed position over them --
  /// so shard verification logic compares checkpoints unchanged.
  std::vector<int> mq_copy_depth;
  std::vector<uint64_t> mq_copy_flushed;

  /// Absolute offset a successor session must be fed from. Normally the
  /// cursor; inside an active copy region the emitted prefix may lag
  /// behind it (an initial jump taken past the end of the delivered input
  /// suspends with copy bytes not yet received, let alone emitted), and
  /// feeding restarts at copy_flushed so the successor emits them.
  uint64_t feed_begin() const {
    return copy_depth > 0 && copy_flushed < cursor ? copy_flushed : cursor;
  }
};

/// A resumable prefiltering run over the immutable RuntimeTables.
///
/// Push interface: feed contiguous document bytes with Resume(chunk) --
/// starting at any absolute byte offset in a known checkpoint -- and close
/// the input with Finish(). The session suspends cleanly when a chunk ends
/// mid-construct (nothing is consumed past the last completed transition)
/// and picks up when the next chunk arrives. The serial RunEngine() below
/// is a thin pull-mode wrapper over the same code path and stays
/// byte-identical to the historical one-shot engine.
///
/// A session is single-threaded; parallelism comes from running many
/// sessions (one per shard or document) against the shared tables -- see
/// src/parallel/.
///
/// Sink contract: the session appends projected bytes strictly in
/// document order and only at flush safe-points (completed transitions
/// and sliding-window evictions of settled copy-region prefixes), and
/// it never retracts an appended byte. Downstream sinks may therefore
/// stream, spill, or commit each Append immediately -- the bounded-memory
/// output pipeline (SpillSink / OrderedCommitSink in common/io.h) depends
/// on this.
class PrefilterSession {
 public:
  /// Starts a run at absolute byte offset `start.cursor` in checkpoint
  /// `start` (default: offset 0, the initial DFA state). `tables`, `out`
  /// and `stats` must outlive the session; `stats` may be null.
  PrefilterSession(const RuntimeTables& tables, OutputSink* out,
                   RunStats* stats, const EngineOptions& opts = {},
                   const SessionCheckpoint* start = nullptr);

  /// Multi-query session over product tables (`tables.multi` non-null,
  /// interned dispatch only): one sink per unique query, in MultiQueryInfo
  /// order. Each query's bytes go exclusively to its own sink, and each
  /// query's output is byte-identical to an independent single-query run.
  /// `query_stats` (may be null) receives per-query matches/output_bytes
  /// on FinalizeStats; the aggregate `stats` counts shared scan work once,
  /// with output_bytes summed over all sinks. Constructing with the
  /// single-sink constructor above on multi tables -- or with this one on
  /// single-query tables or a sink count != num_queries -- makes the
  /// session inert with an InvalidArgument status.
  PrefilterSession(const RuntimeTables& tables,
                   std::vector<OutputSink*> query_sinks,
                   std::vector<QueryRunStats>* query_stats, RunStats* stats,
                   const EngineOptions& opts = {},
                   const SessionCheckpoint* start = nullptr);
  ~PrefilterSession();

  PrefilterSession(const PrefilterSession&) = delete;
  PrefilterSession& operator=(const PrefilterSession&) = delete;

  /// Feeds the next contiguous bytes of the document. Returns Ok both when
  /// the run reached a final state (finished() becomes true; trailing bytes
  /// are ignored, as in a serial run) and when the session merely consumed
  /// the chunk and suspended awaiting more input.
  Status Resume(std::string_view chunk);

  /// Declares end of input. Fails with kParseError if the run is not in a
  /// final state (matching the serial engine on truncated documents), and
  /// finalizes summary statistics on success.
  Status Finish();

  /// True once a final DFA state was reached.
  bool finished() const;

  /// The resumable state after the last completed transition. Between
  /// Resume calls, running another session over the remaining bytes from
  /// this checkpoint yields output byte-identical to continuing this one.
  SessionCheckpoint checkpoint() const;

  /// True when the last Resume suspended in a plain keyword search (no
  /// partially scanned construct pending). At such a suspension the whole
  /// fed range has been searched; a successor session starting at the next
  /// byte offset in checkpoint().state sees every remaining occurrence.
  /// False after a suspension inside a candidate tag scan, whose handling
  /// needs bytes from the next chunk.
  bool drained_cleanly() const;

  /// Fills the end-of-run summary fields of `stats` (input/output bytes,
  /// window peak, states visited). Finish() does this automatically; call
  /// it directly for sessions that end suspended (e.g. a mid-document
  /// shard). Idempotent.
  void FinalizeStats();

  /// Per-state visit flags, for merging states_visited across sessions.
  const std::vector<bool>& visited() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;

  // RunEngine drives an Impl directly in pull mode.
  friend Status RunEngine(const RuntimeTables& tables, InputStream* in,
                          OutputSink* out, RunStats* stats,
                          const EngineOptions& opts);
};

/// Executes one prefiltering run. `tables` must outlive the call.
Status RunEngine(const RuntimeTables& tables, InputStream* in,
                 OutputSink* out, RunStats* stats,
                 const EngineOptions& opts = {});

}  // namespace smpx::core

#endif  // SMPX_CORE_ENGINE_H_
