// Public facade of the library: compile a (nonrecursive DTD, projection
// paths) pair into runtime tables once, then prefilter any number of
// documents valid w.r.t. that DTD. This reproduces the paper's SMP
// prototype ("takes the projection paths and a nonrecursive DTD as input
// and performs static analysis").
//
// Typical use:
//
//   auto dtd   = smpx::dtd::Dtd::Parse(dtd_text);
//   auto paths = smpx::paths::ProjectionPath::ParseList("/site//item# /*");
//   auto pf    = smpx::core::Prefilter::Compile(std::move(*dtd), *paths);
//   smpx::MemoryInputStream in(document);
//   smpx::StringSink out;
//   smpx::core::RunStats stats;
//   pf->Run(&in, &out, &stats);

#ifndef SMPX_CORE_PREFILTER_H_
#define SMPX_CORE_PREFILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/tables.h"
#include "dtd/dtd.h"
#include "paths/projection_path.h"

namespace smpx::core {

/// Static-analysis options (ablation hooks included).
struct CompileOptions {
  TableOptions tables;
  /// Cap on the DTD unfolding size.
  size_t max_instances = 1 << 20;
  /// Accept recursive DTDs by treating recursive elements as *opaque
  /// regions*: their interiors are never navigated; the runtime tunnels
  /// over them by balancing open/close tags (the extension the paper
  /// sketches in Section II). Compilation still fails with kUnsupported if
  /// a projection path would have to select nodes *inside* such a region
  /// that is not wholly copied -- that data cannot be projected soundly
  /// without unfolding the recursion.
  bool allow_recursion = false;
};

class Prefilter {
 public:
  /// Runs the full static analysis of Section IV. Fails with kUnsupported
  /// for recursive DTDs / ANY content, kInvalidArgument for inconsistent
  /// inputs. The default projection path "/*" (top-level node, Section III)
  /// is added automatically when absent.
  static Result<Prefilter> Compile(dtd::Dtd dtd,
                                   std::vector<paths::ProjectionPath> paths,
                                   const CompileOptions& opts = {});

  /// Prefilters one document from `in` into `out`.
  Status Run(InputStream* in, OutputSink* out, RunStats* stats = nullptr,
             const EngineOptions& opts = {}) const;

  /// Convenience: whole-buffer in, string out.
  Result<std::string> RunOnBuffer(std::string_view document,
                                  RunStats* stats = nullptr,
                                  const EngineOptions& opts = {}) const;

  /// The compiled tables (A, V, J, T), for inspection and reports.
  const RuntimeTables& tables() const { return *tables_; }
  /// True when the engine will dispatch through the interned fast path
  /// (default; false under TableOptions::use_map_dispatch).
  bool interned_dispatch() const { return tables_->interned_dispatch; }
  /// Number of runtime-DFA states (paper Table I "States").
  size_t num_states() const { return tables_->states.size(); }
  const dtd::Dtd& dtd() const { return *dtd_; }
  const std::vector<paths::ProjectionPath>& paths() const { return paths_; }

 private:
  Prefilter() = default;

  // shared_ptr so Prefilter stays cheaply movable/copyable as a handle.
  std::shared_ptr<const dtd::Dtd> dtd_;
  std::shared_ptr<const RuntimeTables> tables_;
  std::vector<paths::ProjectionPath> paths_;
};

}  // namespace smpx::core

#endif  // SMPX_CORE_PREFILTER_H_
