#include "core/prefilter.h"

#include <algorithm>
#include <set>

#include "dtd/dtd_automaton.h"
#include "paths/relevance.h"

namespace smpx::core {

Result<Prefilter> Prefilter::Compile(dtd::Dtd dtd,
                                     std::vector<paths::ProjectionPath> paths,
                                     const CompileOptions& opts) {
  // The default path "/*" preserves the top-level node so the output is
  // well-formed (Section III: "we extract the path /* by default").
  paths::ProjectionPath star;
  paths::PathStep step;
  step.axis = paths::PathStep::Axis::kChild;
  step.wildcard = true;
  star.steps.push_back(step);
  if (std::find(paths.begin(), paths.end(), star) == paths.end()) {
    paths.push_back(star);
  }

  Prefilter pf;
  pf.dtd_ = std::make_shared<const dtd::Dtd>(std::move(dtd));
  pf.paths_ = std::move(paths);

  SMPX_ASSIGN_OR_RETURN(
      dtd::DtdAutomaton aut,
      dtd::DtdAutomaton::Build(*pf.dtd_, opts.max_instances,
                               opts.allow_recursion));

  std::vector<std::string> alphabet;
  for (const dtd::ElementDecl& decl : pf.dtd_->elements()) {
    alphabet.push_back(decl.name);
  }
  paths::RelevanceAnalyzer analyzer(pf.paths_, std::move(alphabet));

  Selection sel = SelectStates(aut, analyzer);

  // Recursion soundness: an opaque region's interior can only be projected
  // wholesale. If a path could still match strictly inside a region that is
  // neither '#'-covered itself nor inside a copied subtree, data would be
  // lost silently -- reject instead.
  for (size_t i = 0; i < aut.instances().size(); ++i) {
    const dtd::DtdAutomaton::Instance& inst = aut.instance(static_cast<int>(i));
    if (!inst.opaque) continue;
    const paths::BranchRelevance& rel = sel.relevance[i];
    bool preserved = rel.leaf_hash || rel.c2;
    for (int anc = inst.parent; !preserved && anc >= 0;
         anc = aut.instance(anc).parent) {
      preserved = sel.relevance[static_cast<size_t>(anc)].leaf_hash;
    }
    if (preserved) continue;
    // Could any path in P+ match a strict extension of this branch, given
    // the tags that can occur inside?
    std::vector<std::string> branch =
        aut.BranchLabels(dtd::DtdAutomaton::OpenState(static_cast<int>(i)));
    std::set<std::string> inside;
    for (std::string& n : pf.dtd_->ReachableFrom(inst.label)) {
      inside.insert(std::move(n));
    }
    const paths::PathSetEvaluator& ev = analyzer.evaluator();
    paths::PathSetEvaluator::State state = ev.Initial();
    for (const std::string& label : branch) ev.Step(label, &state);
    for (size_t pi = 0; pi < analyzer.closure().size(); ++pi) {
      const paths::ProjectionPath& path = analyzer.closure()[pi];
      for (size_t step = 0; step < path.steps.size(); ++step) {
        if (!state.sets[pi][step]) continue;
        const paths::PathStep& ps = path.steps[step];
        if (ps.wildcard || inside.count(ps.name) != 0) {
          return Status::Unsupported(
              "projection path " + path.ToString() +
              " navigates into the recursive content of <" + inst.label +
              ">; recursion is only supported when recursive regions are "
              "skipped or copied wholesale");
        }
      }
    }
  }

  SubgraphAutomaton sub = BuildSubgraph(aut, sel);
  SMPX_ASSIGN_OR_RETURN(RuntimeTables tables,
                        BuildTables(aut, sel, sub, opts.tables));
  pf.tables_ = std::make_shared<const RuntimeTables>(std::move(tables));
  return pf;
}

Status Prefilter::Run(InputStream* in, OutputSink* out, RunStats* stats,
                      const EngineOptions& opts) const {
  return RunEngine(*tables_, in, out, stats, opts);
}

Result<std::string> Prefilter::RunOnBuffer(std::string_view document,
                                           RunStats* stats,
                                           const EngineOptions& opts) const {
  MemoryInputStream in(document);
  StringSink sink;
  SMPX_RETURN_IF_ERROR(RunEngine(*tables_, &in, &sink, stats, opts));
  return sink.TakeString();
}

}  // namespace smpx::core
