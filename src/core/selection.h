// Step 1 of the runtime-automaton compilation (paper Fig. 6): select the
// subset S of DTD-automaton states the runtime must visit, and assign each
// state its action (paper Table T semantics):
//
//  (a) states whose document branch is relevant (Definition 5) join S;
//  (b) a dual pair whose interior states are *all* in S is collapsed -- the
//      interior leaves S and the pair becomes copy on / copy off
//      (Example 12: once <c> is matched the whole subtree is copied, so no
//      descendant tags need to be located);
//  (c) disambiguation closure: if from some q in S a frontier target p in S
//      and a shadow state p' not in S carry the same token, the runtime
//      could confuse them after a skip; p's parents join S (Example 11).

#ifndef SMPX_CORE_SELECTION_H_
#define SMPX_CORE_SELECTION_H_

#include <string>
#include <vector>

#include "dtd/dtd_automaton.h"
#include "paths/relevance.h"

namespace smpx::core {

/// Output action associated with a runtime state (paper table T).
enum class Action : unsigned char {
  kNop = 0,
  kCopyTag,      ///< emit the bare tag
  kCopyTagAtts,  ///< emit the tag with its attributes
  kCopyOn,       ///< start copying raw input at this opening tag
  kCopyOff,      ///< stop copying after this closing tag
};

std::string_view ActionName(Action a);

/// Merges actions of NFA states collapsed into one DFA state. Higher
/// priority copies strictly more data, which is the safe direction.
Action JoinActions(Action a, Action b);

/// The result of Fig. 6 step 1 over a DTD-automaton.
struct Selection {
  /// Per automaton state: is the state in S? (q0 always is.)
  std::vector<bool> in_s;
  /// Per automaton state: the action the runtime performs when entering it.
  std::vector<Action> action;
  /// Per instance: relevance verdict (kept for reports/tests).
  std::vector<paths::BranchRelevance> relevance;
  /// Number of states added by the disambiguation closure (step c).
  size_t stopover_states = 0;
  /// Number of dual pairs collapsed by step (b).
  size_t collapsed_pairs = 0;
};

/// Runs Fig. 6 step 1 for `paths` over `aut`.
Selection SelectStates(const dtd::DtdAutomaton& aut,
                       const paths::RelevanceAnalyzer& analyzer);

/// The subgraph automaton D|S (Definition 4), rendered as explicit
/// transitions: for every state q in S, all (token, p) pairs such that p is
/// reached from q through non-S states by a final edge reading `token`.
/// Also computes the final-state flags (q final in D, or a final state of D
/// reachable through non-S states).
struct SubgraphAutomaton {
  struct Edge {
    int token;
    int to;
  };
  /// Indexed by original automaton state id; empty for states not in S.
  std::vector<std::vector<Edge>> edges;
  std::vector<bool> is_final;
};

SubgraphAutomaton BuildSubgraph(const dtd::DtdAutomaton& aut,
                                const Selection& sel);

}  // namespace smpx::core

#endif  // SMPX_CORE_SELECTION_H_
