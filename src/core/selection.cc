#include "core/selection.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace smpx::core {

using dtd::DtdAutomaton;

std::string_view ActionName(Action a) {
  switch (a) {
    case Action::kNop:
      return "nop";
    case Action::kCopyTag:
      return "copy tag";
    case Action::kCopyTagAtts:
      return "copy tag+atts";
    case Action::kCopyOn:
      return "copy on";
    case Action::kCopyOff:
      return "copy off";
  }
  return "?";
}

Action JoinActions(Action a, Action b) {
  return static_cast<Action>(
      std::max(static_cast<unsigned char>(a), static_cast<unsigned char>(b)));
}

namespace {

/// Collects all states lying strictly inside the subtree of instance `inst`
/// (= on some path from open(inst) to close(inst)): exactly the states of
/// its descendant instances.
void CollectInterior(const DtdAutomaton& aut, int inst,
                     std::vector<int>* out) {
  std::vector<int> work = {inst};
  while (!work.empty()) {
    int cur = work.back();
    work.pop_back();
    for (int child : aut.ChildrenOf(cur)) {
      if (child < 0) continue;
      out->push_back(DtdAutomaton::OpenState(child));
      out->push_back(DtdAutomaton::CloseState(child));
      work.push_back(child);
    }
  }
}

}  // namespace

Selection SelectStates(const dtd::DtdAutomaton& aut,
                       const paths::RelevanceAnalyzer& analyzer) {
  Selection sel;
  const size_t num_states = static_cast<size_t>(aut.num_states());
  sel.in_s.assign(num_states, false);
  sel.action.assign(num_states, Action::kNop);
  sel.in_s[0] = true;  // q0

  // Step (a): relevance per instance (open and close share a branch).
  sel.relevance.reserve(aut.instances().size());
  for (size_t i = 0; i < aut.instances().size(); ++i) {
    int open = DtdAutomaton::OpenState(static_cast<int>(i));
    paths::BranchRelevance rel = analyzer.Analyze(aut.BranchLabels(open));
    sel.relevance.push_back(rel);
    if (rel.relevant()) {
      sel.in_s[static_cast<size_t>(open)] = true;
      sel.in_s[static_cast<size_t>(DtdAutomaton::Dual(open))] = true;
    }
  }

  // Step (b): collapse pairs whose interior is entirely relevant. Walk
  // top-down so outer pairs win; mark collapsed pairs as subtree copies.
  std::vector<bool> collapsed(num_states, false);
  for (size_t i = 0; i < aut.instances().size(); ++i) {
    int open = DtdAutomaton::OpenState(static_cast<int>(i));
    if (!sel.in_s[static_cast<size_t>(open)] ||
        collapsed[static_cast<size_t>(open)]) {
      continue;
    }
    std::vector<int> interior;
    CollectInterior(aut, static_cast<int>(i), &interior);
    if (interior.empty()) continue;
    bool all_in_s = std::all_of(
        interior.begin(), interior.end(),
        [&sel](int s) { return sel.in_s[static_cast<size_t>(s)]; });
    if (!all_in_s) continue;
    for (int s : interior) {
      sel.in_s[static_cast<size_t>(s)] = false;
      collapsed[static_cast<size_t>(s)] = true;
    }
    // The pair now copies its whole subtree wholesale.
    sel.relevance[i].leaf_hash = true;
    ++sel.collapsed_pairs;
  }

  // Tokens that can occur anywhere inside an opaque (recursive) region of
  // a given element label, used to model their unexpanded interiors in
  // step (c).
  std::map<std::string, std::vector<int>> opaque_interior_tokens;
  auto interior_tokens = [&aut, &opaque_interior_tokens](
                             const std::string& label) {
    auto it = opaque_interior_tokens.find(label);
    if (it != opaque_interior_tokens.end()) return it->second;
    std::vector<int> tokens;
    for (const std::string& name : aut.dtd().ReachableFrom(label)) {
      for (bool closing : {false, true}) {
        int tok = aut.FindToken(name, closing);
        if (tok >= 0) tokens.push_back(tok);
      }
    }
    opaque_interior_tokens[label] = tokens;
    return tokens;
  };

  // Step (c): disambiguation closure, to fixpoint. From every q in S,
  // explore through non-S states; a frontier target p (in S) and a shadow
  // state p' (not in S) reached with the same token force p's parents in.
  // Extension for recursive DTDs: a skipped opaque region can contain any
  // tag reachable inside it, so it shadows all those tokens; if one matches
  // a frontier token, the opaque pair itself joins S (the runtime then
  // stops there and tunnels over the region by tag balancing).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t q = 0; q < num_states; ++q) {
      if (!sel.in_s[q]) continue;
      // BFS through non-S states.
      std::set<int> frontier_tokens;  // tokens entering S-states
      std::vector<std::pair<int, int>> shadows;  // (token, shadow state)
      std::vector<bool> seen(num_states, false);
      std::queue<int> bfs;
      bfs.push(static_cast<int>(q));
      seen[q] = true;
      while (!bfs.empty()) {
        int cur = bfs.front();
        bfs.pop();
        for (const DtdAutomaton::Transition& t : aut.Out(cur)) {
          if (sel.in_s[static_cast<size_t>(t.to)]) {
            frontier_tokens.insert(t.token);
          } else {
            shadows.push_back({t.token, t.to});
            if (DtdAutomaton::IsOpenState(t.to) &&
                aut.instance(DtdAutomaton::InstanceOf(t.to)).opaque) {
              for (int tok : interior_tokens(
                       aut.instance(DtdAutomaton::InstanceOf(t.to)).label)) {
                shadows.push_back({tok, t.to});
              }
            }
            if (!seen[static_cast<size_t>(t.to)]) {
              seen[static_cast<size_t>(t.to)] = true;
              bfs.push(t.to);
            }
          }
        }
      }
      for (const auto& [token, shadow] : shadows) {
        if (frontier_tokens.count(token) == 0) continue;
        bool shadow_opaque =
            shadow != 0 &&
            aut.instance(DtdAutomaton::InstanceOf(shadow)).opaque;
        int add_open;
        if (shadow_opaque) {
          // Stop over at the opaque region itself and tag-balance it.
          add_open = DtdAutomaton::IsOpenState(shadow)
                         ? shadow
                         : DtdAutomaton::Dual(shadow);
        } else {
          // Add the shadow's parent states (the dual pair of its parent
          // instance; q0's children have no parents to add).
          add_open = aut.ParentState(shadow);
          if (add_open == 0) continue;
        }
        for (int s : {add_open, DtdAutomaton::Dual(add_open)}) {
          if (!sel.in_s[static_cast<size_t>(s)]) {
            sel.in_s[static_cast<size_t>(s)] = true;
            ++sel.stopover_states;
            changed = true;
          }
        }
      }
    }
  }

  // Actions. Stop-over states added by (c) keep kNop; relevant states get
  // copy actions according to their flags.
  for (size_t i = 0; i < aut.instances().size(); ++i) {
    int open = DtdAutomaton::OpenState(static_cast<int>(i));
    int close = DtdAutomaton::CloseState(static_cast<int>(i));
    if (!sel.in_s[static_cast<size_t>(open)]) continue;
    const paths::BranchRelevance& rel = sel.relevance[i];
    if (!rel.relevant()) continue;  // stop-over
    if (rel.leaf_hash) {
      sel.action[static_cast<size_t>(open)] = Action::kCopyOn;
      sel.action[static_cast<size_t>(close)] = Action::kCopyOff;
    } else {
      Action tag_action =
          rel.leaf_attrs ? Action::kCopyTagAtts : Action::kCopyTag;
      sel.action[static_cast<size_t>(open)] = tag_action;
      sel.action[static_cast<size_t>(close)] = Action::kCopyTag;
    }
  }
  return sel;
}

SubgraphAutomaton BuildSubgraph(const dtd::DtdAutomaton& aut,
                                const Selection& sel) {
  SubgraphAutomaton sub;
  const size_t num_states = static_cast<size_t>(aut.num_states());
  sub.edges.assign(num_states, {});
  sub.is_final.assign(num_states, false);

  for (size_t q = 0; q < num_states; ++q) {
    if (!sel.in_s[q]) continue;
    if (static_cast<int>(q) == aut.final_state()) sub.is_final[q] = true;
    std::set<std::pair<int, int>> edges;  // dedup (token, to)
    std::vector<bool> seen(num_states, false);
    std::queue<int> bfs;
    bfs.push(static_cast<int>(q));
    seen[q] = true;
    while (!bfs.empty()) {
      int cur = bfs.front();
      bfs.pop();
      for (const DtdAutomaton::Transition& t : aut.Out(cur)) {
        if (sel.in_s[static_cast<size_t>(t.to)]) {
          edges.insert({t.token, t.to});
        } else {
          if (t.to == aut.final_state()) sub.is_final[q] = true;
          if (!seen[static_cast<size_t>(t.to)]) {
            seen[static_cast<size_t>(t.to)] = true;
            bfs.push(t.to);
          }
        }
      }
    }
    for (const auto& [token, to] : edges) {
      sub.edges[q].push_back(SubgraphAutomaton::Edge{token, to});
    }
  }
  return sub;
}

}  // namespace smpx::core
