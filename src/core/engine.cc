#include "core/engine.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

#include "common/strings.h"
#include "simd/bitmap_plane.h"
#include "simd/simd.h"

namespace smpx::core {
namespace {

/// Returns values for HandleMatch's caller.
enum HandleResult {
  kFalseMatch = 0,  ///< candidate rejected; retry past it
  kAccepted = 1,    ///< transition performed
  kNeedInput = 2    ///< scan hit the end of a non-final chunk; suspend
};

/// Serves the session's current chunk to the sliding window in push mode.
/// Reading past the chunk looks like EOF until the next SetChunk +
/// SlidingWindow::ClearEof.
class FeedStream : public InputStream {
 public:
  void SetChunk(std::string_view chunk) { chunk_ = chunk; }

  Result<size_t> Read(char* buf, size_t len) override {
    size_t n = std::min(len, chunk_.size());
    std::memcpy(buf, chunk_.data(), n);
    chunk_.remove_prefix(n);
    return n;
  }

 private:
  std::string_view chunk_;
};

}  // namespace

/// The engine proper: mutable run state shared by the helpers below. One
/// instance backs both the serial pull-mode RunEngine (suspension disabled;
/// behavior byte-identical to the historical one-shot engine) and the
/// resumable push-mode PrefilterSession (suspension via snapshot/restore at
/// the per-candidate safe points).
class PrefilterSession::Impl {
 public:
  enum class Step { kDone, kNeedMore, kError };

  /// `in` == nullptr selects push mode (chunks via Resume); otherwise the
  /// engine pulls from `in` to completion and never suspends.
  /// `multi_mode` selects the multi-query variant: `out` is null and every
  /// query's bytes go to its own sink in `query_sinks` (MultiQueryInfo
  /// order).
  Impl(const RuntimeTables& tables, InputStream* in, OutputSink* out,
       RunStats* stats, const EngineOptions& opts,
       const SessionCheckpoint* start, bool multi_mode = false,
       std::vector<OutputSink*> query_sinks = {},
       std::vector<QueryRunStats>* query_stats = nullptr)
      : tables_(tables),
        win_(in != nullptr ? in : &feed_, opts.window_capacity,
             start != nullptr ? start->feed_begin() : 0),
        out_(out),
        stats_(stats != nullptr ? stats : &local_stats_),
        opts_(opts),
        interned_(tables.interned_dispatch),
        use_plane_(tables.use_bitmap_plane && simd::PlaneEnabled()),
        suspendable_(in == nullptr),
        final_input_(in != nullptr),
        mq_sinks_(std::move(query_sinks)),
        mq_qstats_(query_stats) {
    win_.set_evict_fn([this](uint64_t begin, std::string_view data) {
      OnEvict(begin, data);
    });
    // Invalid construction makes the session inert: Resume/Finish surface
    // status_, finished() reports false, nothing ever indexes the tables.
    if (tables_.states.empty()) {
      status_ = Status::InvalidArgument("empty runtime tables");
      visited_.assign(1, false);
      prolog_done_ = true;
      return;
    }
    if (start != nullptr &&
        (start->state < 0 ||
         static_cast<size_t>(start->state) >= tables_.states.size())) {
      status_ = Status::InvalidArgument("checkpoint state out of range");
      visited_.assign(tables_.states.size(), false);
      prolog_done_ = true;
      return;
    }
    if (multi_mode || tables_.multi != nullptr) {
      const MultiQueryInfo* mq = tables_.multi.get();
      Status bad;
      if (mq == nullptr) {
        bad = Status::InvalidArgument(
            "multi-query session requires product tables");
      } else if (!multi_mode) {
        bad = Status::InvalidArgument(
            "multi-query tables require the per-query-sink session");
      } else if (!tables_.interned_dispatch) {
        bad = Status::InvalidArgument(
            "multi-query tables require interned dispatch");
      } else if (static_cast<int>(mq_sinks_.size()) != mq->num_queries) {
        bad = Status::InvalidArgument(
            "query sink count does not match the compiled query mix");
      } else if (start != nullptr && !start->mq_copy_depth.empty() &&
                 (static_cast<int>(start->mq_copy_depth.size()) !=
                      mq->num_queries ||
                  start->mq_copy_flushed.size() !=
                      start->mq_copy_depth.size())) {
        bad = Status::InvalidArgument(
            "checkpoint per-query copy state does not match the query mix");
      } else if (start != nullptr && start->copy_depth > 0 &&
                 start->mq_copy_depth.empty()) {
        bad = Status::InvalidArgument(
            "multi-query checkpoint with active copies needs per-query "
            "copy state");
      }
      if (!bad.ok()) {
        status_ = bad;
        visited_.assign(std::max<size_t>(tables_.states.size(), 1), false);
        prolog_done_ = true;
        return;
      }
      mq_ = mq;
      const size_t n = static_cast<size_t>(mq->num_queries);
      mq_matches_.assign(n, 0);
      if (start != nullptr && !start->mq_copy_depth.empty()) {
        mq_copy_depth_ = start->mq_copy_depth;
        mq_copy_flushed_ = start->mq_copy_flushed;
      } else {
        mq_copy_depth_.assign(n, 0);
        mq_copy_flushed_.assign(n, 0);
      }
    }
    visited_.assign(tables_.states.size(), false);
    if (start != nullptr) {
      q_ = start->state;
      cursor_ = start->cursor;
      nesting_depth_ = start->nesting_depth;
      copy_depth_ = start->copy_depth;
      copy_flushed_ = start->copy_flushed;
      // The checkpoint says whether a prolog construct is still pending
      // and whether the current state's initial jump was already applied
      // (re-applying a consumed jump would skip live bytes).
      prolog_done_ = start->prolog_done;
      jump_pending_ = start->jump_pending;
    } else {
      q_ = tables_.initial;
      prolog_done_ = !opts_.skip_prolog;
    }
    if (start == nullptr || opts_.mark_start_state_visited) MarkVisited();
    lock_floor_ = cursor_;
  }

  Status Resume(std::string_view chunk) {
    if (!status_.ok()) return status_;
    if (finished()) return Status::Ok();  // trailing bytes are ignored
    feed_.SetChunk(chunk);
    win_.ClearEof();
    Step s = Drive();
    if (s == Step::kError) return status_;
    if (s == Step::kNeedMore && copy_depth_ > 0) {
      // Hand-off invariant: everything below checkpoint().feed_begin()
      // has been emitted, so a successor session never needs our buffered
      // bytes. The flush is clamped to the delivered input -- an initial
      // jump can park the cursor beyond it, and those copy bytes (not yet
      // received) are re-fed to the successor via feed_begin().
      const uint64_t end = std::min(cursor_, win_.limit());
      Status flush = mq_ != nullptr ? FlushAllQueryCopies(end)
                                    : EmitCopiedRange(end);
      if (!flush.ok()) {
        status_ = flush;
        return status_;
      }
    }
    return Status::Ok();
  }

  Status Finish() {
    final_input_ = true;
    if (status_.ok() && !finished()) {
      Step s = Drive();
      (void)s;  // kError left its status in status_; kNeedMore impossible
    }
    FinalizeStats();
    return status_;
  }

  /// Pull-mode entry point (serial RunEngine).
  Status Run() {
    Step s = Drive();
    (void)s;
    if (status_.ok()) FinalizeStats();
    return status_;
  }

  bool finished() const {
    return status_.ok() &&
           tables_.states[static_cast<size_t>(q_)].is_final;
  }

  SessionCheckpoint checkpoint() const {
    SessionCheckpoint cp;
    cp.state = q_;
    cp.cursor = cursor_;
    cp.nesting_depth = nesting_depth_;
    cp.copy_depth = copy_depth_;
    cp.copy_flushed = copy_flushed_;
    cp.prolog_done = prolog_done_;
    cp.jump_pending = jump_pending_;
    if (mq_ != nullptr) {
      cp.mq_copy_depth = mq_copy_depth_;
      cp.mq_copy_flushed = mq_copy_flushed_;
    }
    return cp;
  }

  bool drained_cleanly() const { return drained_cleanly_; }

  void FinalizeStats() {
    stats_->input_bytes = win_.bytes_read() - win_.origin();
    if (mq_ != nullptr) {
      uint64_t total = 0;
      for (OutputSink* s : mq_sinks_) total += s->bytes_written();
      stats_->output_bytes = total;
      if (mq_qstats_ != nullptr) {
        mq_qstats_->assign(mq_sinks_.size(), QueryRunStats{});
        for (size_t qy = 0; qy < mq_sinks_.size(); ++qy) {
          (*mq_qstats_)[qy].matches = mq_matches_[qy];
          (*mq_qstats_)[qy].output_bytes = mq_sinks_[qy]->bytes_written();
        }
      }
    } else {
      stats_->output_bytes = out_->bytes_written();
    }
    stats_->window_peak = win_.max_capacity_used();
    stats_->states_visited = 0;
    for (bool v : visited_) {
      if (v) ++stats_->states_visited;
    }
  }

  const std::vector<bool>& visited() const { return visited_; }

 private:
  /// Everything a suspension must roll back to re-run a truncated candidate
  /// scan after more input arrives. Output is never part of a snapshot:
  /// suspension happens strictly before any emitting step.
  struct Snapshot {
    int q;
    uint64_t cursor;
    uint64_t nesting_depth;
    int copy_depth;
    uint64_t copy_flushed;
    bool jump_pending;
    RunStats stats;
    // Multi-query state; the vector assignments reuse capacity, so a safe
    // point stays allocation-free after the first one.
    std::vector<int> mq_copy_depth;
    std::vector<uint64_t> mq_copy_flushed;
    std::vector<uint64_t> mq_matches;
  };

  /// True when running in push mode and more chunks may still arrive --
  /// i.e. an exhausted scan means "suspend", not "the document ends here".
  bool MayResume() const { return suspendable_ && !final_input_; }

  /// set_lock with a floor: in push mode the bytes from the last safe point
  /// onward must stay resident so a restored attempt can re-scan them.
  void Lock(uint64_t pos) {
    win_.set_lock(suspendable_ ? std::min(pos, lock_floor_) : pos);
  }

  /// Marks the current position as a safe point: suspension at or after it
  /// resumes from here. Also the lock floor (see Lock).
  void MarkSafePoint() {
    lock_floor_ = cursor_;
    if (suspendable_) {
      snap_.q = q_;
      snap_.cursor = cursor_;
      snap_.nesting_depth = nesting_depth_;
      snap_.copy_depth = copy_depth_;
      snap_.copy_flushed = copy_flushed_;
      snap_.jump_pending = jump_pending_;
      snap_.stats = *stats_;
      if (mq_ != nullptr) {
        snap_.mq_copy_depth = mq_copy_depth_;
        snap_.mq_copy_flushed = mq_copy_flushed_;
        snap_.mq_matches = mq_matches_;
      }
    }
  }

  void RestoreSafePoint() {
    q_ = snap_.q;
    cursor_ = snap_.cursor;
    nesting_depth_ = snap_.nesting_depth;
    copy_depth_ = snap_.copy_depth;
    copy_flushed_ = snap_.copy_flushed;
    jump_pending_ = snap_.jump_pending;
    *stats_ = snap_.stats;
    if (mq_ != nullptr) {
      mq_copy_depth_ = snap_.mq_copy_depth;
      mq_copy_flushed_ = snap_.mq_copy_flushed;
      mq_matches_ = snap_.mq_matches;
    }
  }

  // Incremental flush of the active copy region when the window slides.
  void OnEvict(uint64_t begin, std::string_view data) {
    if (copy_depth_ == 0) return;
    uint64_t end = begin + data.size();
    if (mq_ != nullptr) {
      for (size_t qy = 0; qy < mq_copy_depth_.size(); ++qy) {
        if (mq_copy_depth_[qy] == 0 || end <= mq_copy_flushed_[qy]) continue;
        uint64_t from = std::max(begin, mq_copy_flushed_[qy]);
        Status s = mq_sinks_[qy]->Append(
            data.substr(static_cast<size_t>(from - begin),
                        static_cast<size_t>(end - from)));
        if (!s.ok() && status_.ok()) status_ = s;
        mq_copy_flushed_[qy] = end;
      }
      RecomputeMqCopyFlushed(end);
      return;
    }
    if (end <= copy_flushed_) return;
    uint64_t from = std::max(begin, copy_flushed_);
    Status s = out_->Append(
        data.substr(static_cast<size_t>(from - begin),
                    static_cast<size_t>(end - from)));
    if (!s.ok() && status_.ok()) status_ = s;
    copy_flushed_ = end;
  }

  Status Emit(std::string_view data) { return out_->Append(data); }

  /// Emits the still-buffered tail of [copy_flushed_, end).
  Status EmitCopiedRange(uint64_t end) {
    if (end <= copy_flushed_) return Status::Ok();
    uint64_t from = std::max(copy_flushed_, win_.base());
    std::string_view view = win_.View(from, static_cast<size_t>(end - from));
    if (view.size() < end - from) {
      return Status::Internal("copy region not resident");
    }
    copy_flushed_ = end;
    return Emit(view.substr(0, static_cast<size_t>(end - from)));
  }

  /// Per-query EmitCopiedRange: flushes the still-buffered tail of query
  /// qy's active copy region into its own sink. The lower clamp to
  /// win_.base() keeps a safe-point rollback from re-emitting bytes an
  /// eviction already pushed out (exactly as in the aggregate path).
  Status EmitCopiedRangeFor(size_t qy, uint64_t end) {
    if (end <= mq_copy_flushed_[qy]) return Status::Ok();
    uint64_t from = std::max(mq_copy_flushed_[qy], win_.base());
    std::string_view view = win_.View(from, static_cast<size_t>(end - from));
    if (view.size() < end - from) {
      return Status::Internal("copy region not resident");
    }
    mq_copy_flushed_[qy] = end;
    return mq_sinks_[qy]->Append(
        view.substr(0, static_cast<size_t>(end - from)));
  }

  /// Flushes every actively-copying query up to `end` (suspension
  /// hand-off), then re-establishes the aggregate invariant.
  Status FlushAllQueryCopies(uint64_t end) {
    for (size_t qy = 0; qy < mq_copy_depth_.size(); ++qy) {
      if (mq_copy_depth_[qy] == 0) continue;
      SMPX_RETURN_IF_ERROR(EmitCopiedRangeFor(qy, end));
    }
    RecomputeMqCopyFlushed(end);
    return Status::Ok();
  }

  /// Aggregate invariant on multi-query sessions: copy_flushed_ is the
  /// minimum flushed position over actively-copying queries (so
  /// SessionCheckpoint::feed_begin and shard hand-off checks work
  /// unchanged); `fallback` when no query is copying.
  void RecomputeMqCopyFlushed(uint64_t fallback) {
    uint64_t mn = std::numeric_limits<uint64_t>::max();
    for (size_t qy = 0; qy < mq_copy_depth_.size(); ++qy) {
      if (mq_copy_depth_[qy] > 0) mn = std::min(mn, mq_copy_flushed_[qy]);
    }
    copy_flushed_ = mn == std::numeric_limits<uint64_t>::max() ? fallback
                                                               : mn;
  }

  Step Drive();
  bool SkipProlog();
  uint64_t SkipPast(uint64_t from, std::string_view term);
  uint64_t SkipDoctype(uint64_t from);
  Status HandleMatch(uint64_t pos, int* next_unsearched);
  Status HandleMatchLegacy(uint64_t pos, int* next_unsearched);
  Status FinishMatch(uint64_t pos, uint64_t tag_end, bool closing,
                     bool bachelor, bool counted_tag, int next_state,
                     int close_state);
  Status ApplyAction(int state, uint64_t tag_begin, uint64_t tag_end,
                     bool closing, bool bachelor);
  Status ApplyMulti(int state, uint64_t tag_begin, uint64_t tag_end,
                    bool closing, bool bachelor, int suppress_open_state);

  /// Attributes this accepted transition to every query that moved on the
  /// entered product state's token (QueryRunStats::matches).
  void BumpQueryMatches(int state) {
    const uint64_t* moved = mq_->MaskAt(mq_->moved, state);
    for (int w = 0; w < mq_->words; ++w) {
      uint64_t bits = moved[w];
      while (bits != 0) {
        ++mq_matches_[static_cast<size_t>(w) * 64 +
                      static_cast<size_t>(__builtin_ctzll(bits))];
        bits &= bits - 1;
      }
    }
  }

  /// Common tail of the false-match returns: a scan that ran into the end
  /// of a non-final chunk may just be truncated, so suspend instead of
  /// rejecting (the re-run sees the full construct).
  Status Reject(int* result) {
    if (MayResume() && scan_hit_end_) *result = kNeedInput;
    return Status::Ok();
  }

  /// Re-keys the shared plane to the current resident span: cheap when
  /// nothing changed (key comparison keeps every memoized lane), and any
  /// intervening View/Ensure/RefillAt may have slid, grown, or extended
  /// the window -- which is why every plane read re-binds first. Slides
  /// and reallocs bump win_.epoch() and invalidate; append-only refills
  /// keep the lanes.
  void BindPlane() {
    // Engine-side key cache: the common case (nothing slid or grew since
    // the last plane read) is decided on three integer compares without
    // materializing the span or entering Bind's own key check.
    if (win_.epoch() == bound_epoch_ && win_.base() == bound_base_ &&
        win_.limit() == bound_end_) {
      return;
    }
    bound_epoch_ = win_.epoch();
    bound_base_ = win_.base();
    bound_end_ = win_.limit();
    std::string_view span = win_.Span(win_.base());
    plane_.Bind(span.data(), span.size(), win_.base(), win_.epoch());
  }

  /// The engine's structural scans, through the plane when enabled (the
  /// bytes at absolute position `abs` must be the resident span [p, p+len)).
  size_t ScanFindByte(const char* p, size_t len, uint64_t abs,
                      unsigned char c) {
    if (!use_plane_) return simd::FindByte(p, len, c);
    BindPlane();
    return plane_.FindByte(abs, len, c);
  }
  size_t ScanFindAny(const char* p, size_t len, uint64_t abs,
                     const simd::ByteSet& set) {
    if (!use_plane_) return simd::FindAny(p, len, set);
    BindPlane();
    return plane_.FindAny(abs, len, set);
  }
  size_t ScanFindPattern(const char* p, size_t len, uint64_t abs,
                         std::string_view term) {
    // Terminator patterns ("-->", "?>", "]]>") are construct-local pair
    // classes nothing else consumes; only window-scale scans amortize the
    // plane's chunk fills. Results are identical either way.
    if (!use_plane_ || len < simd::BitmapPlane::kFillChunk) {
      return simd::FindPattern(p, len, term);
    }
    BindPlane();
    return plane_.FindPattern(abs, len, term);
  }

  const RuntimeTables& tables_;
  FeedStream feed_;
  SlidingWindow win_;
  OutputSink* out_;
  RunStats* stats_;
  RunStats local_stats_;
  EngineOptions opts_;
  const bool interned_;
  const bool use_plane_;
  const bool suspendable_;
  bool final_input_;
  simd::BitmapPlane plane_;
  uint64_t bound_epoch_ = ~uint64_t{0};  // BindPlane key cache
  uint64_t bound_base_ = ~uint64_t{0};
  uint64_t bound_end_ = ~uint64_t{0};

  int q_ = 0;
  uint64_t cursor_ = 0;        // next position to search from
  uint64_t nesting_depth_ = 0; // open <t> balance inside an opaque region
  int copy_depth_ = 0;
  uint64_t copy_flushed_ = 0;  // everything below this is already emitted
  bool prolog_done_ = false;
  bool jump_pending_ = true;   // J[q] not yet applied for this state entry
  bool scan_hit_end_ = false;  // a tag scan ran past the resident input
  bool drained_cleanly_ = true;
  uint64_t lock_floor_ = 0;
  Snapshot snap_;
  Status status_;
  std::vector<bool> visited_;

  // Multi-query mode (mq_ non-null): per-query sinks, copy regions, and
  // match counters. The aggregate copy_depth_ above counts the actively
  // copying queries, so every copy_depth_ == 0 check (hand-off cleanliness,
  // evict short-circuit) keeps its meaning.
  const MultiQueryInfo* mq_ = nullptr;
  std::vector<OutputSink*> mq_sinks_;
  std::vector<QueryRunStats>* mq_qstats_ = nullptr;
  std::vector<int> mq_copy_depth_;
  std::vector<uint64_t> mq_copy_flushed_;
  std::vector<uint64_t> mq_matches_;

  void MarkVisited() {
    if (!visited_[static_cast<size_t>(q_)]) {
      visited_[static_cast<size_t>(q_)] = true;
    }
  }
};

/// Scans past the next occurrence of `term` (2-3 bytes) starting at `from`,
/// running the vectorized pattern scan over whole resident spans. Returns
/// the position one past the terminator; past end-of-input when
/// unterminated.
uint64_t PrefilterSession::Impl::SkipPast(uint64_t from,
                                          std::string_view term) {
  const size_t tn = term.size();
  uint64_t p = from;
  for (;;) {
    Lock(p);
    std::string_view span = win_.View(p, tn);
    if (span.size() < tn) return win_.limit() + tn;  // unterminated
    const size_t hit = ScanFindPattern(span.data(), span.size(), p, term);
    if (hit != span.size()) return p + hit + tn;
    // Keep tn-1 tail bytes resident so a straddling terminator is seen
    // (span.size() >= tn here -- shorter spans returned above).
    p += span.size() - (tn - 1);
  }
}

/// Scans past the '>' that closes the DOCTYPE starting at `from` (the
/// position just after "<!"), honoring [...] internal subsets and quoted
/// literals (entity/system ids can contain '>'). Bitmap-driven: one
/// vectorized any-of classification finds the earliest of the five
/// structural bytes per step, so pathological multi-megabyte internal
/// subsets cost one linear sweep. Returns a position past the window limit
/// when unterminated.
uint64_t PrefilterSession::Impl::SkipDoctype(uint64_t from) {
  static constexpr simd::ByteSet kStructural("[]>\"'");
  uint64_t p = from;
  int bracket = 0;
  for (;;) {
    Lock(p);
    std::string_view span = win_.RefillAt(p);
    if (span.empty()) return win_.limit() + 1;  // unterminated
    size_t r = 0;
    bool restarted = false;
    while (r < span.size()) {
      const size_t hit = r + ScanFindAny(span.data() + r, span.size() - r,
                                         p + r, kStructural);
      if (hit == span.size()) break;  // nothing structural in this span
      const char hc = span[hit];
      if (hc == '[') {
        ++bracket;
        r = hit + 1;
      } else if (hc == ']') {
        --bracket;
        r = hit + 1;
      } else if (hc == '>') {
        if (bracket <= 0) return p + hit + 1;
        r = hit + 1;
      } else {
        // Quoted literal: skip to the matching quote, across spans. The
        // refills may slide or reallocate the buffer, so `span` is
        // re-acquired afterwards; when the literal ends inside it the
        // structural scan continues in place, otherwise it restarts past
        // the literal.
        uint64_t q = p + hit + 1;
        for (;;) {
          Lock(p);  // keep the whole construct resident in push mode
          std::string_view qs = win_.RefillAt(q);
          if (qs.empty()) return win_.limit() + 1;  // unterminated literal
          const size_t e = ScanFindByte(qs.data(), qs.size(), q,
                                        static_cast<unsigned char>(hc));
          if (e != qs.size()) {
            q += e + 1;
            break;
          }
          q += qs.size();
        }
        // The refill may have slid or reallocated the buffer; re-acquire
        // the structural span before continuing in place.
        span = win_.Span(p);
        if (!span.empty() && q - p < span.size()) {
          r = static_cast<size_t>(q - p);
        } else {
          p = q;
          restarted = true;
          break;
        }
      }
    }
    if (!restarted) p += span.size();
  }
}

/// Returns true when prolog scanning is complete (cursor_ rests on the
/// first element tag, on definitive non-prolog content, or at true EOF);
/// false when a non-final chunk ended mid-construct (cursor_ stays at the
/// construct start so the next chunk re-scans it).
bool PrefilterSession::Impl::SkipProlog() {
  // Only straight-line scanning at the very beginning of the document;
  // stops at the first '<' that opens an element tag. All scans run over
  // whole resident spans; the lock advances so the window never grows
  // (beyond one construct in push mode).
  for (;;) {
    for (;;) {  // inter-construct whitespace
      lock_floor_ = cursor_;
      Lock(cursor_);
      std::string_view span = win_.RefillAt(cursor_);
      if (span.empty()) return !MayResume();
      size_t i = 0;
      while (i < span.size() && IsXmlWhitespace(span[i])) ++i;
      cursor_ += i;
      if (i < span.size()) break;
    }
    lock_floor_ = cursor_;  // construct start: the restart point
    if (win_.Ensure(cursor_, 2) < 2) {
      // One trailing byte. In push mode it may grow into "<?xml..."; in a
      // final run the keyword search deals with it (historical behavior).
      return !MayResume();
    }
    if (win_.At(cursor_) != '<') return true;
    char next = win_.At(cursor_ + 1);
    uint64_t end = 0;
    if (next == '?') {
      end = SkipPast(cursor_ + 2, "?>");
    } else if (next == '!') {
      // Comment or DOCTYPE (with optional [...] internal subset).
      if (win_.Ensure(cursor_, 4) >= 4 && win_.At(cursor_ + 2) == '-' &&
          win_.At(cursor_ + 3) == '-') {
        end = SkipPast(cursor_ + 4, "-->");
      } else {
        end = SkipDoctype(cursor_ + 2);
      }
    } else {
      return true;  // an element tag
    }
    if (end > win_.limit() && MayResume()) return false;  // truncated
    cursor_ = end;
  }
}

Status PrefilterSession::Impl::ApplyAction(int state, uint64_t tag_begin,
                                           uint64_t tag_end, bool closing,
                                           bool bachelor) {
  const DfaState& st = tables_.states[static_cast<size_t>(state)];
  switch (st.action) {
    case Action::kNop:
      return Status::Ok();
    case Action::kCopyTag:
    case Action::kCopyTagAtts:
      if (copy_depth_ > 0) return Status::Ok();  // already inside a copy
      if (closing) return Emit(st.emit_tag);
      if (st.action == Action::kCopyTagAtts) {
        std::string_view raw = win_.View(
            tag_begin, static_cast<size_t>(tag_end + 1 - tag_begin));
        if (raw.size() < tag_end + 1 - tag_begin) {
          return Status::Internal("tag bytes not resident for copy");
        }
        return Emit(raw.substr(0,
                               static_cast<size_t>(tag_end + 1 - tag_begin)));
      }
      return Emit(bachelor ? st.emit_bachelor : st.emit_tag);
    case Action::kCopyOn:
      if (copy_depth_++ == 0) copy_flushed_ = tag_begin;
      return Status::Ok();
    case Action::kCopyOff:
      if (copy_depth_ == 0) {
        // Defensive: unmatched copy-off (possible only on invalid input);
        // emit the closing tag so output nesting stays balanced.
        return Emit(st.emit_tag);
      }
      if (--copy_depth_ == 0) {
        return EmitCopiedRange(tag_end + 1);
      }
      return Status::Ok();
  }
  return Status::Ok();
}

/// Per-query mirror of ApplyAction over the product state's action masks:
/// each query set in a mask performs its own action against its own sink
/// and copy region. Masks are mutually exclusive per query (a component
/// contributes exactly one action per state), so the per-mask loops never
/// touch the same query twice. `suppress_open_state` >= 0 marks the close
/// half of a bachelor pair: queries whose opening action already emitted
/// the "<name/>" form skip the duplicate "</name>" (the single-query
/// engine's bachelor suppression, per query).
Status PrefilterSession::Impl::ApplyMulti(int state, uint64_t tag_begin,
                                          uint64_t tag_end, bool closing,
                                          bool bachelor,
                                          int suppress_open_state) {
  const MultiQueryInfo& mq = *mq_;
  const DfaState& st = tables_.states[static_cast<size_t>(state)];
  const int words = mq.words;
  const uint64_t* copy_tag = mq.MaskAt(mq.copy_tag, state);
  const uint64_t* copy_tag_atts = mq.MaskAt(mq.copy_tag_atts, state);
  const uint64_t* copy_on = mq.MaskAt(mq.copy_on, state);
  const uint64_t* copy_off = mq.MaskAt(mq.copy_off, state);
  const uint64_t* sup_open = nullptr;
  if (suppress_open_state >= 0) {
    // Suppression needs "open action was kCopyTag/kCopyTagAtts"; fold the
    // two masks up front.
    sup_open = mq.MaskAt(mq.copy_tag, suppress_open_state);
  }
  const uint64_t* sup_open_atts =
      suppress_open_state >= 0
          ? mq.MaskAt(mq.copy_tag_atts, suppress_open_state)
          : nullptr;

  // Pass 1: copy-tag emissions. The raw-tag view is fetched at most once;
  // passes are separated because the copy-off pass below may refill the
  // window (EmitCopiedRangeFor) and invalidate it.
  std::string_view raw;
  bool raw_fetched = false;
  for (int w = 0; w < words; ++w) {
    uint64_t bits = copy_tag[w] | copy_tag_atts[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t qy =
          static_cast<size_t>(w) * 64 + static_cast<size_t>(bit);
      const uint64_t qbit = 1ull << bit;
      if (mq_copy_depth_[qy] > 0) continue;  // inside this query's copy
      if (closing) {
        if (sup_open != nullptr && (copy_tag[w] & qbit) != 0 &&
            ((sup_open[w] | sup_open_atts[w]) & qbit) != 0) {
          // Bachelor pair: this query's opening action already emitted
          // "<name/>"; suppress the duplicate "</name>".
          continue;
        }
        SMPX_RETURN_IF_ERROR(mq_sinks_[qy]->Append(st.emit_tag));
        continue;
      }
      if ((copy_tag_atts[w] & qbit) != 0) {
        if (!raw_fetched) {
          raw = win_.View(tag_begin,
                          static_cast<size_t>(tag_end + 1 - tag_begin));
          if (raw.size() < tag_end + 1 - tag_begin) {
            return Status::Internal("tag bytes not resident for copy");
          }
          raw = raw.substr(0, static_cast<size_t>(tag_end + 1 - tag_begin));
          raw_fetched = true;
        }
        SMPX_RETURN_IF_ERROR(mq_sinks_[qy]->Append(raw));
        continue;
      }
      SMPX_RETURN_IF_ERROR(
          mq_sinks_[qy]->Append(bachelor ? st.emit_bachelor : st.emit_tag));
    }
  }
  // Pass 2: copy-on.
  for (int w = 0; w < words; ++w) {
    uint64_t bits = copy_on[w];
    while (bits != 0) {
      const size_t qy = static_cast<size_t>(w) * 64 +
                        static_cast<size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      if (mq_copy_depth_[qy]++ == 0) {
        mq_copy_flushed_[qy] = tag_begin;
        if (copy_depth_++ == 0 || tag_begin < copy_flushed_) {
          copy_flushed_ = tag_begin;
        }
      }
    }
  }
  // Pass 3: copy-off.
  for (int w = 0; w < words; ++w) {
    uint64_t bits = copy_off[w];
    while (bits != 0) {
      const size_t qy = static_cast<size_t>(w) * 64 +
                        static_cast<size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      if (mq_copy_depth_[qy] == 0) {
        // Defensive: unmatched copy-off (possible only on invalid input);
        // emit the closing tag so output nesting stays balanced.
        SMPX_RETURN_IF_ERROR(mq_sinks_[qy]->Append(st.emit_tag));
        continue;
      }
      if (--mq_copy_depth_[qy] == 0) {
        SMPX_RETURN_IF_ERROR(EmitCopiedRangeFor(qy, tag_end + 1));
        --copy_depth_;
        RecomputeMqCopyFlushed(tag_end + 1);
      }
    }
  }
  return Status::Ok();
}

/// Common tail of both match handlers: performs the state transition(s) and
/// copy actions for an accepted tag.
Status PrefilterSession::Impl::FinishMatch(uint64_t pos, uint64_t tag_end,
                                           bool closing, bool bachelor,
                                           bool counted_tag, int next_state,
                                           int close_state) {
  ++stats_->matches;

  if (counted_tag) {
    if (!closing) {
      if (!bachelor) ++nesting_depth_;
    } else {
      --nesting_depth_;
    }
    cursor_ = tag_end + 1;
    jump_pending_ = true;
    return Status::Ok();
  }

  q_ = next_state;
  nesting_depth_ = 0;
  MarkVisited();
  if (mq_ != nullptr) {
    BumpQueryMatches(q_);
    SMPX_RETURN_IF_ERROR(ApplyMulti(q_, pos, tag_end, closing, bachelor,
                                    /*suppress_open_state=*/-1));
    if (bachelor) {
      // Fire the closing transition too; the product's bachelor successor
      // moves exactly the opening transition's components (see
      // MultiQueryInfo::bachelor_close).
      const int open_state = q_;
      q_ = close_state;
      nesting_depth_ = 0;
      MarkVisited();
      SMPX_RETURN_IF_ERROR(ApplyMulti(q_, pos, tag_end, /*closing=*/true,
                                      /*bachelor=*/false, open_state));
    }
    cursor_ = tag_end + 1;
    jump_pending_ = true;
    return Status::Ok();
  }
  SMPX_RETURN_IF_ERROR(ApplyAction(q_, pos, tag_end, closing, bachelor));
  if (bachelor) {
    // Fire the closing transition too (paper Fig. 4, bachelor case).
    const DfaState& opened = tables_.states[static_cast<size_t>(q_)];
    bool was_copy_tag = opened.action == Action::kCopyTag ||
                        opened.action == Action::kCopyTagAtts;
    q_ = close_state;
    nesting_depth_ = 0;
    MarkVisited();
    const DfaState& closed = tables_.states[static_cast<size_t>(q_)];
    if (was_copy_tag && closed.action == Action::kCopyTag &&
        copy_depth_ == 0) {
      // The opening action already emitted "<name/>"; suppress the
      // duplicate "</name>".
    } else {
      SMPX_RETURN_IF_ERROR(ApplyAction(q_, pos, tag_end, /*closing=*/true,
                                       /*bachelor=*/false));
    }
  }
  cursor_ = tag_end + 1;
  jump_pending_ = true;
  return Status::Ok();
}

/// Interned fast path: the tag name/attribute scan runs pointer loops over
/// whole resident spans (memchr for '>' and quote terminators), and the
/// transition resolves via one hash + one flat array load.
Status PrefilterSession::Impl::HandleMatch(uint64_t pos, int* result) {
  *result = kFalseMatch;
  // Growing view anchored at pos. pos is at or above the lock, so bytes at
  // and after pos stay resident across refills; refills may slide or
  // reallocate the buffer, which is why `span` is re-acquired from the
  // window instead of caching raw pointers.
  std::string_view span = win_.Span(pos);
  auto extend = [this, pos, &span](size_t rel) -> bool {
    if (rel < span.size()) return true;
    span = win_.View(pos, rel + 1);
    if (rel < span.size()) return true;
    scan_hit_end_ = true;
    return false;
  };

  // Parse the tag at pos: "<name" or "</name".
  size_t r = 1;
  if (!extend(r)) return Reject(result);
  bool closing = false;
  if (span[r] == '/') {
    closing = true;
    ++r;
  }
  const size_t name_rel = r;
  for (;;) {
    while (r < span.size() && IsNameChar(span[r])) ++r;
    if (r < span.size() || !extend(r)) break;
  }
  stats_->scan_chars += r;
  if (r == name_rel) return Reject(result);  // "<!", "<?", "< " ...
  const size_t name_len = r - name_rel;
  std::string_view name = span.substr(name_rel, name_len);

  const DfaState& st = tables_.states[static_cast<size_t>(q_)];

  // Resolve the interned id now: the id survives later refills, the view
  // does not. Unknown tags (¶-check rejects, names outside the vocabulary)
  // come back as -1.
  const int32_t id = tables_.interner.Find(name);

  // Recursion support: inside an opaque region, occurrences of the region's
  // own tag are balanced rather than transitioned on; only the closing tag
  // that returns the balance to zero leaves the region.
  const bool counted_tag = st.count_nesting && id >= 0 &&
                           id == st.entry_tag_id &&
                           (!closing || nesting_depth_ > 0);

  int next_state = -1;
  if (!counted_tag) {
    if (id < 0) return Reject(result);  // false match
    next_state = closing ? st.close_next_id[static_cast<size_t>(id)]
                         : st.open_next_id[static_cast<size_t>(id)];
    if (next_state < 0) return Reject(result);  // false match
  }

  // Scan to the end of the tag, skipping quoted attribute values: one
  // vectorized any-of scan finds the earliest of '>' or a quote over the
  // resident span; a quote diverts into a find-the-matching-quote skip.
  // The overwhelmingly common attribute-free tag ("<name>") short-circuits
  // the machinery.
  const size_t scan_start = r;
  if (r < span.size() && span[r] == '>') {
    // '>' directly after the name: never a bachelor (the '/' of "<t/>"
    // terminates the name scan first), no attributes to skip.
    ++stats_->scan_chars;
    if (MayResume() && scan_hit_end_) {
      *result = kNeedInput;
      return Status::Ok();
    }
    *result = kAccepted;
    return FinishMatch(pos, pos + r, closing, /*bachelor=*/false,
                       counted_tag, next_state, /*close_state=*/-1);
  }
  for (;;) {
    if (r >= span.size() && !extend(r)) {
      if (MayResume()) {
        *result = kNeedInput;
        return Status::Ok();
      }
      return Status::ParseError("unterminated tag at offset " +
                                std::to_string(pos));
    }
    static constexpr simd::ByteSet kTagEnd(">\"'");
    const size_t hit = r + ScanFindAny(span.data() + r, span.size() - r,
                                       pos + r, kTagEnd);
    if (hit == span.size()) {
      r = span.size();
      continue;
    }
    if (span[hit] == '>') {
      r = hit;
      break;  // position of '>'
    }
    const char qc = span[hit];
    r = hit + 1;
    for (;;) {
      if (r >= span.size() && !extend(r)) {
        if (MayResume()) {
          *result = kNeedInput;
          return Status::Ok();
        }
        return Status::ParseError("unterminated attribute at offset " +
                                  std::to_string(pos));
      }
      const size_t end = ScanFindByte(span.data() + r, span.size() - r,
                                      pos + r,
                                      static_cast<unsigned char>(qc));
      if (end != span.size() - r) {
        r += end + 1;
        break;
      }
      r = span.size();
    }
  }
  const bool bachelor = !closing && span[r - 1] == '/';
  stats_->scan_chars += r - scan_start + 1;
  const uint64_t tag_end = pos + r;  // position of '>'

  if (MayResume() && scan_hit_end_) {
    // The name (or an attribute) scan was cut short by the chunk end; the
    // re-run over the full bytes may resolve differently.
    *result = kNeedInput;
    return Status::Ok();
  }
  *result = kAccepted;

  // For bachelor tags, resolve the closing transition now; the interned id
  // makes this a single array load even after window refills. Multi-query
  // products resolve through the precomputed bachelor successor instead:
  // the regular close edge would also move components that did NOT take
  // the opening transition, but an idle component's independent run never
  // sees the synthetic close inside "<name/>".
  int close_state = -1;
  if (!counted_tag && bachelor) {
    if (mq_ != nullptr) {
      close_state =
          mq_->bachelor_close[static_cast<size_t>(next_state)];
    } else {
      const DfaState& opened =
          tables_.states[static_cast<size_t>(next_state)];
      close_state = opened.close_next_id[static_cast<size_t>(id)];
    }
    if (close_state < 0) {
      std::string_view nm =
          win_.View(pos + name_rel, name_len).substr(0, name_len);
      return Status::ParseError("bachelor tag <" + std::string(nm) +
                                "/> has no closing transition; input "
                                "invalid w.r.t. the DTD");
    }
  }
  return FinishMatch(pos, tag_end, closing, bachelor, counted_tag,
                     next_state, close_state);
}

/// Legacy path (TableOptions::use_map_dispatch): per-byte window access and
/// std::map tag dispatch; kept verbatim as the differential-testing and
/// benchmarking baseline.
Status PrefilterSession::Impl::HandleMatchLegacy(uint64_t pos, int* result) {
  *result = kFalseMatch;
  // The whole scan operates on a view anchored at pos (which is above the
  // lock, so it stays resident); At() re-acquires the view only when the
  // scan outruns the currently buffered bytes.
  std::string_view v = win_.View(pos, 2);
  auto at = [this, pos, &v](uint64_t abs) -> int {
    size_t rel = static_cast<size_t>(abs - pos);
    if (rel < v.size()) return static_cast<unsigned char>(v[rel]);
    if (win_.Ensure(abs, 1) == 0) {
      scan_hit_end_ = true;
      return -1;
    }
    v = win_.View(pos, rel + 1);
    return static_cast<unsigned char>(v[rel]);
  };

  // Parse the tag at pos: "<name" or "</name", then scan to '>' / '/>'.
  uint64_t p = pos + 1;
  bool closing = false;
  int c = at(p);
  if (c < 0) return Reject(result);
  if (c == '/') {
    closing = true;
    ++p;
  }
  uint64_t name_begin = p;
  while ((c = at(p)) >= 0 && IsNameChar(static_cast<char>(c))) ++p;
  stats_->scan_chars += p - pos;
  if (p == name_begin) return Reject(result);  // "<!", "<?", "< " ...
  size_t name_len = static_cast<size_t>(p - name_begin);
  std::string_view name =
      v.substr(static_cast<size_t>(name_begin - pos), name_len);

  const DfaState& st = tables_.states[static_cast<size_t>(q_)];

  bool counted_tag = st.count_nesting && name == st.entry_name &&
                     (!closing || nesting_depth_ > 0);

  // Look the tagname up in the frontier transition maps; reject prefixes of
  // longer names and names with no transition (the paper's (¶) check).
  int next_state = -1;
  if (!counted_tag) {
    auto& map = closing ? st.close_next : st.open_next;
    auto it = map.find(name);
    if (it == map.end()) return Reject(result);  // false match
    next_state = it->second;
  }

  // Scan to the end of the tag, skipping quoted attribute values.
  bool bachelor = false;
  uint64_t scan_start = p;
  for (;;) {
    c = at(p);
    if (c < 0) {
      if (MayResume()) {
        *result = kNeedInput;
        return Status::Ok();
      }
      return Status::ParseError("unterminated tag at offset " +
                                std::to_string(pos));
    }
    if (c == '>') {
      bachelor = !closing && at(p - 1) == '/';
      break;
    }
    if (c == '"' || c == '\'') {
      int quote = c;
      ++p;
      while ((c = at(p)) >= 0 && c != quote) ++p;
      if (c < 0) {
        if (MayResume()) {
          *result = kNeedInput;
          return Status::Ok();
        }
        return Status::ParseError("unterminated attribute at offset " +
                                  std::to_string(pos));
      }
    }
    ++p;
  }
  stats_->scan_chars += p - scan_start + 1;
  uint64_t tag_end = p;  // position of '>'

  if (MayResume() && scan_hit_end_) {
    *result = kNeedInput;
    return Status::Ok();
  }
  *result = kAccepted;

  // For bachelor tags, resolve the closing transition now. The tag-end scan
  // above may have slid or reallocated the window buffer, so `name` must be
  // re-acquired (its bytes are still resident -- they sit above the lock).
  int close_state = -1;
  if (!counted_tag && bachelor) {
    name = win_.View(name_begin, name_len).substr(0, name_len);
    const DfaState& opened = tables_.states[static_cast<size_t>(next_state)];
    auto cit = opened.close_next.find(name);
    if (cit == opened.close_next.end()) {
      return Status::ParseError("bachelor tag <" + std::string(name) +
                                "/> has no closing transition; input "
                                "invalid w.r.t. the DTD");
    }
    close_state = cit->second;
  }
  return FinishMatch(pos, tag_end, closing, bachelor, counted_tag,
                     next_state, close_state);
}

PrefilterSession::Impl::Step PrefilterSession::Impl::Drive() {
  if (!status_.ok()) return Step::kError;
  if (!prolog_done_) {
    drained_cleanly_ = false;  // mid-prolog checkpoints are not hand-offs
    if (!SkipProlog()) return Step::kNeedMore;
    prolog_done_ = true;
  }

  while (!tables_.states[static_cast<size_t>(q_)].is_final) {
    const DfaState& st = tables_.states[static_cast<size_t>(q_)];
    if (st.matcher == nullptr) {
      status_ =
          Status::Internal("stuck in non-final state without vocabulary");
      return Step::kError;
    }
    // Initial jump (paper table J), once per state entry (a suspension
    // re-enters this loop without a new entry).
    if (jump_pending_) {
      jump_pending_ = false;
      if (st.jump > 0) {
        cursor_ += st.jump;
        ++stats_->initial_jumps;
        stats_->initial_jump_chars += st.jump;
      }
    }
    // Search for the closest frontier keyword, refilling the window as
    // needed; the overlap keeps partially-seen keywords matchable.
    int handled = kFalseMatch;
    for (;;) {
      if (opts_.cancel != nullptr &&
          opts_.cancel->load(std::memory_order_relaxed)) {
        status_ = Status::Cancelled("session cancelled at safe point");
        return Step::kError;
      }
      MarkSafePoint();
      Lock(cursor_);
      std::string_view view = win_.View(cursor_, st.max_keyword);
      if (!view.empty()) {
        // Counted per Search call, inside the retry loop: false-match
        // retries and window refills each run a fresh search.
        if (st.keywords.size() == 1) {
          ++stats_->bm_searches;
        } else {
          ++stats_->cw_searches;
        }
        strmatch::Match m;
        if (use_plane_) {
          // The view's end is the resident-span end (View returns the
          // maximal view), which is exactly the plane binding's end -- the
          // invariant the matchers' pair-probe tail masking relies on.
          BindPlane();
          strmatch::PlaneContext ctx{&plane_, cursor_};
          m = st.matcher->Search(view, 0, &stats_->search, &ctx);
        } else {
          m = st.matcher->Search(view, 0, &stats_->search);
        }
        if (m.found()) {
          uint64_t pos = cursor_ + m.pos;
          scan_hit_end_ = false;
          Status s = interned_ ? HandleMatch(pos, &handled)
                               : HandleMatchLegacy(pos, &handled);
          if (!s.ok()) {
            status_ = s;
            return Step::kError;
          }
          if (handled == kNeedInput) {
            // The candidate scan was truncated by the chunk end: roll back
            // to the safe point and re-run it when more bytes arrive.
            RestoreSafePoint();
            drained_cleanly_ = false;
            return Step::kNeedMore;
          }
          if (handled == kAccepted) break;
          ++stats_->false_matches;
          cursor_ = pos + 1;
          continue;
        }
      }
      // No match in the resident view. Advance to the window tail that
      // could still hold a partially-seen keyword, release the lock up to
      // there, then probe for more input (slide-only, never grows).
      uint64_t limit = win_.limit();
      if (MayResume() && win_.eof_seen()) {
        // The chunk feed is drained: everything up to `limit` has been
        // searched for complete occurrences. Suspend keeping the whole
        // keyword-length overlap tail -- without the serial path's forced
        // one-byte progress, which would skip a keyword that the next
        // chunk completes.
        uint64_t next = limit > st.max_keyword - 1
                            ? limit - (st.max_keyword - 1)
                            : cursor_;
        cursor_ = std::max(cursor_, next);
        lock_floor_ = cursor_;
        Lock(cursor_);
        drained_cleanly_ = true;
        return Step::kNeedMore;
      }
      uint64_t next = limit > st.max_keyword - 1
                          ? limit - (st.max_keyword - 1)
                          : cursor_ + 1;
      cursor_ = std::max(cursor_ + 1, next);
      lock_floor_ = cursor_;
      Lock(cursor_);
      if (win_.AtEnd(cursor_)) {
        if (MayResume()) {
          // More input arrived between the view and this probe; loop.
          continue;
        }
        status_ = Status::ParseError(
            "keyword not found before end of input (document invalid "
            "w.r.t. the DTD?)");
        return Step::kError;
      }
    }
    if (!status_.ok()) return Step::kError;  // surfaced from the evict hook
  }
  return Step::kDone;
}

PrefilterSession::PrefilterSession(const RuntimeTables& tables,
                                   OutputSink* out, RunStats* stats,
                                   const EngineOptions& opts,
                                   const SessionCheckpoint* start)
    : impl_(new Impl(tables, /*in=*/nullptr, out, stats, opts, start)) {}

PrefilterSession::PrefilterSession(const RuntimeTables& tables,
                                   std::vector<OutputSink*> query_sinks,
                                   std::vector<QueryRunStats>* query_stats,
                                   RunStats* stats,
                                   const EngineOptions& opts,
                                   const SessionCheckpoint* start)
    : impl_(new Impl(tables, /*in=*/nullptr, /*out=*/nullptr, stats, opts,
                     start, /*multi_mode=*/true, std::move(query_sinks),
                     query_stats)) {}

PrefilterSession::~PrefilterSession() = default;

Status PrefilterSession::Resume(std::string_view chunk) {
  return impl_->Resume(chunk);
}

Status PrefilterSession::Finish() { return impl_->Finish(); }

bool PrefilterSession::finished() const { return impl_->finished(); }

SessionCheckpoint PrefilterSession::checkpoint() const {
  return impl_->checkpoint();
}

bool PrefilterSession::drained_cleanly() const {
  return impl_->drained_cleanly();
}

void PrefilterSession::FinalizeStats() { impl_->FinalizeStats(); }

const std::vector<bool>& PrefilterSession::visited() const {
  return impl_->visited();
}

Status RunEngine(const RuntimeTables& tables, InputStream* in,
                 OutputSink* out, RunStats* stats,
                 const EngineOptions& opts) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  PrefilterSession::Impl engine(tables, in, out, stats, opts,
                                /*start=*/nullptr);
  return engine.Run();
}

}  // namespace smpx::core
