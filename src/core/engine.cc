#include "core/engine.h"

#include <algorithm>
#include <string>

#include "common/strings.h"

namespace smpx::core {
namespace {

/// Mutable run state shared by the helpers below.
class Engine {
 public:
  Engine(const RuntimeTables& tables, InputStream* in, OutputSink* out,
         RunStats* stats, const EngineOptions& opts)
      : tables_(tables),
        win_(in, opts.window_capacity),
        out_(out),
        stats_(stats),
        opts_(opts) {
    win_.set_evict_fn([this](uint64_t begin, std::string_view data) {
      OnEvict(begin, data);
    });
  }

  Status Run();

 private:
  // Incremental flush of the active copy region when the window slides.
  void OnEvict(uint64_t begin, std::string_view data) {
    if (copy_depth_ == 0) return;
    uint64_t end = begin + data.size();
    if (end <= copy_flushed_) return;
    uint64_t from = std::max(begin, copy_flushed_);
    Status s = out_->Append(
        data.substr(static_cast<size_t>(from - begin),
                    static_cast<size_t>(end - from)));
    if (!s.ok() && status_.ok()) status_ = s;
    copy_flushed_ = end;
  }

  Status Emit(std::string_view data) { return out_->Append(data); }

  /// Emits the still-buffered tail of [copy_flushed_, end).
  Status EmitCopiedRange(uint64_t end) {
    if (end <= copy_flushed_) return Status::Ok();
    uint64_t from = std::max(copy_flushed_, win_.base());
    std::string_view view = win_.View(from, static_cast<size_t>(end - from));
    if (view.size() < end - from) {
      return Status::Internal("copy region not resident");
    }
    copy_flushed_ = end;
    return Emit(view.substr(0, static_cast<size_t>(end - from)));
  }

  void SkipProlog();
  Status HandleMatch(uint64_t pos, int* next_unsearched);
  Status ApplyAction(int state, uint64_t tag_begin, uint64_t tag_end,
                     bool closing, bool bachelor);

  const RuntimeTables& tables_;
  SlidingWindow win_;
  OutputSink* out_;
  RunStats* stats_;
  EngineOptions opts_;

  int q_ = 0;
  uint64_t cursor_ = 0;        // next position to search from
  uint64_t nesting_depth_ = 0; // open <t> balance inside an opaque region
  int copy_depth_ = 0;
  uint64_t copy_flushed_ = 0;  // everything below this is already emitted
  Status status_;
  std::vector<bool> visited_;

  void MarkVisited() {
    if (!visited_[static_cast<size_t>(q_)]) {
      visited_[static_cast<size_t>(q_)] = true;
    }
  }
};

void Engine::SkipProlog() {
  // Only straight-line scanning at the very beginning of the document;
  // stops at the first '<' that opens an element tag.
  for (;;) {
    if (win_.Ensure(cursor_, 2) == 0) return;
    while (win_.Ensure(cursor_, 1) > 0 && IsXmlWhitespace(win_.At(cursor_))) {
      ++cursor_;
    }
    if (win_.Ensure(cursor_, 2) < 2 || win_.At(cursor_) != '<') return;
    char next = win_.At(cursor_ + 1);
    if (next == '?') {
      // <? ... ?>
      uint64_t p = cursor_ + 2;
      while (win_.Ensure(p, 2) >= 2 &&
             !(win_.At(p) == '?' && win_.At(p + 1) == '>')) {
        ++p;
      }
      cursor_ = p + 2;
      continue;
    }
    if (next == '!') {
      // Comment or DOCTYPE (with optional [...] internal subset).
      if (win_.Ensure(cursor_, 4) >= 4 && win_.At(cursor_ + 2) == '-' &&
          win_.At(cursor_ + 3) == '-') {
        uint64_t p = cursor_ + 4;
        while (win_.Ensure(p, 3) >= 3 &&
               !(win_.At(p) == '-' && win_.At(p + 1) == '-' &&
                 win_.At(p + 2) == '>')) {
          ++p;
        }
        cursor_ = p + 3;
        continue;
      }
      uint64_t p = cursor_ + 2;
      int bracket = 0;
      while (win_.Ensure(p, 1) > 0) {
        char c = win_.At(p);
        if (c == '[') ++bracket;
        if (c == ']') --bracket;
        if (c == '>' && bracket <= 0) break;
        ++p;
      }
      cursor_ = p + 1;
      continue;
    }
    return;  // an element tag (or EOF)
  }
}

Status Engine::ApplyAction(int state, uint64_t tag_begin, uint64_t tag_end,
                           bool closing, bool bachelor) {
  const DfaState& st = tables_.states[static_cast<size_t>(state)];
  switch (st.action) {
    case Action::kNop:
      return Status::Ok();
    case Action::kCopyTag:
    case Action::kCopyTagAtts:
      if (copy_depth_ > 0) return Status::Ok();  // already inside a copy
      if (closing) return Emit(st.emit_tag);
      if (st.action == Action::kCopyTagAtts) {
        std::string_view raw = win_.View(
            tag_begin, static_cast<size_t>(tag_end + 1 - tag_begin));
        if (raw.size() < tag_end + 1 - tag_begin) {
          return Status::Internal("tag bytes not resident for copy");
        }
        return Emit(raw.substr(0,
                               static_cast<size_t>(tag_end + 1 - tag_begin)));
      }
      return Emit(bachelor ? st.emit_bachelor : st.emit_tag);
    case Action::kCopyOn:
      if (copy_depth_++ == 0) copy_flushed_ = tag_begin;
      return Status::Ok();
    case Action::kCopyOff:
      if (copy_depth_ == 0) {
        // Defensive: unmatched copy-off (possible only on invalid input);
        // emit the closing tag so output nesting stays balanced.
        return Emit(st.emit_tag);
      }
      if (--copy_depth_ == 0) {
        return EmitCopiedRange(tag_end + 1);
      }
      return Status::Ok();
  }
  return Status::Ok();
}

/// Returns values for HandleMatch's caller.
enum HandleResult { kFalseMatch = 0, kAccepted = 1 };

Status Engine::HandleMatch(uint64_t pos, int* result) {
  *result = kFalseMatch;
  // The whole scan operates on a view anchored at pos (which is above the
  // lock, so it stays resident); At() re-acquires the view only when the
  // scan outruns the currently buffered bytes.
  std::string_view v = win_.View(pos, 2);
  auto at = [this, pos, &v](uint64_t abs) -> int {
    size_t rel = static_cast<size_t>(abs - pos);
    if (rel < v.size()) return static_cast<unsigned char>(v[rel]);
    if (win_.Ensure(abs, 1) == 0) return -1;
    v = win_.View(pos, rel + 1);
    return static_cast<unsigned char>(v[rel]);
  };

  // Parse the tag at pos: "<name" or "</name", then scan to '>' / '/>'.
  uint64_t p = pos + 1;
  bool closing = false;
  int c = at(p);
  if (c < 0) return Status::Ok();
  if (c == '/') {
    closing = true;
    ++p;
  }
  uint64_t name_begin = p;
  while ((c = at(p)) >= 0 && IsNameChar(static_cast<char>(c))) ++p;
  if (stats_ != nullptr) stats_->scan_chars += p - pos;
  if (p == name_begin) return Status::Ok();  // "<!", "<?", "< " ...
  size_t name_len = static_cast<size_t>(p - name_begin);
  std::string_view name =
      v.substr(static_cast<size_t>(name_begin - pos), name_len);

  const DfaState& st = tables_.states[static_cast<size_t>(q_)];

  // Recursion support: inside an opaque region, occurrences of the region's
  // own tag are balanced rather than transitioned on; only the closing tag
  // that returns the balance to zero leaves the region.
  bool counted_tag = st.count_nesting && name == st.entry_name &&
                     (!closing || nesting_depth_ > 0);

  // Look the tagname up in the frontier transition maps; reject prefixes of
  // longer names and names with no transition (the paper's (¶) check).
  int next_state = -1;
  if (!counted_tag) {
    auto& map = closing ? st.close_next : st.open_next;
    auto it = map.find(name);
    if (it == map.end()) return Status::Ok();  // false match
    next_state = it->second;
  }

  // Scan to the end of the tag, skipping quoted attribute values.
  bool bachelor = false;
  uint64_t scan_start = p;
  for (;;) {
    c = at(p);
    if (c < 0) {
      return Status::ParseError("unterminated tag at offset " +
                                std::to_string(pos));
    }
    if (c == '>') {
      bachelor = !closing && at(p - 1) == '/';
      break;
    }
    if (c == '"' || c == '\'') {
      int quote = c;
      ++p;
      while ((c = at(p)) >= 0 && c != quote) ++p;
      if (c < 0) {
        return Status::ParseError("unterminated attribute at offset " +
                                  std::to_string(pos));
      }
    }
    ++p;
  }
  if (stats_ != nullptr) stats_->scan_chars += p - scan_start + 1;
  uint64_t tag_end = p;  // position of '>'

  *result = kAccepted;
  if (stats_ != nullptr) ++stats_->matches;

  if (counted_tag) {
    if (!closing) {
      if (!bachelor) ++nesting_depth_;
    } else {
      --nesting_depth_;
    }
    cursor_ = tag_end + 1;
    return Status::Ok();
  }

  // For bachelor tags, resolve the closing transition now. The tag-end scan
  // above may have slid or reallocated the window buffer, so `name` must be
  // re-acquired (its bytes are still resident -- they sit above the lock).
  int close_state = -1;
  if (bachelor) {
    name = win_.View(name_begin, name_len).substr(0, name_len);
    const DfaState& opened = tables_.states[static_cast<size_t>(next_state)];
    auto cit = opened.close_next.find(name);
    if (cit == opened.close_next.end()) {
      return Status::ParseError("bachelor tag <" + std::string(name) +
                                "/> has no closing transition; input "
                                "invalid w.r.t. the DTD");
    }
    close_state = cit->second;
  }

  q_ = next_state;
  nesting_depth_ = 0;
  MarkVisited();
  SMPX_RETURN_IF_ERROR(ApplyAction(q_, pos, tag_end, closing, bachelor));
  if (bachelor) {
    // Fire the closing transition too (paper Fig. 4, bachelor case).
    const DfaState& opened = tables_.states[static_cast<size_t>(q_)];
    bool was_copy_tag = opened.action == Action::kCopyTag ||
                        opened.action == Action::kCopyTagAtts;
    q_ = close_state;
    nesting_depth_ = 0;
    MarkVisited();
    const DfaState& closed = tables_.states[static_cast<size_t>(q_)];
    if (was_copy_tag && closed.action == Action::kCopyTag &&
        copy_depth_ == 0) {
      // The opening action already emitted "<name/>"; suppress the
      // duplicate "</name>".
    } else {
      SMPX_RETURN_IF_ERROR(ApplyAction(q_, pos, tag_end, /*closing=*/true,
                                       /*bachelor=*/false));
    }
  }
  cursor_ = tag_end + 1;
  return Status::Ok();
}

Status Engine::Run() {
  visited_.assign(tables_.states.size(), false);
  q_ = tables_.initial;
  MarkVisited();
  if (opts_.skip_prolog) SkipProlog();

  while (!tables_.states[static_cast<size_t>(q_)].is_final) {
    const DfaState& st = tables_.states[static_cast<size_t>(q_)];
    if (st.matcher == nullptr) {
      return Status::Internal("stuck in non-final state without vocabulary");
    }
    // Initial jump (paper table J).
    if (st.jump > 0) {
      cursor_ += st.jump;
      if (stats_ != nullptr) {
        ++stats_->initial_jumps;
        stats_->initial_jump_chars += st.jump;
      }
    }
    if (stats_ != nullptr) {
      if (st.keywords.size() == 1) {
        ++stats_->bm_searches;
      } else {
        ++stats_->cw_searches;
      }
    }
    // Search for the closest frontier keyword, refilling the window as
    // needed; the overlap keeps partially-seen keywords matchable.
    int handled = kFalseMatch;
    for (;;) {
      win_.set_lock(cursor_);
      std::string_view view = win_.View(cursor_, st.max_keyword);
      if (!view.empty()) {
        strmatch::Match m = st.matcher->Search(view, 0, &stats_->search);
        if (m.found()) {
          uint64_t pos = cursor_ + m.pos;
          SMPX_RETURN_IF_ERROR(HandleMatch(pos, &handled));
          if (handled == kAccepted) break;
          if (stats_ != nullptr) ++stats_->false_matches;
          cursor_ = pos + 1;
          continue;
        }
      }
      // No match in the resident view. Advance to the window tail that
      // could still hold a partially-seen keyword, release the lock up to
      // there, then probe for more input (slide-only, never grows).
      uint64_t limit = win_.limit();
      uint64_t next = limit > st.max_keyword - 1
                          ? limit - (st.max_keyword - 1)
                          : cursor_ + 1;
      cursor_ = std::max(cursor_ + 1, next);
      win_.set_lock(cursor_);
      if (win_.AtEnd(cursor_)) {
        return Status::ParseError(
            "keyword not found before end of input (document invalid "
            "w.r.t. the DTD?)");
      }
    }
    SMPX_RETURN_IF_ERROR(status_);  // surfaced from the evict hook
  }

  if (stats_ != nullptr) {
    stats_->input_bytes = win_.bytes_read();
    stats_->output_bytes = out_->bytes_written();
    stats_->window_peak = win_.max_capacity_used();
    for (bool v : visited_) {
      if (v) ++stats_->states_visited;
    }
  }
  return Status::Ok();
}

}  // namespace

Status RunEngine(const RuntimeTables& tables, InputStream* in,
                 OutputSink* out, RunStats* stats,
                 const EngineOptions& opts) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  RunStats local_stats;
  Engine engine(tables, in, out, stats != nullptr ? stats : &local_stats,
                opts);
  return engine.Run();
}

}  // namespace smpx::core
