#include "core/engine.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/strings.h"

namespace smpx::core {
namespace {

/// Returns values for HandleMatch's caller.
enum HandleResult { kFalseMatch = 0, kAccepted = 1 };

/// Mutable run state shared by the helpers below.
class Engine {
 public:
  Engine(const RuntimeTables& tables, InputStream* in, OutputSink* out,
         RunStats* stats, const EngineOptions& opts)
      : tables_(tables),
        win_(in, opts.window_capacity),
        out_(out),
        stats_(stats),
        opts_(opts),
        interned_(tables.interned_dispatch) {
    win_.set_evict_fn([this](uint64_t begin, std::string_view data) {
      OnEvict(begin, data);
    });
  }

  Status Run();

 private:
  // Incremental flush of the active copy region when the window slides.
  void OnEvict(uint64_t begin, std::string_view data) {
    if (copy_depth_ == 0) return;
    uint64_t end = begin + data.size();
    if (end <= copy_flushed_) return;
    uint64_t from = std::max(begin, copy_flushed_);
    Status s = out_->Append(
        data.substr(static_cast<size_t>(from - begin),
                    static_cast<size_t>(end - from)));
    if (!s.ok() && status_.ok()) status_ = s;
    copy_flushed_ = end;
  }

  Status Emit(std::string_view data) { return out_->Append(data); }

  /// Emits the still-buffered tail of [copy_flushed_, end).
  Status EmitCopiedRange(uint64_t end) {
    if (end <= copy_flushed_) return Status::Ok();
    uint64_t from = std::max(copy_flushed_, win_.base());
    std::string_view view = win_.View(from, static_cast<size_t>(end - from));
    if (view.size() < end - from) {
      return Status::Internal("copy region not resident");
    }
    copy_flushed_ = end;
    return Emit(view.substr(0, static_cast<size_t>(end - from)));
  }

  void SkipProlog();
  uint64_t SkipPast(uint64_t from, std::string_view term);
  Status HandleMatch(uint64_t pos, int* next_unsearched);
  Status HandleMatchLegacy(uint64_t pos, int* next_unsearched);
  Status FinishMatch(uint64_t pos, uint64_t tag_end, bool closing,
                     bool bachelor, bool counted_tag, int next_state,
                     int close_state);
  Status ApplyAction(int state, uint64_t tag_begin, uint64_t tag_end,
                     bool closing, bool bachelor);

  const RuntimeTables& tables_;
  SlidingWindow win_;
  OutputSink* out_;
  RunStats* stats_;
  EngineOptions opts_;
  const bool interned_;

  int q_ = 0;
  uint64_t cursor_ = 0;        // next position to search from
  uint64_t nesting_depth_ = 0; // open <t> balance inside an opaque region
  int copy_depth_ = 0;
  uint64_t copy_flushed_ = 0;  // everything below this is already emitted
  Status status_;
  std::vector<bool> visited_;

  void MarkVisited() {
    if (!visited_[static_cast<size_t>(q_)]) {
      visited_[static_cast<size_t>(q_)] = true;
    }
  }
};

/// Scans past the next occurrence of `term` (2-3 bytes) starting at `from`,
/// memchr-ing for its first byte over whole resident spans. Returns the
/// position one past the terminator; past end-of-input when unterminated.
uint64_t Engine::SkipPast(uint64_t from, std::string_view term) {
  const size_t tn = term.size();
  uint64_t p = from;
  for (;;) {
    win_.set_lock(p);
    std::string_view span = win_.View(p, tn);
    if (span.size() < tn) return win_.limit() + tn;  // unterminated
    size_t r = 0;
    while (r + tn <= span.size()) {
      const char* hit = static_cast<const char*>(
          std::memchr(span.data() + r, term[0], span.size() - r - (tn - 1)));
      if (hit == nullptr) break;
      r = static_cast<size_t>(hit - span.data());
      if (std::memcmp(hit, term.data(), tn) == 0) return p + r + tn;
      ++r;
    }
    // Keep tn-1 tail bytes resident so a straddling terminator is seen
    // (span.size() >= tn here -- shorter spans returned above).
    p += span.size() - (tn - 1);
  }
}

void Engine::SkipProlog() {
  // Only straight-line scanning at the very beginning of the document;
  // stops at the first '<' that opens an element tag. All scans run over
  // whole resident spans; the lock advances so the window never grows.
  for (;;) {
    for (;;) {  // inter-construct whitespace
      win_.set_lock(cursor_);
      std::string_view span = win_.RefillAt(cursor_);
      if (span.empty()) return;
      size_t i = 0;
      while (i < span.size() && IsXmlWhitespace(span[i])) ++i;
      cursor_ += i;
      if (i < span.size()) break;
    }
    if (win_.Ensure(cursor_, 2) < 2 || win_.At(cursor_) != '<') return;
    char next = win_.At(cursor_ + 1);
    if (next == '?') {
      cursor_ = SkipPast(cursor_ + 2, "?>");
      continue;
    }
    if (next == '!') {
      // Comment or DOCTYPE (with optional [...] internal subset).
      if (win_.Ensure(cursor_, 4) >= 4 && win_.At(cursor_ + 2) == '-' &&
          win_.At(cursor_ + 3) == '-') {
        cursor_ = SkipPast(cursor_ + 4, "-->");
        continue;
      }
      uint64_t p = cursor_ + 2;
      int bracket = 0;
      bool done = false;
      while (!done) {
        win_.set_lock(p);
        std::string_view span = win_.RefillAt(p);
        if (span.empty()) break;  // EOF inside the DOCTYPE
        size_t i = 0;
        for (; i < span.size(); ++i) {
          char c = span[i];
          if (c == '[') ++bracket;
          if (c == ']') --bracket;
          if (c == '>' && bracket <= 0) {
            done = true;
            break;
          }
        }
        p += i;
      }
      cursor_ = p + 1;
      continue;
    }
    return;  // an element tag (or EOF)
  }
}

Status Engine::ApplyAction(int state, uint64_t tag_begin, uint64_t tag_end,
                           bool closing, bool bachelor) {
  const DfaState& st = tables_.states[static_cast<size_t>(state)];
  switch (st.action) {
    case Action::kNop:
      return Status::Ok();
    case Action::kCopyTag:
    case Action::kCopyTagAtts:
      if (copy_depth_ > 0) return Status::Ok();  // already inside a copy
      if (closing) return Emit(st.emit_tag);
      if (st.action == Action::kCopyTagAtts) {
        std::string_view raw = win_.View(
            tag_begin, static_cast<size_t>(tag_end + 1 - tag_begin));
        if (raw.size() < tag_end + 1 - tag_begin) {
          return Status::Internal("tag bytes not resident for copy");
        }
        return Emit(raw.substr(0,
                               static_cast<size_t>(tag_end + 1 - tag_begin)));
      }
      return Emit(bachelor ? st.emit_bachelor : st.emit_tag);
    case Action::kCopyOn:
      if (copy_depth_++ == 0) copy_flushed_ = tag_begin;
      return Status::Ok();
    case Action::kCopyOff:
      if (copy_depth_ == 0) {
        // Defensive: unmatched copy-off (possible only on invalid input);
        // emit the closing tag so output nesting stays balanced.
        return Emit(st.emit_tag);
      }
      if (--copy_depth_ == 0) {
        return EmitCopiedRange(tag_end + 1);
      }
      return Status::Ok();
  }
  return Status::Ok();
}

/// Common tail of both match handlers: performs the state transition(s) and
/// copy actions for an accepted tag.
Status Engine::FinishMatch(uint64_t pos, uint64_t tag_end, bool closing,
                           bool bachelor, bool counted_tag, int next_state,
                           int close_state) {
  if (stats_ != nullptr) ++stats_->matches;

  if (counted_tag) {
    if (!closing) {
      if (!bachelor) ++nesting_depth_;
    } else {
      --nesting_depth_;
    }
    cursor_ = tag_end + 1;
    return Status::Ok();
  }

  q_ = next_state;
  nesting_depth_ = 0;
  MarkVisited();
  SMPX_RETURN_IF_ERROR(ApplyAction(q_, pos, tag_end, closing, bachelor));
  if (bachelor) {
    // Fire the closing transition too (paper Fig. 4, bachelor case).
    const DfaState& opened = tables_.states[static_cast<size_t>(q_)];
    bool was_copy_tag = opened.action == Action::kCopyTag ||
                        opened.action == Action::kCopyTagAtts;
    q_ = close_state;
    nesting_depth_ = 0;
    MarkVisited();
    const DfaState& closed = tables_.states[static_cast<size_t>(q_)];
    if (was_copy_tag && closed.action == Action::kCopyTag &&
        copy_depth_ == 0) {
      // The opening action already emitted "<name/>"; suppress the
      // duplicate "</name>".
    } else {
      SMPX_RETURN_IF_ERROR(ApplyAction(q_, pos, tag_end, /*closing=*/true,
                                       /*bachelor=*/false));
    }
  }
  cursor_ = tag_end + 1;
  return Status::Ok();
}

/// Interned fast path: the tag name/attribute scan runs pointer loops over
/// whole resident spans (memchr for '>' and quote terminators), and the
/// transition resolves via one hash + one flat array load.
Status Engine::HandleMatch(uint64_t pos, int* result) {
  *result = kFalseMatch;
  // Growing view anchored at pos. pos is at or above the lock, so bytes at
  // and after pos stay resident across refills; refills may slide or
  // reallocate the buffer, which is why `span` is re-acquired from the
  // window instead of caching raw pointers.
  std::string_view span = win_.Span(pos);
  auto extend = [this, pos, &span](size_t rel) -> bool {
    if (rel < span.size()) return true;
    span = win_.View(pos, rel + 1);
    return rel < span.size();
  };

  // Parse the tag at pos: "<name" or "</name".
  size_t r = 1;
  if (!extend(r)) return Status::Ok();
  bool closing = false;
  if (span[r] == '/') {
    closing = true;
    ++r;
  }
  const size_t name_rel = r;
  for (;;) {
    while (r < span.size() && IsNameChar(span[r])) ++r;
    if (r < span.size() || !extend(r)) break;
  }
  if (stats_ != nullptr) stats_->scan_chars += r;
  if (r == name_rel) return Status::Ok();  // "<!", "<?", "< " ...
  const size_t name_len = r - name_rel;
  std::string_view name = span.substr(name_rel, name_len);

  const DfaState& st = tables_.states[static_cast<size_t>(q_)];

  // Resolve the interned id now: the id survives later refills, the view
  // does not. Unknown tags (¶-check rejects, names outside the vocabulary)
  // come back as -1.
  const int32_t id = tables_.interner.Find(name);

  // Recursion support: inside an opaque region, occurrences of the region's
  // own tag are balanced rather than transitioned on; only the closing tag
  // that returns the balance to zero leaves the region.
  const bool counted_tag = st.count_nesting && id >= 0 &&
                           id == st.entry_tag_id &&
                           (!closing || nesting_depth_ > 0);

  int next_state = -1;
  if (!counted_tag) {
    if (id < 0) return Status::Ok();  // false match
    next_state = closing ? st.close_next_id[static_cast<size_t>(id)]
                         : st.open_next_id[static_cast<size_t>(id)];
    if (next_state < 0) return Status::Ok();  // false match
  }

  // Scan to the end of the tag, skipping quoted attribute values: memchr
  // for '>' over the resident span; a quote before it diverts into a
  // memchr-for-the-matching-quote skip. The overwhelmingly common
  // attribute-free tag ("<name>") short-circuits the machinery.
  const size_t scan_start = r;
  if (r < span.size() && span[r] == '>') {
    // '>' directly after the name: never a bachelor (the '/' of "<t/>"
    // terminates the name scan first), no attributes to skip.
    if (stats_ != nullptr) ++stats_->scan_chars;
    *result = kAccepted;
    return FinishMatch(pos, pos + r, closing, /*bachelor=*/false,
                       counted_tag, next_state, /*close_state=*/-1);
  }
  for (;;) {
    if (r >= span.size() && !extend(r)) {
      return Status::ParseError("unterminated tag at offset " +
                                std::to_string(pos));
    }
    const char* base = span.data();
    const char* gt = static_cast<const char*>(
        std::memchr(base + r, '>', span.size() - r));
    const size_t seg_end =
        gt != nullptr ? static_cast<size_t>(gt - base) : span.size();
    const char* dq = static_cast<const char*>(
        std::memchr(base + r, '"', seg_end - r));
    const char* sq = static_cast<const char*>(
        std::memchr(base + r, '\'', seg_end - r));
    const char* quote = dq == nullptr   ? sq
                        : sq == nullptr ? dq
                                        : std::min(dq, sq);
    if (quote == nullptr) {
      if (gt != nullptr) {
        r = seg_end;
        break;  // position of '>'
      }
      r = span.size();
      continue;
    }
    const char qc = *quote;
    r = static_cast<size_t>(quote - base) + 1;
    for (;;) {
      if (r >= span.size() && !extend(r)) {
        return Status::ParseError("unterminated attribute at offset " +
                                  std::to_string(pos));
      }
      const char* end = static_cast<const char*>(
          std::memchr(span.data() + r, qc, span.size() - r));
      if (end != nullptr) {
        r = static_cast<size_t>(end - span.data()) + 1;
        break;
      }
      r = span.size();
    }
  }
  const bool bachelor = !closing && span[r - 1] == '/';
  if (stats_ != nullptr) stats_->scan_chars += r - scan_start + 1;
  const uint64_t tag_end = pos + r;  // position of '>'

  *result = kAccepted;

  // For bachelor tags, resolve the closing transition now; the interned id
  // makes this a single array load even after window refills.
  int close_state = -1;
  if (!counted_tag && bachelor) {
    const DfaState& opened =
        tables_.states[static_cast<size_t>(next_state)];
    close_state = opened.close_next_id[static_cast<size_t>(id)];
    if (close_state < 0) {
      std::string_view nm =
          win_.View(pos + name_rel, name_len).substr(0, name_len);
      return Status::ParseError("bachelor tag <" + std::string(nm) +
                                "/> has no closing transition; input "
                                "invalid w.r.t. the DTD");
    }
  }
  return FinishMatch(pos, tag_end, closing, bachelor, counted_tag,
                     next_state, close_state);
}

/// Legacy path (TableOptions::use_map_dispatch): per-byte window access and
/// std::map tag dispatch; kept verbatim as the differential-testing and
/// benchmarking baseline.
Status Engine::HandleMatchLegacy(uint64_t pos, int* result) {
  *result = kFalseMatch;
  // The whole scan operates on a view anchored at pos (which is above the
  // lock, so it stays resident); At() re-acquires the view only when the
  // scan outruns the currently buffered bytes.
  std::string_view v = win_.View(pos, 2);
  auto at = [this, pos, &v](uint64_t abs) -> int {
    size_t rel = static_cast<size_t>(abs - pos);
    if (rel < v.size()) return static_cast<unsigned char>(v[rel]);
    if (win_.Ensure(abs, 1) == 0) return -1;
    v = win_.View(pos, rel + 1);
    return static_cast<unsigned char>(v[rel]);
  };

  // Parse the tag at pos: "<name" or "</name", then scan to '>' / '/>'.
  uint64_t p = pos + 1;
  bool closing = false;
  int c = at(p);
  if (c < 0) return Status::Ok();
  if (c == '/') {
    closing = true;
    ++p;
  }
  uint64_t name_begin = p;
  while ((c = at(p)) >= 0 && IsNameChar(static_cast<char>(c))) ++p;
  if (stats_ != nullptr) stats_->scan_chars += p - pos;
  if (p == name_begin) return Status::Ok();  // "<!", "<?", "< " ...
  size_t name_len = static_cast<size_t>(p - name_begin);
  std::string_view name =
      v.substr(static_cast<size_t>(name_begin - pos), name_len);

  const DfaState& st = tables_.states[static_cast<size_t>(q_)];

  bool counted_tag = st.count_nesting && name == st.entry_name &&
                     (!closing || nesting_depth_ > 0);

  // Look the tagname up in the frontier transition maps; reject prefixes of
  // longer names and names with no transition (the paper's (¶) check).
  int next_state = -1;
  if (!counted_tag) {
    auto& map = closing ? st.close_next : st.open_next;
    auto it = map.find(name);
    if (it == map.end()) return Status::Ok();  // false match
    next_state = it->second;
  }

  // Scan to the end of the tag, skipping quoted attribute values.
  bool bachelor = false;
  uint64_t scan_start = p;
  for (;;) {
    c = at(p);
    if (c < 0) {
      return Status::ParseError("unterminated tag at offset " +
                                std::to_string(pos));
    }
    if (c == '>') {
      bachelor = !closing && at(p - 1) == '/';
      break;
    }
    if (c == '"' || c == '\'') {
      int quote = c;
      ++p;
      while ((c = at(p)) >= 0 && c != quote) ++p;
      if (c < 0) {
        return Status::ParseError("unterminated attribute at offset " +
                                  std::to_string(pos));
      }
    }
    ++p;
  }
  if (stats_ != nullptr) stats_->scan_chars += p - scan_start + 1;
  uint64_t tag_end = p;  // position of '>'

  *result = kAccepted;

  // For bachelor tags, resolve the closing transition now. The tag-end scan
  // above may have slid or reallocated the window buffer, so `name` must be
  // re-acquired (its bytes are still resident -- they sit above the lock).
  int close_state = -1;
  if (!counted_tag && bachelor) {
    name = win_.View(name_begin, name_len).substr(0, name_len);
    const DfaState& opened = tables_.states[static_cast<size_t>(next_state)];
    auto cit = opened.close_next.find(name);
    if (cit == opened.close_next.end()) {
      return Status::ParseError("bachelor tag <" + std::string(name) +
                                "/> has no closing transition; input "
                                "invalid w.r.t. the DTD");
    }
    close_state = cit->second;
  }
  return FinishMatch(pos, tag_end, closing, bachelor, counted_tag,
                     next_state, close_state);
}

Status Engine::Run() {
  visited_.assign(tables_.states.size(), false);
  q_ = tables_.initial;
  MarkVisited();
  if (opts_.skip_prolog) SkipProlog();

  while (!tables_.states[static_cast<size_t>(q_)].is_final) {
    const DfaState& st = tables_.states[static_cast<size_t>(q_)];
    if (st.matcher == nullptr) {
      return Status::Internal("stuck in non-final state without vocabulary");
    }
    // Initial jump (paper table J).
    if (st.jump > 0) {
      cursor_ += st.jump;
      if (stats_ != nullptr) {
        ++stats_->initial_jumps;
        stats_->initial_jump_chars += st.jump;
      }
    }
    // Search for the closest frontier keyword, refilling the window as
    // needed; the overlap keeps partially-seen keywords matchable.
    int handled = kFalseMatch;
    for (;;) {
      win_.set_lock(cursor_);
      std::string_view view = win_.View(cursor_, st.max_keyword);
      if (!view.empty()) {
        // Counted per Search call, inside the retry loop: false-match
        // retries and window refills each run a fresh search.
        if (stats_ != nullptr) {
          if (st.keywords.size() == 1) {
            ++stats_->bm_searches;
          } else {
            ++stats_->cw_searches;
          }
        }
        strmatch::Match m = st.matcher->Search(view, 0, &stats_->search);
        if (m.found()) {
          uint64_t pos = cursor_ + m.pos;
          SMPX_RETURN_IF_ERROR(interned_ ? HandleMatch(pos, &handled)
                                         : HandleMatchLegacy(pos, &handled));
          if (handled == kAccepted) break;
          if (stats_ != nullptr) ++stats_->false_matches;
          cursor_ = pos + 1;
          continue;
        }
      }
      // No match in the resident view. Advance to the window tail that
      // could still hold a partially-seen keyword, release the lock up to
      // there, then probe for more input (slide-only, never grows).
      uint64_t limit = win_.limit();
      uint64_t next = limit > st.max_keyword - 1
                          ? limit - (st.max_keyword - 1)
                          : cursor_ + 1;
      cursor_ = std::max(cursor_ + 1, next);
      win_.set_lock(cursor_);
      if (win_.AtEnd(cursor_)) {
        return Status::ParseError(
            "keyword not found before end of input (document invalid "
            "w.r.t. the DTD?)");
      }
    }
    SMPX_RETURN_IF_ERROR(status_);  // surfaced from the evict hook
  }

  if (stats_ != nullptr) {
    stats_->input_bytes = win_.bytes_read();
    stats_->output_bytes = out_->bytes_written();
    stats_->window_peak = win_.max_capacity_used();
    for (bool v : visited_) {
      if (v) ++stats_->states_visited;
    }
  }
  return Status::Ok();
}

}  // namespace

Status RunEngine(const RuntimeTables& tables, InputStream* in,
                 OutputSink* out, RunStats* stats,
                 const EngineOptions& opts) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  RunStats local_stats;
  Engine engine(tables, in, out, stats != nullptr ? stats : &local_stats,
                opts);
  return engine.Run();
}

}  // namespace smpx::core
