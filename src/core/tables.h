// The four statically compiled runtime lookup tables of the paper (Fig. 3):
//   A -- transition function of the determinized runtime-automaton,
//   V -- frontier vocabulary (keywords "<t" / "</t") per state,
//   J -- initial jump offsets per state,
//   T -- actions per state.
// Packaged per DFA state together with the precompiled string matcher
// (Boyer-Moore for unary vocabularies, Commentz-Walter otherwise).

#ifndef SMPX_CORE_TABLES_H_
#define SMPX_CORE_TABLES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/selection.h"
#include "dtd/dtd_automaton.h"
#include "strmatch/matcher.h"

namespace smpx::core {

/// One state of the runtime DFA with everything the engine needs.
struct DfaState {
  /// Frontier vocabulary V[q], sorted; keyword i belongs to matcher
  /// pattern i.
  std::vector<std::string> keywords;
  /// Compiled search structure over `keywords` (null iff keywords empty).
  std::unique_ptr<strmatch::Matcher> matcher;
  /// A[q, <name>]: next state when an opening tag `name` is matched.
  std::map<std::string, int, std::less<>> open_next;
  /// A[q, </name>]: next state when a closing tag `name` is matched.
  std::map<std::string, int, std::less<>> close_next;
  /// J[q]: characters safely skippable on entering this state.
  uint64_t jump = 0;
  /// T[q]: action performed when *entering* this state.
  Action action = Action::kNop;
  bool is_final = false;
  /// Longest keyword length (window overlap requirement).
  size_t max_keyword = 0;

  // Entry token (unique by homogeneity; empty for the initial state) and
  // precomputed emission strings so copy-tag actions are allocation-free.
  std::string entry_name;
  bool entry_closing = false;
  std::string emit_tag;       ///< "<name>" or "</name>"
  std::string emit_bachelor;  ///< "<name/>" (open-entry states only)

  /// Recursion support: this state is the inside of an opaque recursive
  /// region; the engine balances <entry_name>/</entry_name> occurrences and
  /// only takes the closing transition when the balance returns to zero.
  bool count_nesting = false;
};

/// The complete set of runtime tables; self-contained (the DTD-automaton
/// can be discarded after construction).
struct RuntimeTables {
  std::vector<DfaState> states;
  int initial = 0;

  // Report metadata (paper Table I "States (CW + BM)").
  size_t num_cw_states = 0;   ///< states with |V| > 1
  size_t num_bm_states = 0;   ///< states with |V| == 1
  size_t nfa_states_selected = 0;  ///< |S| including q0
  size_t stopover_states = 0;
  size_t collapsed_pairs = 0;

  std::string DebugString() const;
};

struct TableOptions {
  /// Algorithm for multi-keyword states (ablation hook); single-keyword
  /// states always honor it too when not kAuto.
  strmatch::Algorithm algorithm = strmatch::Algorithm::kAuto;
  /// Disable J (ablation): all jumps become 0.
  bool enable_initial_jumps = true;
};

/// Determinizes the subgraph automaton and builds all tables.
Result<RuntimeTables> BuildTables(const dtd::DtdAutomaton& aut,
                                  const Selection& sel,
                                  const SubgraphAutomaton& sub,
                                  const TableOptions& opts = {});

}  // namespace smpx::core

#endif  // SMPX_CORE_TABLES_H_
