// The four statically compiled runtime lookup tables of the paper (Fig. 3):
//   A -- transition function of the determinized runtime-automaton,
//   V -- frontier vocabulary (keywords "<t" / "</t") per state,
//   J -- initial jump offsets per state,
//   T -- actions per state.
// Packaged per DFA state together with the precompiled string matcher
// (Boyer-Moore for unary vocabularies, Commentz-Walter otherwise).

#ifndef SMPX_CORE_TABLES_H_
#define SMPX_CORE_TABLES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/selection.h"
#include "dtd/dtd_automaton.h"
#include "strmatch/matcher.h"

namespace smpx::dtd {
class MinSerial;
}  // namespace smpx::dtd

namespace smpx::core {

/// Maps the tag names of the runtime vocabulary to dense ids via a flat
/// open-addressing hash over string_view (no allocation, no tree walk on
/// lookup). Built once in BuildTables; the engine resolves every matched
/// tag name with one hash and at most a few contiguous probes.
class TagInterner {
 public:
  TagInterner() = default;
  /// Builds the table from `names` (duplicates collapse; insertion order
  /// defines the dense ids).
  explicit TagInterner(const std::vector<std::string>& names);

  /// Dense id of `name`, or -1 if the tag was never interned.
  int32_t Find(std::string_view name) const {
    if (slots_.empty()) return -1;
    size_t h = Hash(name) & mask_;
    for (;;) {
      int32_t s = slots_[h];
      if (s < 0 || names_[static_cast<size_t>(s)] == name) return s;
      h = (h + 1) & mask_;
    }
  }

  int32_t size() const { return static_cast<int32_t>(names_.size()); }
  bool empty() const { return names_.empty(); }
  const std::string& name(int32_t id) const {
    return names_[static_cast<size_t>(id)];
  }
  const std::vector<std::string>& names() const { return names_; }

  /// FNV-1a; short tag names hash in a handful of cycles.
  static size_t Hash(std::string_view s) {
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }

 private:
  std::vector<std::string> names_;
  std::vector<int32_t> slots_;  // index into names_, -1 when empty
  size_t mask_ = 0;             // slots_.size() - 1 (power of two)
};

/// One state of the runtime DFA with everything the engine needs.
struct DfaState {
  /// Frontier vocabulary V[q], sorted; keyword i belongs to matcher
  /// pattern i. Deliberately per-state rather than one interner-wide set:
  /// the interner resolves an already-found tag to its transition, while
  /// these vectors decide how far the BM/CW search can SHIFT through raw
  /// bytes -- collapsing them to the global vocabulary costs ~30% geomean
  /// throughput on the XMark sweep (TableOptions::shared_vocabulary in
  /// bench_hotpath_micro measures it), so both structures stay.
  std::vector<std::string> keywords;
  /// Compiled search structure over `keywords` (null iff keywords empty).
  std::unique_ptr<strmatch::Matcher> matcher;
  /// A[q, <name>] / A[q, </name>] as tree maps: populated ONLY under
  /// TableOptions::use_map_dispatch (the legacy engine path); dead weight
  /// otherwise, so the default build leaves them empty. Use
  /// RuntimeTables::NextState for mode-independent lookups.
  std::map<std::string, int, std::less<>> open_next;
  std::map<std::string, int, std::less<>> close_next;
  /// Interned-dispatch transition arrays: indexed by the tag id from
  /// RuntimeTables::interner, -1 = no transition. Sized to the full
  /// interner vocabulary (empty when map dispatch was requested).
  std::vector<int32_t> open_next_id;
  std::vector<int32_t> close_next_id;
  /// J[q]: characters safely skippable on entering this state.
  uint64_t jump = 0;
  /// T[q]: action performed when *entering* this state.
  Action action = Action::kNop;
  bool is_final = false;
  /// Longest keyword length (window overlap requirement).
  size_t max_keyword = 0;

  // Entry token (unique by homogeneity; empty for the initial state) and
  // precomputed emission strings so copy-tag actions are allocation-free.
  std::string entry_name;
  /// Interned id of entry_name (-1 for the initial state / map dispatch).
  int32_t entry_tag_id = -1;
  bool entry_closing = false;
  std::string emit_tag;       ///< "<name>" or "</name>"
  std::string emit_bachelor;  ///< "<name/>" (open-entry states only)

  /// Recursion support: this state is the inside of an opaque recursive
  /// region; the engine balances <entry_name>/</entry_name> occurrences and
  /// only takes the closing transition when the balance returns to zero.
  bool count_nesting = false;

  // Retained build analysis, consumed by the multi-query product compiler
  // (query::MultiQuery): the DTD-automaton member states of this subset and
  // the token ids of the frontier vocabulary. A product state's sound
  // initial jump is recomputed from the UNION of its non-final components'
  // members and vocabularies (taking the min of the component jumps is
  // unsound: an idle component may have entered its state at an earlier
  // cursor, so its jump window can already be spent).
  std::vector<int> subset_members;
  std::vector<int> vocab_tokens;
};

/// Per-query action data of a multi-query product DFA (attached by
/// query::MultiQuery::Compile): for every product state, bitmasks over the
/// unique queries saying which components moved on the state's entry token
/// and which per-query action fires on entry. Masks are `words` uint64_t
/// each, flattened per state (state q's word w sits at q * words + w), so
/// any number of queries works without per-state allocation. The shared
/// product action (DfaState::action) is always kNop on multi tables; the
/// engine applies the per-query actions from these masks instead.
struct MultiQueryInfo {
  int num_queries = 0;  ///< unique queries after equivalence collapse
  int words = 0;        ///< ceil(num_queries / 64) mask words per state
  std::vector<uint64_t> moved;          ///< components that took the token
  std::vector<uint64_t> copy_tag;      ///< per-query Action::kCopyTag
  std::vector<uint64_t> copy_tag_atts; ///< per-query Action::kCopyTagAtts
  std::vector<uint64_t> copy_on;       ///< per-query Action::kCopyOn
  std::vector<uint64_t> copy_off;      ///< per-query Action::kCopyOff
  /// Product state taken when an open-entry state's tag turns out to be a
  /// bachelor "<t/>": moves EXACTLY the components in `moved` through their
  /// closing transition. Idle components must not move -- their independent
  /// runs never see the synthetic close inside "<t/>" because the keyword
  /// is not in their vocabulary. -1 when some moved component has no
  /// closing transition (a runtime ParseError, mirroring the single-query
  /// engine) or for close-entry / initial states.
  std::vector<int32_t> bachelor_close;

  const uint64_t* MaskAt(const std::vector<uint64_t>& flat, int state) const {
    return flat.data() + static_cast<size_t>(state) * words;
  }
};

/// The complete set of runtime tables; self-contained (the DTD-automaton
/// can be discarded after construction).
struct RuntimeTables {
  std::vector<DfaState> states;
  int initial = 0;

  /// Tag-name -> dense-id table backing the flat per-state transition
  /// arrays. Empty (and interned_dispatch false) under map dispatch.
  TagInterner interner;
  /// True when the engine should dispatch through interner +
  /// open_next_id/close_next_id instead of the tree maps.
  bool interned_dispatch = false;

  /// Static boundary-state analysis: the DFA states the runtime can be in
  /// when the document cursor rests on the '<' of a top-level element
  /// (a direct child of the root), sorted ascending. Computed at build time
  /// by a product walk of the DTD-automaton and the runtime DFA over every
  /// token sequence of a DTD-valid document, so for valid inputs the true
  /// entry state of any top-level boundary is ALWAYS contained in this set.
  /// The parallel sharder speculates every shard's entry state from it
  /// without serializing shard 0 (invalid inputs merely mis-speculate and
  /// are repaired by the verification pass). Empty only for hand-built
  /// tables or childless roots.
  ///
  /// A state may appear more than once: candidates are really
  /// (state, copy depth) pairs -- boundary_copy_depths[i] is the number of
  /// active copy regions when the cursor rests on such a boundary in state
  /// boundary_states[i] (a query that copies the whole root puts every
  /// top-level boundary inside one). The sharder seeds each speculative
  /// attempt with the candidate's depth, so boundaries inside copy regions
  /// speculate like clean ones instead of forcing a serial re-run.
  std::vector<int> boundary_states;
  /// Parallel to boundary_states, always the same length. Depths saturate
  /// at ComputeBoundaryStates' cap (statically unbounded copy recursion),
  /// which only costs speculation accuracy, never soundness -- acceptance
  /// is an exact exit-vs-entry comparison in the resolver.
  std::vector<int> boundary_copy_depths;

  /// Non-null iff these are multi-query product tables (see MultiQueryInfo).
  /// Shared because RuntimeTables moves/copies around freely and the info
  /// is immutable after construction.
  std::shared_ptr<const MultiQueryInfo> multi;

  /// Mirror of TableOptions::use_bitmap_plane; sessions AND it with the
  /// process-wide simd::PlaneEnabled(). Not part of Fingerprint(): the
  /// plane never changes what is projected, only how bytes are classified.
  bool use_bitmap_plane = false;

  // Report metadata (paper Table I "States (CW + BM)").
  size_t num_cw_states = 0;   ///< states with |V| > 1
  size_t num_bm_states = 0;   ///< states with |V| == 1
  size_t nfa_states_selected = 0;  ///< |S| including q0
  size_t stopover_states = 0;
  size_t collapsed_pairs = 0;

  /// A[from, <name>] (closing=false) or A[from, </name>] (closing=true);
  /// -1 when there is no transition. Works in both dispatch modes.
  int NextState(int from, std::string_view name, bool closing) const;

  /// Stable 64-bit fingerprint of the runtime-relevant table content:
  /// state count, initial state, and per state the vocabulary, jump,
  /// action, finality, entry token, recursion flag, and every transition
  /// reachable through the vocabulary -- identical across dispatch modes
  /// and process runs. A serialized SessionCheckpoint (boundary index,
  /// cursor token) names DFA states by number, which only means anything
  /// against the tables it was computed from; persisted artifacts record
  /// this fingerprint and fail closed on mismatch.
  uint64_t Fingerprint() const;

  std::string DebugString() const;
};

struct TableOptions {
  /// Algorithm for multi-keyword states (ablation hook); single-keyword
  /// states always honor it too when not kAuto.
  strmatch::Algorithm algorithm = strmatch::Algorithm::kAuto;
  /// Disable J (ablation): all jumps become 0.
  bool enable_initial_jumps = true;
  /// Keep the legacy std::map tag dispatch (and the engine's per-byte tag
  /// scanner) instead of the interned fast path; differential-testing and
  /// benchmarking baseline.
  bool use_map_dispatch = false;
  /// Disable the matchers' candidate skip loops entirely (classical
  /// textbook BM/CW scan loops); together with use_map_dispatch this
  /// restores the seed's matching + tag-resolution hot path (prolog
  /// skipping is span-based in both modes). Overrides matcher_skip_mode.
  bool disable_matcher_skip_loops = false;
  /// Candidate skip-loop tier for BM/CW when skip loops are enabled:
  /// kSimd (default, dispatched bitmap probes) or kSwar (8-byte word
  /// probes) -- same matches, same search stats, different probe speed.
  /// Apples-to-apples ablation hook for bench_hotpath_micro.
  strmatch::SkipLoopMode matcher_skip_mode = strmatch::SkipLoopMode::kSimd;
  /// Ablation: replace every state's frontier vocabulary with the union
  /// over all states -- i.e. collapse the paper's per-state keyword
  /// vectors into one interner-wide keyword set. Output is unchanged
  /// (extra candidates hit no-transition entries and count as false
  /// matches), but BM/CW shift distances shrink to the global minimum and
  /// false-candidate work grows; bench_hotpath_micro measures the cost.
  /// Initial jumps J[q] stay per-state (they derive from the automaton,
  /// not the keyword list).
  bool shared_vocabulary = false;
  /// Classify each resident window once through a shared simd::BitmapPlane
  /// and bit-walk it from the consumers with cross-state sharing (engine
  /// span scans, the CW lead-lane probe) instead of re-running kernels per
  /// call. Output and search stats are identical either way (also ANDed
  /// with the process-wide simd::PlaneEnabled()). Default off: on XMark
  /// every consumer sweeps a disjoint monotonic region and the hot byte
  /// classes hit nearly every block, so the per-call kernels already
  /// classify each byte once and the plane's fill+walk overhead costs
  /// ~15% geomean throughput (bench_hotpath_micro's plane column keeps
  /// the trade-off measured; see README "Measured ceiling").
  bool use_bitmap_plane = false;
};

/// Determinizes the subgraph automaton and builds all tables.
Result<RuntimeTables> BuildTables(const dtd::DtdAutomaton& aut,
                                  const Selection& sel,
                                  const SubgraphAutomaton& sub,
                                  const TableOptions& opts = {});

/// J-computation for one runtime state: the minimum, over all DTD-valid
/// documents and all member NFA states, of the characters between the
/// cursor and the first possible keyword occurrence. Public so the
/// multi-query product compiler can recompute sound jumps for merged
/// states (union of members, union of vocabularies).
uint64_t ComputeStateJump(const dtd::DtdAutomaton& aut, dtd::MinSerial* ms,
                          const std::vector<int>& members,
                          const std::set<int>& vocab_tokens);

/// Static boundary-state analysis over arbitrary runtime tables (see
/// RuntimeTables::boundary_states / boundary_copy_depths). Public so the
/// multi-query product compiler can run it over the merged DFA.
struct BoundaryAnalysis {
  std::vector<int> states;       ///< candidate DFA states, one per pair
  std::vector<int> copy_depths;  ///< active copy regions at that boundary
};
BoundaryAnalysis ComputeBoundaryStates(const dtd::DtdAutomaton& aut,
                                       const RuntimeTables& tables);

}  // namespace smpx::core

#endif  // SMPX_CORE_TABLES_H_
