#include "core/tables.h"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/hash.h"

#include "dtd/min_serial.h"

namespace smpx::core {
namespace {

using dtd::DtdAutomaton;

constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();

/// Copy-depth saturation cap for the boundary-state analysis: statically
/// unbounded copy recursion (e.g. a recursive //x# target containing
/// itself) stops widening the product here. Performance-only -- a
/// saturated candidate never equals a real exit checkpoint, so the
/// resolver just re-runs those shards.
constexpr int kMaxCopyDepth = 64;

}  // namespace

/// Computes J[q] for one DFA state: the minimum, over all documents valid
/// w.r.t. the DTD and all member NFA states, of the number of characters
/// between the cursor (just past the matched tag) and the first possible
/// occurrence of any keyword in V[q]. Multi-source Dijkstra over the full
/// DTD-automaton; skipped elements cost their minimal serialization
/// (bachelor form when nullable), skipped closing tags cost `</t>`.
uint64_t ComputeStateJump(const DtdAutomaton& aut, dtd::MinSerial* ms,
                          const std::vector<int>& members,
                          const std::set<int>& vocab_tokens) {
  std::vector<uint64_t> dist(static_cast<size_t>(aut.num_states()), kInf);
  using Entry = std::pair<uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (int m : members) {
    dist[static_cast<size_t>(m)] = 0;
    pq.push({0, m});
  }
  uint64_t best = kInf;
  while (!pq.empty()) {
    auto [d, s] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(s)]) continue;
    if (d >= best) break;  // no shorter candidate can appear
    for (const DtdAutomaton::Transition& t : aut.Out(s)) {
      const dtd::TagToken& tok = aut.token(t.token);
      if (vocab_tokens.count(t.token) != 0) {
        // A true keyword occurrence can start here, d characters away.
        best = std::min(best, d);
        continue;
      }
      if (tok.closing) {
        uint64_t nd = d + ms->CloseTag(tok.name);
        if (nd < dist[static_cast<size_t>(t.to)]) {
          dist[static_cast<size_t>(t.to)] = nd;
          pq.push({nd, t.to});
        }
      } else {
        // Opaque regions can contain any reachable tag; if the vocabulary
        // intersects that set, an occurrence could start right here.
        if (DtdAutomaton::IsOpenState(t.to) &&
            aut.instance(DtdAutomaton::InstanceOf(t.to)).opaque) {
          bool vocab_inside = false;
          for (const std::string& name :
               aut.dtd().ReachableFrom(tok.name)) {
            for (bool closing : {false, true}) {
              int vt = aut.FindToken(name, closing);
              if (vt >= 0 && vocab_tokens.count(vt) != 0) {
                vocab_inside = true;
                break;
              }
            }
            if (vocab_inside) break;
          }
          if (vocab_inside) {
            best = std::min(best, d);
            continue;
          }
        }
        // Skip just the opening tag and continue inside ...
        uint64_t nd = d + ms->OpenTag(tok.name);
        if (nd < dist[static_cast<size_t>(t.to)]) {
          dist[static_cast<size_t>(t.to)] = nd;
          pq.push({nd, t.to});
        }
        // ... or skip the whole element as a bachelor tag <t/>, which is
        // possible when its content is nullable and contains no keyword
        // occurrence at all (the closing keyword "</t" does not occur in
        // the bachelor form; the opening keyword case was handled above).
        if (aut.GlushkovOf(tok.name).nullable) {
          int close = DtdAutomaton::Dual(t.to);
          uint64_t bd = d + ms->BachelorTag(tok.name);
          if (bd < dist[static_cast<size_t>(close)]) {
            dist[static_cast<size_t>(close)] = bd;
            pq.push({bd, close});
          }
        }
      }
    }
  }
  return best == kInf ? 0 : best;
}

/// Static boundary-state analysis (RuntimeTables::boundary_states): BFS
/// over the product of the DTD-automaton (which generates every token
/// sequence of a DTD-valid document) and the runtime DFA's token semantics.
/// Whenever a product node (s, q) has an outgoing token that opens a
/// top-level instance, the cursor of a real run can rest on that boundary's
/// '<' in DFA state q, so q joins the set. Opaque-region balances are not
/// tracked; a closing entry tag inside a counting state forks into both
/// "still nested" and "region left", which can only over-approximate --
/// containment of the true entry state is what speculation needs.
///
/// Each node additionally carries the number of active copy regions:
/// entering a state replays its entry action on the counter (kCopyOn
/// opens, kCopyOff closes), exactly mirroring the engine's copy_depth, so
/// candidates come out as (state, depth) pairs and a boundary inside a
/// copy region (e.g. a root-copying query) is a first-class speculation
/// target. Depths saturate at kMaxCopyDepth for statically unbounded copy
/// recursion; a saturated candidate simply never matches a real exit
/// checkpoint (the resolver compares depths exactly), so saturation can
/// only cost a re-run, never correctness. The true (state, depth) of a
/// valid document's boundary below the cap is always contained.
BoundaryAnalysis ComputeBoundaryStates(const DtdAutomaton& aut,
                                       const RuntimeTables& tables) {
  const uint64_t nq = tables.states.size();
  if (nq == 0) return {};
  std::set<std::pair<int, int>> boundary;  // ordered (state, depth) pairs
  std::unordered_set<uint64_t> seen;
  std::vector<std::array<int, 3>> work;
  auto push = [&seen, &work, nq](int s, int q, int d) {
    uint64_t key = (static_cast<uint64_t>(s) * nq + static_cast<uint64_t>(q)) *
                       (kMaxCopyDepth + 1) +
                   static_cast<uint64_t>(d);
    if (seen.insert(key).second) work.push_back({s, q, d});
  };
  // Copy depth after the engine transitions into DFA state `to` with `d`
  // regions active (the entry action fires exactly once, on that move).
  auto step_depth = [&tables](int to, int d) {
    switch (tables.states[static_cast<size_t>(to)].action) {
      case Action::kCopyOn:
        return std::min(d + 1, kMaxCopyDepth);
      case Action::kCopyOff:
        return d > 0 ? d - 1 : 0;
      default:
        return d;
    }
  };
  push(0, tables.initial, 0);
  while (!work.empty()) {
    auto [s, q, d] = work.back();
    work.pop_back();
    const DfaState& st = tables.states[static_cast<size_t>(q)];
    for (const DtdAutomaton::Transition& t : aut.Out(s)) {
      const dtd::TagToken& tok = aut.token(t.token);
      if (!tok.closing && aut.IsTopLevelOpenState(t.to)) {
        boundary.insert({q, d});
      }
      if (st.count_nesting && tok.name == st.entry_name) {
        // The engine balances the region's own tag: openings always stay
        // inside; a closing leaves only when the balance hits zero.
        push(t.to, q, d);
        if (tok.closing) {
          int next = tables.NextState(q, tok.name, /*closing=*/true);
          if (next >= 0) push(t.to, next, step_depth(next, d));
        }
        continue;
      }
      int next = tables.NextState(q, tok.name, tok.closing);
      if (next >= 0) {
        push(t.to, next, step_depth(next, d));
      } else {
        push(t.to, q, d);
      }
    }
  }
  BoundaryAnalysis out;
  out.states.reserve(boundary.size());
  out.copy_depths.reserve(boundary.size());
  for (const auto& [q, d] : boundary) {
    out.states.push_back(q);
    out.copy_depths.push_back(d);
  }
  return out;
}

TagInterner::TagInterner(const std::vector<std::string>& names) {
  for (const std::string& n : names) {
    if (Find(n) >= 0) continue;
    names_.push_back(n);
    // Rebuild at load factor > 1/2 (also covers the initial empty table).
    if (slots_.empty() || names_.size() * 2 > slots_.size()) {
      size_t cap = 8;
      while (cap < names_.size() * 4) cap *= 2;
      slots_.assign(cap, -1);
      mask_ = cap - 1;
      for (size_t id = 0; id < names_.size(); ++id) {
        size_t h = Hash(names_[id]) & mask_;
        while (slots_[h] >= 0) h = (h + 1) & mask_;
        slots_[h] = static_cast<int32_t>(id);
      }
    } else {
      size_t h = Hash(names_.back()) & mask_;
      while (slots_[h] >= 0) h = (h + 1) & mask_;
      slots_[h] = static_cast<int32_t>(names_.size() - 1);
    }
  }
}

Result<RuntimeTables> BuildTables(const dtd::DtdAutomaton& aut,
                                  const Selection& sel,
                                  const SubgraphAutomaton& sub,
                                  const TableOptions& opts) {
  RuntimeTables tables;
  tables.use_bitmap_plane = opts.use_bitmap_plane;
  tables.stopover_states = sel.stopover_states;
  tables.collapsed_pairs = sel.collapsed_pairs;
  for (bool b : sel.in_s) {
    if (b) ++tables.nfa_states_selected;
  }

  dtd::MinSerial ms(&aut.dtd());

  // Subset construction over D|S. Subsets are sorted state-id vectors.
  std::map<std::vector<int>, int> subset_ids;
  std::vector<std::vector<int>> subsets;
  auto intern = [&subset_ids, &subsets](std::vector<int> subset) {
    std::sort(subset.begin(), subset.end());
    subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
    auto it = subset_ids.find(subset);
    if (it != subset_ids.end()) return it->second;
    int id = static_cast<int>(subsets.size());
    subset_ids[subset] = id;
    subsets.push_back(std::move(subset));
    return id;
  };

  int initial = intern({0});
  tables.initial = initial;

  // Per-state transition maps. These are build-time scaffolding: the
  // default (interned) tables ship only the flat id-indexed arrays, so the
  // maps are moved into DfaState solely under use_map_dispatch, where the
  // legacy engine path dispatches through them.
  using TransitionMap = std::map<std::string, int, std::less<>>;
  std::vector<TransitionMap> open_maps;
  std::vector<TransitionMap> close_maps;

  // BFS over subsets, building transitions per token.
  for (size_t cur = 0; cur < subsets.size(); ++cur) {
    std::map<int, std::vector<int>> by_token;  // token -> successor members
    bool is_final = false;
    for (int s : subsets[cur]) {
      if (sub.is_final[static_cast<size_t>(s)]) is_final = true;
      for (const SubgraphAutomaton::Edge& e :
           sub.edges[static_cast<size_t>(s)]) {
        by_token[e.token].push_back(e.to);
      }
    }
    if (tables.states.size() <= cur) {
      tables.states.resize(subsets.size());
    }
    tables.states[cur].is_final = is_final;
    for (auto& [token, members] : by_token) {
      int to = intern(std::move(members));
      if (tables.states.size() < subsets.size()) {
        tables.states.resize(subsets.size());
      }
      if (open_maps.size() < subsets.size()) {
        open_maps.resize(subsets.size());
        close_maps.resize(subsets.size());
      }
      const dtd::TagToken& tok = aut.token(token);
      if (tok.closing) {
        close_maps[cur][tok.name] = to;
      } else {
        open_maps[cur][tok.name] = to;
      }
      // Record the entry token on the target (unique by homogeneity) and
      // precompute the emission strings.
      DfaState& target = tables.states[static_cast<size_t>(to)];
      if (target.entry_name.empty()) {
        target.entry_name = tok.name;
        target.entry_closing = tok.closing;
        target.emit_tag = (tok.closing ? "</" : "<") + tok.name + ">";
        if (!tok.closing) target.emit_bachelor = "<" + tok.name + "/>";
      }
    }
  }
  tables.states.resize(subsets.size());
  open_maps.resize(subsets.size());
  close_maps.resize(subsets.size());

  // Actions (join over members), vocabularies, jumps, matchers.
  for (size_t q = 0; q < subsets.size(); ++q) {
    DfaState& state = tables.states[q];

    Action action = Action::kNop;
    for (int s : subsets[q]) {
      action = JoinActions(action, sel.action[static_cast<size_t>(s)]);
      if (DtdAutomaton::IsOpenState(s) &&
          aut.instance(DtdAutomaton::InstanceOf(s)).opaque) {
        state.count_nesting = true;
      }
    }
    state.action = action;

    // Vocabulary: one keyword per outgoing token.
    std::set<int> vocab_tokens;
    for (const auto& [name, to] : open_maps[q]) {
      state.keywords.push_back("<" + name);
      vocab_tokens.insert(aut.FindToken(name, false));
      (void)to;
    }
    for (const auto& [name, to] : close_maps[q]) {
      state.keywords.push_back("</" + name);
      vocab_tokens.insert(aut.FindToken(name, true));
      (void)to;
    }
    if (state.count_nesting) {
      // Inside an opaque region we must also see nested opening tags of the
      // same name to keep the balance (no transition is attached; the
      // engine counts them).
      state.keywords.push_back("<" + state.entry_name);
    }
    std::sort(state.keywords.begin(), state.keywords.end());
    state.keywords.erase(
        std::unique(state.keywords.begin(), state.keywords.end()),
        state.keywords.end());
    for (const std::string& k : state.keywords) {
      state.max_keyword = std::max(state.max_keyword, k.size());
    }

    if (!state.keywords.empty()) {
      state.matcher =
          strmatch::MakeMatcher(state.keywords, opts.algorithm);
      if (state.matcher == nullptr) {
        // The requested algorithm cannot handle this pattern count
        // (e.g. plain Boyer-Moore on a multi-keyword vocabulary).
        state.matcher = strmatch::MakeMatcher(state.keywords,
                                              strmatch::Algorithm::kAuto);
      }
      if (state.matcher == nullptr) {
        return Status::Internal("failed to build matcher for state " +
                                std::to_string(q));
      }
      state.matcher->set_skip_mode(opts.disable_matcher_skip_loops
                                       ? strmatch::SkipLoopMode::kClassic
                                       : opts.matcher_skip_mode);
      if (state.keywords.size() == 1) {
        ++tables.num_bm_states;
      } else {
        ++tables.num_cw_states;
      }
    } else if (!state.is_final) {
      return Status::Internal(
          "non-final runtime state " + std::to_string(q) +
          " has an empty frontier vocabulary");
    }

    if (opts.enable_initial_jumps && !state.keywords.empty()) {
      state.jump = ComputeStateJump(aut, &ms, subsets[q], vocab_tokens);
    }

    // Retained for the multi-query product compiler (see DfaState doc).
    state.subset_members = subsets[q];
    state.vocab_tokens.assign(vocab_tokens.begin(), vocab_tokens.end());
  }

  if (opts.shared_vocabulary) {
    // Ablation: one interner-wide keyword set for every searching state
    // instead of the per-state frontier vectors. Final states (empty
    // vocabulary) stay inert; everyone else scans for the union and lets
    // no-transition candidates fall out as false matches.
    std::vector<std::string> shared;
    size_t shared_max = 0;
    for (const DfaState& st : tables.states) {
      shared.insert(shared.end(), st.keywords.begin(), st.keywords.end());
    }
    std::sort(shared.begin(), shared.end());
    shared.erase(std::unique(shared.begin(), shared.end()), shared.end());
    for (const std::string& k : shared) {
      shared_max = std::max(shared_max, k.size());
    }
    tables.num_bm_states = 0;
    tables.num_cw_states = 0;
    for (size_t q = 0; q < tables.states.size(); ++q) {
      DfaState& state = tables.states[q];
      if (state.keywords.empty()) continue;
      state.keywords = shared;
      state.max_keyword = shared_max;
      state.matcher = strmatch::MakeMatcher(state.keywords, opts.algorithm);
      if (state.matcher == nullptr) {
        state.matcher = strmatch::MakeMatcher(state.keywords,
                                              strmatch::Algorithm::kAuto);
      }
      if (state.matcher == nullptr) {
        return Status::Internal("failed to build shared matcher for state " +
                                std::to_string(q));
      }
      state.matcher->set_skip_mode(opts.disable_matcher_skip_loops
                                       ? strmatch::SkipLoopMode::kClassic
                                       : opts.matcher_skip_mode);
      if (state.keywords.size() == 1) {
        ++tables.num_bm_states;
      } else {
        ++tables.num_cw_states;
      }
    }
  }

  if (opts.use_map_dispatch) {
    // Legacy engine path: ship the tree maps, skip the interner entirely.
    for (size_t q = 0; q < subsets.size(); ++q) {
      tables.states[q].open_next = std::move(open_maps[q]);
      tables.states[q].close_next = std::move(close_maps[q]);
    }
    BoundaryAnalysis ba = ComputeBoundaryStates(aut, tables);
    tables.boundary_states = std::move(ba.states);
    tables.boundary_copy_depths = std::move(ba.copy_depths);
    return tables;
  }

  // Interned dispatch (default): collapse every transition tag name into a
  // dense id and ship flat arrays (-1 = no transition), so the engine
  // resolves a matched tag with one hash + one array load. The tree maps
  // stay build-local -- they would be dead weight on this path.
  std::vector<std::string> names;
  for (size_t q = 0; q < subsets.size(); ++q) {
    for (const auto& [name, to] : open_maps[q]) {
      names.push_back(name);
      (void)to;
    }
    for (const auto& [name, to] : close_maps[q]) {
      names.push_back(name);
      (void)to;
    }
  }
  tables.interner = TagInterner(names);
  const size_t vocab = static_cast<size_t>(tables.interner.size());
  for (size_t q = 0; q < subsets.size(); ++q) {
    DfaState& state = tables.states[q];
    state.open_next_id.assign(vocab, -1);
    state.close_next_id.assign(vocab, -1);
    for (const auto& [name, to] : open_maps[q]) {
      state.open_next_id[static_cast<size_t>(
          tables.interner.Find(name))] = to;
    }
    for (const auto& [name, to] : close_maps[q]) {
      state.close_next_id[static_cast<size_t>(
          tables.interner.Find(name))] = to;
    }
    if (!state.entry_name.empty()) {
      state.entry_tag_id = tables.interner.Find(state.entry_name);
    }
  }
  tables.interned_dispatch = true;
  BoundaryAnalysis ba = ComputeBoundaryStates(aut, tables);
  tables.boundary_states = std::move(ba.states);
  tables.boundary_copy_depths = std::move(ba.copy_depths);
  return tables;
}

int RuntimeTables::NextState(int from, std::string_view name,
                             bool closing) const {
  const DfaState& st = states[static_cast<size_t>(from)];
  if (interned_dispatch) {
    int32_t id = interner.Find(name);
    if (id < 0) return -1;
    const std::vector<int32_t>& next =
        closing ? st.close_next_id : st.open_next_id;
    return next[static_cast<size_t>(id)];
  }
  const auto& next = closing ? st.close_next : st.open_next;
  auto it = next.find(name);
  return it == next.end() ? -1 : it->second;
}

uint64_t RuntimeTables::Fingerprint() const {
  // Canonical serialization of everything the engine's behavior depends
  // on. Transitions are enumerated through the frontier vocabulary (every
  // keyword is "<name" or "</name"), so the result is identical under map
  // and interned dispatch.
  std::string canon;
  canon.reserve(64 * states.size() + 64);
  auto put_u64 = [&canon](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      canon.push_back(static_cast<char>(v >> (8 * i)));
    }
  };
  auto put_str = [&](std::string_view s) {
    put_u64(s.size());
    canon.append(s);
  };
  canon.append("smpx-tables-fp-v1");
  put_u64(states.size());
  put_u64(static_cast<uint64_t>(initial));
  for (size_t q = 0; q < states.size(); ++q) {
    const DfaState& s = states[q];
    canon.push_back(static_cast<char>((s.is_final ? 1 : 0) |
                                      (s.count_nesting ? 2 : 0) |
                                      (s.entry_closing ? 4 : 0)));
    put_u64(s.jump);
    put_u64(static_cast<uint64_t>(s.action));
    put_str(s.entry_name);
    put_u64(s.keywords.size());
    for (const std::string& kw : s.keywords) {
      put_str(kw);
      bool closing = kw.size() > 1 && kw[1] == '/';
      std::string_view name =
          std::string_view(kw).substr(closing ? 2 : 1);
      put_u64(static_cast<uint64_t>(
          NextState(static_cast<int>(q), name, closing) + 1));
    }
  }
  put_u64(boundary_states.size());
  for (int b : boundary_states) put_u64(static_cast<uint64_t>(b));
  for (int d : boundary_copy_depths) put_u64(static_cast<uint64_t>(d));
  if (multi != nullptr) {
    // Multi-query product tables: per-query semantics live in the masks,
    // so checkpoints against a product must never validate against a
    // single-query build (or a different mix) and vice versa.
    canon.append("multi");
    put_u64(static_cast<uint64_t>(multi->num_queries));
    put_u64(static_cast<uint64_t>(multi->words));
    for (const std::vector<uint64_t>* m :
         {&multi->moved, &multi->copy_tag, &multi->copy_tag_atts,
          &multi->copy_on, &multi->copy_off}) {
      put_u64(m->size());
      for (uint64_t w : *m) put_u64(w);
    }
    put_u64(multi->bachelor_close.size());
    for (int32_t b : multi->bachelor_close) {
      put_u64(static_cast<uint64_t>(static_cast<int64_t>(b)));
    }
  }
  return Hash64(canon);
}

std::string RuntimeTables::DebugString() const {
  // Transition names in sorted order, independent of the dispatch mode
  // (the interner stores them in insertion order).
  std::vector<std::string> names = interner.names();
  std::sort(names.begin(), names.end());
  std::string out;
  for (size_t q = 0; q < states.size(); ++q) {
    const DfaState& s = states[q];
    out += "q" + std::to_string(q) + (s.is_final ? " [final]" : "") +
           " action=" + std::string(ActionName(s.action)) +
           " J=" + std::to_string(s.jump) + " V={";
    for (size_t i = 0; i < s.keywords.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + s.keywords[i] + "\"";
    }
    out += "}\n";
    if (interned_dispatch) {
      for (const std::string& name : names) {
        int to = NextState(static_cast<int>(q), name, /*closing=*/false);
        if (to >= 0) {
          out += "  <" + name + "> -> q" + std::to_string(to) + "\n";
        }
      }
      for (const std::string& name : names) {
        int to = NextState(static_cast<int>(q), name, /*closing=*/true);
        if (to >= 0) {
          out += "  </" + name + "> -> q" + std::to_string(to) + "\n";
        }
      }
    } else {
      for (const auto& [name, to] : s.open_next) {
        out += "  <" + name + "> -> q" + std::to_string(to) + "\n";
      }
      for (const auto& [name, to] : s.close_next) {
        out += "  </" + name + "> -> q" + std::to_string(to) + "\n";
      }
    }
  }
  return out;
}

}  // namespace smpx::core
