#include "query/mem_engine.h"

#include "xml/dom.h"

namespace smpx::query {

Result<MemQueryResult> EvaluateInMemory(std::string_view query,
                                        std::string_view document,
                                        const MemEngineOptions& opts) {
  SMPX_ASSIGN_OR_RETURN(XPath path, XPath::Parse(query));
  xml::ParseOptions popts;
  popts.memory_budget = opts.memory_budget;
  SMPX_ASSIGN_OR_RETURN(xml::Document doc,
                        xml::ParseDocument(document, popts));
  std::vector<xml::NodeId> nodes = Evaluate(path, doc);
  MemQueryResult result;
  result.result_count = nodes.size();
  result.output = SerializeResults(nodes, doc);
  result.dom_bytes = doc.approx_bytes();
  return result;
}

}  // namespace smpx::query
