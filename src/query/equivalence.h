// The paper's correctness notions, executable:
//  - top-level equality of result lists (Definition 1),
//  - projection safety of a projected document w.r.t. a path set
//    (Definition 2): every projection path evaluates top-level-equal on the
//    original and the projected document.
// This is the oracle behind the property tests and the differential tests
// between the prefilter and the tokenizing projector.

#ifndef SMPX_QUERY_EQUIVALENCE_H_
#define SMPX_QUERY_EQUIVALENCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "paths/projection_path.h"
#include "query/xpath.h"
#include "xml/dom.h"

namespace smpx::query {

/// One element of an XPath evaluation result list: either a string (text
/// node value) or an element subtree identified by its root label.
struct ResultItem {
  bool is_text = false;
  std::string text;        ///< text nodes: the value
  std::string root_label;  ///< element nodes: the root label
};

/// Evaluates a projection path (interpreting '#' as an extra
/// descendant-or-self step, as Definition 2 prescribes) and returns the
/// result list in Definition 1 form.
std::vector<ResultItem> EvaluateForEquality(const paths::ProjectionPath& path,
                                            const xml::Document& doc);

/// Definition 1: same length; elementwise equal strings or equal root
/// labels.
bool TopLevelEqual(const std::vector<ResultItem>& a,
                   const std::vector<ResultItem>& b);

/// Verdict of a projection-safety check.
struct SafetyReport {
  bool safe = true;
  std::string first_violation;  ///< human-readable mismatch description
};

/// Definition 2 instantiated on two concrete documents: checks that every
/// path in `paths` evaluates top-level-equal on `original` and `projected`.
Result<SafetyReport> CheckProjectionSafety(
    std::string_view original, std::string_view projected,
    const std::vector<paths::ProjectionPath>& paths);

/// Converts a projection path into the XPath used for safety evaluation.
XPath ProjectionPathToXPath(const paths::ProjectionPath& path);

/// Canonical form of one query's path set for multi-query collapse:
/// sorted and deduplicated by ToString(). Queries with equal canonical
/// forms are syntactically identical (the cheap tier of collapse).
std::vector<paths::ProjectionPath> CanonicalizePathSet(
    std::vector<paths::ProjectionPath> paths);

/// Semantic equivalence of two projection queries over documents whose
/// element names come from `alphabet`: walks the product of the two
/// PathSetEvaluators over every label sequence the alphabet can spell,
/// comparing the demanded (select / '#' / '@') flag triple at every
/// reachable state pair. Flag equality on every branch implies both
/// queries keep exactly the same nodes, subtrees, and attributes of any
/// such document -- i.e. identical projections, so the multi-query
/// compiler can serve both from one compiled component. Conservative:
/// returns false once more than `max_states` distinct state pairs have
/// been explored (budget exceeded), never falsely true.
bool EquivalentProjectionQueries(const std::vector<paths::ProjectionPath>& a,
                                 const std::vector<paths::ProjectionPath>& b,
                                 const std::vector<std::string>& alphabet,
                                 size_t max_states = 1 << 14);

}  // namespace smpx::query

#endif  // SMPX_QUERY_EQUIVALENCE_H_
