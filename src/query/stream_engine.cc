#include "query/stream_engine.h"

#include <algorithm>

#include "common/strings.h"
#include "query/xpath.h"
#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/tokenizer.h"

namespace smpx::query {

Status EvaluateStreaming(std::string_view query, std::string_view document,
                         OutputSink* out, StreamStats* stats) {
  SMPX_ASSIGN_OR_RETURN(XPath path, XPath::Parse(query));

  xml::Tokenizer tok(document);
  xml::Token t;

  // Locate the root element, skipping the prolog.
  std::string root_name;
  std::vector<xml::DomAttribute> root_attrs;
  bool root_empty = false;
  for (;;) {
    if (!tok.Next(&t)) {
      SMPX_RETURN_IF_ERROR(tok.status());
      return Status::ParseError("no root element in input");
    }
    if (t.type == xml::TokenType::kStartTag ||
        t.type == xml::TokenType::kEmptyTag) {
      root_name = std::string(t.name);
      for (const xml::Attribute& a : t.attrs) {
        root_attrs.push_back(
            xml::DomAttribute{std::string(a.name), xml::Unescape(a.value)});
      }
      root_empty = t.type == xml::TokenType::kEmptyTag;
      break;
    }
    if (t.type == xml::TokenType::kText &&
        !StripWhitespace(t.text).empty()) {
      return Status::ParseError("character data before the root element");
    }
  }

  bool first_record = true;
  auto process_fragment = [&](xml::Document&& frag) -> Status {
    if (stats != nullptr) {
      ++stats->records;
      stats->peak_record_bytes =
          std::max<uint64_t>(stats->peak_record_bytes, frag.approx_bytes());
    }
    std::vector<xml::NodeId> nodes = Evaluate(path, frag);
    for (xml::NodeId id : nodes) {
      // The fragment root (= document root element) repeats across
      // fragments; report it only once.
      if (id == frag.root() && !first_record) continue;
      if (stats != nullptr) ++stats->result_nodes;
      SMPX_RETURN_IF_ERROR(out->Append(SerializeResults({id}, frag)));
    }
    first_record = false;
    return Status::Ok();
  };

  auto make_fragment = [&]() {
    xml::Document frag;
    xml::DomNode root;
    root.kind = xml::DomNode::Kind::kElement;
    root.name = root_name;
    root.attrs = root_attrs;
    frag.AddNode(std::move(root));
    return frag;
  };

  if (root_empty) {
    xml::Document frag = make_fragment();
    Status s = process_fragment(std::move(frag));
    if (stats != nullptr) stats->input_bytes = document.size();
    return s;
  }

  // Stream the root's children one record at a time.
  xml::Document frag = make_fragment();
  std::vector<xml::NodeId> stack = {frag.root()};
  for (;;) {
    if (!tok.Next(&t)) {
      SMPX_RETURN_IF_ERROR(tok.status());
      return Status::ParseError("unexpected end of input inside <" +
                                root_name + ">");
    }
    bool done = false;
    switch (t.type) {
      case xml::TokenType::kStartTag:
      case xml::TokenType::kEmptyTag: {
        xml::DomNode n;
        n.kind = xml::DomNode::Kind::kElement;
        n.name = std::string(t.name);
        for (const xml::Attribute& a : t.attrs) {
          n.attrs.push_back(
              xml::DomAttribute{std::string(a.name), xml::Unescape(a.value)});
        }
        n.parent = stack.back();
        xml::NodeId id = frag.AddNode(std::move(n));
        frag.node(stack.back()).children.push_back(id);
        if (t.type == xml::TokenType::kStartTag) stack.push_back(id);
        break;
      }
      case xml::TokenType::kEndTag: {
        if (stack.size() == 1) {
          // The root closes: flush the (possibly empty) last fragment.
          done = true;
          break;
        }
        stack.pop_back();
        break;
      }
      case xml::TokenType::kText: {
        if (StripWhitespace(t.text).empty()) break;
        xml::DomNode n;
        n.kind = xml::DomNode::Kind::kText;
        n.text = xml::Unescape(t.text);
        n.parent = stack.back();
        xml::NodeId id = frag.AddNode(std::move(n));
        frag.node(stack.back()).children.push_back(id);
        break;
      }
      case xml::TokenType::kCData: {
        xml::DomNode n;
        n.kind = xml::DomNode::Kind::kText;
        n.text = std::string(t.text);
        n.parent = stack.back();
        xml::NodeId id = frag.AddNode(std::move(n));
        frag.node(stack.back()).children.push_back(id);
        break;
      }
      default:
        break;
    }
    if (done) break;
    // A record is complete when the stack is back at the root and the
    // root has at least one child.
    if (stack.size() == 1 && !frag.node(frag.root()).children.empty()) {
      SMPX_RETURN_IF_ERROR(process_fragment(std::move(frag)));
      frag = make_fragment();
      stack = {frag.root()};
    }
  }
  // Flush the trailing fragment only if it carries content, or if nothing
  // was processed at all (so root-selecting queries still see the root).
  if (!frag.node(frag.root()).children.empty() || first_record) {
    SMPX_RETURN_IF_ERROR(process_fragment(std::move(frag)));
  }

  if (stats != nullptr) {
    stats->input_bytes = document.size();
    stats->output_bytes = out->bytes_written();
  }
  return Status::Ok();
}

}  // namespace smpx::query
