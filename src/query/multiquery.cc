#include "query/multiquery.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "dtd/dtd_automaton.h"
#include "dtd/min_serial.h"
#include "paths/relevance.h"
#include "query/equivalence.h"

namespace smpx::query {
namespace {

using core::Action;
using core::DfaState;
using core::MultiQueryInfo;
using core::RuntimeTables;

/// The implicit "/*" path every compiled query carries (core::Prefilter
/// appends the same one).
paths::ProjectionPath StarPath() {
  paths::ProjectionPath star;
  paths::PathStep step;
  step.axis = paths::PathStep::Axis::kChild;
  step.wildcard = true;
  star.steps.push_back(step);
  return star;
}

std::string SyntacticKey(const std::vector<paths::ProjectionPath>& canon) {
  std::string key;
  for (const paths::ProjectionPath& p : canon) {
    key += p.ToString();
    key.push_back('\n');
  }
  return key;
}

/// Behavioral equality of two compiled component tables: same states (by
/// build order -- determinization is deterministic, so equal inputs number
/// equally), entry metadata, actions, keywords, and transitions. Equal
/// tables emit identical bytes on every input, which is the guarantee the
/// semantic collapse must provide: the abstract flag walk can declare two
/// path sets equivalent while the conservative relevance analysis compiles
/// them differently (e.g. overlapping "//" and exact paths widen to a
/// coarser projection), and collapsing those would break the per-query
/// byte-identity contract. Isomorphic-but-renumbered tables compare
/// unequal, which is merely a missed collapse, never an unsound one.
bool SameComponentBehavior(const RuntimeTables& a, const RuntimeTables& b) {
  if (a.states.size() != b.states.size() || a.initial != b.initial) {
    return false;
  }
  for (size_t q = 0; q < a.states.size(); ++q) {
    const DfaState& x = a.states[q];
    const DfaState& y = b.states[q];
    if (x.is_final != y.is_final || x.entry_closing != y.entry_closing ||
        x.entry_name != y.entry_name || x.action != y.action ||
        x.keywords != y.keywords) {
      return false;
    }
    for (const std::string& kw : x.keywords) {
      const bool closing = kw.size() > 1 && kw[1] == '/';
      const std::string_view name =
          std::string_view(kw).substr(closing ? 2u : 1u);
      if (a.NextState(static_cast<int>(q), name, closing) !=
          b.NextState(static_cast<int>(q), name, closing)) {
        return false;
      }
    }
  }
  return true;
}

/// Moore partition refinement on a component DFA, in place. BuildTables'
/// subset construction distinguishes states by their automaton member
/// sets, which keeps behaviorally identical states apart -- e.g. "inside
/// the root, child k not yet seen" vs "inside the root, child k closed"
/// compile to distinct states with identical keywords, actions, and
/// transitions. A single-query run never notices, but the product over N
/// components multiplies those private distinctions into 2^N tuples.
/// Merging behavior-equivalent states first keeps the product linear.
/// Classes are numbered by first member occurrence, so minimization is
/// deterministic and SameComponentBehavior stays meaningful.
void MinimizeComponent(RuntimeTables* t) {
  const size_t n = t->states.size();
  // Initial partition: everything observable on entry except transitions.
  std::vector<int> cls(n);
  {
    std::map<std::string, int> sig_ids;
    for (size_t q = 0; q < n; ++q) {
      const DfaState& st = t->states[q];
      std::string sig;
      sig.push_back(st.is_final ? 'F' : 'f');
      sig.push_back(st.entry_closing ? '/' : '<');
      sig.push_back(static_cast<char>('0' + static_cast<int>(st.action)));
      sig.push_back(st.count_nesting ? 'N' : 'n');
      sig += st.entry_name;
      for (const std::string& kw : st.keywords) {
        sig.push_back('\0');
        sig += kw;
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      (void)inserted;
      cls[q] = it->second;
    }
  }
  // Refine until stable: split a class when members disagree on any
  // keyword's target class (keyword lists are aligned within a class by
  // the initial signature). Classes only ever split, and both numberings
  // are first-occurrence order, so the fixpoint test is plain equality.
  for (;;) {
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> next(n);
    for (size_t q = 0; q < n; ++q) {
      const DfaState& st = t->states[q];
      std::vector<int> sig;
      sig.reserve(st.keywords.size() + 1);
      sig.push_back(cls[q]);
      for (const std::string& kw : st.keywords) {
        const bool closing = kw.size() > 1 && kw[1] == '/';
        const std::string_view name =
            std::string_view(kw).substr(closing ? 2u : 1u);
        const int to = t->NextState(static_cast<int>(q), name, closing);
        sig.push_back(to < 0 ? -1 : cls[static_cast<size_t>(to)]);
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      (void)inserted;
      next[q] = it->second;
    }
    if (next == cls) break;
    cls = std::move(next);
  }
  int num_classes = 0;
  for (int c : cls) num_classes = std::max(num_classes, c + 1);
  if (static_cast<size_t>(num_classes) == n) return;  // already minimal
  std::vector<int> rep(static_cast<size_t>(num_classes), -1);
  for (size_t q = 0; q < n; ++q) {
    if (rep[static_cast<size_t>(cls[q])] < 0) {
      rep[static_cast<size_t>(cls[q])] = static_cast<int>(q);
    }
  }
  std::vector<DfaState> states;
  states.reserve(static_cast<size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    DfaState st = std::move(t->states[static_cast<size_t>(rep[static_cast<size_t>(c)])]);
    // Merged analysis sets: the members feed the product's jump
    // recomputation, where a superset (and the min jump) is conservative.
    std::set<int> members(st.subset_members.begin(), st.subset_members.end());
    std::set<int> vocab(st.vocab_tokens.begin(), st.vocab_tokens.end());
    uint64_t jump = st.jump;
    for (size_t q = 0; q < n; ++q) {
      if (cls[q] != c || static_cast<int>(q) == rep[static_cast<size_t>(c)]) {
        continue;
      }
      const DfaState& o = t->states[q];
      members.insert(o.subset_members.begin(), o.subset_members.end());
      vocab.insert(o.vocab_tokens.begin(), o.vocab_tokens.end());
      jump = std::min(jump, o.jump);
    }
    st.subset_members.assign(members.begin(), members.end());
    st.vocab_tokens.assign(vocab.begin(), vocab.end());
    st.jump = jump;
    for (int32_t& v : st.open_next_id) {
      if (v >= 0) v = cls[static_cast<size_t>(v)];
    }
    for (int32_t& v : st.close_next_id) {
      if (v >= 0) v = cls[static_cast<size_t>(v)];
    }
    for (auto& [name, v] : st.open_next) v = cls[static_cast<size_t>(v)];
    for (auto& [name, v] : st.close_next) v = cls[static_cast<size_t>(v)];
    states.push_back(std::move(st));
  }
  t->states = std::move(states);
  t->initial = cls[static_cast<size_t>(t->initial)];
}

/// Quotient of a component DFA by FUTURE behavior, for the product tuple.
/// A component state's entry action fires once, on the transition that
/// enters it; afterwards only keywords, finality, and where each keyword
/// leads (and with which entry action) matter. States differing only in
/// how they were entered -- e.g. "inside the root" via the open tag
/// (copy-tag) vs via a matched child's close (copy-off) -- share a class.
/// This is what keeps the product linear: those entry distinctions are
/// private per component, and tuples over raw states would multiply them
/// into 2^N combinations of "which queries matched at least once".
/// Refinement signature: (own class, per keyword: target class + target
/// action), so any member of a class yields the same masks and the same
/// successor classes for every token -- the product reads transitions
/// through a class representative.
struct BehaviorClasses {
  std::vector<int> cls;  ///< state -> class
  std::vector<int> rep;  ///< class -> first member state
};

BehaviorClasses ComputeBehaviorClasses(const RuntimeTables& t) {
  const size_t n = t.states.size();
  std::vector<int> cls(n);
  {
    std::map<std::string, int> sig_ids;
    for (size_t q = 0; q < n; ++q) {
      const DfaState& st = t.states[q];
      std::string sig;
      sig.push_back(st.is_final ? 'F' : 'f');
      sig.push_back(st.count_nesting ? 'N' : 'n');
      for (const std::string& kw : st.keywords) {
        sig.push_back('\0');
        sig += kw;
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      (void)inserted;
      cls[q] = it->second;
    }
  }
  for (;;) {
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> next(n);
    for (size_t q = 0; q < n; ++q) {
      const DfaState& st = t.states[q];
      std::vector<int> sig;
      sig.reserve(2 * st.keywords.size() + 1);
      sig.push_back(cls[q]);
      for (const std::string& kw : st.keywords) {
        const bool closing = kw.size() > 1 && kw[1] == '/';
        const std::string_view name =
            std::string_view(kw).substr(closing ? 2u : 1u);
        const int to = t.NextState(static_cast<int>(q), name, closing);
        sig.push_back(to < 0 ? -1 : cls[static_cast<size_t>(to)]);
        sig.push_back(to < 0 ? -1
                             : static_cast<int>(
                                   t.states[static_cast<size_t>(to)].action));
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      (void)inserted;
      next[q] = it->second;
    }
    if (next == cls) break;
    cls = std::move(next);
  }
  BehaviorClasses out;
  out.cls = std::move(cls);
  int num_classes = 0;
  for (int c : out.cls) num_classes = std::max(num_classes, c + 1);
  out.rep.assign(static_cast<size_t>(num_classes), -1);
  for (size_t q = 0; q < n; ++q) {
    if (out.rep[static_cast<size_t>(out.cls[q])] < 0) {
      out.rep[static_cast<size_t>(out.cls[q])] = static_cast<int>(q);
    }
  }
  return out;
}

/// One product-DFA state under construction: the tuple of component states
/// plus the entry token and the set of components that moved on it (the
/// masks and the bachelor-close target derive from these, and the entry is
/// part of the identity -- two predecessors reaching the same tuple through
/// different tokens would otherwise disagree on what to emit).
struct BuildState {
  std::vector<int> tuple;
  std::string entry_name;
  bool entry_closing = false;
  std::vector<uint64_t> moved;
  /// DTD-automaton positions the document can occupy on entry to this
  /// state (before closure over the tokens this state does not search
  /// for). Drives reachability pruning: the blind component product
  /// explores token interleavings no valid document produces, and without
  /// the tracker the state count is exponential in the mix size.
  std::vector<int> positions;
  std::map<std::string, int, std::less<>> open_to;
  std::map<std::string, int, std::less<>> close_to;
  int32_t bachelor_close = -1;
};

std::string TupleKey(const std::vector<int>& tuple,
                     const std::string& entry_name, bool entry_closing,
                     const std::vector<uint64_t>& moved,
                     const std::vector<int>& positions) {
  std::string key;
  key.reserve((tuple.size() + positions.size()) * 4 + moved.size() * 8 +
              entry_name.size() + 2);
  auto put_u32 = [&key](uint32_t v) {
    for (int i = 0; i < 4; ++i) key.push_back(static_cast<char>(v >> (8 * i)));
  };
  for (int s : tuple) put_u32(static_cast<uint32_t>(s));
  put_u32(0xffffffffu);  // separator: tuple and positions are both id lists
  for (int p : positions) put_u32(static_cast<uint32_t>(p));
  for (uint64_t w : moved) {
    put_u32(static_cast<uint32_t>(w));
    put_u32(static_cast<uint32_t>(w >> 32));
  }
  key.push_back(entry_closing ? '/' : '<');
  key += entry_name;
  return key;
}

Status BuildMatcher(DfaState* state, const core::TableOptions& topts) {
  state->matcher = strmatch::MakeMatcher(state->keywords, topts.algorithm);
  if (state->matcher == nullptr) {
    state->matcher =
        strmatch::MakeMatcher(state->keywords, strmatch::Algorithm::kAuto);
  }
  if (state->matcher == nullptr) {
    return Status::Internal("failed to build matcher for product state");
  }
  state->matcher->set_skip_mode(topts.disable_matcher_skip_loops
                                    ? strmatch::SkipLoopMode::kClassic
                                    : topts.matcher_skip_mode);
  return Status::Ok();
}

}  // namespace

Result<MultiQuery> MultiQuery::Compile(
    dtd::Dtd dtd, std::vector<std::vector<paths::ProjectionPath>> queries,
    const MultiQueryOptions& opts) {
  if (queries.empty()) {
    return Status::InvalidArgument("multi-query mix has no queries");
  }
  if (opts.compile.allow_recursion) {
    return Status::Unsupported(
        "multi-query compilation does not support recursive DTDs (opaque "
        "regions need per-component nesting counters the shared product "
        "cannot carry)");
  }
  if (opts.compile.tables.use_map_dispatch) {
    return Status::InvalidArgument(
        "multi-query tables require interned dispatch "
        "(TableOptions::use_map_dispatch must be false)");
  }
  if (opts.compile.tables.shared_vocabulary) {
    return Status::InvalidArgument(
        "the shared-vocabulary ablation breaks the product construction "
        "(component keywords must stay 1:1 with transitions)");
  }

  MultiQuery mq;
  mq.dtd_ = std::make_shared<const dtd::Dtd>(std::move(dtd));
  mq.original_queries_ = queries;
  mq.compile_opts_ = opts.compile;

  std::vector<std::string> alphabet;
  for (const dtd::ElementDecl& decl : mq.dtd_->elements()) {
    alphabet.push_back(decl.name);
  }

  // One DTD-automaton shared by every component build (the unfolding
  // depends only on the DTD) and by the product's jump / boundary analyses.
  SMPX_ASSIGN_OR_RETURN(dtd::DtdAutomaton aut,
                        dtd::DtdAutomaton::Build(*mq.dtd_, opts.compile.max_instances,
                                                 /*allow_recursion=*/false));

  // Component tables for one canonical query through the standard pipeline
  // (select, subgraph, determinize). No opaque instances exist with
  // recursion rejected, so the prefilter's recursion-soundness pass is
  // vacuous here.
  auto build_component =
      [&](const std::vector<paths::ProjectionPath>& canon)
      -> Result<RuntimeTables> {
    std::vector<paths::ProjectionPath> paths = canon;
    paths::ProjectionPath star = StarPath();
    if (std::find(paths.begin(), paths.end(), star) == paths.end()) {
      paths.push_back(star);
    }
    paths::RelevanceAnalyzer analyzer(std::move(paths), alphabet);
    core::Selection sel = core::SelectStates(aut, analyzer);
    core::SubgraphAutomaton sub = core::BuildSubgraph(aut, sel);
    SMPX_ASSIGN_OR_RETURN(RuntimeTables component,
                          core::BuildTables(aut, sel, sub, opts.compile.tables));
    for (const DfaState& st : component.states) {
      if (st.count_nesting) {
        return Status::Unsupported(
            "multi-query component contains a nesting-counting state");
      }
    }
    MinimizeComponent(&component);
    return component;
  };

  // Equivalence collapse: syntactic canonical forms first (free), then the
  // semantic product walk against each existing representative. A semantic
  // merge is only taken when the candidate's COMPILED tables behave
  // identically to the representative's: the differential contract is
  // byte-identity with the query's own single-query run, and the engine --
  // not the abstract semantics -- defines those bytes.
  std::map<std::string, int> by_key;
  std::vector<RuntimeTables> components;
  for (std::vector<paths::ProjectionPath>& q : queries) {
    std::vector<paths::ProjectionPath> canon =
        CanonicalizePathSet(std::move(q));
    std::string key = SyntacticKey(canon);
    auto it = by_key.find(key);
    if (it != by_key.end()) {
      mq.unique_of_.push_back(it->second);
      continue;
    }
    SMPX_ASSIGN_OR_RETURN(RuntimeTables component, build_component(canon));
    int unique = -1;
    if (opts.semantic_collapse) {
      for (size_t u = 0; u < mq.unique_queries_.size(); ++u) {
        if (EquivalentProjectionQueries(canon, mq.unique_queries_[u], alphabet,
                                        opts.equivalence_budget) &&
            SameComponentBehavior(component, components[u])) {
          unique = static_cast<int>(u);
          break;
        }
      }
    }
    if (unique < 0) {
      unique = static_cast<int>(mq.unique_queries_.size());
      mq.unique_queries_.push_back(std::move(canon));
      components.push_back(std::move(component));
    }
    by_key[std::move(key)] = unique;
    mq.unique_of_.push_back(unique);
  }

  const int num_unique = static_cast<int>(mq.unique_queries_.size());

  const int words = (num_unique + 63) / 64;

  // Future-behavior quotient per component (see ComputeBehaviorClasses):
  // product tuples hold class REPRESENTATIVE states, and each mover's
  // entry action is captured on the transition that moves it. Merge every
  // class's retained analysis sets into its representative so the
  // product's jump recomputation stays sound for any member's context.
  std::vector<BehaviorClasses> beh;
  beh.reserve(components.size());
  for (RuntimeTables& c : components) {
    BehaviorClasses bc = ComputeBehaviorClasses(c);
    for (size_t q = 0; q < c.states.size(); ++q) {
      const int r = bc.rep[static_cast<size_t>(bc.cls[q])];
      if (r == static_cast<int>(q)) continue;
      DfaState& rs = c.states[static_cast<size_t>(r)];
      const DfaState& os = c.states[q];
      std::set<int> members(rs.subset_members.begin(),
                            rs.subset_members.end());
      members.insert(os.subset_members.begin(), os.subset_members.end());
      rs.subset_members.assign(members.begin(), members.end());
      std::set<int> vocab(rs.vocab_tokens.begin(), rs.vocab_tokens.end());
      vocab.insert(os.vocab_tokens.begin(), os.vocab_tokens.end());
      rs.vocab_tokens.assign(vocab.begin(), vocab.end());
    }
    beh.push_back(std::move(bc));
  }
  auto canon_state = [&beh](int u, int s) {
    const BehaviorClasses& bc = beh[static_cast<size_t>(u)];
    return bc.rep[static_cast<size_t>(bc.cls[static_cast<size_t>(s)])];
  };

  // Product subset construction. A component that has reached a final
  // state is FROZEN: its independent run would have stopped there and
  // ignored the rest of the document, so it contributes no keywords, no
  // transitions, and no further output.
  std::map<std::string, int> ids;
  std::vector<BuildState> product;
  std::vector<std::vector<uint64_t>> mask_copy_tag, mask_copy_tag_atts,
      mask_copy_on, mask_copy_off;
  // Per-query entry actions arrive WITH the transition (one (query,
  // action) pair per moved component): the tuple stores behavior-class
  // representatives, whose own entry action may differ from the action of
  // the concrete state the component really entered.
  auto intern = [&](std::vector<int> tuple, const std::string& entry_name,
                    bool entry_closing, const std::vector<uint64_t>& moved,
                    std::vector<int> positions,
                    const std::vector<std::pair<int, Action>>& actions) -> int {
    std::string key =
        TupleKey(tuple, entry_name, entry_closing, moved, positions);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    int id = static_cast<int>(product.size());
    ids.emplace(std::move(key), id);
    std::vector<uint64_t> tag(static_cast<size_t>(words), 0);
    std::vector<uint64_t> tag_atts(static_cast<size_t>(words), 0);
    std::vector<uint64_t> on(static_cast<size_t>(words), 0);
    std::vector<uint64_t> off(static_cast<size_t>(words), 0);
    for (const auto& [u, action] : actions) {
      uint64_t bit = uint64_t{1} << (u % 64);
      size_t w = static_cast<size_t>(u / 64);
      switch (action) {
        case Action::kNop:
          break;
        case Action::kCopyTag:
          tag[w] |= bit;
          break;
        case Action::kCopyTagAtts:
          tag_atts[w] |= bit;
          break;
        case Action::kCopyOn:
          on[w] |= bit;
          break;
        case Action::kCopyOff:
          off[w] |= bit;
          break;
      }
    }
    mask_copy_tag.push_back(std::move(tag));
    mask_copy_tag_atts.push_back(std::move(tag_atts));
    mask_copy_on.push_back(std::move(on));
    mask_copy_off.push_back(std::move(off));
    BuildState bs;
    bs.tuple = std::move(tuple);
    bs.entry_name = entry_name;
    bs.entry_closing = entry_closing;
    bs.moved = moved;
    bs.positions = std::move(positions);
    product.push_back(std::move(bs));
    return id;
  };

  {
    std::vector<int> initial_tuple;
    for (int u = 0; u < num_unique; ++u) {
      initial_tuple.push_back(
          canon_state(u, components[static_cast<size_t>(u)].initial));
    }
    intern(std::move(initial_tuple), "", false,
           std::vector<uint64_t>(static_cast<size_t>(words), 0),
           std::vector<int>{0}, {});
  }

  for (size_t cur = 0; cur < product.size(); ++cur) {
    if (product.size() > opts.max_product_states) {
      return Status::Unsupported(
          "multi-query product DFA exceeds " +
          std::to_string(opts.max_product_states) +
          " states; split the mix or raise max_product_states");
    }
    // Group the non-frozen components' transitions by token.
    struct Movers {
      std::vector<std::pair<int, int>> list;  // (component, target state)
    };
    std::map<std::pair<std::string, bool>, Movers> by_token;
    const std::vector<int> tuple = product[cur].tuple;  // copy: intern grows
    const std::vector<int> entry_positions = product[cur].positions;
    for (int u = 0; u < num_unique; ++u) {
      const RuntimeTables& c = components[static_cast<size_t>(u)];
      const DfaState& cs = c.states[static_cast<size_t>(tuple[static_cast<size_t>(u)])];
      if (cs.is_final) continue;
      for (const std::string& kw : cs.keywords) {
        bool closing = kw.size() > 1 && kw[1] == '/';
        std::string name = kw.substr(closing ? 2 : 1);
        int to = c.NextState(tuple[static_cast<size_t>(u)], name, closing);
        if (to < 0) {
          return Status::Internal(
              "component keyword without transition in product build");
        }
        by_token[{std::move(name), closing}].list.emplace_back(u, to);
      }
    }
    // Position tracker: close the entry positions over every token this
    // state does NOT search for -- the engine skips those tags, but a valid
    // document still moves through them. A candidate token with no edge out
    // of the closure cannot be the next match on any valid input, so its
    // transition (and keyword) is pruned. This is what keeps the product
    // linear in practice: the blind component product explores token
    // interleavings (e.g. two still-open siblings) the DTD forbids, and
    // without the tracker the state count is exponential in the mix size.
    std::set<int> visible_ids;
    for (const auto& [token, movers] : by_token) {
      (void)movers;
      const int id = aut.FindToken(token.first, token.second);
      if (id >= 0) visible_ids.insert(id);
    }
    std::vector<int> closure = entry_positions;
    {
      std::set<int> seen(closure.begin(), closure.end());
      for (size_t i = 0; i < closure.size(); ++i) {
        for (const dtd::DtdAutomaton::Transition& tr : aut.Out(closure[i])) {
          if (visible_ids.count(tr.token) != 0) continue;
          if (seen.insert(tr.to).second) closure.push_back(tr.to);
        }
      }
    }
    for (const auto& [token, movers] : by_token) {
      const auto& [name, closing] = token;
      const int token_id = aut.FindToken(name, closing);
      std::set<int> targets;
      if (token_id >= 0) {
        for (int p : closure) {
          for (const dtd::DtdAutomaton::Transition& tr : aut.Out(p)) {
            if (tr.token == token_id) targets.insert(tr.to);
          }
        }
      }
      if (targets.empty()) continue;  // infeasible on any valid document
      std::vector<int> next_tuple = tuple;
      std::vector<uint64_t> moved(static_cast<size_t>(words), 0);
      std::vector<std::pair<int, Action>> actions;
      actions.reserve(movers.list.size());
      for (const auto& [u, to] : movers.list) {
        next_tuple[static_cast<size_t>(u)] = canon_state(u, to);
        moved[static_cast<size_t>(u / 64)] |= uint64_t{1} << (u % 64);
        actions.emplace_back(
            u, components[static_cast<size_t>(u)].states[static_cast<size_t>(to)].action);
      }
      int target = intern(std::move(next_tuple), name, closing, moved,
                          std::vector<int>(targets.begin(), targets.end()),
                          actions);
      if (closing) {
        product[cur].close_to[name] = target;
      } else {
        product[cur].open_to[name] = target;
      }
    }
    // Bachelor close for open-entry states: move EXACTLY the components of
    // this state's moved set through their closing transition. Idle
    // components stay put -- their independent runs never see the synthetic
    // close inside "<t/>" because the keyword is not in their vocabulary.
    if (!product[cur].entry_name.empty() && !product[cur].entry_closing) {
      const std::string entry = product[cur].entry_name;
      const std::vector<uint64_t> moved = product[cur].moved;
      // "<t/>" is "<t></t>" with nothing between, so the close edge is
      // taken from the RAW entry positions -- no skip-closure applies.
      const int close_id = aut.FindToken(entry, /*closing=*/true);
      std::set<int> close_targets;
      if (close_id >= 0) {
        for (int p : entry_positions) {
          for (const dtd::DtdAutomaton::Transition& tr : aut.Out(p)) {
            if (tr.token == close_id) close_targets.insert(tr.to);
          }
        }
      }
      std::vector<int> close_tuple = tuple;
      std::vector<std::pair<int, Action>> close_actions;
      bool ok = !close_targets.empty();  // empty: the DTD forbids "<t/>" here
      for (int u = 0; u < num_unique && ok; ++u) {
        if ((moved[static_cast<size_t>(u / 64)] >> (u % 64) & 1) == 0) continue;
        int to = components[static_cast<size_t>(u)].NextState(
            tuple[static_cast<size_t>(u)], entry, /*closing=*/true);
        if (to < 0) {
          ok = false;  // runtime ParseError, as in the single-query engine
        } else {
          close_tuple[static_cast<size_t>(u)] = canon_state(u, to);
          close_actions.emplace_back(
              u,
              components[static_cast<size_t>(u)].states[static_cast<size_t>(to)].action);
        }
      }
      if (ok) {
        product[cur].bachelor_close = static_cast<int32_t>(intern(
            std::move(close_tuple), entry, /*closing=*/true, moved,
            std::vector<int>(close_targets.begin(), close_targets.end()),
            close_actions));
      }
    }
  }

  // Render the product into RuntimeTables.
  RuntimeTables tables;
  tables.initial = 0;
  tables.states.resize(product.size());
  for (const RuntimeTables& c : components) {
    tables.nfa_states_selected += c.nfa_states_selected;
    tables.stopover_states += c.stopover_states;
    tables.collapsed_pairs += c.collapsed_pairs;
  }

  dtd::MinSerial ms(&aut.dtd());
  for (size_t q = 0; q < product.size(); ++q) {
    const BuildState& bs = product[q];
    DfaState& st = tables.states[q];
    bool all_final = true;
    for (int u = 0; u < num_unique; ++u) {
      const DfaState& cs =
          components[static_cast<size_t>(u)]
              .states[static_cast<size_t>(bs.tuple[static_cast<size_t>(u)])];
      if (!cs.is_final) all_final = false;
    }
    st.is_final = all_final;
    st.entry_name = bs.entry_name;
    st.entry_closing = bs.entry_closing;
    if (!bs.entry_name.empty()) {
      st.emit_tag = (bs.entry_closing ? "</" : "<") + bs.entry_name + ">";
      if (!bs.entry_closing) st.emit_bachelor = "<" + bs.entry_name + "/>";
    }
    for (const auto& [name, to] : bs.open_to) {
      st.keywords.push_back("<" + name);
      (void)to;
    }
    for (const auto& [name, to] : bs.close_to) {
      st.keywords.push_back("</" + name);
      (void)to;
    }
    std::sort(st.keywords.begin(), st.keywords.end());
    for (const std::string& k : st.keywords) {
      st.max_keyword = std::max(st.max_keyword, k.size());
    }
    if (!st.keywords.empty()) {
      SMPX_RETURN_IF_ERROR(BuildMatcher(&st, opts.compile.tables));
      if (st.keywords.size() == 1) {
        ++tables.num_bm_states;
      } else {
        ++tables.num_cw_states;
      }
    } else if (!st.is_final) {
      return Status::Internal("non-final product state " + std::to_string(q) +
                              " has an empty frontier vocabulary");
    }

    // Sound initial jump: recomputed over the UNION of the non-frozen
    // components' subset members and vocabularies. Taking the min of the
    // component jumps would be unsound -- an idle component entered its
    // state at an earlier cursor, so its own jump window is already spent.
    std::set<int> members;
    std::set<int> vocab;
    for (int u = 0; u < num_unique; ++u) {
      const DfaState& cs =
          components[static_cast<size_t>(u)]
              .states[static_cast<size_t>(bs.tuple[static_cast<size_t>(u)])];
      if (cs.is_final) continue;
      members.insert(cs.subset_members.begin(), cs.subset_members.end());
      vocab.insert(cs.vocab_tokens.begin(), cs.vocab_tokens.end());
    }
    st.subset_members.assign(members.begin(), members.end());
    st.vocab_tokens.assign(vocab.begin(), vocab.end());
    if (opts.compile.tables.enable_initial_jumps && !st.keywords.empty()) {
      st.jump = core::ComputeStateJump(aut, &ms, st.subset_members, vocab);
    }
  }

  // Interned dispatch over the product transition names.
  std::vector<std::string> names;
  for (const BuildState& bs : product) {
    for (const auto& [name, to] : bs.open_to) {
      names.push_back(name);
      (void)to;
    }
    for (const auto& [name, to] : bs.close_to) {
      names.push_back(name);
      (void)to;
    }
  }
  tables.interner = core::TagInterner(names);
  const size_t vocab_size = static_cast<size_t>(tables.interner.size());
  for (size_t q = 0; q < product.size(); ++q) {
    DfaState& st = tables.states[q];
    st.open_next_id.assign(vocab_size, -1);
    st.close_next_id.assign(vocab_size, -1);
    for (const auto& [name, to] : product[q].open_to) {
      st.open_next_id[static_cast<size_t>(tables.interner.Find(name))] = to;
    }
    for (const auto& [name, to] : product[q].close_to) {
      st.close_next_id[static_cast<size_t>(tables.interner.Find(name))] = to;
    }
    if (!st.entry_name.empty()) {
      st.entry_tag_id = tables.interner.Find(st.entry_name);
    }
  }
  tables.interned_dispatch = true;
  core::BoundaryAnalysis ba = core::ComputeBoundaryStates(aut, tables);
  tables.boundary_states = std::move(ba.states);
  tables.boundary_copy_depths = std::move(ba.copy_depths);

  // Flatten the per-state masks into the MultiQueryInfo.
  auto info = std::make_shared<MultiQueryInfo>();
  info->num_queries = num_unique;
  info->words = words;
  auto flatten = [&](const std::vector<std::vector<uint64_t>>& per_state,
                     std::vector<uint64_t>* flat) {
    flat->reserve(per_state.size() * static_cast<size_t>(words));
    for (const std::vector<uint64_t>& m : per_state) {
      flat->insert(flat->end(), m.begin(), m.end());
    }
  };
  std::vector<std::vector<uint64_t>> moved_per_state;
  moved_per_state.reserve(product.size());
  for (const BuildState& bs : product) moved_per_state.push_back(bs.moved);
  flatten(moved_per_state, &info->moved);
  flatten(mask_copy_tag, &info->copy_tag);
  flatten(mask_copy_tag_atts, &info->copy_tag_atts);
  flatten(mask_copy_on, &info->copy_on);
  flatten(mask_copy_off, &info->copy_off);
  info->bachelor_close.reserve(product.size());
  for (const BuildState& bs : product) {
    info->bachelor_close.push_back(bs.bachelor_close);
  }
  tables.multi = std::move(info);

  mq.tables_ = std::make_shared<const RuntimeTables>(std::move(tables));
  return mq;
}

void MultiQuery::RouteSinks(const std::vector<OutputSink*>& sinks,
                            std::vector<std::unique_ptr<FanoutSink>>* owned,
                            std::vector<OutputSink*>* unique_sinks) const {
  std::vector<std::vector<OutputSink*>> groups(
      static_cast<size_t>(num_unique()));
  for (size_t i = 0; i < unique_of_.size(); ++i) {
    groups[static_cast<size_t>(unique_of_[i])].push_back(sinks[i]);
  }
  unique_sinks->clear();
  for (std::vector<OutputSink*>& g : groups) {
    if (g.size() == 1) {
      unique_sinks->push_back(g[0]);
    } else {
      owned->push_back(std::make_unique<FanoutSink>(std::move(g)));
      unique_sinks->push_back(owned->back().get());
    }
  }
}

void MultiQuery::ExpandStats(
    const std::vector<core::QueryRunStats>& unique_stats,
    std::vector<core::QueryRunStats>* per_original) const {
  per_original->resize(unique_of_.size());
  for (size_t i = 0; i < unique_of_.size(); ++i) {
    (*per_original)[i] = unique_stats[static_cast<size_t>(unique_of_[i])];
  }
}

Status MultiQuery::RunOnBuffer(std::string_view document,
                               const std::vector<OutputSink*>& sinks,
                               std::vector<core::QueryRunStats>* query_stats,
                               core::RunStats* stats,
                               const core::EngineOptions& opts) const {
  MemoryInputStream in(document);
  return Run(&in, sinks, query_stats, stats, opts, document.size() + 1);
}

Status MultiQuery::Run(InputStream* in, const std::vector<OutputSink*>& sinks,
                       std::vector<core::QueryRunStats>* query_stats,
                       core::RunStats* stats, const core::EngineOptions& opts,
                       size_t chunk_bytes) const {
  if (static_cast<int>(sinks.size()) != num_queries()) {
    return Status::InvalidArgument(
        "multi-query run needs one sink per original query (" +
        std::to_string(num_queries()) + "), got " +
        std::to_string(sinks.size()));
  }
  if (chunk_bytes == 0) chunk_bytes = 1;
  std::vector<std::unique_ptr<FanoutSink>> owned;
  std::vector<OutputSink*> unique_sinks;
  RouteSinks(sinks, &owned, &unique_sinks);

  std::vector<core::QueryRunStats> unique_stats;
  core::PrefilterSession session(*tables_, std::move(unique_sinks),
                                 &unique_stats, stats, opts);
  std::string buf(chunk_bytes, '\0');
  for (;;) {
    SMPX_ASSIGN_OR_RETURN(size_t n, in->Read(buf.data(), buf.size()));
    if (n == 0) break;
    SMPX_RETURN_IF_ERROR(session.Resume(std::string_view(buf.data(), n)));
    // A finished session ignores trailing bytes, exactly like a serial
    // single-query run; draining the stream is pointless.
    if (session.finished()) break;
  }
  SMPX_RETURN_IF_ERROR(session.Finish());
  if (query_stats != nullptr) ExpandStats(unique_stats, query_stats);
  return Status::Ok();
}

Result<core::Prefilter> MultiQuery::CompileFused() const {
  std::vector<paths::ProjectionPath> fused;
  for (const std::vector<paths::ProjectionPath>& q : original_queries_) {
    fused.insert(fused.end(), q.begin(), q.end());
  }
  fused = CanonicalizePathSet(std::move(fused));
  return core::Prefilter::Compile(dtd::Dtd(*dtd_), std::move(fused),
                                  compile_opts_);
}

}  // namespace smpx::query
