// A compact XPath subset sufficient for the paper's query workloads
// (XMark XM1-XM20 shapes, MEDLINE M1-M5):
//
//   path      ::= '/'? step ('/' step | '//' step)*
//   step      ::= ('child::' | 'descendant::')? nodetest predicate*
//   nodetest  ::= name | '*' | 'text()' | '@' name
//   predicate ::= '[' expr ']'
//   expr      ::= relpath
//               | relpath '=' literal
//               | '@' name '=' literal
//               | 'contains(' relpath ',' literal ')'
//               | 'not(' expr ')'
//
// Used by the in-memory engine (QizX substitute), the record-streaming
// engine (SPEX substitute), and the projection-safety oracle.

#ifndef SMPX_QUERY_XPATH_H_
#define SMPX_QUERY_XPATH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace smpx::query {

struct XPathExpr;

/// One navigation step.
struct XPathStep {
  enum class Axis : unsigned char { kChild, kDescendant };
  enum class Test : unsigned char { kName, kAny, kText, kAttribute };

  Axis axis = Axis::kChild;
  Test test = Test::kName;
  std::string name;  ///< element or attribute name (kName/kAttribute)
  std::vector<XPathExpr> predicates;
};

/// A (possibly relative) location path.
struct XPath {
  bool absolute = true;
  std::vector<XPathStep> steps;

  static Result<XPath> Parse(std::string_view text);
  std::string ToString() const;
};

/// Predicate expression.
struct XPathExpr {
  enum class Kind : unsigned char {
    kExists,    ///< [relpath]
    kEquals,    ///< [relpath = 'lit'] (string-value comparison)
    kContains,  ///< [contains(relpath, 'lit')]
    kNot,       ///< [not(expr)]
  };

  Kind kind = Kind::kExists;
  XPath path;              ///< relative path operand
  std::string literal;     ///< kEquals / kContains
  // kNot wraps one operand (unique_ptr keeps the type sized).
  std::shared_ptr<XPathExpr> inner;
};

/// Evaluates an absolute path against a document; returns matched nodes in
/// document order without duplicates. Attribute-final paths return the
/// *owner elements* (the caller reads the attribute value separately).
std::vector<xml::NodeId> Evaluate(const XPath& path,
                                  const xml::Document& doc);

/// Evaluates relative to `context`.
std::vector<xml::NodeId> EvaluateFrom(const XPath& path,
                                      const xml::Document& doc,
                                      xml::NodeId context);

/// XPath string-value based serialization of a result list: elements are
/// serialized as markup, text nodes as their text. Mirrors what the paper's
/// query engines print.
std::string SerializeResults(const std::vector<xml::NodeId>& nodes,
                             const xml::Document& doc);

}  // namespace smpx::query

#endif  // SMPX_QUERY_XPATH_H_
