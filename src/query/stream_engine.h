// Record-streaming XPath engine: the stand-in for SPEX [3] in Fig. 7(b).
//
// Like SPEX it (a) tokenizes every character of the input and (b) keeps
// memory bounded by the size of one record rather than the document: the
// stream is processed one top-level record (child of the root) at a time;
// each record is materialized as a small DOM fragment, the query is
// evaluated against it, results are emitted, and the fragment is dropped.
// SPEX's progressive in-network evaluation is replaced by per-record
// evaluation; both designs share the properties the paper's experiment
// measures (full tokenization cost, O(record) memory, streaming pipeline
// compatibility). See DESIGN.md, substitutions.

#ifndef SMPX_QUERY_STREAM_ENGINE_H_
#define SMPX_QUERY_STREAM_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/io.h"
#include "common/result.h"

namespace smpx::query {

struct StreamStats {
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t records = 0;        ///< top-level records processed
  uint64_t result_nodes = 0;   ///< matched result nodes
  uint64_t peak_record_bytes = 0;
};

/// Evaluates `query` over `document`, appending serialized results to
/// `out`. The query must be absolute; its first steps may address the root
/// element itself (e.g. "/MedlineCitationSet//..." works).
Status EvaluateStreaming(std::string_view query, std::string_view document,
                         OutputSink* out, StreamStats* stats = nullptr);

}  // namespace smpx::query

#endif  // SMPX_QUERY_STREAM_ENGINE_H_
