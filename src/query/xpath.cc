#include "query/xpath.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace smpx::query {
namespace {

/// Recursive-descent XPath parser.
class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  Result<XPath> ParsePath(bool stop_at_bracket_close = false);

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in XPath '" + std::string(s_) + "'");
  }

  void SkipWs() {
    while (pos_ < s_.size() && IsXmlWhitespace(s_[pos_])) ++pos_;
  }

  bool Peek(std::string_view kw) {
    SkipWs();
    return StartsWith(s_.substr(pos_), kw);
  }

  bool Consume(std::string_view kw) {
    if (Peek(kw)) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  Result<std::string> ReadName() {
    SkipWs();
    if (pos_ >= s_.size() || !IsNameStartChar(s_[pos_])) {
      return Err("expected name");
    }
    size_t b = pos_;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) ++pos_;
    return std::string(s_.substr(b, pos_ - b));
  }

  Result<std::string> ReadLiteral() {
    SkipWs();
    if (pos_ >= s_.size() || (s_[pos_] != '"' && s_[pos_] != '\'')) {
      return Err("expected string literal");
    }
    char quote = s_[pos_++];
    size_t b = pos_;
    while (pos_ < s_.size() && s_[pos_] != quote) ++pos_;
    if (pos_ >= s_.size()) return Err("unterminated literal");
    std::string out(s_.substr(b, pos_ - b));
    ++pos_;
    return out;
  }

  Result<XPathExpr> ParseExpr();
  Result<XPathStep> ParseStep();

  std::string_view s_;
  size_t pos_ = 0;
};

Result<XPathStep> Parser::ParseStep() {
  XPathStep step;
  SkipWs();
  if (Consume("child::")) {
    step.axis = XPathStep::Axis::kChild;
  } else if (Consume("descendant::")) {
    step.axis = XPathStep::Axis::kDescendant;
  }
  if (Consume("@")) {
    step.test = XPathStep::Test::kAttribute;
    SMPX_ASSIGN_OR_RETURN(step.name, ReadName());
  } else if (Consume("text()")) {
    step.test = XPathStep::Test::kText;
  } else if (Consume("*")) {
    step.test = XPathStep::Test::kAny;
  } else {
    SMPX_ASSIGN_OR_RETURN(step.name, ReadName());
    if (Consume("()")) {
      return Err("unsupported node test '" + step.name + "()'");
    }
    step.test = XPathStep::Test::kName;
  }
  while (Consume("[")) {
    SMPX_ASSIGN_OR_RETURN(XPathExpr pred, ParseExpr());
    if (!Consume("]")) return Err("expected ']'");
    step.predicates.push_back(std::move(pred));
  }
  return step;
}

Result<XPathExpr> Parser::ParseExpr() {
  XPathExpr expr;
  SkipWs();
  if (Consume("not(")) {
    SMPX_ASSIGN_OR_RETURN(XPathExpr inner, ParseExpr());
    if (!Consume(")")) return Err("expected ')' after not(...)");
    expr.kind = XPathExpr::Kind::kNot;
    expr.inner = std::make_shared<XPathExpr>(std::move(inner));
    return expr;
  }
  if (Consume("contains(")) {
    SMPX_ASSIGN_OR_RETURN(expr.path, ParsePath(/*stop_at_bracket_close=*/true));
    if (!Consume(",")) return Err("expected ',' in contains()");
    SMPX_ASSIGN_OR_RETURN(expr.literal, ReadLiteral());
    if (!Consume(")")) return Err("expected ')' in contains()");
    expr.kind = XPathExpr::Kind::kContains;
    return expr;
  }
  SMPX_ASSIGN_OR_RETURN(expr.path, ParsePath(/*stop_at_bracket_close=*/true));
  SkipWs();
  if (Consume("=")) {
    SMPX_ASSIGN_OR_RETURN(expr.literal, ReadLiteral());
    expr.kind = XPathExpr::Kind::kEquals;
  } else {
    expr.kind = XPathExpr::Kind::kExists;
  }
  return expr;
}

Result<XPath> Parser::ParsePath(bool stop_at_bracket_close) {
  XPath path;
  SkipWs();
  path.absolute = false;
  bool first = true;
  for (;;) {
    SkipWs();
    if (pos_ >= s_.size()) break;
    XPathStep::Axis axis = XPathStep::Axis::kChild;
    if (first) {
      if (Consume("//")) {
        path.absolute = true;
        axis = XPathStep::Axis::kDescendant;
      } else if (Consume("/")) {
        path.absolute = true;
      } else if (Consume("./")) {
        // explicit relative
      }
    } else {
      if (Consume("//")) {
        axis = XPathStep::Axis::kDescendant;
      } else if (Consume("/")) {
        axis = XPathStep::Axis::kChild;
      } else {
        break;  // end of path (e.g. before '=' or ',' or ']')
      }
    }
    SkipWs();
    if (stop_at_bracket_close &&
        (pos_ >= s_.size() || s_[pos_] == ']' || s_[pos_] == ',' ||
         s_[pos_] == ')' || s_[pos_] == '=')) {
      break;
    }
    if (pos_ >= s_.size()) {
      if (first) return Err("empty path");
      return Err("dangling '/'");
    }
    SMPX_ASSIGN_OR_RETURN(XPathStep step, ParseStep());
    step.axis = axis == XPathStep::Axis::kDescendant
                    ? XPathStep::Axis::kDescendant
                    : step.axis;
    path.steps.push_back(std::move(step));
    first = false;
  }
  if (path.steps.empty() && !path.absolute) {
    return Err("empty path");
  }
  return path;
}

/// True iff the predicate holds at `node`.
bool EvalPredicate(const XPathExpr& expr, const xml::Document& doc,
                   xml::NodeId node);

/// Appends nodes selected by `step` starting from `context`.
void EvalStep(const XPathStep& step, const xml::Document& doc,
              xml::NodeId context, std::vector<xml::NodeId>* out) {
  const xml::DomNode& n = doc.node(context);
  if (n.kind != xml::DomNode::Kind::kElement) return;

  auto consider = [&](xml::NodeId child) {
    const xml::DomNode& c = doc.node(child);
    bool hit = false;
    switch (step.test) {
      case XPathStep::Test::kName:
        hit = c.kind == xml::DomNode::Kind::kElement && c.name == step.name;
        break;
      case XPathStep::Test::kAny:
        hit = c.kind == xml::DomNode::Kind::kElement;
        break;
      case XPathStep::Test::kText:
        hit = c.kind == xml::DomNode::Kind::kText;
        break;
      case XPathStep::Test::kAttribute:
        hit = false;  // handled on the parent, below
        break;
    }
    if (!hit) return;
    for (const XPathExpr& pred : step.predicates) {
      if (!EvalPredicate(pred, doc, child)) return;
    }
    out->push_back(child);
  };

  if (step.test == XPathStep::Test::kAttribute) {
    // '@name' selects the owner element if the attribute is present (we do
    // not materialize attribute nodes).
    for (const xml::DomAttribute& a : n.attrs) {
      if (a.name == step.name) {
        out->push_back(context);
        break;
      }
    }
    if (step.axis == XPathStep::Axis::kDescendant) {
      for (xml::NodeId child : n.children) {
        EvalStep(step, doc, child, out);
      }
    }
    return;
  }

  for (xml::NodeId child : n.children) {
    consider(child);
    if (step.axis == XPathStep::Axis::kDescendant) {
      EvalStep(step, doc, child, out);
    }
  }
}

std::vector<xml::NodeId> EvalPath(const XPath& path, const xml::Document& doc,
                                  xml::NodeId context, bool from_root) {
  std::vector<xml::NodeId> current;
  if (from_root) {
    // The initial context is the *document node*; its only element child is
    // the root. A descendant first step must consider the root itself too.
    if (path.steps.empty()) return {doc.root()};
    const XPathStep& first = path.steps[0];
    std::vector<xml::NodeId> seed;
    const xml::DomNode& root = doc.node(doc.root());
    bool name_ok = first.test == XPathStep::Test::kAny ||
                   (first.test == XPathStep::Test::kName &&
                    root.name == first.name);
    if (name_ok) {
      bool preds = true;
      for (const XPathExpr& pred : first.predicates) {
        preds = preds && EvalPredicate(pred, doc, doc.root());
      }
      if (preds) seed.push_back(doc.root());
    }
    if (first.axis == XPathStep::Axis::kDescendant) {
      EvalStep(first, doc, doc.root(), &seed);
    }
    current = std::move(seed);
    // Remaining steps below.
    for (size_t i = 1; i < path.steps.size(); ++i) {
      std::vector<xml::NodeId> next;
      for (xml::NodeId node : current) {
        EvalStep(path.steps[i], doc, node, &next);
      }
      current = std::move(next);
    }
  } else {
    current = {context};
    for (const XPathStep& step : path.steps) {
      std::vector<xml::NodeId> next;
      for (xml::NodeId node : current) {
        EvalStep(step, doc, node, &next);
      }
      current = std::move(next);
    }
  }
  // Document order + dedup (NodeIds are allocated in document order).
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());
  return current;
}

bool EvalPredicate(const XPathExpr& expr, const xml::Document& doc,
                   xml::NodeId node) {
  switch (expr.kind) {
    case XPathExpr::Kind::kNot:
      return !EvalPredicate(*expr.inner, doc, node);
    case XPathExpr::Kind::kExists: {
      // Attribute-final relative paths test attribute presence.
      return !EvalPath(expr.path, doc, node, /*from_root=*/false).empty();
    }
    case XPathExpr::Kind::kEquals:
    case XPathExpr::Kind::kContains: {
      std::vector<xml::NodeId> operands =
          EvalPath(expr.path, doc, node, /*from_root=*/false);
      for (xml::NodeId op : operands) {
        std::string value;
        const xml::DomNode& n = doc.node(op);
        if (!expr.path.steps.empty() &&
            expr.path.steps.back().test == XPathStep::Test::kAttribute) {
          for (const xml::DomAttribute& a : n.attrs) {
            if (a.name == expr.path.steps.back().name) value = a.value;
          }
        } else if (n.kind == xml::DomNode::Kind::kText) {
          value = n.text;
        } else {
          value = doc.TextContent(op);
        }
        if (expr.kind == XPathExpr::Kind::kEquals
                ? value == expr.literal
                : value.find(expr.literal) != std::string::npos) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace

Result<XPath> XPath::Parse(std::string_view text) {
  Parser p(StripWhitespace(text));
  SMPX_ASSIGN_OR_RETURN(XPath path, p.ParsePath());
  if (!path.absolute) {
    return Status::InvalidArgument("top-level XPath must be absolute: '" +
                                   std::string(text) + "'");
  }
  return path;
}

std::string XPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const XPathStep& s = steps[i];
    out += s.axis == XPathStep::Axis::kDescendant ? "//" : "/";
    switch (s.test) {
      case XPathStep::Test::kName:
        out += s.name;
        break;
      case XPathStep::Test::kAny:
        out += "*";
        break;
      case XPathStep::Test::kText:
        out += "text()";
        break;
      case XPathStep::Test::kAttribute:
        out += "@" + s.name;
        break;
    }
    for (size_t k = 0; k < s.predicates.size(); ++k) out += "[...]";
  }
  return out.empty() ? "/" : out;
}

std::vector<xml::NodeId> Evaluate(const XPath& path,
                                  const xml::Document& doc) {
  if (doc.empty()) return {};
  return EvalPath(path, doc, doc.root(), /*from_root=*/true);
}

std::vector<xml::NodeId> EvaluateFrom(const XPath& path,
                                      const xml::Document& doc,
                                      xml::NodeId context) {
  return EvalPath(path, doc, context, /*from_root=*/false);
}

std::string SerializeResults(const std::vector<xml::NodeId>& nodes,
                             const xml::Document& doc) {
  std::string out;
  for (xml::NodeId id : nodes) {
    const xml::DomNode& n = doc.node(id);
    if (n.kind == xml::DomNode::Kind::kText) {
      out += n.text;
    } else {
      doc.SerializeTo(id, &out);
    }
  }
  return out;
}

}  // namespace smpx::query
