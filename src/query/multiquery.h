// Multi-query projection: compile N projection-path sets against one
// nonrecursive DTD into a single shared product DFA whose actions carry
// per-query bitmasks (core::MultiQueryInfo), so one pass over a document
// serves the whole query mix. Equivalent and duplicate queries are
// collapsed first (query/equivalence.cc: syntactic canonical forms, then a
// semantic product walk over the DTD alphabet), and every original query's
// output stays byte-identical to an independent single-query serial run --
// duplicates are routed through FanoutSink, never re-executed.
//
// Execution drivers: serial one-pass (RunOnBuffer), chunked streaming
// (Run), sharded single-document (parallel::MultiQueryShardedRun via
// ShardedRun), and streaming batches (parallel::MultiQueryBatchRun via the
// CLI). A fused superset projection (one output safe for every query) is
// available through CompileFused.

#ifndef SMPX_QUERY_MULTIQUERY_H_
#define SMPX_QUERY_MULTIQUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/prefilter.h"
#include "core/tables.h"
#include "dtd/dtd.h"
#include "paths/projection_path.h"

namespace smpx::query {

struct MultiQueryOptions {
  /// Table knobs forwarded to every per-query component build and the
  /// product's matchers. Recursive DTDs (allow_recursion), map dispatch,
  /// and the shared-vocabulary ablation are rejected: the product needs
  /// interned dispatch and per-state build analysis.
  core::CompileOptions compile;
  /// State-pair budget per semantic equivalence check (see
  /// EquivalentProjectionQueries); exceeded pairs stay un-collapsed.
  size_t equivalence_budget = 1 << 14;
  /// Also run the semantic equivalence walk when canonical forms differ
  /// (duplicates by ToString always collapse).
  bool semantic_collapse = true;
  /// Cap on product-DFA states; compilation fails with kUnsupported beyond
  /// it (a pathological mix, not a document property).
  size_t max_product_states = 1 << 18;
};

/// A compiled multi-query mix: shared product tables plus the
/// original-query -> unique-query routing produced by equivalence collapse.
class MultiQuery {
 public:
  static Result<MultiQuery> Compile(
      dtd::Dtd dtd, std::vector<std::vector<paths::ProjectionPath>> queries,
      const MultiQueryOptions& opts = {});

  /// Number of original queries (the sink order of every driver).
  int num_queries() const { return static_cast<int>(unique_of_.size()); }
  /// Number of unique queries after collapse (the engine's sink count).
  int num_unique() const { return static_cast<int>(unique_queries_.size()); }
  /// Unique index serving original query `original`.
  int unique_of(int original) const {
    return unique_of_[static_cast<size_t>(original)];
  }
  /// Canonical path set of unique query `u` (without the implicit "/*").
  const std::vector<paths::ProjectionPath>& unique_paths(int u) const {
    return unique_queries_[static_cast<size_t>(u)];
  }

  const core::RuntimeTables& tables() const { return *tables_; }
  std::shared_ptr<const core::RuntimeTables> shared_tables() const {
    return tables_;
  }
  const dtd::Dtd& dtd() const { return *dtd_; }

  /// One serial pass over an in-memory document. `sinks` has one sink per
  /// ORIGINAL query; duplicates of a unique query each receive their own
  /// copy of its bytes. `query_stats` (may be null) gets one entry per
  /// original query.
  Status RunOnBuffer(std::string_view document,
                     const std::vector<OutputSink*>& sinks,
                     std::vector<core::QueryRunStats>* query_stats = nullptr,
                     core::RunStats* stats = nullptr,
                     const core::EngineOptions& opts = {}) const;

  /// Chunked push-mode pass over a stream (bounded memory); same sink and
  /// stats contract as RunOnBuffer.
  Status Run(InputStream* in, const std::vector<OutputSink*>& sinks,
             std::vector<core::QueryRunStats>* query_stats = nullptr,
             core::RunStats* stats = nullptr,
             const core::EngineOptions& opts = {},
             size_t chunk_bytes = 1 << 20) const;

  /// Fused superset projection: one ordinary single-query prefilter over
  /// the union of every original query's paths. Its single output is
  /// projection-safe for each query individually (each query evaluates
  /// top-level-equal on it; see query::CheckProjectionSafety).
  Result<core::Prefilter> CompileFused() const;

  /// Routing helper for external drivers (sharded / batch): maps one sink
  /// per original query to one sink per unique query, fanning duplicates
  /// out. The returned FanoutSinks are owned by `owned`; `unique_sinks`
  /// is in MultiQueryInfo order and valid while `owned` lives.
  void RouteSinks(const std::vector<OutputSink*>& sinks,
                  std::vector<std::unique_ptr<FanoutSink>>* owned,
                  std::vector<OutputSink*>* unique_sinks) const;

  /// Expands per-unique stats (engine order) to per-original stats.
  void ExpandStats(const std::vector<core::QueryRunStats>& unique_stats,
                   std::vector<core::QueryRunStats>* per_original) const;

 private:
  MultiQuery() = default;

  std::shared_ptr<const dtd::Dtd> dtd_;
  std::shared_ptr<const core::RuntimeTables> tables_;
  /// Canonicalized path sets of the unique queries, in engine sink order.
  std::vector<std::vector<paths::ProjectionPath>> unique_queries_;
  /// Original queries as given (for CompileFused and reporting).
  std::vector<std::vector<paths::ProjectionPath>> original_queries_;
  std::vector<int> unique_of_;
  core::CompileOptions compile_opts_;
};

}  // namespace smpx::query

#endif  // SMPX_QUERY_MULTIQUERY_H_
