// In-memory XPath engine over the DOM with an explicit memory budget: the
// stand-in for the paper's main-memory XQuery processors (QizX/Saxon,
// Fig. 7a). Loading a document that exceeds the budget fails with
// kResourceExhausted, reproducing the out-of-memory cliff the paper
// observes for unprojected gigabyte inputs.

#ifndef SMPX_QUERY_MEM_ENGINE_H_
#define SMPX_QUERY_MEM_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "query/xpath.h"

namespace smpx::query {

struct MemEngineOptions {
  /// Maximum DOM footprint in bytes; 0 = unlimited. The paper caps its Java
  /// engines at 1 GB of heap.
  uint64_t memory_budget = 0;
};

/// Result of one evaluation.
struct MemQueryResult {
  std::string output;        ///< serialized result list
  size_t result_count = 0;   ///< number of result nodes
  uint64_t dom_bytes = 0;    ///< DOM footprint actually built
};

/// Parses `document`, evaluates `query`, serializes the result.
Result<MemQueryResult> EvaluateInMemory(std::string_view query,
                                        std::string_view document,
                                        const MemEngineOptions& opts = {});

}  // namespace smpx::query

#endif  // SMPX_QUERY_MEM_ENGINE_H_
