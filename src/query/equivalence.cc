#include "query/equivalence.h"

#include <algorithm>
#include <set>
#include <utility>

#include "paths/path_nfa.h"

namespace smpx::query {

XPath ProjectionPathToXPath(const paths::ProjectionPath& path) {
  XPath xp;
  xp.absolute = true;
  for (const paths::PathStep& step : path.steps) {
    XPathStep xs;
    xs.axis = step.axis == paths::PathStep::Axis::kDescendant
                  ? XPathStep::Axis::kDescendant
                  : XPathStep::Axis::kChild;
    if (step.wildcard) {
      xs.test = XPathStep::Test::kAny;
    } else {
      xs.test = XPathStep::Test::kName;
      xs.name = step.name;
    }
    xp.steps.push_back(std::move(xs));
  }
  return xp;
}

namespace {

void CollectSubtree(const xml::Document& doc, xml::NodeId id,
                    std::vector<xml::NodeId>* out) {
  out->push_back(id);
  const xml::DomNode& n = doc.node(id);
  for (xml::NodeId c : n.children) CollectSubtree(doc, c, out);
}

ResultItem ToItem(const xml::Document& doc, xml::NodeId id) {
  ResultItem item;
  const xml::DomNode& n = doc.node(id);
  if (n.kind == xml::DomNode::Kind::kText) {
    item.is_text = true;
    item.text = n.text;
  } else {
    item.root_label = n.name;
  }
  return item;
}

}  // namespace

std::vector<ResultItem> EvaluateForEquality(const paths::ProjectionPath& path,
                                            const xml::Document& doc) {
  std::vector<xml::NodeId> base = Evaluate(ProjectionPathToXPath(path), doc);
  std::vector<xml::NodeId> nodes;
  if (path.descendants) {
    // '#' reads as descendant-or-self::node() (Definition 2).
    for (xml::NodeId id : base) CollectSubtree(doc, id, &nodes);
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  } else {
    nodes = std::move(base);
  }
  std::vector<ResultItem> items;
  items.reserve(nodes.size());
  for (xml::NodeId id : nodes) items.push_back(ToItem(doc, id));
  return items;
}

bool TopLevelEqual(const std::vector<ResultItem>& a,
                   const std::vector<ResultItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_text != b[i].is_text) return false;
    if (a[i].is_text) {
      if (a[i].text != b[i].text) return false;
    } else {
      if (a[i].root_label != b[i].root_label) return false;
    }
  }
  return true;
}

Result<SafetyReport> CheckProjectionSafety(
    std::string_view original, std::string_view projected,
    const std::vector<paths::ProjectionPath>& paths) {
  SMPX_ASSIGN_OR_RETURN(xml::Document odoc, xml::ParseDocument(original));
  SMPX_ASSIGN_OR_RETURN(xml::Document pdoc, xml::ParseDocument(projected));
  SafetyReport report;
  for (const paths::ProjectionPath& path : paths) {
    std::vector<ResultItem> oitems = EvaluateForEquality(path, odoc);
    std::vector<ResultItem> pitems = EvaluateForEquality(path, pdoc);
    if (!TopLevelEqual(oitems, pitems)) {
      report.safe = false;
      report.first_violation =
          "path " + path.ToString() + ": original yields " +
          std::to_string(oitems.size()) + " item(s), projection yields " +
          std::to_string(pitems.size());
      return report;
    }
  }
  return report;
}

std::vector<paths::ProjectionPath> CanonicalizePathSet(
    std::vector<paths::ProjectionPath> paths) {
  std::sort(paths.begin(), paths.end(),
            [](const paths::ProjectionPath& x, const paths::ProjectionPath& y) {
              return x.ToString() < y.ToString();
            });
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

bool EquivalentProjectionQueries(const std::vector<paths::ProjectionPath>& a,
                                 const std::vector<paths::ProjectionPath>& b,
                                 const std::vector<std::string>& alphabet,
                                 size_t max_states) {
  paths::PathSetEvaluator ea(&a);
  paths::PathSetEvaluator eb(&b);
  using State = paths::PathSetEvaluator::State;

  // A state pair keyed by the concatenated NFA bit sets. Both evaluators
  // have fixed shapes, so the flat bit string is unambiguous.
  auto key = [](const State& sa, const State& sb) {
    std::string k;
    for (const State* s : {&sa, &sb}) {
      for (const std::vector<bool>& set : s->sets) {
        for (bool bit : set) k.push_back(bit ? '1' : '0');
      }
      k.push_back('|');
    }
    return k;
  };

  std::set<std::string> seen;
  std::vector<std::pair<State, State>> work;
  State ia = ea.Initial();
  State ib = eb.Initial();
  seen.insert(key(ia, ib));
  work.emplace_back(std::move(ia), std::move(ib));
  while (!work.empty()) {
    if (seen.size() > max_states) return false;  // budget: conservative "no"
    auto [sa, sb] = std::move(work.back());
    work.pop_back();
    if (ea.Flags(sa) != eb.Flags(sb)) return false;
    for (const std::string& label : alphabet) {
      State na = sa;
      State nb = sb;
      ea.Step(label, &na);
      eb.Step(label, &nb);
      if (seen.insert(key(na, nb)).second) {
        work.emplace_back(std::move(na), std::move(nb));
      }
    }
  }
  return true;
}

}  // namespace smpx::query
