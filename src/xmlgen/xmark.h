// XMark-like auction data generator [17] against a *non-recursive* variant
// of the XMark DTD (the paper likewise modified the DTD: "the XMark DTD
// allows recursive lists within item descriptions; we modified the DTD
// accordingly"). Descriptions here are flat mixed content (text with
// bold/keyword/emph), everything else follows the original structure:
// regions/items, people/profiles, open and closed auctions, categories and
// the category graph.

#ifndef SMPX_XMLGEN_XMARK_H_
#define SMPX_XMLGEN_XMARK_H_

#include <cstdint>
#include <string>

#include "dtd/dtd.h"

namespace smpx::xmlgen {

/// The non-recursive XMark DTD source text (DOCTYPE form).
const std::string& XmarkDtdText();

/// Parsed form of XmarkDtdText(); aborts on internal inconsistency.
dtd::Dtd XmarkDtd();

struct XmarkOptions {
  /// Approximate target size in bytes; entity counts scale linearly, as in
  /// the original generator. 64 MB roughly matches XMark sf = 0.55.
  uint64_t target_bytes = 8ull << 20;
  uint64_t seed = 20080407;  // ICDE'08 (month/day arbitrary but fixed)
};

/// Generates one document. Deterministic in (options).
std::string GenerateXmark(const XmarkOptions& opts = {});

}  // namespace smpx::xmlgen

#endif  // SMPX_XMLGEN_XMARK_H_
