#include "xmlgen/medline.h"

#include <cassert>

#include "xmlgen/text_gen.h"

namespace smpx::xmlgen {
namespace {

constexpr char kMedlineDtd[] = R"(<!DOCTYPE MedlineCitationSet [
<!ELEMENT MedlineCitationSet (MedlineCitation*)>
<!ELEMENT MedlineCitation (PMID, DateCreated, DateCompleted?, Article, MedlineJournalInfo, CitationSubset*, PersonalNameSubjectList?, GeneralNote*)>
<!ATTLIST MedlineCitation Owner CDATA #REQUIRED Status CDATA #REQUIRED>
<!ELEMENT PMID (#PCDATA)>
<!ELEMENT DateCreated (Year, Month, Day)>
<!ELEMENT DateCompleted (Year, Month, Day)>
<!ELEMENT Year (#PCDATA)>
<!ELEMENT Month (#PCDATA)>
<!ELEMENT Day (#PCDATA)>
<!ELEMENT Article (Journal, ArticleTitle, Pagination?, Abstract?, Affiliation?, AuthorList?, Language, CollectionTitle?, DataBankList?, GrantList?, PublicationTypeList)>
<!ELEMENT Journal (ISSN?, JournalIssue, Title, ISOAbbreviation?)>
<!ELEMENT ISSN (#PCDATA)>
<!ELEMENT JournalIssue (Volume?, Issue?, PubDate)>
<!ELEMENT Volume (#PCDATA)>
<!ELEMENT Issue (#PCDATA)>
<!ELEMENT PubDate (Year, Month?, Day?)>
<!ELEMENT Title (#PCDATA)>
<!ELEMENT ISOAbbreviation (#PCDATA)>
<!ELEMENT ArticleTitle (#PCDATA)>
<!ELEMENT Pagination (MedlinePgn)>
<!ELEMENT MedlinePgn (#PCDATA)>
<!ELEMENT Abstract (AbstractText+, CopyrightInformation?)>
<!ELEMENT AbstractText (#PCDATA)>
<!ELEMENT CopyrightInformation (#PCDATA)>
<!ELEMENT Affiliation (#PCDATA)>
<!ELEMENT AuthorList (Author+)>
<!ELEMENT Author (LastName, ForeName?, Initials?)>
<!ELEMENT LastName (#PCDATA)>
<!ELEMENT ForeName (#PCDATA)>
<!ELEMENT Initials (#PCDATA)>
<!ELEMENT Language (#PCDATA)>
<!ELEMENT CollectionTitle (#PCDATA)>
<!ELEMENT DataBankList (DataBank+)>
<!ELEMENT DataBank (DataBankName, AccessionNumberList?)>
<!ELEMENT DataBankName (#PCDATA)>
<!ELEMENT AccessionNumberList (AccessionNumber+)>
<!ELEMENT AccessionNumber (#PCDATA)>
<!ELEMENT GrantList (Grant+)>
<!ELEMENT Grant (GrantID?, Agency?, Country)>
<!ELEMENT GrantID (#PCDATA)>
<!ELEMENT Agency (#PCDATA)>
<!ELEMENT Country (#PCDATA)>
<!ELEMENT PublicationTypeList (PublicationType+)>
<!ELEMENT PublicationType (#PCDATA)>
<!ELEMENT MedlineJournalInfo (Country?, MedlineTA, NlmUniqueID?)>
<!ELEMENT MedlineTA (#PCDATA)>
<!ELEMENT NlmUniqueID (#PCDATA)>
<!ELEMENT CitationSubset (#PCDATA)>
<!ELEMENT PersonalNameSubjectList (PersonalNameSubject+)>
<!ELEMENT PersonalNameSubject (LastName, ForeName?, DatesAssociatedWithName?, TitleAssociatedWithName?)>
<!ELEMENT DatesAssociatedWithName (#PCDATA)>
<!ELEMENT TitleAssociatedWithName (#PCDATA)>
<!ELEMENT GeneralNote (#PCDATA)>
]>)";

class Builder {
 public:
  explicit Builder(const MedlineOptions& opts) : rng_(opts.seed) {
    target_ = opts.target_bytes;
    out_.reserve(static_cast<size_t>(target_ + (1 << 20)));
  }

  std::string Build() {
    out_ += "<?xml version=\"1.0\"?>\n<MedlineCitationSet>";
    uint64_t pmid = 10000000;
    while (out_.size() < target_) Citation(pmid++);
    out_ += "</MedlineCitationSet>\n";
    return std::move(out_);
  }

 private:
  void Text(const char* tag, const std::string& value) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    out_ += value;
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void Words(const char* tag, int lo, int hi) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    AppendWords(&rng_, static_cast<int>(Uniform(&rng_, lo, hi)), &out_);
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void DateElem(const char* tag) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    Text("Year", std::to_string(Uniform(&rng_, 1990, 2006)));
    Text("Month", std::to_string(Uniform(&rng_, 1, 12)));
    Text("Day", std::to_string(Uniform(&rng_, 1, 28)));
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void Citation(uint64_t pmid) {
    out_ += "<MedlineCitation Owner=\"NLM\" Status=\"" +
            std::string(Chance(&rng_, 0.8) ? "MEDLINE" : "In-Process") +
            "\">";
    Text("PMID", std::to_string(pmid));
    DateElem("DateCreated");
    if (Chance(&rng_, 0.7)) DateElem("DateCompleted");

    out_ += "<Article>";
    out_ += "<Journal>";
    if (Chance(&rng_, 0.8)) {
      Text("ISSN", std::to_string(Uniform(&rng_, 1000, 9999)) + "-" +
                       std::to_string(Uniform(&rng_, 1000, 9999)));
    }
    out_ += "<JournalIssue>";
    if (Chance(&rng_, 0.9)) Text("Volume", std::to_string(Uniform(&rng_, 1, 99)));
    if (Chance(&rng_, 0.7)) Text("Issue", std::to_string(Uniform(&rng_, 1, 12)));
    out_ += "<PubDate>";
    Text("Year", std::to_string(Uniform(&rng_, 1990, 2006)));
    if (Chance(&rng_, 0.8)) Text("Month", std::to_string(Uniform(&rng_, 1, 12)));
    out_ += "</PubDate></JournalIssue>";
    // ~0.4% of titles mention the M5 predicate keyword.
    if (Chance(&rng_, 0.004)) {
      Text("Title", "Journal of Instrument Sterilization Research");
    } else {
      Words("Title", 3, 7);
    }
    if (Chance(&rng_, 0.5)) Words("ISOAbbreviation", 1, 3);
    out_ += "</Journal>";
    Words("ArticleTitle", 6, 16);
    if (Chance(&rng_, 0.6)) {
      out_ += "<Pagination>";
      Text("MedlinePgn", std::to_string(Uniform(&rng_, 1, 900)) + "-" +
                             std::to_string(Uniform(&rng_, 901, 1800)));
      out_ += "</Pagination>";
    }
    if (Chance(&rng_, 0.65)) {
      out_ += "<Abstract>";
      int texts = static_cast<int>(Uniform(&rng_, 1, 3));
      for (int i = 0; i < texts; ++i) Words("AbstractText", 40, 160);
      if (Chance(&rng_, 0.2)) {
        // A small share mentions NASA (query M4's predicate).
        if (Chance(&rng_, 0.03)) {
          Text("CopyrightInformation",
               "Copyright 2001 NASA and licensors.");
        } else {
          Words("CopyrightInformation", 4, 10);
        }
      }
      out_ += "</Abstract>";
    }
    if (Chance(&rng_, 0.4)) Words("Affiliation", 6, 14);
    if (Chance(&rng_, 0.85)) {
      out_ += "<AuthorList>";
      int authors = static_cast<int>(Uniform(&rng_, 1, 6));
      for (int i = 0; i < authors; ++i) {
        out_ += "<Author>";
        Text("LastName", PersonName(&rng_));
        if (Chance(&rng_, 0.8)) Words("ForeName", 1, 1);
        if (Chance(&rng_, 0.8)) Text("Initials", "AB");
        out_ += "</Author>";
      }
      out_ += "</AuthorList>";
    }
    Text("Language", "eng");
    // CollectionTitle is deliberately never emitted (query M1).
    if (Chance(&rng_, 0.08)) {
      out_ += "<DataBankList>";
      out_ += "<DataBank>";
      // About a third of data banks are "PDB" (query M2's predicate).
      Text("DataBankName", Chance(&rng_, 0.33) ? "PDB" : "GENBANK");
      if (Chance(&rng_, 0.8)) {
        out_ += "<AccessionNumberList>";
        int n = static_cast<int>(Uniform(&rng_, 1, 4));
        for (int i = 0; i < n; ++i) {
          Text("AccessionNumber",
               "A" + std::to_string(Uniform(&rng_, 100000, 999999)));
        }
        out_ += "</AccessionNumberList>";
      }
      out_ += "</DataBank>";
      out_ += "</DataBankList>";
    }
    if (Chance(&rng_, 0.15)) {
      out_ += "<GrantList><Grant>";
      if (Chance(&rng_, 0.7)) {
        Text("GrantID", "G" + std::to_string(Uniform(&rng_, 10000, 99999)));
      }
      if (Chance(&rng_, 0.7)) Words("Agency", 1, 3);
      Text("Country", "United States");
      out_ += "</Grant></GrantList>";
    }
    out_ += "<PublicationTypeList>";
    Text("PublicationType", "Journal Article");
    out_ += "</PublicationTypeList>";
    out_ += "</Article>";

    out_ += "<MedlineJournalInfo>";
    if (Chance(&rng_, 0.8)) Text("Country", "ENGLAND");
    // ~0.4% of journal abbreviations carry the M5 predicate keyword.
    if (Chance(&rng_, 0.004)) {
      Text("MedlineTA", "J Instrum Sterilization Res");
    } else {
      Words("MedlineTA", 1, 4);
    }
    if (Chance(&rng_, 0.8)) {
      Text("NlmUniqueID", std::to_string(Uniform(&rng_, 1000000, 9999999)));
    }
    out_ += "</MedlineJournalInfo>";

    if (Chance(&rng_, 0.5)) Text("CitationSubset", "IM");
    if (Chance(&rng_, 0.03)) {
      out_ += "<PersonalNameSubjectList><PersonalNameSubject>";
      // The M3 predicate targets.
      Text("LastName",
           Chance(&rng_, 0.15) ? "Hippocrates" : PersonName(&rng_));
      if (Chance(&rng_, 0.5)) Text("DatesAssociatedWithName", "Oct2006");
      if (Chance(&rng_, 0.8)) Words("TitleAssociatedWithName", 3, 8);
      out_ += "</PersonalNameSubject></PersonalNameSubjectList>";
    }
    if (Chance(&rng_, 0.1)) Words("GeneralNote", 4, 12);
    out_ += "</MedlineCitation>";
  }

  Rng rng_;
  uint64_t target_ = 0;
  std::string out_;
};

}  // namespace

const std::string& MedlineDtdText() {
  static const std::string* text = new std::string(kMedlineDtd);
  return *text;
}

dtd::Dtd MedlineDtd() {
  auto r = dtd::Dtd::Parse(MedlineDtdText());
  assert(r.ok());
  return std::move(*r);
}

std::string GenerateMedline(const MedlineOptions& opts) {
  return Builder(opts).Build();
}

}  // namespace smpx::xmlgen
