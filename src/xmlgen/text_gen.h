// Deterministic filler-text generation shared by the dataset generators.
// Mirrors the XMark xmlgen approach of sampling from a fixed vocabulary so
// documents have realistic text/markup byte ratios.

#ifndef SMPX_XMLGEN_TEXT_GEN_H_
#define SMPX_XMLGEN_TEXT_GEN_H_

#include <cstdint>
#include <random>
#include <string>

namespace smpx::xmlgen {

/// Seeded generator handed through all dataset builders; documents are
/// reproducible given (generator kind, scale, seed).
using Rng = std::mt19937_64;

/// Appends `words` vocabulary words separated by spaces.
void AppendWords(Rng* rng, int words, std::string* out);

/// A capitalized personal name like "Takano Vries".
std::string PersonName(Rng* rng);

/// "streetno word Street".
std::string Street(Rng* rng);

/// A date "MM/DD/YYYY" within 1998..2001 (the XMark convention).
std::string Date(Rng* rng);

/// A time "HH:MM:SS".
std::string Time(Rng* rng);

/// A decimal amount like "34.07".
std::string Money(Rng* rng);

/// Uniform integer in [lo, hi].
int64_t Uniform(Rng* rng, int64_t lo, int64_t hi);

/// True with probability p.
bool Chance(Rng* rng, double p);

}  // namespace smpx::xmlgen

#endif  // SMPX_XMLGEN_TEXT_GEN_H_
