// Protein Sequence Database-like generator [26]: the third dataset of the
// paper's evaluation (results referenced to the companion website [27]).
// Shape: a flat list of deeply-structured protein entries with long
// sequences -- markup-light, text-heavy, the opposite mix of XMark.

#ifndef SMPX_XMLGEN_PROTEIN_H_
#define SMPX_XMLGEN_PROTEIN_H_

#include <cstdint>
#include <string>

#include "dtd/dtd.h"

namespace smpx::xmlgen {

const std::string& ProteinDtdText();
dtd::Dtd ProteinDtd();

struct ProteinOptions {
  uint64_t target_bytes = 8ull << 20;
  uint64_t seed = 26;
};

std::string GenerateProtein(const ProteinOptions& opts = {});

}  // namespace smpx::xmlgen

#endif  // SMPX_XMLGEN_PROTEIN_H_
