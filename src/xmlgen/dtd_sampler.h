// Property-test substrate: (a) sample random *nonrecursive* DTDs, (b)
// sample random documents valid w.r.t. a DTD, and (c) sample random
// projection-path sets over a DTD's element names. Together these drive
// the projection-safety property tests: for any (DTD, document, paths),
// the prefilter output must be well-formed and projection-safe.

#ifndef SMPX_XMLGEN_DTD_SAMPLER_H_
#define SMPX_XMLGEN_DTD_SAMPLER_H_

#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "paths/projection_path.h"
#include "xmlgen/text_gen.h"

namespace smpx::xmlgen {

struct RandomDtdOptions {
  int num_elements = 8;       ///< including the root
  int max_children = 4;       ///< per content-model group
  double pcdata_ratio = 0.4;  ///< fraction of leaf-ish elements
  double attr_ratio = 0.3;    ///< elements with an attribute list
};

/// Generates a random nonrecursive DTD: element i only references elements
/// j > i, so the reference graph is a DAG by construction.
dtd::Dtd RandomDtd(Rng* rng, const RandomDtdOptions& opts = {});

struct RandomDocumentOptions {
  double repeat_continue = 0.55;  ///< geometric continue for * and +
  double opt_present = 0.5;       ///< probability a ? / nullable part appears
  int max_repeat = 5;             ///< cap on * / + repetitions
  int max_depth = 64;             ///< hard recursion guard
  double text_present = 0.7;      ///< PCDATA emitted with this probability
  double bachelor_ratio = 0.5;    ///< nullable elements as <t/> vs <t></t>
};

/// Generates a random document valid w.r.t. `dtd` (without prolog).
std::string RandomDocument(const dtd::Dtd& dtd, Rng* rng,
                           const RandomDocumentOptions& opts = {});

struct RandomPathsOptions {
  int num_paths = 3;
  int max_steps = 3;
  double descendant_ratio = 0.4;  ///< '//' steps
  double wildcard_ratio = 0.15;
  double hash_ratio = 0.5;        ///< '#' flag
  double attr_flag_ratio = 0.2;   ///< '@' flag
};

/// Samples projection paths over the DTD's element names. Paths are
/// syntactically valid but need not be satisfiable.
std::vector<paths::ProjectionPath> RandomPaths(
    const dtd::Dtd& dtd, Rng* rng, const RandomPathsOptions& opts = {});

}  // namespace smpx::xmlgen

#endif  // SMPX_XMLGEN_DTD_SAMPLER_H_
