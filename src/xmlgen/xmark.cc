#include "xmlgen/xmark.h"

#include <cassert>

#include "xmlgen/text_gen.h"

namespace smpx::xmlgen {
namespace {

constexpr char kXmarkDtd[] = R"(<!DOCTYPE site [
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox?)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT emph (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, description)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED to IDREF #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #REQUIRED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation?, quantity, type, interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT annotation (author, description, happiness)>
<!ELEMENT author EMPTY>
<!ATTLIST author person IDREF #REQUIRED>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
<!ELEMENT type (#PCDATA)>
]>)";

/// Entity counts per 1 MB of target size, tuned to land near the target
/// with the text generator below (calibrated empirically, see xmlgen_test).
struct Scale {
  uint64_t items;
  uint64_t persons;
  uint64_t open_auctions;
  uint64_t closed_auctions;
  uint64_t categories;
};

Scale ScaleFor(uint64_t target_bytes) {
  double mb = static_cast<double>(target_bytes) / (1 << 20);
  auto n = [mb](double per_mb) {
    uint64_t v = static_cast<uint64_t>(per_mb * mb);
    return v < 1 ? uint64_t{1} : v;
  };
  // XMark sf=1 keeps the entity *ratios* 21750 : 25500 : 12000 : 9750 :
  // 1000 (items : persons : open : closed : categories); the per-MB rates
  // are calibrated so generated size lands near the target with our
  // flattened descriptions (xmlgen_test checks the bounds).
  return Scale{n(560), n(657), n(309), n(251), n(26)};
}

class Builder {
 public:
  Builder(const XmarkOptions& opts) : rng_(opts.seed) {
    scale_ = ScaleFor(opts.target_bytes);
    out_.reserve(static_cast<size_t>(opts.target_bytes + (1 << 20)));
  }

  std::string Build() {
    out_ += "<?xml version=\"1.0\" standalone=\"yes\"?>\n";
    out_ += "<site>";
    Regions();
    Categories();
    Catgraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    out_ += "</site>\n";
    return std::move(out_);
  }

 private:
  void Text(const char* tag, const std::string& value) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    out_ += value;
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void Words(const char* tag, int lo, int hi) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    AppendWords(&rng_, static_cast<int>(Uniform(&rng_, lo, hi)), &out_);
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void Description() {
    // Flat mixed content replacing the recursive parlist.
    out_ += "<description>";
    int pieces = static_cast<int>(Uniform(&rng_, 2, 6));
    for (int i = 0; i < pieces; ++i) {
      if (Chance(&rng_, 0.35)) {
        const char* tag = Chance(&rng_, 0.5)   ? "bold"
                          : Chance(&rng_, 0.5) ? "keyword"
                                               : "emph";
        out_ += '<';
        out_ += tag;
        out_ += '>';
        AppendWords(&rng_, static_cast<int>(Uniform(&rng_, 1, 4)), &out_);
        out_ += "</";
        out_ += tag;
        out_ += '>';
      } else {
        AppendWords(&rng_, static_cast<int>(Uniform(&rng_, 6, 24)), &out_);
      }
    }
    out_ += "</description>";
  }

  void Item(uint64_t id) {
    out_ += "<item id=\"item" + std::to_string(id) + "\"";
    if (Chance(&rng_, 0.1)) out_ += " featured=\"yes\"";
    out_ += '>';
    Text("location", Chance(&rng_, 0.4) ? "United States"
                                        : PersonName(&rng_) + " Republic");
    Text("quantity", std::to_string(Uniform(&rng_, 1, 10)));
    Words("name", 2, 4);
    Text("payment", Chance(&rng_, 0.5) ? "Creditcard" : "Money order");
    Description();
    Words("shipping", 3, 8);
    int cats = static_cast<int>(Uniform(&rng_, 1, 3));
    for (int c = 0; c < cats; ++c) {
      out_ += "<incategory category=\"category" +
              std::to_string(Uniform(
                  &rng_, 0, static_cast<int64_t>(scale_.categories) - 1)) +
              "\"/>";
    }
    if (Chance(&rng_, 0.3)) {
      out_ += "<mailbox>";
      int mails = static_cast<int>(Uniform(&rng_, 0, 2));
      for (int m = 0; m < mails; ++m) {
        out_ += "<mail>";
        Text("from", PersonName(&rng_));
        Text("to", PersonName(&rng_));
        Text("date", Date(&rng_));
        Description();
        out_ += "</mail>";
      }
      out_ += "</mailbox>";
    }
    out_ += "</item>";
  }

  void Regions() {
    static const char* kRegions[] = {"africa",   "asia",     "australia",
                                     "europe",   "namerica", "samerica"};
    // Region shares follow the original generator (namerica/europe-heavy).
    static const double kShare[] = {0.055, 0.10, 0.055, 0.30, 0.44, 0.05};
    out_ += "<regions>";
    uint64_t id = 0;
    for (int r = 0; r < 6; ++r) {
      out_ += "<";
      out_ += kRegions[r];
      out_ += ">";
      uint64_t count = static_cast<uint64_t>(
          kShare[r] * static_cast<double>(scale_.items));
      for (uint64_t i = 0; i < count; ++i) Item(id++);
      out_ += "</";
      out_ += kRegions[r];
      out_ += ">";
    }
    out_ += "</regions>";
  }

  void Categories() {
    out_ += "<categories>";
    for (uint64_t c = 0; c < scale_.categories; ++c) {
      out_ += "<category id=\"category" + std::to_string(c) + "\">";
      Words("name", 1, 3);
      Description();
      out_ += "</category>";
    }
    out_ += "</categories>";
  }

  void Catgraph() {
    out_ += "<catgraph>";
    for (uint64_t e = 0; e < scale_.categories; ++e) {
      out_ += "<edge from=\"category" +
              std::to_string(Uniform(
                  &rng_, 0, static_cast<int64_t>(scale_.categories) - 1)) +
              "\" to=\"category" +
              std::to_string(Uniform(
                  &rng_, 0, static_cast<int64_t>(scale_.categories) - 1)) +
              "\"/>";
    }
    out_ += "</catgraph>";
  }

  void People() {
    out_ += "<people>";
    for (uint64_t p = 0; p < scale_.persons; ++p) {
      out_ += "<person id=\"person" + std::to_string(p) + "\">";
      Text("name", PersonName(&rng_));
      Text("emailaddress",
           "mailto:person" + std::to_string(p) + "@smpx.example");
      if (Chance(&rng_, 0.4)) {
        Text("phone", "+" + std::to_string(Uniform(&rng_, 1, 99)) + " (" +
                          std::to_string(Uniform(&rng_, 100, 999)) + ") " +
                          std::to_string(Uniform(&rng_, 1000000, 9999999)));
      }
      if (Chance(&rng_, 0.5)) {
        out_ += "<address>";
        Text("street", Street(&rng_));
        Words("city", 1, 2);
        Text("country", Chance(&rng_, 0.5) ? "United States" : "Malaysia");
        if (Chance(&rng_, 0.3)) Words("province", 1, 1);
        Text("zipcode", std::to_string(Uniform(&rng_, 10000, 99999)));
        out_ += "</address>";
      }
      if (Chance(&rng_, 0.3)) {
        Text("homepage",
             "http://www.smpx.example/~person" + std::to_string(p));
      }
      if (Chance(&rng_, 0.4)) {
        Text("creditcard", std::to_string(Uniform(&rng_, 1000, 9999)) + " " +
                               std::to_string(Uniform(&rng_, 1000, 9999)));
      }
      if (Chance(&rng_, 0.7)) {
        out_ += "<profile income=\"" + Money(&rng_) + "\">";
        int interests = static_cast<int>(Uniform(&rng_, 0, 4));
        for (int i = 0; i < interests; ++i) {
          out_ += "<interest category=\"category" +
                  std::to_string(Uniform(
                      &rng_, 0,
                      static_cast<int64_t>(scale_.categories) - 1)) +
                  "\"/>";
        }
        if (Chance(&rng_, 0.5)) Words("education", 1, 2);
        if (Chance(&rng_, 0.7)) {
          Text("gender", Chance(&rng_, 0.5) ? "male" : "female");
        }
        Text("business", Chance(&rng_, 0.5) ? "Yes" : "No");
        if (Chance(&rng_, 0.6)) {
          Text("age", std::to_string(Uniform(&rng_, 18, 90)));
        }
        out_ += "</profile>";
      }
      if (Chance(&rng_, 0.4)) {
        out_ += "<watches>";
        int watches = static_cast<int>(Uniform(&rng_, 0, 3));
        for (int w = 0; w < watches; ++w) {
          out_ += "<watch open_auction=\"open_auction" +
                  std::to_string(Uniform(
                      &rng_, 0,
                      static_cast<int64_t>(scale_.open_auctions) - 1)) +
                  "\"/>";
        }
        out_ += "</watches>";
      }
      out_ += "</person>";
    }
    out_ += "</people>";
  }

  void PersonRef(const char* tag) {
    out_ += "<";
    out_ += tag;
    out_ += " person=\"person" +
            std::to_string(Uniform(
                &rng_, 0, static_cast<int64_t>(scale_.persons) - 1)) +
            "\"/>";
  }

  void Annotation() {
    out_ += "<annotation>";
    PersonRef("author");
    Description();
    Words("happiness", 1, 1);
    out_ += "</annotation>";
  }

  void OpenAuctions() {
    out_ += "<open_auctions>";
    for (uint64_t a = 0; a < scale_.open_auctions; ++a) {
      out_ += "<open_auction id=\"open_auction" + std::to_string(a) + "\">";
      Text("initial", Money(&rng_));
      if (Chance(&rng_, 0.4)) Text("reserve", Money(&rng_));
      int bidders = static_cast<int>(Uniform(&rng_, 0, 5));
      for (int b = 0; b < bidders; ++b) {
        out_ += "<bidder>";
        Text("date", Date(&rng_));
        Text("time", Time(&rng_));
        PersonRef("personref");
        Text("increase", Money(&rng_));
        out_ += "</bidder>";
      }
      Text("current", Money(&rng_));
      if (Chance(&rng_, 0.3)) Text("privacy", "Yes");
      out_ += "<itemref item=\"item" +
              std::to_string(Uniform(
                  &rng_, 0, static_cast<int64_t>(scale_.items) - 1)) +
              "\"/>";
      PersonRef("seller");
      if (Chance(&rng_, 0.6)) Annotation();
      Text("quantity", std::to_string(Uniform(&rng_, 1, 10)));
      Text("type", Chance(&rng_, 0.5) ? "Regular" : "Featured");
      out_ += "<interval>";
      Text("start", Date(&rng_));
      Text("end", Date(&rng_));
      out_ += "</interval>";
      out_ += "</open_auction>";
    }
    out_ += "</open_auctions>";
  }

  void ClosedAuctions() {
    out_ += "<closed_auctions>";
    for (uint64_t a = 0; a < scale_.closed_auctions; ++a) {
      out_ += "<closed_auction>";
      PersonRef("seller");
      PersonRef("buyer");
      out_ += "<itemref item=\"item" +
              std::to_string(Uniform(
                  &rng_, 0, static_cast<int64_t>(scale_.items) - 1)) +
              "\"/>";
      Text("price", Money(&rng_));
      Text("date", Date(&rng_));
      Text("quantity", std::to_string(Uniform(&rng_, 1, 10)));
      Text("type", Chance(&rng_, 0.5) ? "Regular" : "Featured");
      if (Chance(&rng_, 0.6)) Annotation();
      out_ += "</closed_auction>";
    }
    out_ += "</closed_auctions>";
  }

  Rng rng_;
  Scale scale_;
  std::string out_;
};

}  // namespace

const std::string& XmarkDtdText() {
  static const std::string* text = new std::string(kXmarkDtd);
  return *text;
}

dtd::Dtd XmarkDtd() {
  auto r = dtd::Dtd::Parse(XmarkDtdText());
  assert(r.ok());
  return std::move(*r);
}

std::string GenerateXmark(const XmarkOptions& opts) {
  return Builder(opts).Build();
}

}  // namespace smpx::xmlgen
