#include "xmlgen/dtd_sampler.h"

#include <algorithm>
#include <cassert>

#include "dtd/glushkov.h"

namespace smpx::xmlgen {
namespace {

using dtd::ContentExpr;
using dtd::ContentModel;

/// Builds a random content expression over child names `pool` (all with
/// index greater than the owner, passed in by the caller).
ContentExpr RandomExpr(Rng* rng, const std::vector<std::string>& pool,
                       int budget, int depth) {
  if (budget <= 1 || depth >= 3 || pool.size() == 1) {
    ContentExpr name;
    name.op = ContentExpr::Op::kName;
    name.name = pool[static_cast<size_t>(
        Uniform(rng, 0, static_cast<int64_t>(pool.size()) - 1))];
    // Random modifier.
    double roll = Uniform(rng, 0, 99) / 100.0;
    if (roll < 0.2) {
      ContentExpr wrap;
      wrap.op = roll < 0.07   ? ContentExpr::Op::kStar
                : roll < 0.14 ? ContentExpr::Op::kPlus
                              : ContentExpr::Op::kOpt;
      wrap.kids.push_back(std::move(name));
      return wrap;
    }
    return name;
  }
  ContentExpr group;
  group.op = Chance(rng, 0.5) ? ContentExpr::Op::kSeq
                              : ContentExpr::Op::kChoice;
  int kids = static_cast<int>(Uniform(rng, 2, std::min(budget, 4)));
  for (int i = 0; i < kids; ++i) {
    group.kids.push_back(RandomExpr(rng, pool, budget / kids, depth + 1));
  }
  if (Chance(rng, 0.3)) {
    ContentExpr wrap;
    double roll = Uniform(rng, 0, 99) / 100.0;
    wrap.op = roll < 0.4   ? ContentExpr::Op::kStar
              : roll < 0.7 ? ContentExpr::Op::kPlus
                           : ContentExpr::Op::kOpt;
    wrap.kids.push_back(std::move(group));
    return wrap;
  }
  return group;
}

}  // namespace

dtd::Dtd RandomDtd(Rng* rng, const RandomDtdOptions& opts) {
  dtd::Dtd out;
  std::vector<std::string> names;
  for (int i = 0; i < opts.num_elements; ++i) {
    names.push_back("e" + std::to_string(i));
  }
  out.set_root(names[0]);
  for (int i = 0; i < opts.num_elements; ++i) {
    dtd::ElementDecl decl;
    decl.name = names[static_cast<size_t>(i)];
    std::vector<std::string> pool(names.begin() + i + 1, names.end());
    bool leaf = pool.empty() || Chance(rng, opts.pcdata_ratio);
    if (leaf) {
      decl.model.kind = Chance(rng, 0.7) ? ContentModel::Kind::kPcdata
                                         : ContentModel::Kind::kEmpty;
    } else if (Chance(rng, 0.15)) {
      // Mixed content over a small subset.
      decl.model.kind = ContentModel::Kind::kMixed;
      int picks = static_cast<int>(Uniform(
          rng, 1, std::min<int64_t>(2, static_cast<int64_t>(pool.size()))));
      for (int k = 0; k < picks; ++k) {
        decl.model.mixed_names.push_back(pool[static_cast<size_t>(
            Uniform(rng, 0, static_cast<int64_t>(pool.size()) - 1))]);
      }
      std::sort(decl.model.mixed_names.begin(), decl.model.mixed_names.end());
      decl.model.mixed_names.erase(
          std::unique(decl.model.mixed_names.begin(),
                      decl.model.mixed_names.end()),
          decl.model.mixed_names.end());
    } else {
      decl.model.kind = ContentModel::Kind::kRegex;
      decl.model.expr = RandomExpr(rng, pool, opts.max_children, 0);
    }
    if (Chance(rng, opts.attr_ratio)) {
      dtd::AttributeDecl attr;
      attr.name = "a" + std::to_string(i);
      attr.type = "CDATA";
      attr.def = Chance(rng, 0.5) ? dtd::AttributeDecl::Default::kRequired
                                  : dtd::AttributeDecl::Default::kImplied;
      decl.attrs.push_back(std::move(attr));
    }
    out.AddElement(std::move(decl));
  }
  assert(!out.IsRecursive());
  return out;
}

namespace {

struct DocBuilder {
  const dtd::Dtd* dtd;
  Rng* rng;
  const RandomDocumentOptions* opts;
  std::string out;

  void Attrs(const dtd::ElementDecl& decl) {
    for (const dtd::AttributeDecl& a : decl.attrs) {
      if (a.required() || Chance(rng, 0.3)) {
        out += " " + a.name + "=\"v" +
               std::to_string(Uniform(rng, 0, 9)) + "\"";
      }
    }
  }

  void Text() {
    if (Chance(rng, opts->text_present)) {
      AppendWords(rng, static_cast<int>(Uniform(rng, 1, 4)), &out);
    }
  }

  void Expr(const ContentExpr& e, int depth) {
    switch (e.op) {
      case ContentExpr::Op::kName:
        Element(e.name, depth);
        return;
      case ContentExpr::Op::kSeq:
        for (const ContentExpr& k : e.kids) Expr(k, depth);
        return;
      case ContentExpr::Op::kChoice: {
        size_t pick = static_cast<size_t>(Uniform(
            rng, 0, static_cast<int64_t>(e.kids.size()) - 1));
        Expr(e.kids[pick], depth);
        return;
      }
      case ContentExpr::Op::kOpt:
        if (Chance(rng, opts->opt_present)) Expr(e.kids[0], depth);
        return;
      case ContentExpr::Op::kStar: {
        int n = 0;
        while (n < opts->max_repeat && Chance(rng, opts->repeat_continue)) {
          Expr(e.kids[0], depth);
          ++n;
        }
        return;
      }
      case ContentExpr::Op::kPlus: {
        Expr(e.kids[0], depth);
        int n = 1;
        while (n < opts->max_repeat && Chance(rng, opts->repeat_continue)) {
          Expr(e.kids[0], depth);
          ++n;
        }
        return;
      }
    }
  }

  void Element(const std::string& name, int depth) {
    const dtd::ElementDecl* decl = dtd->Find(name);
    assert(decl != nullptr);
    const ContentModel& model = decl->model;
    bool force_minimal = depth >= opts->max_depth;

    bool empty_content =
        model.kind == ContentModel::Kind::kEmpty ||
        (model.Nullable() && (force_minimal || Chance(rng, 0.25)));
    if (empty_content && Chance(rng, opts->bachelor_ratio)) {
      out += "<" + name;
      Attrs(*decl);
      out += "/>";
      return;
    }
    out += "<" + name;
    Attrs(*decl);
    out += ">";
    if (!empty_content) {
      switch (model.kind) {
        case ContentModel::Kind::kEmpty:
          break;
        case ContentModel::Kind::kPcdata:
          Text();
          break;
        case ContentModel::Kind::kAny:
          Text();
          break;
        case ContentModel::Kind::kMixed: {
          int pieces = static_cast<int>(Uniform(rng, 0, 4));
          for (int i = 0; i < pieces; ++i) {
            if (Chance(rng, 0.5)) {
              Text();
            } else {
              size_t pick = static_cast<size_t>(Uniform(
                  rng, 0,
                  static_cast<int64_t>(model.mixed_names.size()) - 1));
              Element(model.mixed_names[pick], depth + 1);
            }
          }
          break;
        }
        case ContentModel::Kind::kRegex:
          Expr(model.expr, depth + 1);
          break;
      }
    }
    out += "</" + name + ">";
  }
};

}  // namespace

std::string RandomDocument(const dtd::Dtd& dtd, Rng* rng,
                           const RandomDocumentOptions& opts) {
  DocBuilder b{&dtd, rng, &opts, {}};
  b.Element(dtd.root(), 0);
  return std::move(b.out);
}

std::vector<paths::ProjectionPath> RandomPaths(
    const dtd::Dtd& dtd, Rng* rng, const RandomPathsOptions& opts) {
  std::vector<std::string> names;
  for (const dtd::ElementDecl& d : dtd.elements()) names.push_back(d.name);
  std::vector<paths::ProjectionPath> out;
  for (int i = 0; i < opts.num_paths; ++i) {
    paths::ProjectionPath p;
    int steps = static_cast<int>(Uniform(rng, 1, opts.max_steps));
    for (int s = 0; s < steps; ++s) {
      paths::PathStep step;
      step.axis = Chance(rng, opts.descendant_ratio)
                      ? paths::PathStep::Axis::kDescendant
                      : paths::PathStep::Axis::kChild;
      if (Chance(rng, opts.wildcard_ratio)) {
        step.wildcard = true;
      } else {
        step.name = names[static_cast<size_t>(
            Uniform(rng, 0, static_cast<int64_t>(names.size()) - 1))];
      }
      p.steps.push_back(std::move(step));
    }
    p.descendants = Chance(rng, opts.hash_ratio);
    p.attributes = Chance(rng, opts.attr_flag_ratio);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace smpx::xmlgen
