// MEDLINE-like citation data generator [23]. The real corpus is licensed;
// this synthetic equivalent keeps the properties the paper's evaluation
// exercises (Table II):
//  - long tagnames -> large Boyer-Moore shifts (paper: ~12 chars),
//  - the Abstract / AbstractText prefix pair (the (P) tagname check),
//  - CollectionTitle: declared by the DTD but never generated (query M1
//    projects to 0 bytes),
//  - mostly *optional* content models, so initial jumps rarely apply
//    (M1-M4 show 0.00%), with a required DateCreated run enabling them
//    for queries below MedlineCitation (M5-style),
//  - occasional "PDB" data banks, "NASA" copyright notes, Hippocrates
//    personal-name subjects and "Sterilization" journal titles as
//    predicate targets for M2-M5.

#ifndef SMPX_XMLGEN_MEDLINE_H_
#define SMPX_XMLGEN_MEDLINE_H_

#include <cstdint>
#include <string>

#include "dtd/dtd.h"

namespace smpx::xmlgen {

const std::string& MedlineDtdText();
dtd::Dtd MedlineDtd();

struct MedlineOptions {
  uint64_t target_bytes = 8ull << 20;
  uint64_t seed = 23;
};

std::string GenerateMedline(const MedlineOptions& opts = {});

}  // namespace smpx::xmlgen

#endif  // SMPX_XMLGEN_MEDLINE_H_
