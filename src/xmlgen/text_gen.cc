#include "xmlgen/text_gen.h"

#include <array>
#include <cstdio>

namespace smpx::xmlgen {
namespace {

// A compact Shakespeare-flavoured vocabulary, in the spirit of the XMark
// generator's word list.
constexpr std::array<const char*, 96> kWords = {
    "gold",     "fellow",   "murder",  "prove",    "beauty",   "sovereign",
    "odds",     "keen",     "hour",    "speak",    "thunder",  "unhappy",
    "daughter", "forest",   "fortune", "whisper",  "crown",    "gentle",
    "honest",   "duke",     "banish",  "summer",   "winter",   "letter",
    "promise",  "shadow",   "silver",  "mirror",   "garden",   "castle",
    "soldier",  "justice",  "mercy",   "wisdom",   "folly",    "danger",
    "journey",  "harbor",   "vessel",  "anchor",   "tempest",  "island",
    "voyage",   "merchant", "market",  "bargain",  "ransom",   "treasure",
    "scholar",  "volume",   "chapter", "sentence", "quarrel",  "peace",
    "battle",   "victory",  "defeat",  "retreat",  "courage",  "coward",
    "noble",    "humble",   "mighty",  "feeble",   "ancient",  "modern",
    "secret",   "public",   "silent",  "loud",     "bright",   "gloomy",
    "swift",    "slow",     "bitter",  "sweet",    "honour",   "shame",
    "glory",    "ruin",     "palace",  "cottage",  "river",    "mountain",
    "valley",   "meadow",   "falcon",  "sparrow",  "serpent",  "lion",
    "kingdom",  "empire",   "council", "herald",   "messenger", "stranger",
};

constexpr std::array<const char*, 40> kSurnames = {
    "Vries",    "Takano",    "Omar",     "Novak",   "Ibarra",  "Castillo",
    "Keller",   "Lindqvist", "Okafor",   "Petrov",  "Haddad",  "Morel",
    "Svensson", "Tanaka",    "Ferreira", "Kovacs",  "Ahmadi",  "Berger",
    "Costa",    "Dubois",    "Egede",    "Fischer", "Gamboa",  "Horvat",
    "Ivanov",   "Jensen",    "Kimura",   "Lopez",   "Moreau",  "Nilsen",
    "Oliveira", "Popescu",   "Quispe",   "Rossi",   "Santos",  "Tahir",
    "Ueda",     "Varga",     "Weber",    "Zhang",
};

}  // namespace

int64_t Uniform(Rng* rng, int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(*rng);
}

bool Chance(Rng* rng, double p) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(*rng) < p;
}

void AppendWords(Rng* rng, int words, std::string* out) {
  for (int i = 0; i < words; ++i) {
    if (i > 0) out->push_back(' ');
    out->append(kWords[static_cast<size_t>(
        Uniform(rng, 0, static_cast<int64_t>(kWords.size()) - 1))]);
  }
}

std::string PersonName(Rng* rng) {
  std::string out(kSurnames[static_cast<size_t>(
      Uniform(rng, 0, static_cast<int64_t>(kSurnames.size()) - 1))]);
  out += ' ';
  out += kSurnames[static_cast<size_t>(
      Uniform(rng, 0, static_cast<int64_t>(kSurnames.size()) - 1))];
  return out;
}

std::string Street(Rng* rng) {
  std::string out = std::to_string(Uniform(rng, 1, 99));
  out += ' ';
  out += kWords[static_cast<size_t>(
      Uniform(rng, 0, static_cast<int64_t>(kWords.size()) - 1))];
  out += " St";
  return out;
}

std::string Date(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d",
                static_cast<int>(Uniform(rng, 1, 12)),
                static_cast<int>(Uniform(rng, 1, 28)),
                static_cast<int>(Uniform(rng, 1998, 2001)));
  return buf;
}

std::string Time(Rng* rng) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d",
                static_cast<int>(Uniform(rng, 0, 23)),
                static_cast<int>(Uniform(rng, 0, 59)),
                static_cast<int>(Uniform(rng, 0, 59)));
  return buf;
}

std::string Money(Rng* rng) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%d.%02d",
                static_cast<int>(Uniform(rng, 1, 4999)),
                static_cast<int>(Uniform(rng, 0, 99)));
  return buf;
}

}  // namespace smpx::xmlgen
