#include "xmlgen/protein.h"

#include <cassert>

#include "xmlgen/text_gen.h"

namespace smpx::xmlgen {
namespace {

constexpr char kProteinDtd[] = R"(<!DOCTYPE ProteinDatabase [
<!ELEMENT ProteinDatabase (ProteinEntry*)>
<!ELEMENT ProteinEntry (header, protein, organism, reference+, summary, sequence)>
<!ATTLIST ProteinEntry id ID #REQUIRED>
<!ELEMENT header (uid, accession+)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT protein (name, classification?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT classification (superfamily+)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT organism (source, common?, formal?)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo?)>
<!ELEMENT refinfo (authors, citation, volume?, year)>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT accinfo (mol-type?, seq-spec?)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT summary (length, type)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT sequence (#PCDATA)>
]>)";

constexpr char kAminoAcids[] = "ACDEFGHIKLMNPQRSTVWY";

class Builder {
 public:
  explicit Builder(const ProteinOptions& opts) : rng_(opts.seed) {
    target_ = opts.target_bytes;
    out_.reserve(static_cast<size_t>(target_ + (1 << 20)));
  }

  std::string Build() {
    out_ += "<?xml version=\"1.0\"?>\n<ProteinDatabase>";
    uint64_t uid = 0;
    while (out_.size() < target_) Entry(uid++);
    out_ += "</ProteinDatabase>\n";
    return std::move(out_);
  }

 private:
  void Text(const char* tag, const std::string& value) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    out_ += value;
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void Words(const char* tag, int lo, int hi) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    AppendWords(&rng_, static_cast<int>(Uniform(&rng_, lo, hi)), &out_);
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  void Entry(uint64_t uid) {
    out_ += "<ProteinEntry id=\"PE" + std::to_string(uid) + "\">";
    out_ += "<header>";
    Text("uid", "U" + std::to_string(uid));
    int accessions = static_cast<int>(Uniform(&rng_, 1, 3));
    for (int i = 0; i < accessions; ++i) {
      Text("accession", "P" + std::to_string(Uniform(&rng_, 10000, 99999)));
    }
    out_ += "</header>";
    out_ += "<protein>";
    Words("name", 2, 6);
    if (Chance(&rng_, 0.6)) {
      out_ += "<classification>";
      Words("superfamily", 2, 4);
      out_ += "</classification>";
    }
    out_ += "</protein>";
    out_ += "<organism>";
    Words("source", 2, 4);
    if (Chance(&rng_, 0.5)) Words("common", 1, 2);
    if (Chance(&rng_, 0.3)) Words("formal", 2, 3);
    out_ += "</organism>";
    int refs = static_cast<int>(Uniform(&rng_, 1, 4));
    for (int r = 0; r < refs; ++r) {
      out_ += "<reference><refinfo><authors>";
      int authors = static_cast<int>(Uniform(&rng_, 1, 5));
      for (int a = 0; a < authors; ++a) Text("author", PersonName(&rng_));
      out_ += "</authors>";
      Words("citation", 4, 10);
      if (Chance(&rng_, 0.6)) {
        Text("volume", std::to_string(Uniform(&rng_, 1, 400)));
      }
      Text("year", std::to_string(Uniform(&rng_, 1975, 2006)));
      out_ += "</refinfo>";
      if (Chance(&rng_, 0.4)) {
        out_ += "<accinfo>";
        if (Chance(&rng_, 0.7)) Text("mol-type", "protein");
        if (Chance(&rng_, 0.5)) {
          Text("seq-spec", std::to_string(Uniform(&rng_, 1, 80)) + "-" +
                               std::to_string(Uniform(&rng_, 81, 500)));
        }
        out_ += "</accinfo>";
      }
      out_ += "</reference>";
    }
    int64_t seq_len = Uniform(&rng_, 120, 900);
    out_ += "<summary>";
    Text("length", std::to_string(seq_len));
    Text("type", "complete");
    out_ += "</summary>";
    out_ += "<sequence>";
    for (int64_t i = 0; i < seq_len; ++i) {
      out_ += kAminoAcids[static_cast<size_t>(Uniform(&rng_, 0, 19))];
    }
    out_ += "</sequence>";
    out_ += "</ProteinEntry>";
  }

  Rng rng_;
  uint64_t target_ = 0;
  std::string out_;
};

}  // namespace

const std::string& ProteinDtdText() {
  static const std::string* text = new std::string(kProteinDtd);
  return *text;
}

dtd::Dtd ProteinDtd() {
  auto r = dtd::Dtd::Parse(ProteinDtdText());
  assert(r.ok());
  return std::move(*r);
}

std::string GenerateProtein(const ProteinOptions& opts) {
  return Builder(opts).Build();
}

}  // namespace smpx::xmlgen
