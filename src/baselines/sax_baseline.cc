#include "baselines/sax_baseline.h"

#include <vector>

#include "xml/tokenizer.h"

namespace smpx::baselines {
namespace {

/// Models what Xerces-C does for every event: the paper benchmarks "a
/// minimal application on top of the Xerces API", and Xerces internally
/// (a) transcodes all names and character data to UTF-16 (XMLCh) and
/// (b) delivers them through virtual handler methods. Both costs are part
/// of any real SAX pipeline and are reproduced here.
class Utf16EventSink {
 public:
  virtual ~Utf16EventSink() = default;
  virtual void StartElement(const char16_t* name, size_t name_len,
                            size_t attr_count) = 0;
  virtual void EndElement(const char16_t* name, size_t name_len) = 0;
  virtual void Characters(const char16_t* data, size_t len) = 0;
};

class CountingSinkImpl : public Utf16EventSink {
 public:
  void StartElement(const char16_t* name, size_t name_len,
                    size_t attr_count) override {
    ++stats.elements;
    stats.attributes += attr_count;
    checksum += name_len > 0 ? static_cast<uint64_t>(name[0]) : 0;
  }
  void EndElement(const char16_t*, size_t) override {}
  void Characters(const char16_t* data, size_t len) override {
    stats.text_bytes += len;
    checksum += len > 0 ? static_cast<uint64_t>(data[len - 1]) : 0;
  }

  SaxParseStats stats;
  uint64_t checksum = 0;  // defeats dead-code elimination
};

/// Widens a byte buffer into the reusable UTF-16 scratch (inputs are
/// ASCII-clean by construction; a full parser would decode UTF-8 here).
const char16_t* Transcode(std::string_view bytes,
                          std::vector<char16_t>* scratch) {
  scratch->resize(bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    (*scratch)[i] = static_cast<char16_t>(
        static_cast<unsigned char>(bytes[i]));
  }
  return scratch->data();
}

}  // namespace

Result<SaxParseStats> SaxParse(std::string_view document,
                               bool check_well_formed) {
  xml::TokenizerOptions opts;
  opts.check_well_formed = check_well_formed;
  xml::Tokenizer tok(document, opts);
  xml::Token t;
  CountingSinkImpl sink;
  Utf16EventSink* handler = &sink;  // virtual dispatch per event, as in SAX
  std::vector<char16_t> name16;
  std::vector<char16_t> text16;
  while (tok.Next(&t)) {
    ++sink.stats.tokens;
    switch (t.type) {
      case xml::TokenType::kStartTag:
      case xml::TokenType::kEmptyTag: {
        const char16_t* name = Transcode(t.name, &name16);
        handler->StartElement(name, t.name.size(), t.attrs.size());
        if (t.type == xml::TokenType::kEmptyTag) {
          handler->EndElement(name, t.name.size());
        }
        break;
      }
      case xml::TokenType::kEndTag:
        handler->EndElement(Transcode(t.name, &name16), t.name.size());
        break;
      case xml::TokenType::kText:
      case xml::TokenType::kCData:
        handler->Characters(Transcode(t.text, &text16), t.text.size());
        break;
      default:
        break;
    }
  }
  SMPX_RETURN_IF_ERROR(tok.status());
  return sink.stats;
}

}  // namespace smpx::baselines
