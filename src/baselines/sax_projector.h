// Tokenizing projector: the Type-Based Projection (TBP [6]) stand-in of
// Table III. It implements the same projection semantics as the prefilter
// (Definition 3 relevance over document branches) but in the conventional
// way -- a SAX tokenizer feeds every token through a stack of NFA states.
// Every character of the input is tokenized; nothing is skipped. The
// performance gap to the prefilter on identical outputs is exactly the
// paper's claim.

#ifndef SMPX_BASELINES_SAX_PROJECTOR_H_
#define SMPX_BASELINES_SAX_PROJECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "paths/projection_path.h"
#include "paths/relevance.h"

namespace smpx::baselines {

struct SaxProjectStats {
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t tokens = 0;
  uint64_t elements_kept = 0;
  uint64_t elements_dropped = 0;
};

class SaxProjector {
 public:
  /// Per-node decision strategy.
  enum class Mode {
    /// Memoize decisions in a lazily-built DFA over the path-NFA states --
    /// the per-token table lookup that makes Type-Based Projection cheap.
    kMemoizedDfa,
    /// Re-step the path NFAs at every element (XFilter-style); the
    /// conventional unoptimized tokenizing projector.
    kNfaPerNode,
  };

  /// `paths` are extended with the default "/*" like the prefilter.
  explicit SaxProjector(std::vector<paths::ProjectionPath> paths,
                        Mode mode = Mode::kMemoizedDfa);

  /// Projects `document` into `out`.
  Status Project(std::string_view document, OutputSink* out,
                 SaxProjectStats* stats = nullptr) const;

  const std::vector<paths::ProjectionPath>& paths() const { return paths_; }

 private:
  std::vector<paths::ProjectionPath> paths_;
  Mode mode_;
  std::unique_ptr<paths::RelevanceAnalyzer> analyzer_;
};

}  // namespace smpx::baselines

#endif  // SMPX_BASELINES_SAX_PROJECTOR_H_
