// Minimal "just tokenize" application, the stand-in for the Xerces-C SAX
// throughput baseline of Fig. 7(c): the cheapest thing any
// tokenization-based system can possibly do is look at every character
// once. SAX1 mode tokenizes; SAX2 mode additionally checks tag balance
// (Xerces checks well-formedness by default).

#ifndef SMPX_BASELINES_SAX_BASELINE_H_
#define SMPX_BASELINES_SAX_BASELINE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace smpx::baselines {

struct SaxParseStats {
  uint64_t tokens = 0;
  uint64_t elements = 0;
  uint64_t attributes = 0;
  uint64_t text_bytes = 0;
};

/// Tokenizes the whole input, counting tokens (SAX1-like). Returns stats or
/// the first parse error.
Result<SaxParseStats> SaxParse(std::string_view document,
                               bool check_well_formed);

}  // namespace smpx::baselines

#endif  // SMPX_BASELINES_SAX_BASELINE_H_
