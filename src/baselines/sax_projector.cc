#include "baselines/sax_projector.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "xml/tokenizer.h"

namespace smpx::baselines {

namespace {
constexpr size_t kNoCopy = std::numeric_limits<size_t>::max();

/// Lazily-built DFA over the path-NFA state sets, so the per-node work is
/// one hash lookup after warm-up -- the same precomputation idea that makes
/// Type-Based Projection cheap per token (it looks decisions up by type).
/// Node identity is (NFA state sets, C2-so-far); both determine the
/// relevance verdict and all transitions.
class LazyDfa {
 public:
  struct Node {
    paths::PathSetEvaluator::State state;
    bool c2 = false;
    paths::BranchRelevance rel;
    std::map<std::string, Node*, std::less<>> children;
  };

  LazyDfa(const paths::RelevanceAnalyzer* analyzer, bool memoize)
      : analyzer_(analyzer), memoize_(memoize) {
    Node root;
    root.state = analyzer_->evaluator().Initial();
    root.c2 = false;
    root.rel = analyzer_->Classify(root.state, root.state, root.c2,
                                   /*at_document_node=*/true);
    root_ = Intern(std::move(root));
  }

  Node* root() const { return root_; }

  /// The node reached from `from` by reading an element label.
  Node* Step(Node* from, std::string_view label) {
    if (!memoize_) return StepUncached(from, label);
    auto it = from->children.find(label);
    if (it != from->children.end()) return it->second;
    Node next;
    next.state = from->state;
    analyzer_->evaluator().Step(label, &next.state);
    next.c2 = from->c2 || analyzer_->AnyHashAccepting(next.state);
    next.rel = analyzer_->Classify(next.state, from->state, next.c2,
                                   /*at_document_node=*/false);
    Node* interned = Intern(std::move(next));
    from->children[std::string(label)] = interned;
    return interned;
  }

  /// Releases a node produced by StepUncached (no-op for cached nodes).
  void Release(Node* node) {
    if (!memoize_ && node != root_) delete node;
  }

 private:
  /// NFA-per-node mode: compute a fresh node every time (caller releases).
  Node* StepUncached(Node* from, std::string_view label) {
    auto next = std::make_unique<Node>();
    next->state = from->state;
    analyzer_->evaluator().Step(label, &next->state);
    next->c2 = from->c2 || analyzer_->AnyHashAccepting(next->state);
    next->rel = analyzer_->Classify(next->state, from->state, next->c2,
                                    /*at_document_node=*/false);
    return next.release();
  }

  /// Deduplicates nodes by (state, c2) so equivalent contexts share their
  /// transition cache (keeps the DFA small on recursive-looking documents).
  Node* Intern(Node&& node) {
    std::string key;
    key.reserve(64);
    key.push_back(node.c2 ? '1' : '0');
    for (const auto& set : node.state.sets) {
      key.push_back('|');
      for (bool b : set) key.push_back(b ? '1' : '0');
    }
    auto it = interned_.find(key);
    if (it != interned_.end()) return it->second.get();
    auto owned = std::make_unique<Node>(std::move(node));
    Node* raw = owned.get();
    interned_.emplace(std::move(key), std::move(owned));
    return raw;
  }

  const paths::RelevanceAnalyzer* analyzer_;
  bool memoize_;
  std::map<std::string, std::unique_ptr<Node>, std::less<>> interned_;
  Node* root_ = nullptr;
};

}  // namespace

SaxProjector::SaxProjector(std::vector<paths::ProjectionPath> paths,
                           Mode mode)
    : paths_(std::move(paths)), mode_(mode) {
  paths::ProjectionPath star;
  paths::PathStep step;
  step.wildcard = true;
  star.steps.push_back(step);
  if (std::find(paths_.begin(), paths_.end(), star) == paths_.end()) {
    paths_.push_back(star);
  }
  analyzer_ = std::make_unique<paths::RelevanceAnalyzer>(
      paths_, paths::DeriveC3Alphabet(paths_));
}

Status SaxProjector::Project(std::string_view document, OutputSink* out,
                             SaxProjectStats* stats) const {
  xml::TokenizerOptions topts;
  topts.check_well_formed = true;  // a projector must not accept garbage
  xml::Tokenizer tok(document, topts);
  LazyDfa dfa(analyzer_.get(), mode_ == Mode::kMemoizedDfa);
  std::vector<LazyDfa::Node*> stack = {dfa.root()};
  xml::Token t;
  size_t copy_root = kNoCopy;  // stack depth of the subtree-copy root

  auto raw = [&](const xml::Token& token) {
    return out->Append(document.substr(
        static_cast<size_t>(token.begin),
        static_cast<size_t>(token.end - token.begin)));
  };

  // The loop body runs in a lambda so uncached nodes left on the stack are
  // released on every exit path (including parse errors).
  Status status = [&]() -> Status {
  while (tok.Next(&t)) {
    if (stats != nullptr) ++stats->tokens;
    switch (t.type) {
      case xml::TokenType::kStartTag: {
        stack.push_back(dfa.Step(stack.back(), t.name));
        if (copy_root != kNoCopy) {
          SMPX_RETURN_IF_ERROR(raw(t));
          break;
        }
        const paths::BranchRelevance& r = stack.back()->rel;
        if (r.leaf_hash) {
          copy_root = stack.size() - 1;
          SMPX_RETURN_IF_ERROR(raw(t));
          if (stats != nullptr) ++stats->elements_kept;
        } else if (r.relevant()) {
          if (stats != nullptr) ++stats->elements_kept;
          if (r.leaf_attrs) {
            SMPX_RETURN_IF_ERROR(raw(t));
          } else {
            SMPX_RETURN_IF_ERROR(
                out->Append("<" + std::string(t.name) + ">"));
          }
        } else {
          if (stats != nullptr) ++stats->elements_dropped;
        }
        break;
      }
      case xml::TokenType::kEndTag: {
        if (copy_root != kNoCopy) {
          SMPX_RETURN_IF_ERROR(raw(t));
          if (stack.size() - 1 == copy_root) copy_root = kNoCopy;
        } else if (stack.back()->rel.relevant()) {
          SMPX_RETURN_IF_ERROR(out->Append("</" + std::string(t.name) + ">"));
        }
        dfa.Release(stack.back());
        stack.pop_back();
        break;
      }
      case xml::TokenType::kEmptyTag: {
        LazyDfa::Node* node = dfa.Step(stack.back(), t.name);
        struct Guard {
          LazyDfa* dfa;
          LazyDfa::Node* node;
          ~Guard() { dfa->Release(node); }
        } guard{&dfa, node};
        if (copy_root != kNoCopy) {
          SMPX_RETURN_IF_ERROR(raw(t));
        } else {
          const paths::BranchRelevance& r = node->rel;
          if (r.relevant()) {
            if (stats != nullptr) ++stats->elements_kept;
            if (r.leaf_hash || r.leaf_attrs) {
              SMPX_RETURN_IF_ERROR(raw(t));
            } else {
              SMPX_RETURN_IF_ERROR(
                  out->Append("<" + std::string(t.name) + "/>"));
            }
          } else if (stats != nullptr) {
            ++stats->elements_dropped;
          }
        }
        break;
      }
      case xml::TokenType::kText:
      case xml::TokenType::kCData: {
        if (copy_root != kNoCopy || stack.back()->c2) {
          SMPX_RETURN_IF_ERROR(raw(t));
        }
        break;
      }
      case xml::TokenType::kComment:
      case xml::TokenType::kPi:
      case xml::TokenType::kDoctype:
        if (copy_root != kNoCopy) {
          SMPX_RETURN_IF_ERROR(raw(t));
        }
        break;
    }
  }
  return tok.status();
  }();
  while (stack.size() > 1) {
    dfa.Release(stack.back());
    stack.pop_back();
  }
  SMPX_RETURN_IF_ERROR(status);
  if (stats != nullptr) {
    stats->input_bytes = document.size();
    stats->output_bytes = out->bytes_written();
  }
  return Status::Ok();
}

}  // namespace smpx::baselines
