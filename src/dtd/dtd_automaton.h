// The document-level DTD-automaton (paper Section IV, Fig. 5): a
// homogeneous finite automaton over open/close tag tokens that accepts
// exactly the token sequences of documents valid w.r.t. a nonrecursive DTD.
//
// Construction: every element's content model becomes a Glushkov position
// automaton, and positions are unfolded into an *instance tree* -- one
// instance per occurrence path from the root (finite because the DTD is
// nonrecursive). Every instance contributes dual states q (entered on the
// opening tag) and q-hat (entered on the closing tag); homogeneity holds by
// construction. The instance tree also yields parent states and document
// branches (Examples 8/9).

#ifndef SMPX_DTD_DTD_AUTOMATON_H_
#define SMPX_DTD_DTD_AUTOMATON_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dtd/dtd.h"
#include "dtd/glushkov.h"

namespace smpx::dtd {

/// An opening or closing tag token, e.g. {name="a", closing=false} = <a>.
struct TagToken {
  std::string name;
  bool closing = false;

  bool operator<(const TagToken& o) const {
    return closing != o.closing ? closing < o.closing : name < o.name;
  }
  bool operator==(const TagToken& o) const {
    return closing == o.closing && name == o.name;
  }
  bool operator!=(const TagToken& o) const { return !(*this == o); }
  /// "<a>" or "</a>".
  std::string ToString() const {
    return (closing ? "</" : "<") + name + ">";
  }
};

class DtdAutomaton {
 public:
  /// One node of the instance tree.
  struct Instance {
    std::string label;        ///< element name
    int parent = -1;          ///< parent instance id; -1 for the root
    int position = -1;        ///< Glushkov position in the parent's model
    int depth = 1;            ///< root instance has depth 1
    /// Recursive element treated as an *opaque region*: its interior is not
    /// unfolded; the runtime tunnels over it by balancing <t>/</t> tags.
    bool opaque = false;
  };

  /// One transition: reading `token` moves to state `to`.
  struct Transition {
    int token = 0;  ///< id into tokens()
    int to = 0;
  };

  /// Builds the automaton; fails with kUnsupported for recursive DTDs
  /// (unless `allow_recursion`, which turns recursive elements into opaque
  /// instances) or reachable ANY content, with kInvalidArgument for
  /// inconsistent DTDs, and with kResourceExhausted if the unfolding
  /// exceeds `max_instances`.
  static Result<DtdAutomaton> Build(const Dtd& dtd,
                                    size_t max_instances = 1 << 20,
                                    bool allow_recursion = false);

  // --- State numbering ----------------------------------------------------
  // State 0 is the initial state q0. Instance i has open state 2i+1 and
  // close state 2i+2.
  int num_states() const {
    return static_cast<int>(1 + 2 * instances_.size());
  }
  static bool IsOpenState(int s) { return s > 0 && (s & 1) != 0; }
  static bool IsCloseState(int s) { return s > 0 && (s & 1) == 0; }
  static int InstanceOf(int s) { return (s - 1) / 2; }
  static int OpenState(int inst) { return 2 * inst + 1; }
  static int CloseState(int inst) { return 2 * inst + 2; }
  /// q for q-hat and vice versa; q0 maps to itself.
  static int Dual(int s) {
    if (s == 0) return 0;
    return IsOpenState(s) ? s + 1 : s - 1;
  }

  /// The single final state: close(root instance).
  int final_state() const { return CloseState(0); }

  /// True when `s` is the open state of a *top-level* instance (a direct
  /// child of the document root): such states are entered exactly at the
  /// top-level element boundaries the parallel sharder splits documents at.
  /// Derived from the instance tree, i.e. ultimately from the root's
  /// content model.
  bool IsTopLevelOpenState(int s) const {
    return IsOpenState(s) && instance(InstanceOf(s)).parent == 0;
  }

  // --- Structure ----------------------------------------------------------
  const std::vector<Instance>& instances() const { return instances_; }
  const Instance& instance(int i) const {
    return instances_[static_cast<size_t>(i)];
  }
  /// Label of the element a state belongs to ("" for q0).
  const std::string& StateLabel(int s) const;
  /// Open state of the parent instance; q0 for the root instance's states.
  int ParentState(int s) const;
  /// Labels of the document branch root..self ({} for q0) -- Example 9.
  std::vector<std::string> BranchLabels(int s) const;
  /// Child instance ids of an instance, indexed by Glushkov position.
  const std::vector<int>& ChildrenOf(int inst) const {
    return children_[static_cast<size_t>(inst)];
  }
  /// The Glushkov automaton of an element's content model.
  const Glushkov& GlushkovOf(std::string_view label) const;
  const Dtd& dtd() const { return *dtd_; }

  // --- Transitions ----------------------------------------------------------
  const std::vector<Transition>& Out(int s) const {
    return adj_[static_cast<size_t>(s)];
  }
  const TagToken& token(int id) const {
    return tokens_[static_cast<size_t>(id)];
  }
  size_t num_tokens() const { return tokens_.size(); }
  /// Interned token id, or -1 if this token never occurs.
  int FindToken(std::string_view name, bool closing) const;

  /// Graphviz rendering for debugging and documentation.
  std::string ToDot() const;

 private:
  DtdAutomaton() = default;

  int InternToken(const std::string& name, bool closing);

  const Dtd* dtd_ = nullptr;  // not owned; must outlive the automaton
  std::vector<Instance> instances_;
  std::vector<std::vector<int>> children_;    // per instance, per position
  std::vector<std::vector<Transition>> adj_;  // per state
  std::vector<TagToken> tokens_;
  std::map<TagToken, int> token_ids_;
  std::map<std::string, Glushkov, std::less<>> glushkov_;
};

}  // namespace smpx::dtd

#endif  // SMPX_DTD_DTD_AUTOMATON_H_
