#include "dtd/dtd.h"

#include <set>

#include "common/strings.h"

namespace smpx::dtd {
namespace {

/// Cursor over the DTD text with declaration-level lexing.
class DeclLexer {
 public:
  explicit DeclLexer(std::string_view s) : s_(s) {}

  void SkipWsAndComments() {
    for (;;) {
      while (pos_ < s_.size() && IsXmlWhitespace(s_[pos_])) ++pos_;
      if (pos_ + 3 < s_.size() && s_.substr(pos_, 4) == "<!--") {
        size_t close = s_.find("-->", pos_ + 4);
        pos_ = close == std::string_view::npos ? s_.size() : close + 3;
        continue;
      }
      // Parameter-entity uses and PIs are skipped wholesale.
      if (pos_ < s_.size() && s_[pos_] == '%') {
        size_t semi = s_.find(';', pos_);
        pos_ = semi == std::string_view::npos ? s_.size() : semi + 1;
        continue;
      }
      if (pos_ + 1 < s_.size() && s_.substr(pos_, 2) == "<?") {
        size_t close = s_.find("?>", pos_);
        pos_ = close == std::string_view::npos ? s_.size() : close + 2;
        continue;
      }
      return;
    }
  }

  bool AtEnd() {
    SkipWsAndComments();
    return pos_ >= s_.size();
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipWsAndComments();
    if (StartsWith(s_.substr(pos_), kw)) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  Result<std::string> ReadName() {
    SkipWsAndComments();
    if (pos_ >= s_.size() || !IsNameStartChar(s_[pos_])) {
      return Status::ParseError("expected name at offset " +
                                std::to_string(pos_));
    }
    size_t b = pos_;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) ++pos_;
    return std::string(s_.substr(b, pos_ - b));
  }

  /// Reads raw text up to (excluding) the next '>', tracking parentheses so
  /// the '>' inside nothing can confuse us (content models contain no '>').
  Result<std::string_view> ReadUntilGt() {
    size_t b = pos_;
    while (pos_ < s_.size() && s_[pos_] != '>') ++pos_;
    if (pos_ >= s_.size()) {
      return Status::ParseError("unterminated declaration");
    }
    std::string_view out = s_.substr(b, pos_ - b);
    ++pos_;  // consume '>'
    return out;
  }

  size_t pos() const { return pos_; }
  std::string_view rest() const { return s_.substr(pos_); }
  void Advance(size_t n) { pos_ += n; }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

Result<std::vector<AttributeDecl>> ParseAttlistBody(std::string_view body) {
  std::vector<AttributeDecl> out;
  DeclLexer lex(body);
  while (!lex.AtEnd()) {
    AttributeDecl attr;
    SMPX_ASSIGN_OR_RETURN(attr.name, lex.ReadName());
    lex.SkipWsAndComments();
    // Type: enumeration "(a|b|c)" or a keyword, possibly NOTATION (...).
    if (StartsWith(lex.rest(), "(")) {
      size_t close = lex.rest().find(')');
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated enumeration in ATTLIST");
      }
      attr.type = std::string(lex.rest().substr(0, close + 1));
      lex.Advance(close + 1);
    } else {
      SMPX_ASSIGN_OR_RETURN(attr.type, lex.ReadName());
      if (attr.type == "NOTATION") {
        lex.SkipWsAndComments();
        if (StartsWith(lex.rest(), "(")) {
          size_t close = lex.rest().find(')');
          if (close == std::string_view::npos) {
            return Status::ParseError("unterminated NOTATION enumeration");
          }
          attr.type += " " + std::string(lex.rest().substr(0, close + 1));
          lex.Advance(close + 1);
        }
      }
    }
    lex.SkipWsAndComments();
    if (lex.ConsumeKeyword("#REQUIRED")) {
      attr.def = AttributeDecl::Default::kRequired;
    } else if (lex.ConsumeKeyword("#IMPLIED")) {
      attr.def = AttributeDecl::Default::kImplied;
    } else {
      bool fixed = lex.ConsumeKeyword("#FIXED");
      attr.def = fixed ? AttributeDecl::Default::kFixed
                       : AttributeDecl::Default::kDefaulted;
      lex.SkipWsAndComments();
      std::string_view r = lex.rest();
      if (r.empty() || (r[0] != '"' && r[0] != '\'')) {
        return Status::ParseError("expected default value in ATTLIST");
      }
      char quote = r[0];
      size_t close = r.find(quote, 1);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated default value in ATTLIST");
      }
      attr.default_value = std::string(r.substr(1, close - 1));
      lex.Advance(close + 1);
    }
    out.push_back(std::move(attr));
  }
  return out;
}

}  // namespace

size_t ElementDecl::RequiredAttrChars() const {
  size_t total = 0;
  for (const AttributeDecl& a : attrs) {
    if (a.required()) total += a.name.size() + 4;  // ` name=""`
  }
  return total;
}

Result<Dtd> Dtd::Parse(std::string_view text, std::string root_hint) {
  Dtd dtd;
  dtd.root_ = std::move(root_hint);

  std::string_view subset = text;
  // Peel off an XML prolog and locate a DOCTYPE wrapper if present.
  size_t doctype = text.find("<!DOCTYPE");
  if (doctype != std::string_view::npos) {
    DeclLexer lex(text.substr(doctype + 9));
    SMPX_ASSIGN_OR_RETURN(std::string root, lex.ReadName());
    dtd.root_ = std::move(root);
    size_t open = text.find('[', doctype);
    if (open == std::string_view::npos) {
      return Status::ParseError("DOCTYPE without internal subset");
    }
    size_t close = text.rfind(']');
    if (close == std::string_view::npos || close < open) {
      return Status::ParseError("unterminated DOCTYPE internal subset");
    }
    subset = text.substr(open + 1, close - open - 1);
  }

  DeclLexer lex(subset);
  while (!lex.AtEnd()) {
    if (lex.ConsumeKeyword("<!ELEMENT")) {
      ElementDecl decl;
      SMPX_ASSIGN_OR_RETURN(decl.name, lex.ReadName());
      SMPX_ASSIGN_OR_RETURN(std::string_view body, lex.ReadUntilGt());
      SMPX_ASSIGN_OR_RETURN(decl.model, ParseContentModel(body));
      dtd.AddElement(std::move(decl));
      continue;
    }
    if (lex.ConsumeKeyword("<!ATTLIST")) {
      SMPX_ASSIGN_OR_RETURN(std::string elem, lex.ReadName());
      SMPX_ASSIGN_OR_RETURN(std::string_view body, lex.ReadUntilGt());
      SMPX_ASSIGN_OR_RETURN(std::vector<AttributeDecl> attrs,
                            ParseAttlistBody(body));
      auto it = dtd.index_.find(elem);
      if (it == dtd.index_.end()) {
        // ATTLIST before ELEMENT is legal; create a shell declaration.
        ElementDecl decl;
        decl.name = elem;
        decl.model.kind = ContentModel::Kind::kAny;
        decl.attrs = std::move(attrs);
        dtd.AddElement(std::move(decl));
      } else {
        ElementDecl& decl = dtd.elements_[it->second];
        decl.attrs.insert(decl.attrs.end(), attrs.begin(), attrs.end());
      }
      continue;
    }
    if (lex.ConsumeKeyword("<!ENTITY") ||
        lex.ConsumeKeyword("<!NOTATION")) {
      SMPX_RETURN_IF_ERROR(lex.ReadUntilGt().status());
      continue;
    }
    return Status::ParseError("unexpected content in DTD at offset " +
                              std::to_string(lex.pos()));
  }
  if (dtd.root_.empty() && !dtd.elements_.empty()) {
    dtd.root_ = dtd.elements_[0].name;
  }
  return dtd;
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &elements_[it->second];
}

void Dtd::AddElement(ElementDecl decl) {
  auto it = index_.find(decl.name);
  if (it != index_.end()) {
    // Replace a shell created by an early ATTLIST, keeping its attributes.
    ElementDecl& existing = elements_[it->second];
    if (existing.model.kind == ContentModel::Kind::kAny &&
        decl.model.kind != ContentModel::Kind::kAny) {
      decl.attrs.insert(decl.attrs.end(), existing.attrs.begin(),
                        existing.attrs.end());
    }
    existing = std::move(decl);
    return;
  }
  index_[decl.name] = elements_.size();
  elements_.push_back(std::move(decl));
}

bool Dtd::IsRecursive() const {
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::map<std::string, int> color;
  std::vector<std::pair<const ElementDecl*, size_t>> stack;

  for (const ElementDecl& start : elements_) {
    if (color[start.name] != 0) continue;
    color[start.name] = 1;
    stack.push_back({&start, 0});
    std::vector<std::vector<std::string>> child_cache;
    child_cache.push_back(start.model.ChildNames());
    while (!stack.empty()) {
      auto& [decl, idx] = stack.back();
      std::vector<std::string>& kids = child_cache.back();
      if (idx >= kids.size()) {
        color[decl->name] = 2;
        stack.pop_back();
        child_cache.pop_back();
        continue;
      }
      const std::string& child = kids[idx++];
      const ElementDecl* cd = Find(child);
      if (cd == nullptr) continue;  // undeclared children caught by Validate
      int& c = color[child];
      if (c == 1) return true;
      if (c == 0) {
        c = 1;
        stack.push_back({cd, 0});
        child_cache.push_back(cd->model.ChildNames());
      }
    }
  }
  return false;
}

std::vector<std::string> Dtd::RecursiveElements() const {
  // Tarjan-free SCC detection sized for DTD graphs: an element is recursive
  // iff it is reachable from one of its own children.
  std::vector<std::string> out;
  for (const ElementDecl& decl : elements_) {
    std::set<std::string> seen;
    std::vector<std::string> work = decl.model.ChildNames();
    bool recursive = false;
    while (!work.empty() && !recursive) {
      std::string cur = std::move(work.back());
      work.pop_back();
      if (!seen.insert(cur).second) continue;
      if (cur == decl.name) {
        recursive = true;
        break;
      }
      const ElementDecl* d = Find(cur);
      if (d == nullptr) continue;
      for (std::string& child : d->model.ChildNames()) {
        work.push_back(std::move(child));
      }
    }
    if (recursive) out.push_back(decl.name);
  }
  return out;
}

std::vector<std::string> Dtd::ReachableFrom(std::string_view name) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::vector<std::string> work = {std::string(name)};
  while (!work.empty()) {
    std::string cur = std::move(work.back());
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    out.push_back(cur);
    const ElementDecl* decl = Find(cur);
    if (decl == nullptr) continue;
    for (std::string& child : decl->model.ChildNames()) {
      work.push_back(std::move(child));
    }
  }
  return out;
}

std::vector<std::string> Dtd::ReachableFromRoot() const {
  return ReachableFrom(root_);
}

Status Dtd::Validate() const {
  if (root_.empty()) {
    return Status::InvalidArgument("DTD has no root element");
  }
  if (Find(root_) == nullptr) {
    return Status::InvalidArgument("root element <" + root_ +
                                   "> is not declared");
  }
  for (const ElementDecl& decl : elements_) {
    for (const std::string& child : decl.model.ChildNames()) {
      if (Find(child) == nullptr) {
        return Status::InvalidArgument("element <" + decl.name +
                                       "> references undeclared <" + child +
                                       ">");
      }
    }
  }
  return Status::Ok();
}

std::string Dtd::ToString() const {
  std::string out = "<!DOCTYPE " + root_ + " [\n";
  for (const ElementDecl& decl : elements_) {
    out += "<!ELEMENT " + decl.name + " " + decl.model.ToString() + ">\n";
    if (!decl.attrs.empty()) {
      out += "<!ATTLIST " + decl.name;
      for (const AttributeDecl& a : decl.attrs) {
        out += "\n  " + a.name + " " + a.type + " ";
        switch (a.def) {
          case AttributeDecl::Default::kRequired:
            out += "#REQUIRED";
            break;
          case AttributeDecl::Default::kImplied:
            out += "#IMPLIED";
            break;
          case AttributeDecl::Default::kFixed:
            out += "#FIXED \"" + a.default_value + "\"";
            break;
          case AttributeDecl::Default::kDefaulted:
            out += "\"" + a.default_value + "\"";
            break;
        }
      }
      out += ">\n";
    }
  }
  out += "]>";
  return out;
}

}  // namespace smpx::dtd
