#include "dtd/content_model.h"

#include <cassert>

#include "common/strings.h"

namespace smpx::dtd {
namespace {

bool ExprNullable(const ContentExpr& e) {
  switch (e.op) {
    case ContentExpr::Op::kName:
      return false;
    case ContentExpr::Op::kSeq: {
      for (const ContentExpr& k : e.kids) {
        if (!ExprNullable(k)) return false;
      }
      return true;
    }
    case ContentExpr::Op::kChoice: {
      for (const ContentExpr& k : e.kids) {
        if (ExprNullable(k)) return true;
      }
      return false;
    }
    case ContentExpr::Op::kStar:
    case ContentExpr::Op::kOpt:
      return true;
    case ContentExpr::Op::kPlus:
      return ExprNullable(e.kids[0]);
  }
  return false;
}

void CollectNames(const ContentExpr& e, std::vector<std::string>* out) {
  if (e.op == ContentExpr::Op::kName) {
    out->push_back(e.name);
    return;
  }
  for (const ContentExpr& k : e.kids) CollectNames(k, out);
}

/// Recursive-descent parser over the content-model grammar:
///   cp      ::= (name | group) ('?' | '*' | '+')?
///   group   ::= '(' cp ((',' cp)* | ('|' cp)*) ')'
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<ContentExpr> Parse() {
    SkipWs();
    SMPX_ASSIGN_OR_RETURN(ContentExpr e, ParseCp());
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing characters in content model");
    }
    return e;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in content model '" + std::string(s_) + "'");
  }

  void SkipWs() {
    while (pos_ < s_.size() && IsXmlWhitespace(s_[pos_])) ++pos_;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ContentExpr> ParseCp() {
    SkipWs();
    ContentExpr e;
    if (Consume('(')) {
      SMPX_ASSIGN_OR_RETURN(e, ParseGroupBody());
      if (!Consume(')')) return Err("expected ')'");
    } else {
      SMPX_ASSIGN_OR_RETURN(e, ParseName());
    }
    return ApplyModifier(std::move(e));
  }

  ContentExpr ApplyModifier(ContentExpr e) {
    if (pos_ < s_.size()) {
      char c = s_[pos_];
      ContentExpr::Op op;
      if (c == '?') {
        op = ContentExpr::Op::kOpt;
      } else if (c == '*') {
        op = ContentExpr::Op::kStar;
      } else if (c == '+') {
        op = ContentExpr::Op::kPlus;
      } else {
        return e;
      }
      ++pos_;
      ContentExpr wrap;
      wrap.op = op;
      wrap.kids.push_back(std::move(e));
      return wrap;
    }
    return e;
  }

  Result<ContentExpr> ParseName() {
    SkipWs();
    if (pos_ >= s_.size() || !IsNameStartChar(s_[pos_])) {
      return Err("expected element name");
    }
    size_t b = pos_;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) ++pos_;
    ContentExpr e;
    e.op = ContentExpr::Op::kName;
    e.name = std::string(s_.substr(b, pos_ - b));
    return e;
  }

  Result<ContentExpr> ParseGroupBody() {
    SMPX_ASSIGN_OR_RETURN(ContentExpr first, ParseCp());
    SkipWs();
    char sep = 0;
    if (Peek(',')) {
      sep = ',';
    } else if (Peek('|')) {
      sep = '|';
    } else {
      return first;  // single-element group
    }
    ContentExpr group;
    group.op = sep == ',' ? ContentExpr::Op::kSeq : ContentExpr::Op::kChoice;
    group.kids.push_back(std::move(first));
    while (Consume(sep)) {
      SMPX_ASSIGN_OR_RETURN(ContentExpr next, ParseCp());
      group.kids.push_back(std::move(next));
      SkipWs();
      if (Peek(',') && sep != ',') return Err("mixed ',' and '|' in group");
      if (Peek('|') && sep != '|') return Err("mixed ',' and '|' in group");
    }
    return group;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

std::string ContentExpr::ToString() const {
  switch (op) {
    case Op::kName:
      return name;
    case Op::kSeq:
    case Op::kChoice: {
      std::string out = "(";
      for (size_t i = 0; i < kids.size(); ++i) {
        if (i) out += op == Op::kSeq ? "," : "|";
        out += kids[i].ToString();
      }
      return out + ")";
    }
    case Op::kStar:
      return kids[0].ToString() + "*";
    case Op::kPlus:
      return kids[0].ToString() + "+";
    case Op::kOpt:
      return kids[0].ToString() + "?";
  }
  return "?";
}

bool ContentModel::Nullable() const {
  switch (kind) {
    case Kind::kEmpty:
    case Kind::kAny:
    case Kind::kPcdata:
    case Kind::kMixed:
      return true;
    case Kind::kRegex:
      return ExprNullable(expr);
  }
  return true;
}

std::vector<std::string> ContentModel::ChildNames() const {
  std::vector<std::string> out;
  if (kind == Kind::kMixed) return mixed_names;
  if (kind == Kind::kRegex) CollectNames(expr, &out);
  return out;
}

std::string ContentModel::ToString() const {
  switch (kind) {
    case Kind::kEmpty:
      return "EMPTY";
    case Kind::kAny:
      return "ANY";
    case Kind::kPcdata:
      return "(#PCDATA)";
    case Kind::kMixed: {
      std::string out = "(#PCDATA";
      for (const std::string& n : mixed_names) out += "|" + n;
      return out + ")*";
    }
    case Kind::kRegex:
      return expr.op == ContentExpr::Op::kName ? "(" + expr.ToString() + ")"
                                               : expr.ToString();
  }
  return "?";
}

Result<ContentModel> ParseContentModel(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  ContentModel model;
  if (s == "EMPTY") {
    model.kind = ContentModel::Kind::kEmpty;
    return model;
  }
  if (s == "ANY") {
    model.kind = ContentModel::Kind::kAny;
    return model;
  }
  // Mixed content: ( #PCDATA ) or ( #PCDATA | a | ... )*
  if (s.find("#PCDATA") != std::string_view::npos) {
    std::string_view body = s;
    bool starred = false;
    if (EndsWith(body, "*")) {
      starred = true;
      body.remove_suffix(1);
      body = StripWhitespace(body);
    }
    if (!StartsWith(body, "(") || !EndsWith(body, ")")) {
      return Status::ParseError("malformed mixed content model '" +
                                std::string(text) + "'");
    }
    body = body.substr(1, body.size() - 2);
    std::vector<std::string> names;
    bool first = true;
    for (std::string_view piece : Split(body, '|')) {
      piece = StripWhitespace(piece);
      if (first) {
        if (piece != "#PCDATA") {
          return Status::ParseError("mixed content must start with #PCDATA");
        }
        first = false;
        continue;
      }
      if (piece.empty()) {
        return Status::ParseError("empty alternative in mixed content");
      }
      names.emplace_back(piece);
    }
    if (first) {
      return Status::ParseError("malformed mixed content model");
    }
    if (names.empty() && !starred) {
      model.kind = ContentModel::Kind::kPcdata;
      return model;
    }
    if (!names.empty() && !starred) {
      return Status::ParseError(
          "mixed content with elements must end with ')*'");
    }
    model.kind = names.empty() ? ContentModel::Kind::kPcdata
                               : ContentModel::Kind::kMixed;
    model.mixed_names = std::move(names);
    return model;
  }
  Parser p(s);
  SMPX_ASSIGN_OR_RETURN(ContentExpr expr, p.Parse());
  model.kind = ContentModel::Kind::kRegex;
  model.expr = std::move(expr);
  return model;
}

}  // namespace smpx::dtd
