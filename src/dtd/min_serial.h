// Minimal serialization lengths of elements under a DTD: the smallest
// number of characters a valid occurrence of an element (or its tags) can
// occupy, with required attributes factored in. These feed the initial jump
// offsets J[q] (paper Section IV, "required attributes may be factored in").

#ifndef SMPX_DTD_MIN_SERIAL_H_
#define SMPX_DTD_MIN_SERIAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "dtd/dtd.h"

namespace smpx::dtd {

/// Memoized minimal-length calculator. All lengths are in characters of the
/// canonical minimal form: tags without whitespace, required attributes as
/// ` name=""`, optional content omitted, text content empty, and bachelor
/// form `<t/>` whenever the content model is nullable.
class MinSerial {
 public:
  explicit MinSerial(const Dtd* dtd) : dtd_(dtd) {}

  /// Minimal length of a full element occurrence (tags + content).
  uint64_t Element(std::string_view name);

  /// Minimal length of the element content between the tags.
  uint64_t Content(std::string_view name);

  /// `<name` + required attributes + `>`.
  uint64_t OpenTag(std::string_view name) const;

  /// `</name>`.
  uint64_t CloseTag(std::string_view name) const;

  /// `<name` + required attributes + `/>`; only valid if nullable.
  uint64_t BachelorTag(std::string_view name) const;

 private:
  uint64_t ExprMin(const ContentExpr& e);

  const Dtd* dtd_;
  std::map<std::string, uint64_t, std::less<>> element_memo_;
  std::map<std::string, bool, std::less<>> in_progress_;
};

}  // namespace smpx::dtd

#endif  // SMPX_DTD_MIN_SERIAL_H_
