// DTD element content models: the regular expressions over child element
// names found in <!ELEMENT ...> declarations, plus EMPTY / ANY / #PCDATA /
// mixed content. The static analysis compiles these into Glushkov position
// automata (see glushkov.h) and minimal serialization lengths (min_serial.h).

#ifndef SMPX_DTD_CONTENT_MODEL_H_
#define SMPX_DTD_CONTENT_MODEL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smpx::dtd {

/// Regex AST over child element names.
struct ContentExpr {
  enum class Op : unsigned char {
    kName,    ///< a child element reference
    kSeq,     ///< (e1, e2, ...)
    kChoice,  ///< (e1 | e2 | ...)
    kStar,    ///< e*
    kPlus,    ///< e+
    kOpt,     ///< e?
  };

  Op op = Op::kName;
  std::string name;                 ///< kName only
  std::vector<ContentExpr> kids;    ///< operands

  /// Renders back to DTD syntax (for diagnostics and round-trip tests).
  std::string ToString() const;
};

/// A complete content model.
struct ContentModel {
  enum class Kind : unsigned char {
    kEmpty,   ///< EMPTY
    kAny,     ///< ANY (rejected by the prefilter compiler)
    kPcdata,  ///< (#PCDATA)
    kMixed,   ///< (#PCDATA | a | b)*
    kRegex,   ///< element content
  };

  Kind kind = Kind::kEmpty;
  ContentExpr expr;                      ///< kRegex only
  std::vector<std::string> mixed_names;  ///< kMixed only

  /// True when the model admits element-free content, i.e. the element can
  /// be serialized as a bachelor tag <t/>.
  bool Nullable() const;

  /// True when text (PCDATA) may appear directly inside the element.
  bool AllowsText() const {
    return kind == Kind::kPcdata || kind == Kind::kMixed || kind == Kind::kAny;
  }

  /// All child element names referenced by the model.
  std::vector<std::string> ChildNames() const;

  std::string ToString() const;
};

/// Parses the content-model part of an <!ELEMENT> declaration, e.g.
/// "EMPTY", "(#PCDATA)", "(a, (b | c)*, d?)", "(#PCDATA | em)*".
Result<ContentModel> ParseContentModel(std::string_view text);

}  // namespace smpx::dtd

#endif  // SMPX_DTD_CONTENT_MODEL_H_
