#include "dtd/dtd_automaton.h"

#include <algorithm>
#include <set>

namespace smpx::dtd {

namespace {
const std::string kEmptyLabel;
}  // namespace

int DtdAutomaton::InternToken(const std::string& name, bool closing) {
  TagToken t{name, closing};
  auto it = token_ids_.find(t);
  if (it != token_ids_.end()) return it->second;
  int id = static_cast<int>(tokens_.size());
  tokens_.push_back(t);
  token_ids_[t] = id;
  return id;
}

int DtdAutomaton::FindToken(std::string_view name, bool closing) const {
  auto it = token_ids_.find(TagToken{std::string(name), closing});
  return it == token_ids_.end() ? -1 : it->second;
}

const std::string& DtdAutomaton::StateLabel(int s) const {
  if (s == 0) return kEmptyLabel;
  return instances_[static_cast<size_t>(InstanceOf(s))].label;
}

int DtdAutomaton::ParentState(int s) const {
  if (s == 0) return 0;
  int parent = instances_[static_cast<size_t>(InstanceOf(s))].parent;
  return parent < 0 ? 0 : OpenState(parent);
}

std::vector<std::string> DtdAutomaton::BranchLabels(int s) const {
  std::vector<std::string> labels;
  if (s == 0) return labels;
  for (int i = InstanceOf(s); i >= 0;
       i = instances_[static_cast<size_t>(i)].parent) {
    labels.push_back(instances_[static_cast<size_t>(i)].label);
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

const Glushkov& DtdAutomaton::GlushkovOf(std::string_view label) const {
  static const Glushkov kEmpty;
  auto it = glushkov_.find(label);
  return it == glushkov_.end() ? kEmpty : it->second;
}

Result<DtdAutomaton> DtdAutomaton::Build(const Dtd& dtd,
                                         size_t max_instances,
                                         bool allow_recursion) {
  SMPX_RETURN_IF_ERROR(dtd.Validate());
  std::set<std::string> recursive;
  if (dtd.IsRecursive()) {
    if (!allow_recursion) {
      return Status::Unsupported(
          "the DTD is recursive; the prefilter requires a nonrecursive "
          "schema (Section II) -- enable CompileOptions::allow_recursion "
          "to treat recursive elements as opaque regions");
    }
    for (std::string& name : dtd.RecursiveElements()) {
      recursive.insert(std::move(name));
    }
  }
  for (const std::string& name : dtd.ReachableFromRoot()) {
    const ElementDecl* decl = dtd.Find(name);
    if (decl != nullptr && decl->model.kind == ContentModel::Kind::kAny) {
      return Status::Unsupported("element <" + name +
                                 "> has ANY content, which the static "
                                 "analysis cannot bound");
    }
  }

  DtdAutomaton a;
  a.dtd_ = &dtd;

  // Glushkov automata, one per reachable element.
  for (const std::string& name : dtd.ReachableFromRoot()) {
    const ElementDecl* decl = dtd.Find(name);
    a.glushkov_.emplace(name, Glushkov::Build(decl->model));
  }

  // Unfold the instance tree breadth-first. Recursive elements become
  // opaque leaves of the unfolding: their interiors stay unexpanded.
  a.instances_.push_back(Instance{dtd.root(), -1, -1, 1,
                                  recursive.count(dtd.root()) != 0});
  a.children_.emplace_back();
  for (size_t i = 0; i < a.instances_.size(); ++i) {
    if (a.instances_[i].opaque) continue;  // children_[i] stays empty
    const Glushkov& g = a.glushkov_.find(a.instances_[i].label)->second;
    a.children_[i].assign(g.num_positions(), -1);
    for (size_t p = 0; p < g.num_positions(); ++p) {
      if (a.instances_.size() >= max_instances) {
        return Status::ResourceExhausted(
            "DTD unfolding exceeds " + std::to_string(max_instances) +
            " instances");
      }
      int child = static_cast<int>(a.instances_.size());
      a.instances_.push_back(Instance{g.labels[p], static_cast<int>(i),
                                      static_cast<int>(p),
                                      a.instances_[i].depth + 1,
                                      recursive.count(g.labels[p]) != 0});
      a.children_.emplace_back();
      a.children_[i][p] = child;
    }
  }

  // Transitions.
  a.adj_.assign(static_cast<size_t>(a.num_states()), {});
  // q0 --<root>--> open(root instance).
  a.adj_[0].push_back(Transition{a.InternToken(dtd.root(), false),
                                 OpenState(0)});
  for (size_t i = 0; i < a.instances_.size(); ++i) {
    const Instance& inst = a.instances_[i];
    const Glushkov& g = a.glushkov_.find(inst.label)->second;
    int open = OpenState(static_cast<int>(i));
    int close = CloseState(static_cast<int>(i));

    if (inst.opaque) {
      // Opaque region: the interior is unknown to the automaton; the only
      // modeled transition closes the region (the runtime tag-balances).
      a.adj_[static_cast<size_t>(open)].push_back(
          Transition{a.InternToken(inst.label, true), close});
      continue;
    }

    // open(i): first positions open child instances; nullable content may
    // close immediately.
    for (int p : g.first) {
      int child = a.children_[i][static_cast<size_t>(p)];
      a.adj_[static_cast<size_t>(open)].push_back(Transition{
          a.InternToken(g.labels[static_cast<size_t>(p)], false),
          OpenState(child)});
    }
    if (g.nullable) {
      a.adj_[static_cast<size_t>(open)].push_back(
          Transition{a.InternToken(inst.label, true), close});
    }

    // close(child at position p): follow positions open siblings; last
    // positions may close the parent.
    for (size_t p = 0; p < g.num_positions(); ++p) {
      int child = a.children_[i][p];
      int child_close = CloseState(child);
      for (int f : g.follow[p]) {
        int sibling = a.children_[i][static_cast<size_t>(f)];
        a.adj_[static_cast<size_t>(child_close)].push_back(Transition{
            a.InternToken(g.labels[static_cast<size_t>(f)], false),
            OpenState(sibling)});
      }
      if (g.last[p]) {
        a.adj_[static_cast<size_t>(child_close)].push_back(
            Transition{a.InternToken(inst.label, true), close});
      }
    }
  }
  return a;
}

std::string DtdAutomaton::ToDot() const {
  std::string out = "digraph dtd {\n  rankdir=LR;\n";
  out += "  q0 [shape=circle];\n";
  for (size_t i = 0; i < instances_.size(); ++i) {
    out += "  s" + std::to_string(OpenState(static_cast<int>(i))) +
           " [label=\"q" + std::to_string(i) + ":" + instances_[i].label +
           "\"];\n";
    out += "  s" + std::to_string(CloseState(static_cast<int>(i))) +
           " [label=\"q̂" + std::to_string(i) + ":" + instances_[i].label +
           "\", shape=doublecircle];\n";
  }
  for (int s = 0; s < num_states(); ++s) {
    for (const Transition& t : Out(s)) {
      std::string from = s == 0 ? "q0" : "s" + std::to_string(s);
      out += "  " + from + " -> s" + std::to_string(t.to) + " [label=\"" +
             tokens_[static_cast<size_t>(t.token)].ToString() + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace smpx::dtd
