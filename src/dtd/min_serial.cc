#include "dtd/min_serial.h"

#include <algorithm>
#include <limits>

namespace smpx::dtd {
namespace {

// Large sentinel used for undeclared elements and (defensively) recursion;
// chosen so that sums cannot overflow uint64.
constexpr uint64_t kHuge = std::numeric_limits<uint32_t>::max();

uint64_t RequiredAttrs(const Dtd* dtd, std::string_view name) {
  const ElementDecl* decl = dtd->Find(name);
  return decl == nullptr ? 0 : decl->RequiredAttrChars();
}

}  // namespace

uint64_t MinSerial::OpenTag(std::string_view name) const {
  return name.size() + 2 + RequiredAttrs(dtd_, name);  // <name ...>
}

uint64_t MinSerial::CloseTag(std::string_view name) const {
  return name.size() + 3;  // </name>
}

uint64_t MinSerial::BachelorTag(std::string_view name) const {
  return name.size() + 3 + RequiredAttrs(dtd_, name);  // <name .../>
}

uint64_t MinSerial::ExprMin(const ContentExpr& e) {
  switch (e.op) {
    case ContentExpr::Op::kName:
      return Element(e.name);
    case ContentExpr::Op::kSeq: {
      uint64_t sum = 0;
      for (const ContentExpr& k : e.kids) sum += ExprMin(k);
      return std::min(sum, kHuge);
    }
    case ContentExpr::Op::kChoice: {
      uint64_t best = kHuge;
      for (const ContentExpr& k : e.kids) best = std::min(best, ExprMin(k));
      return best;
    }
    case ContentExpr::Op::kStar:
    case ContentExpr::Op::kOpt:
      return 0;
    case ContentExpr::Op::kPlus:
      return ExprMin(e.kids[0]);
  }
  return kHuge;
}

uint64_t MinSerial::Content(std::string_view name) {
  const ElementDecl* decl = dtd_->Find(name);
  if (decl == nullptr) return kHuge;
  switch (decl->model.kind) {
    case ContentModel::Kind::kEmpty:
    case ContentModel::Kind::kPcdata:
    case ContentModel::Kind::kMixed:  // text may be empty, elements optional
    case ContentModel::Kind::kAny:
      return 0;
    case ContentModel::Kind::kRegex:
      return ExprMin(decl->model.expr);
  }
  return kHuge;
}

uint64_t MinSerial::Element(std::string_view name) {
  auto memo = element_memo_.find(name);
  if (memo != element_memo_.end()) return memo->second;
  const ElementDecl* decl = dtd_->Find(name);
  if (decl == nullptr) return kHuge;
  // Defensive recursion guard (the compiler rejects recursive DTDs, but the
  // calculator must not loop forever if called on one).
  auto [it, fresh] = in_progress_.try_emplace(std::string(name), true);
  if (!fresh && it->second) return kHuge;
  it->second = true;

  uint64_t result;
  if (decl->model.Nullable()) {
    result = BachelorTag(name);
  } else {
    result = OpenTag(name) + Content(name) + CloseTag(name);
    result = std::min(result, kHuge);
  }
  it->second = false;
  element_memo_[std::string(name)] = result;
  return result;
}

}  // namespace smpx::dtd
