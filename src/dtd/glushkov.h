// Glushkov (position) automata for DTD content models [24]. Every symbol
// occurrence in the content-model regex becomes one position; the automaton
// over positions is homogeneous by construction (all transitions into a
// position read that position's element name), the property the paper's
// action tables rely on [25].

#ifndef SMPX_DTD_GLUSHKOV_H_
#define SMPX_DTD_GLUSHKOV_H_

#include <string>
#include <vector>

#include "dtd/content_model.h"

namespace smpx::dtd {

/// The Glushkov construction for one content model. Positions are numbered
/// 0..n-1 in left-to-right occurrence order.
struct Glushkov {
  std::vector<std::string> labels;        ///< element name per position
  bool nullable = false;                  ///< empty child sequence accepted
  std::vector<int> first;                 ///< positions that may start a word
  std::vector<bool> last;                 ///< positions that may end a word
  std::vector<std::vector<int>> follow;   ///< follow set per position

  size_t num_positions() const { return labels.size(); }

  /// Builds the automaton. kEmpty/kPcdata yield zero positions and
  /// nullable=true; kMixed yields one position per alternative with full
  /// cross-follow (the (#PCDATA|a|b)* semantics); kAny is not supported
  /// here (callers must reject it first) and yields zero positions.
  static Glushkov Build(const ContentModel& model);
};

}  // namespace smpx::dtd

#endif  // SMPX_DTD_GLUSHKOV_H_
