// DTD model and parser: element declarations with content models, attribute
// lists (required attributes matter for the initial-jump offsets), recursion
// detection (the prefilter requires a nonrecursive schema, Section II).

#ifndef SMPX_DTD_DTD_H_
#define SMPX_DTD_DTD_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dtd/content_model.h"

namespace smpx::dtd {

/// One attribute in an <!ATTLIST> declaration.
struct AttributeDecl {
  enum class Default : unsigned char {
    kRequired,  ///< #REQUIRED -- contributes to minimal tag lengths
    kImplied,   ///< #IMPLIED
    kFixed,     ///< #FIXED "value"
    kDefaulted, ///< "value"
  };

  std::string name;
  std::string type;  ///< "CDATA", "ID", "(a|b)", ... kept verbatim
  Default def = Default::kImplied;
  std::string default_value;  ///< kFixed / kDefaulted only

  bool required() const { return def == Default::kRequired; }
};

/// One <!ELEMENT> declaration plus its attributes.
struct ElementDecl {
  std::string name;
  ContentModel model;
  std::vector<AttributeDecl> attrs;

  /// Minimal serialized length of this element's required attributes:
  /// each contributes ` name=""` (name length + 4).
  size_t RequiredAttrChars() const;
};

/// A parsed DTD. The document root element is the DOCTYPE name when parsed
/// from a full DOCTYPE declaration, otherwise it must be set explicitly.
class Dtd {
 public:
  /// Parses either a complete `<!DOCTYPE root [ ... ]>` declaration (leading
  /// XML prolog allowed), or a bare internal subset of `<!ELEMENT>` /
  /// `<!ATTLIST>` declarations (`root_hint` names the document root then).
  static Result<Dtd> Parse(std::string_view text,
                           std::string root_hint = "");

  const std::string& root() const { return root_; }
  void set_root(std::string root) { root_ = std::move(root); }

  /// Declared element, or nullptr.
  const ElementDecl* Find(std::string_view name) const;

  /// All declarations in declaration order.
  const std::vector<ElementDecl>& elements() const { return elements_; }

  /// True if some element can (transitively) contain itself. The prefilter
  /// compiler rejects recursive DTDs with kUnsupported unless recursion
  /// support is enabled (see core::CompileOptions::allow_recursion).
  bool IsRecursive() const;

  /// Element names that can (transitively) contain themselves: the members
  /// of cycles in the element reference graph. These become *opaque
  /// regions* when recursion support is enabled.
  std::vector<std::string> RecursiveElements() const;

  /// Element names reachable from `name` via content models, including
  /// `name` itself. The possible tag vocabulary inside such an element.
  std::vector<std::string> ReachableFrom(std::string_view name) const;

  /// Element names reachable from the root (including the root).
  std::vector<std::string> ReachableFromRoot() const;

  /// Verifies internal consistency: root declared, every referenced child
  /// declared. Returns the first problem found.
  Status Validate() const;

  /// Renders back to a `<!DOCTYPE root [ ... ]>` string.
  std::string ToString() const;

  /// Adds or replaces a declaration (used by generators and tests).
  void AddElement(ElementDecl decl);

 private:
  std::string root_;
  std::vector<ElementDecl> elements_;
  std::map<std::string, size_t, std::less<>> index_;
};

}  // namespace smpx::dtd

#endif  // SMPX_DTD_DTD_H_
