#include "dtd/glushkov.h"

#include <algorithm>

namespace smpx::dtd {
namespace {

/// Per-subexpression result of the inductive Glushkov construction.
struct Part {
  bool nullable = false;
  std::vector<int> first;
  std::vector<int> last;
};

void AddAll(std::vector<int>* dst, const std::vector<int>& src) {
  for (int p : src) {
    if (std::find(dst->begin(), dst->end(), p) == dst->end()) {
      dst->push_back(p);
    }
  }
}

Part BuildExpr(const ContentExpr& e, Glushkov* g) {
  switch (e.op) {
    case ContentExpr::Op::kName: {
      int pos = static_cast<int>(g->labels.size());
      g->labels.push_back(e.name);
      g->follow.emplace_back();
      Part part;
      part.nullable = false;
      part.first = {pos};
      part.last = {pos};
      return part;
    }
    case ContentExpr::Op::kSeq: {
      Part acc;
      acc.nullable = true;
      for (const ContentExpr& kid : e.kids) {
        Part k = BuildExpr(kid, g);
        // follow: last(acc) -> first(k)
        for (int l : acc.last) AddAll(&g->follow[static_cast<size_t>(l)],
                                      k.first);
        if (acc.nullable) AddAll(&acc.first, k.first);
        if (k.nullable) {
          AddAll(&acc.last, k.last);
        } else {
          acc.last = k.last;
        }
        acc.nullable = acc.nullable && k.nullable;
      }
      return acc;
    }
    case ContentExpr::Op::kChoice: {
      Part acc;
      acc.nullable = false;
      for (const ContentExpr& kid : e.kids) {
        Part k = BuildExpr(kid, g);
        AddAll(&acc.first, k.first);
        AddAll(&acc.last, k.last);
        acc.nullable = acc.nullable || k.nullable;
      }
      return acc;
    }
    case ContentExpr::Op::kStar:
    case ContentExpr::Op::kPlus: {
      Part k = BuildExpr(e.kids[0], g);
      for (int l : k.last) AddAll(&g->follow[static_cast<size_t>(l)],
                                  k.first);
      if (e.op == ContentExpr::Op::kStar) k.nullable = true;
      return k;
    }
    case ContentExpr::Op::kOpt: {
      Part k = BuildExpr(e.kids[0], g);
      k.nullable = true;
      return k;
    }
  }
  return {};
}

}  // namespace

Glushkov Glushkov::Build(const ContentModel& model) {
  Glushkov g;
  switch (model.kind) {
    case ContentModel::Kind::kEmpty:
    case ContentModel::Kind::kPcdata:
    case ContentModel::Kind::kAny:
      g.nullable = true;
      return g;
    case ContentModel::Kind::kMixed: {
      // (#PCDATA | a | b)*: each name is one position; every position can
      // start, end, and follow every other (including itself).
      g.nullable = true;
      size_t n = model.mixed_names.size();
      std::vector<int> all;
      for (size_t i = 0; i < n; ++i) {
        g.labels.push_back(model.mixed_names[i]);
        all.push_back(static_cast<int>(i));
      }
      g.first = all;
      g.last.assign(n, true);
      g.follow.assign(n, all);
      return g;
    }
    case ContentModel::Kind::kRegex: {
      Part root = BuildExpr(model.expr, &g);
      g.nullable = root.nullable;
      g.first = std::move(root.first);
      g.last.assign(g.labels.size(), false);
      for (int l : root.last) g.last[static_cast<size_t>(l)] = true;
      return g;
    }
  }
  return g;
}

}  // namespace smpx::dtd
