#include "common/io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#define SMPX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace smpx {

Result<size_t> MemoryInputStream::Read(char* buf, size_t len) {
  size_t n = std::min(len, data_.size() - pos_);
  std::memcpy(buf, data_.data() + pos_, n);
  pos_ += n;
  return n;
}

Result<size_t> MemorySource::ReadAt(uint64_t offset, char* buf,
                                    size_t len) const {
  if (offset >= data_.size()) return static_cast<size_t>(0);
  size_t n = std::min<uint64_t>(len, data_.size() - offset);
  std::memcpy(buf, data_.data() + offset, n);
  return n;
}

Result<std::unique_ptr<MmapSource>> MmapSource::Open(
    const std::string& path) {
#ifdef SMPX_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IoError("fstat '" + path + "': " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Only regular files are mappable (and only for them does st_size mean
  // anything): FIFOs, process substitutions, and /proc-style files go
  // through the streaming fallback below.
  if (S_ISREG(st.st_mode)) {
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::unique_ptr<MmapSource>(
          new MmapSource(std::string_view(), nullptr, std::string()));
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);  // the mapping keeps the pages alive
      // The prefilter scans strictly forward; tell the kernel so
      // readahead stays aggressive and cold files stream instead of
      // faulting randomly.
      ::madvise(map, size, MADV_SEQUENTIAL);
      ::madvise(map, size, MADV_WILLNEED);
      return std::unique_ptr<MmapSource>(new MmapSource(
          std::string_view(static_cast<const char*>(map), size), map,
          std::string()));
    }
  }
  ::close(fd);
#endif
  // No mmap (or it failed, e.g. on a pipe): fall back to owned memory.
  SMPX_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  auto src = std::unique_ptr<MmapSource>(
      new MmapSource(std::string_view(), nullptr, std::move(content)));
  src->view_ = src->fallback_;
  return src;
}

MmapSource::~MmapSource() {
#ifdef SMPX_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, view_.size());
  }
#endif
}

Result<size_t> MmapSource::ReadAt(uint64_t offset, char* buf,
                                  size_t len) const {
  if (offset >= view_.size()) return static_cast<size_t>(0);
  size_t n = std::min<uint64_t>(len, view_.size() - offset);
  std::memcpy(buf, view_.data() + offset, n);
  return n;
}

Result<size_t> SourceStream::Read(char* buf, size_t len) {
  if (pos_ >= end_) return static_cast<size_t>(0);
  size_t want = static_cast<size_t>(std::min<uint64_t>(len, end_ - pos_));
  SMPX_ASSIGN_OR_RETURN(size_t n, source_->ReadAt(pos_, buf, want));
  pos_ += n;
  return n;
}

Result<std::unique_ptr<FileInputStream>> FileInputStream::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileInputStream>(new FileInputStream(f));
}

FileInputStream::~FileInputStream() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<size_t> FileInputStream::Read(char* buf, size_t len) {
  size_t n = std::fread(buf, 1, len, file_);
  if (n < len && std::ferror(file_)) {
    return Status::IoError("read failed: " +
                           std::string(std::strerror(errno)));
  }
  return n;
}

Result<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileSink>(new FileSink(f));
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Append(std::string_view data) {
  size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  bytes_written_ += n;
  if (n != data.size()) {
    return Status::IoError("write failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

Status FileSink::Flush() {
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

SlidingWindow::SlidingWindow(InputStream* in, size_t capacity,
                             uint64_t origin)
    : in_(in),
      buf_(std::max<size_t>(capacity, 64)),
      origin_(origin),
      base_(origin),
      lock_(origin) {
  max_capacity_ = buf_.size();
}

void SlidingWindow::Fill() {
  while (!eof_ && size_ < buf_.size()) {
    Result<size_t> n = in_->Read(buf_.data() + size_, buf_.size() - size_);
    if (!n.ok()) {
      status_ = n.status();
      eof_ = true;
      return;
    }
    if (*n == 0) {
      eof_ = true;
      return;
    }
    size_ += *n;
  }
}

void SlidingWindow::SlideTo(uint64_t new_base) {
  if (new_base <= base_) return;
  uint64_t evict_end = std::min<uint64_t>(new_base, base_ + size_);
  if (evict_fn_ && evict_end > base_) {
    evict_fn_(base_, std::string_view(buf_.data(),
                                      static_cast<size_t>(evict_end - base_)));
  }
  size_t drop = static_cast<size_t>(new_base - base_);
  if (drop >= size_) {
    // Everything currently buffered is discarded; the gap (if any) is
    // bridged by reading and evicting, so absolute positions stay exact and
    // any pending copy output still sees every byte. If the stream ends
    // (or a chunk feed drains) inside the gap, base_ only advances as far
    // as bytes were actually delivered -- later arrivals must land at
    // their true absolute positions.
    uint64_t skip = new_base - (base_ + size_);
    uint64_t gap_pos = base_ + size_;
    size_ = 0;
    while (skip > 0 && !eof_) {
      size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(skip, buf_.size()));
      Result<size_t> n = in_->Read(buf_.data(), chunk);
      if (!n.ok()) {
        status_ = n.status();
        eof_ = true;
        break;
      }
      if (*n == 0) {
        eof_ = true;
        break;
      }
      if (evict_fn_) evict_fn_(gap_pos, std::string_view(buf_.data(), *n));
      gap_pos += *n;
      skip -= *n;
    }
    base_ = gap_pos;
  } else {
    std::memmove(buf_.data(), buf_.data() + drop, size_ - drop);
    size_ -= drop;
    base_ = new_base;
  }
}

size_t SlidingWindow::Ensure(uint64_t pos, size_t len) {
  uint64_t want_end = pos + len;
  // Fast path: already resident.
  if (pos >= base_ && want_end <= base_ + size_) return len;
  // Grow if the span from the lock (or pos) to want_end cannot fit.
  uint64_t keep_from = std::min(lock_, pos);
  if (keep_from < base_) keep_from = base_;  // already evicted; nothing to do
  if (want_end - keep_from > buf_.size()) {
    size_t new_cap = buf_.size();
    while (want_end - keep_from > new_cap) new_cap *= 2;
    std::vector<char> nbuf(new_cap);
    std::memcpy(nbuf.data(), buf_.data(), size_);
    buf_.swap(nbuf);
    max_capacity_ = std::max(max_capacity_, buf_.size());
  }
  if (keep_from > base_) SlideTo(keep_from);
  if (want_end > base_ + size_) Fill();
  uint64_t avail_end = base_ + size_;
  if (pos >= avail_end) return 0;
  return static_cast<size_t>(std::min<uint64_t>(want_end, avail_end) - pos);
}

std::string_view SlidingWindow::View(uint64_t pos, size_t len) {
  size_t got = Ensure(pos, len);
  if (got == 0) return {};
  return std::string_view(buf_.data() + (pos - base_),
                          static_cast<size_t>(base_ + size_ - pos));
}

bool SlidingWindow::AtEnd(uint64_t pos) {
  if (pos < base_ + size_) return false;
  if (!eof_) Ensure(pos, 1);
  return eof_ && pos >= base_ + size_;
}

std::string ProjectedOutputPath(const std::string& input_path) {
  static constexpr std::string_view kXml = ".xml";
  if (input_path.size() > kXml.size() &&
      input_path.compare(input_path.size() - kXml.size(), kXml.size(),
                         kXml) == 0) {
    return input_path.substr(0, input_path.size() - kXml.size()) +
           ".proj.xml";
  }
  return input_path + ".proj.xml";
}

Result<std::string> ReadFileToString(const std::string& path) {
  SMPX_ASSIGN_OR_RETURN(std::unique_ptr<FileInputStream> in,
                        FileInputStream::Open(path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    SMPX_ASSIGN_OR_RETURN(size_t n, in->Read(buf, sizeof(buf)));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  SMPX_ASSIGN_OR_RETURN(std::unique_ptr<FileSink> sink, FileSink::Open(path));
  SMPX_RETURN_IF_ERROR(sink->Append(data));
  return sink->Flush();
}

}  // namespace smpx
