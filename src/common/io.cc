#include "common/io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#define SMPX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace smpx {

Result<size_t> MemoryInputStream::Read(char* buf, size_t len) {
  size_t n = std::min(len, data_.size() - pos_);
  std::memcpy(buf, data_.data() + pos_, n);
  pos_ += n;
  return n;
}

Result<size_t> MemorySource::ReadAt(uint64_t offset, char* buf,
                                    size_t len) const {
  if (offset >= data_.size()) return static_cast<size_t>(0);
  size_t n = std::min<uint64_t>(len, data_.size() - offset);
  std::memcpy(buf, data_.data() + offset, n);
  return n;
}

Result<std::unique_ptr<MmapSource>> MmapSource::Open(
    const std::string& path) {
#ifdef SMPX_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IoError("fstat '" + path + "': " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Only regular files are mappable (and only for them does st_size mean
  // anything): FIFOs, process substitutions, and /proc-style files go
  // through the streaming fallback below.
  if (S_ISREG(st.st_mode)) {
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::unique_ptr<MmapSource>(
          new MmapSource(std::string_view(), nullptr, std::string()));
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);  // the mapping keeps the pages alive
      // The prefilter scans strictly forward; tell the kernel so
      // readahead stays aggressive and cold files stream instead of
      // faulting randomly.
      ::madvise(map, size, MADV_SEQUENTIAL);
      ::madvise(map, size, MADV_WILLNEED);
      return std::unique_ptr<MmapSource>(new MmapSource(
          std::string_view(static_cast<const char*>(map), size), map,
          std::string()));
    }
  }
  ::close(fd);
#endif
  // No mmap (or it failed, e.g. on a pipe): fall back to owned memory.
  SMPX_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  auto src = std::unique_ptr<MmapSource>(
      new MmapSource(std::string_view(), nullptr, std::move(content)));
  src->view_ = src->fallback_;
  return src;
}

MmapSource::~MmapSource() {
#ifdef SMPX_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, view_.size());
  }
#endif
}

Result<size_t> MmapSource::ReadAt(uint64_t offset, char* buf,
                                  size_t len) const {
  if (offset >= view_.size()) return static_cast<size_t>(0);
  size_t n = std::min<uint64_t>(len, view_.size() - offset);
  std::memcpy(buf, view_.data() + offset, n);
  return n;
}

Result<std::unique_ptr<FileSource>> FileSource::Open(
    const std::string& path) {
#ifdef SMPX_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IoError("fstat '" + path + "': " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (S_ISREG(st.st_mode)) {
    return std::unique_ptr<FileSource>(new FileSource(
        fd, static_cast<uint64_t>(st.st_size), std::string()));
  }
  ::close(fd);
#endif
  // Pipes, /proc files, or platforms without pread: owned memory.
  SMPX_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  const uint64_t size = content.size();
  return std::unique_ptr<FileSource>(
      new FileSource(-1, size, std::move(content)));
}

FileSource::~FileSource() {
#ifdef SMPX_HAVE_MMAP
  if (fd_ >= 0) ::close(fd_);
#endif
}

Result<size_t> FileSource::ReadAt(uint64_t offset, char* buf,
                                  size_t len) const {
  if (fd_ < 0) {
    if (offset >= fallback_.size()) return static_cast<size_t>(0);
    size_t n = std::min<uint64_t>(len, fallback_.size() - offset);
    std::memcpy(buf, fallback_.data() + offset, n);
    return n;
  }
#ifdef SMPX_HAVE_MMAP
  if (offset >= size_) return static_cast<size_t>(0);
  len = static_cast<size_t>(std::min<uint64_t>(len, size_ - offset));
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd_, buf + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) break;  // file shrank under us; report the short read
    done += static_cast<size_t>(n);
  }
  return done;
#else
  return Status::Internal("FileSource without pread support");
#endif
}

Result<size_t> SourceStream::Read(char* buf, size_t len) {
  if (pos_ >= end_) return static_cast<size_t>(0);
  size_t want = static_cast<size_t>(std::min<uint64_t>(len, end_ - pos_));
  SMPX_ASSIGN_OR_RETURN(size_t n, source_->ReadAt(pos_, buf, want));
  pos_ += n;
  return n;
}

Result<std::unique_ptr<FileInputStream>> FileInputStream::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileInputStream>(new FileInputStream(f));
}

FileInputStream::~FileInputStream() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<size_t> FileInputStream::Read(char* buf, size_t len) {
  size_t n = std::fread(buf, 1, len, file_);
  if (n < len && std::ferror(file_)) {
    return Status::IoError("read failed: " +
                           std::string(std::strerror(errno)));
  }
  return n;
}

namespace {

/// Status for a short fwrite: reports how far the data actually got, so a
/// caller resuming or reporting upward knows the exact byte boundary.
Status ShortWriteError(size_t written, size_t expected) {
  return Status::IoError("short write: wrote " + std::to_string(written) +
                         " of " + std::to_string(expected) + " bytes: " +
                         std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileSink>(new FileSink(f));
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Append(std::string_view data) {
  if (!error_.ok()) return error_;
  if (data.empty()) return Status::Ok();  // may carry a null data pointer
  size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  bytes_written_ += n;
  if (n != data.size()) {
    error_ = ShortWriteError(n, data.size());
    return error_;
  }
  return Status::Ok();
}

Status FileSink::Flush() {
  if (!error_.ok()) return error_;  // idempotent after a failed Append
  if (std::fflush(file_) != 0) {
    error_ = Status::IoError("flush failed: " +
                             std::string(std::strerror(errno)));
    return error_;
  }
  return Status::Ok();
}

Result<std::unique_ptr<BufferedFileSink>> BufferedFileSink::Open(
    const std::string& path, size_t buffer_capacity) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  return std::unique_ptr<BufferedFileSink>(
      new BufferedFileSink(f, /*owns=*/true, buffer_capacity));
}

std::unique_ptr<BufferedFileSink> BufferedFileSink::Wrap(
    std::FILE* f, size_t buffer_capacity) {
  return std::unique_ptr<BufferedFileSink>(
      new BufferedFileSink(f, /*owns=*/false, buffer_capacity));
}

BufferedFileSink::~BufferedFileSink() {
  Flush();  // best effort; errors are already sticky in error_
  if (owns_ && file_ != nullptr) std::fclose(file_);
}

Status BufferedFileSink::WriteOut(const char* data, size_t len) {
  size_t n = std::fwrite(data, 1, len, file_);
  if (n != len) {
    error_ = ShortWriteError(n, len);
    return error_;
  }
  return Status::Ok();
}

Status BufferedFileSink::Drain() {
  if (fill_ == 0) return Status::Ok();
  size_t n = fill_;
  fill_ = 0;  // even on failure: the buffered bytes' fate is recorded in
              // error_, retrying them would double-write the prefix
  return WriteOut(buf_.data(), n);
}

Status BufferedFileSink::Append(std::string_view data) {
  if (!error_.ok()) return error_;
  if (data.empty()) return Status::Ok();  // may carry a null data pointer
  bytes_written_ += data.size();
  if (data.size() >= buf_.size()) {
    // Large append: flush what's pending, then write through.
    SMPX_RETURN_IF_ERROR(Drain());
    return WriteOut(data.data(), data.size());
  }
  if (fill_ + data.size() > buf_.size()) SMPX_RETURN_IF_ERROR(Drain());
  std::memcpy(buf_.data() + fill_, data.data(), data.size());
  fill_ += data.size();
  return Status::Ok();
}

Status BufferedFileSink::Flush() {
  if (!error_.ok()) return error_;  // idempotent after failure
  SMPX_RETURN_IF_ERROR(Drain());
  if (std::fflush(file_) != 0) {
    error_ = Status::IoError("flush failed: " +
                             std::string(std::strerror(errno)));
    return error_;
  }
  return Status::Ok();
}

SpillArena::~SpillArena() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillArena::Write(std::string_view data, uint64_t* offset) {
  uint64_t off;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr) {
      // tmpfile() is created already unlinked: the bytes live only as
      // long as the handle, and a crashed process leaks nothing on disk.
      file_ = std::tmpfile();
      if (file_ == nullptr) {
        return Status::IoError("cannot create arena spill file: " +
                               std::string(std::strerror(errno)));
      }
#if defined(__unix__) || defined(__APPLE__)
      fd_ = fileno(file_);
#endif
    }
    off = end_;
    end_ += data.size();
    live_ += data.size();
  }
  *offset = off;
#if defined(__unix__) || defined(__APPLE__)
  // Positionless writes: concurrent sinks spill without touching the
  // mutex past the extent allocation above.
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = pwrite(fd_, data.data() + done, data.size() - done,
                       static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("arena write failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
#else
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fseek(file_, static_cast<long>(off), SEEK_SET) != 0) {
    return Status::IoError("arena seek failed: " +
                           std::string(std::strerror(errno)));
  }
  size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  if (n != data.size()) return ShortWriteError(n, data.size());
  return Status::Ok();
#endif
}

Status SpillArena::Read(uint64_t offset, char* buf, size_t len) {
#if defined(__unix__) || defined(__APPLE__)
  size_t done = 0;
  while (done < len) {
    ssize_t n = pread(fd_, buf + done, len - done,
                      static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("arena read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("arena read truncated");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
#else
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr ||
      std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("arena seek failed");
  }
  size_t n = std::fread(buf, 1, len, file_);
  if (n != len) return Status::IoError("arena read truncated");
  return Status::Ok();
#endif
}

void SpillArena::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  live_ = bytes < live_ ? live_ - bytes : 0;
  if (live_ == 0 && end_ != 0) {
    // Epoch reclamation: nobody holds an extent, so the whole file is
    // garbage. Truncation (not close) keeps the fd stable for reuse.
    end_ = 0;
#if defined(__unix__) || defined(__APPLE__)
    if (fd_ >= 0 && ftruncate(fd_, 0) != 0) {
      // Reclamation is best-effort; allocation stays correct regardless.
    }
#endif
  }
}

int SpillArena::open_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr ? 1 : 0;
}

SpillSink::~SpillSink() {
  if (spill_ != nullptr) std::fclose(spill_);
  if (arena_ != nullptr && extent_bytes_ > 0) arena_->Release(extent_bytes_);
}

Status SpillSink::EnsureSpill() {
  if (spill_ != nullptr) return Status::Ok();
  // tmpfile() is created already unlinked: the bytes live only as long as
  // the handle, and a crashed process leaks nothing on disk.
  spill_ = std::tmpfile();
  if (spill_ == nullptr) {
    error_ = Status::IoError("cannot create spill file: " +
                             std::string(std::strerror(errno)));
    return error_;
  }
  if (!mem_.empty()) {
    size_t n = std::fwrite(mem_.data(), 1, mem_.size(), spill_);
    if (n != mem_.size()) {
      error_ = ShortWriteError(n, mem_.size());
      return error_;
    }
    std::string().swap(mem_);  // actually release the buffer capacity
  }
  return Status::Ok();
}

Status SpillSink::SpillToArena(std::string_view data) {
  uint64_t off = 0;
  Status s = arena_->Write(data, &off);
  if (!s.ok()) {
    error_ = s;
    return error_;
  }
  // Merge extents the arena happened to hand out back-to-back (the common
  // case when no other sink's overflow interleaves).
  if (!extents_.empty() &&
      extents_.back().offset + extents_.back().size == off) {
    extents_.back().size += data.size();
  } else {
    extents_.push_back(Extent{off, data.size()});
  }
  extent_bytes_ += data.size();
  return Status::Ok();
}

Status SpillSink::Append(std::string_view data) {
  if (!error_.ok()) return error_;
  if (data.empty()) return Status::Ok();  // may carry a null data pointer
  if (!spilled() && mem_.size() + data.size() <= budget_) {
    mem_.append(data);
    bytes_written_ += data.size();
    return Status::Ok();
  }
  if (arena_ != nullptr) {
    arena_spilled_ = true;
    if (!mem_.empty()) {
      SMPX_RETURN_IF_ERROR(SpillToArena(mem_));
      std::string().swap(mem_);  // actually release the buffer capacity
    }
    SMPX_RETURN_IF_ERROR(SpillToArena(data));
    bytes_written_ += data.size();
    return Status::Ok();
  }
  SMPX_RETURN_IF_ERROR(EnsureSpill());
  size_t n = std::fwrite(data.data(), 1, data.size(), spill_);
  bytes_written_ += n;
  if (n != data.size()) {
    error_ = ShortWriteError(n, data.size());
    return error_;
  }
  return Status::Ok();
}

Status SpillSink::CopyTo(OutputSink* out) {
  if (!error_.ok()) return error_;
  if (!spilled()) return out->Append(mem_);
  if (arena_spilled_) {
    char buf[1 << 16];
    for (const Extent& e : extents_) {
      uint64_t done = 0;
      while (done < e.size) {
        size_t n = static_cast<size_t>(
            std::min<uint64_t>(sizeof(buf), e.size - done));
        Status s = arena_->Read(e.offset + done, buf, n);
        if (!s.ok()) {
          error_ = s;
          return error_;
        }
        // Downstream errors are the caller's, not sticky here.
        SMPX_RETURN_IF_ERROR(out->Append(std::string_view(buf, n)));
        done += n;
      }
    }
    return mem_.empty() ? Status::Ok() : out->Append(mem_);
  }
  if (std::fseek(spill_, 0, SEEK_SET) != 0) {
    error_ = Status::IoError("spill seek failed: " +
                             std::string(std::strerror(errno)));
    return error_;
  }
  char buf[1 << 16];
  Status replay;
  for (;;) {
    size_t n = std::fread(buf, 1, sizeof(buf), spill_);
    if (n == 0) {
      if (std::ferror(spill_)) {
        error_ = Status::IoError("spill read failed: " +
                                 std::string(std::strerror(errno)));
        replay = error_;
      }
      break;
    }
    replay = out->Append(std::string_view(buf, n));
    if (!replay.ok()) break;  // downstream error: not sticky here
  }
  // Reposition at the end so later appends extend rather than overwrite.
  if (std::fseek(spill_, 0, SEEK_END) != 0 && error_.ok()) {
    error_ = Status::IoError("spill seek failed: " +
                             std::string(std::strerror(errno)));
    if (replay.ok()) replay = error_;
  }
  return replay;
}

void SpillSink::Clear() {
  std::string().swap(mem_);
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  if (arena_ != nullptr && extent_bytes_ > 0) arena_->Release(extent_bytes_);
  extents_.clear();
  extent_bytes_ = 0;
  arena_spilled_ = false;
  bytes_written_ = 0;
  error_ = Status::Ok();
}

Status SpillSink::ForceSpill() {
  if (!error_.ok()) return error_;
  if (budget_ == kUnlimited || (!spilled() && mem_.empty())) {
    return Status::Ok();
  }
  if (arena_ != nullptr) {
    arena_spilled_ = true;
    if (!mem_.empty()) {
      SMPX_RETURN_IF_ERROR(SpillToArena(mem_));
      std::string().swap(mem_);
    }
    return Status::Ok();
  }
  return EnsureSpill();
}

OrderedCommitSink::OrderedCommitSink(OutputSink* down, size_t segments)
    : down_(down),
      pending_(segments),
      ready_(segments, false),
      limit_(segments) {}

OrderedCommitSink::OrderedCommitSink(SegmentWriter writer, size_t segments)
    : down_(nullptr),
      writer_(std::move(writer)),
      pending_(segments),
      ready_(segments, false),
      limit_(segments) {}

Status OrderedCommitSink::CommitReady(std::unique_lock<std::mutex>& lock) {
  if (committing_) return error_;  // the draining thread will pick ours up
  committing_ = true;
  // A sticky error stops the frontier for good: a half-replayed segment
  // must not be skipped over, or the downstream stream would contain a
  // hole instead of a clean prefix.
  while (error_.ok() && frontier_ < limit_ && ready_[frontier_]) {
    std::unique_ptr<SpillSink> seg = std::move(pending_[frontier_]);
    if (seg != nullptr || writer_) {
      uint64_t produced = seg != nullptr ? seg->bytes_written() : 0;
      // Replay outside the lock -- the committing_ flag keeps commits
      // single-threaded, and holding mu_ across a multi-GB spill replay
      // would block every concurrently finishing producer in Install.
      size_t k = frontier_;
      lock.unlock();
      Status s = writer_ ? writer_(k, seg.get()) : seg->CopyTo(down_);
      lock.lock();
      if (!s.ok()) {
        if (error_.ok()) error_ = s;
        break;
      }
      committed_bytes_ += produced;
    }
    ++frontier_;  // seg (buffer and spill file) is freed here
  }
  committing_ = false;
  return error_;
}

Status OrderedCommitSink::Install(size_t k,
                                  std::unique_ptr<SpillSink> segment) {
  std::unique_lock<std::mutex> lock(mu_);
  if (k >= limit_) return error_;  // truncated away; content is dropped
  if (ready_[k]) {
    if (error_.ok()) {
      error_ = Status::Internal("segment " + std::to_string(k) +
                                " installed twice");
    }
    return error_;
  }
  if (segment != nullptr && k > frontier_) {
    // Parked ahead of the frontier: hold the bytes on disk, not in
    // memory. The spill write happens outside the lock (it can be an
    // up-to-budget copy); a frontier advance in the meantime merely makes
    // the spill redundant, and a racing duplicate install of the same k
    // is caught by re-checking ready_ below.
    lock.unlock();
    Status s = segment->ForceSpill();
    lock.lock();
    if (!s.ok() && error_.ok()) error_ = s;
    if (k >= limit_) return error_;  // truncated while spilling
    if (ready_[k]) {
      if (error_.ok()) {
        error_ = Status::Internal("segment " + std::to_string(k) +
                                  " installed twice");
      }
      return error_;
    }
  }
  pending_[k] = std::move(segment);
  ready_[k] = true;
  return CommitReady(lock);
}

void OrderedCommitSink::Truncate(size_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  if (k >= limit_) return;
  limit_ = k;
  for (size_t i = k; i < pending_.size(); ++i) {
    pending_[i].reset();
    ready_[i] = false;
  }
}

size_t OrderedCommitSink::frontier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frontier_;
}

bool OrderedCommitSink::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frontier_ >= limit_;
}

uint64_t OrderedCommitSink::committed_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_bytes_;
}

Status OrderedCommitSink::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

SlidingWindow::SlidingWindow(InputStream* in, size_t capacity,
                             uint64_t origin)
    : in_(in),
      buf_(std::max<size_t>(capacity, 64)),
      origin_(origin),
      base_(origin),
      lock_(origin) {
  max_capacity_ = buf_.size();
}

void SlidingWindow::Fill() {
  while (!eof_ && size_ < buf_.size()) {
    Result<size_t> n = in_->Read(buf_.data() + size_, buf_.size() - size_);
    if (!n.ok()) {
      status_ = n.status();
      eof_ = true;
      return;
    }
    if (*n == 0) {
      eof_ = true;
      return;
    }
    size_ += *n;
  }
}

void SlidingWindow::SlideTo(uint64_t new_base) {
  if (new_base <= base_) return;
  ++epoch_;
  uint64_t evict_end = std::min<uint64_t>(new_base, base_ + size_);
  if (evict_fn_ && evict_end > base_) {
    evict_fn_(base_, std::string_view(buf_.data(),
                                      static_cast<size_t>(evict_end - base_)));
  }
  size_t drop = static_cast<size_t>(new_base - base_);
  if (drop >= size_) {
    // Everything currently buffered is discarded; the gap (if any) is
    // bridged by reading and evicting, so absolute positions stay exact and
    // any pending copy output still sees every byte. If the stream ends
    // (or a chunk feed drains) inside the gap, base_ only advances as far
    // as bytes were actually delivered -- later arrivals must land at
    // their true absolute positions.
    uint64_t skip = new_base - (base_ + size_);
    uint64_t gap_pos = base_ + size_;
    size_ = 0;
    while (skip > 0 && !eof_) {
      size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(skip, buf_.size()));
      Result<size_t> n = in_->Read(buf_.data(), chunk);
      if (!n.ok()) {
        status_ = n.status();
        eof_ = true;
        break;
      }
      if (*n == 0) {
        eof_ = true;
        break;
      }
      if (evict_fn_) evict_fn_(gap_pos, std::string_view(buf_.data(), *n));
      gap_pos += *n;
      skip -= *n;
    }
    base_ = gap_pos;
  } else {
    std::memmove(buf_.data(), buf_.data() + drop, size_ - drop);
    size_ -= drop;
    base_ = new_base;
  }
}

size_t SlidingWindow::Ensure(uint64_t pos, size_t len) {
  uint64_t want_end = pos + len;
  // Fast path: already resident.
  if (pos >= base_ && want_end <= base_ + size_) return len;
  // Grow if the span from the lock (or pos) to want_end cannot fit.
  uint64_t keep_from = std::min(lock_, pos);
  if (keep_from < base_) keep_from = base_;  // already evicted; nothing to do
  if (want_end - keep_from > buf_.size()) {
    size_t new_cap = buf_.size();
    while (want_end - keep_from > new_cap) new_cap *= 2;
    std::vector<char> nbuf(new_cap);
    std::memcpy(nbuf.data(), buf_.data(), size_);
    buf_.swap(nbuf);
    ++epoch_;
    max_capacity_ = std::max(max_capacity_, buf_.size());
  }
  if (keep_from > base_) SlideTo(keep_from);
  if (want_end > base_ + size_) Fill();
  uint64_t avail_end = base_ + size_;
  if (pos >= avail_end) return 0;
  return static_cast<size_t>(std::min<uint64_t>(want_end, avail_end) - pos);
}

std::string_view SlidingWindow::View(uint64_t pos, size_t len) {
  size_t got = Ensure(pos, len);
  if (got == 0) return {};
  return std::string_view(buf_.data() + (pos - base_),
                          static_cast<size_t>(base_ + size_ - pos));
}

bool SlidingWindow::AtEnd(uint64_t pos) {
  if (pos < base_ + size_) return false;
  if (!eof_) Ensure(pos, 1);
  return eof_ && pos >= base_ + size_;
}

std::string ProjectedOutputPath(const std::string& input_path) {
  static constexpr std::string_view kXml = ".xml";
  if (input_path.size() > kXml.size() &&
      input_path.compare(input_path.size() - kXml.size(), kXml.size(),
                         kXml) == 0) {
    return input_path.substr(0, input_path.size() - kXml.size()) +
           ".proj.xml";
  }
  return input_path + ".proj.xml";
}

Result<std::string> ReadFileToString(const std::string& path) {
  SMPX_ASSIGN_OR_RETURN(std::unique_ptr<FileInputStream> in,
                        FileInputStream::Open(path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    SMPX_ASSIGN_OR_RETURN(size_t n, in->Read(buf, sizeof(buf)));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  SMPX_ASSIGN_OR_RETURN(std::unique_ptr<FileSink> sink, FileSink::Open(path));
  SMPX_RETURN_IF_ERROR(sink->Append(data));
  return sink->Flush();
}

}  // namespace smpx
