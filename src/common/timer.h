// Wall-clock and CPU timers used by the benchmark harnesses to reproduce the
// paper's Time / Usr+Sys / CPU% columns.

#ifndef SMPX_COMMON_TIMER_H_
#define SMPX_COMMON_TIMER_H_

#include <chrono>
#include <ctime>

namespace smpx {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system), the paper's "Usr+Sys".
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}
  void Reset() { start_ = Now(); }
  double Seconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
  double start_;
};

}  // namespace smpx

#endif  // SMPX_COMMON_TIMER_H_
