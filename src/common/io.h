// Byte-stream abstractions: random-access input sources, pull-based input
// streams, append-only output sinks, and the sliding window the runtime
// engine scans through.

#ifndef SMPX_COMMON_IO_H_
#define SMPX_COMMON_IO_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace smpx {

/// Abstract pull source of bytes.
class InputStream {
 public:
  virtual ~InputStream() = default;

  /// Reads up to `len` bytes into `buf`. Returns the number of bytes read;
  /// 0 signals end of stream.
  virtual Result<size_t> Read(char* buf, size_t len) = 0;
};

/// Random-access view of a whole input of known size. Unlike InputStream,
/// an InputSource is stateless per read: concurrent ReadAt calls from
/// multiple threads are safe, which is what the parallel sharding and batch
/// layers build on. Implementations are backed by caller memory (zero copy)
/// or by mmap'ed files.
class InputSource {
 public:
  virtual ~InputSource() = default;

  /// Total number of bytes in the input.
  virtual uint64_t size() const = 0;

  /// Reads up to `len` bytes starting at absolute `offset` into `buf`.
  /// Returns the number of bytes read (short only at end of input).
  /// Thread-safe.
  virtual Result<size_t> ReadAt(uint64_t offset, char* buf,
                                size_t len) const = 0;

  /// Zero-copy view of the whole input when the backing storage is
  /// contiguous in memory (MemorySource, MmapSource); empty otherwise.
  /// The view stays valid for the lifetime of the source.
  virtual std::string_view Contiguous() const { return {}; }
};

/// InputSource over caller-owned memory (zero copy).
class MemorySource : public InputSource {
 public:
  explicit MemorySource(std::string_view data) : data_(data) {}

  uint64_t size() const override { return data_.size(); }
  Result<size_t> ReadAt(uint64_t offset, char* buf,
                        size_t len) const override;
  std::string_view Contiguous() const override { return data_; }

 private:
  std::string_view data_;
};

/// InputSource over an mmap'ed file (POSIX; falls back to reading the file
/// into memory elsewhere). The mapping is advised for sequential access so
/// cold files stream through the page cache instead of faulting randomly.
class MmapSource : public InputSource {
 public:
  static Result<std::unique_ptr<MmapSource>> Open(const std::string& path);
  ~MmapSource() override;

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  uint64_t size() const override { return view_.size(); }
  Result<size_t> ReadAt(uint64_t offset, char* buf,
                        size_t len) const override;
  std::string_view Contiguous() const override { return view_; }

 private:
  MmapSource(std::string_view view, void* map_base, std::string fallback)
      : view_(view), map_base_(map_base), fallback_(std::move(fallback)) {}

  std::string_view view_;
  void* map_base_;        // non-null iff backed by an actual mapping
  std::string fallback_;  // owns the bytes when mmap was unavailable
};

/// InputSource over a file descriptor via positioned reads (pread), never
/// mapping the file: the random-access path for documents too large to
/// mmap in one piece (or at all on 32-bit address spaces). Each ReadAt is
/// an independent positioned read, so concurrent readers need no locking.
/// On platforms without POSIX pread, Open falls back to owned memory the
/// same way MmapSource does.
class FileSource : public InputSource {
 public:
  static Result<std::unique_ptr<FileSource>> Open(const std::string& path);
  ~FileSource() override;

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  uint64_t size() const override { return size_; }
  Result<size_t> ReadAt(uint64_t offset, char* buf,
                        size_t len) const override;
  /// Deliberately no Contiguous(): callers must go through ReadAt, which
  /// is the point of this source.

 private:
  FileSource(int fd, uint64_t size, std::string fallback)
      : fd_(fd), size_(size), fallback_(std::move(fallback)) {}

  int fd_;                // -1 when backed by the in-memory fallback
  uint64_t size_;
  std::string fallback_;  // owns the bytes when pread was unavailable
};

/// Adapter: pull-based InputStream over a byte range of an InputSource.
/// Keeps the existing streaming consumers (SlidingWindow, RunEngine)
/// working against random-access sources.
class SourceStream : public InputStream {
 public:
  /// Streams [begin, end) of `source`; end == 0 means source->size().
  explicit SourceStream(const InputSource* source, uint64_t begin = 0,
                        uint64_t end = 0)
      : source_(source),
        pos_(begin),
        end_(end == 0 ? source->size() : end) {}

  Result<size_t> Read(char* buf, size_t len) override;

 private:
  const InputSource* source_;
  uint64_t pos_;
  uint64_t end_;
};

/// Input stream over caller-owned memory (zero copy).
class MemoryInputStream : public InputStream {
 public:
  explicit MemoryInputStream(std::string_view data) : data_(data) {}

  Result<size_t> Read(char* buf, size_t len) override;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Buffered input stream over a stdio FILE. Owns the handle.
class FileInputStream : public InputStream {
 public:
  /// Opens `path` for binary reading.
  static Result<std::unique_ptr<FileInputStream>> Open(
      const std::string& path);
  ~FileInputStream() override;

  Result<size_t> Read(char* buf, size_t len) override;

 private:
  explicit FileInputStream(std::FILE* f) : file_(f) {}
  std::FILE* file_;
};

/// Abstract append-only byte sink.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Total bytes appended so far.
  uint64_t bytes_written() const { return bytes_written_; }

 protected:
  uint64_t bytes_written_ = 0;
};

/// Accumulates output into an owned string.
class StringSink : public OutputSink {
 public:
  Status Append(std::string_view data) override {
    out_.append(data);
    bytes_written_ += data.size();
    return Status::Ok();
  }
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  std::string out_;
};

/// Discards output but counts bytes; used by throughput benchmarks.
class CountingSink : public OutputSink {
 public:
  Status Append(std::string_view data) override {
    bytes_written_ += data.size();
    return Status::Ok();
  }
};

/// Duplicates every appended byte into each of N downstream sinks, in
/// order. The multi-query layer routes a collapsed duplicate query's
/// output through this so every original query still gets its own stream
/// without buffering the shared bytes. bytes_written() counts one copy.
class FanoutSink : public OutputSink {
 public:
  explicit FanoutSink(std::vector<OutputSink*> sinks)
      : sinks_(std::move(sinks)) {}

  Status Append(std::string_view data) override {
    for (OutputSink* s : sinks_) {
      SMPX_RETURN_IF_ERROR(s->Append(data));
    }
    bytes_written_ += data.size();
    return Status::Ok();
  }

 private:
  std::vector<OutputSink*> sinks_;
};

/// Writes to a stdio FILE. Owns the handle.
///
/// A short write puts the sink into a sticky failed state: the Status
/// reports how many bytes of the Append actually reached the file, and
/// every later Append/Flush returns that same error without touching the
/// stream again (so a caller retrying Flush after a failure cannot
/// double-write or mask the original cause).
class FileSink : public OutputSink {
 public:
  static Result<std::unique_ptr<FileSink>> Open(const std::string& path);
  ~FileSink() override;

  Status Append(std::string_view data) override;
  Status Flush();

 private:
  explicit FileSink(std::FILE* f) : file_(f) {}
  std::FILE* file_;
  Status error_;  // first failure; sticky
};

/// Write-coalescing sink over a stdio FILE: appends accumulate in an owned
/// buffer and reach the file in large fwrite calls, so the per-Append cost
/// of a fine-grained producer (the engine emits one Append per copy-region
/// flush safe-point) stays a memcpy. Appends at or above the buffer
/// capacity bypass the buffer entirely. Failure semantics match FileSink:
/// first error is sticky, Flush is idempotent after it.
class BufferedFileSink : public OutputSink {
 public:
  static constexpr size_t kDefaultBuffer = 1 << 20;  // 1 MiB

  /// Opens `path` for binary writing (owns the handle).
  static Result<std::unique_ptr<BufferedFileSink>> Open(
      const std::string& path, size_t buffer_capacity = kDefaultBuffer);
  /// Wraps an existing handle (e.g. stdout) without owning it; the caller
  /// must Flush() before the handle is used elsewhere or closed.
  static std::unique_ptr<BufferedFileSink> Wrap(
      std::FILE* f, size_t buffer_capacity = kDefaultBuffer);
  ~BufferedFileSink() override;  // flushes best-effort, closes if owned

  Status Append(std::string_view data) override;
  /// Drains the coalescing buffer and fflushes the handle.
  Status Flush();

 private:
  BufferedFileSink(std::FILE* f, bool owns, size_t capacity)
      : file_(f), owns_(owns), buf_(capacity > 0 ? capacity : 1) {}
  Status WriteOut(const char* data, size_t len);  // fwrite + short-write check
  Status Drain();

  std::FILE* file_;
  bool owns_;
  std::vector<char> buf_;
  size_t fill_ = 0;
  Status error_;  // first failure; sticky
};

/// A shared spill file: many SpillSinks append byte extents into ONE
/// unlinked temporary file instead of opening one tmpfile each, so a
/// thousand-document batch (or a wide speculative wave) costs a single
/// file descriptor no matter how many segments overflow or park. On
/// POSIX, extents are written with pwrite and replayed with pread --
/// no shared seek state, so sinks on different threads never contend on
/// file position and only extent allocation takes the mutex; elsewhere a
/// portable seek+stdio path runs entirely under the mutex. Space is
/// reclaimed in epochs: when every extent handed out has been released
/// (all sinks cleared or destroyed), the file truncates back to zero.
/// That fits the ordered-commit lifecycle -- drivers drain segments in
/// waves -- without free-list bookkeeping. The arena must outlive every
/// sink constructed over it.
class SpillArena {
 public:
  SpillArena() = default;
  ~SpillArena();

  SpillArena(const SpillArena&) = delete;
  SpillArena& operator=(const SpillArena&) = delete;

  /// Appends `data` as a new extent; `*offset` receives its position.
  /// Opens the backing file lazily on first use.
  Status Write(std::string_view data, uint64_t* offset);
  /// Reads `len` bytes at `offset` (previously written) into `buf`.
  Status Read(uint64_t offset, char* buf, size_t len);
  /// Returns `bytes` of extent space; when everything handed out has been
  /// released the backing file truncates to zero length.
  void Release(uint64_t bytes);

  /// Open backing files held by this arena (0 before first spill, then
  /// 1); the fd-count observable the batch tests assert on.
  int open_files() const;

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // unlinked tmpfile backing every extent
  int fd_ = -1;                // fileno(file_) for pwrite/pread (POSIX)
  uint64_t end_ = 0;           // allocation frontier
  uint64_t live_ = 0;          // bytes handed out and not yet released
};

/// Bounded-memory accumulator: appends stay in an owned string up to
/// `budget` bytes, then everything overflows to an unlinked temporary file
/// and the string is freed -- so a segment of unknown size costs at most
/// `budget` resident bytes no matter how large it grows. The accumulated
/// bytes are replayed with CopyTo (repeatable; appends may continue after
/// a replay) and dropped with Clear for reuse. Budget edge semantics: a
/// sink holding exactly `budget` bytes has not spilled; the first byte
/// beyond it moves the whole content to disk. kUnlimited never spills
/// (pure in-memory accumulation, like StringSink).
///
/// With an arena, overflow goes to extents of the shared file instead of
/// a private tmpfile -- same observable behavior, O(1) fds per driver
/// instead of one per spilled segment.
class SpillSink : public OutputSink {
 public:
  static constexpr size_t kUnlimited = ~size_t{0};

  explicit SpillSink(size_t budget = kUnlimited, SpillArena* arena = nullptr)
      : budget_(budget), arena_(arena) {}
  ~SpillSink() override;

  SpillSink(const SpillSink&) = delete;
  SpillSink& operator=(const SpillSink&) = delete;

  Status Append(std::string_view data) override;

  /// Streams every appended byte, in order, into `out` (in bounded chunks
  /// when spilled). Repeatable; the sink stays appendable afterwards.
  Status CopyTo(OutputSink* out);

  /// Drops all content (buffer and spill extents/file) and clears any
  /// sticky error; the sink is reusable as if freshly constructed.
  /// bytes_written() resets too.
  void Clear();

  /// Moves any resident bytes to the spill file immediately, regardless of
  /// budget; used by ordered committers to park completed segments that
  /// cannot commit yet at ~zero resident cost. No-op for kUnlimited sinks
  /// (they are deliberately memory-backed) and empty sinks.
  Status ForceSpill();

  size_t budget() const { return budget_; }
  bool spilled() const { return spill_ != nullptr || arena_spilled_; }
  /// Bytes currently held in memory (the spill file holds the rest).
  size_t resident_bytes() const { return mem_.size(); }

 private:
  struct Extent {
    uint64_t offset;
    uint64_t size;
  };

  Status EnsureSpill();  // opens the unlinked temp file, moves mem_ into it
  Status SpillToArena(std::string_view data);  // append one extent

  size_t budget_;
  std::string mem_;
  std::FILE* spill_ = nullptr;  // unlinked tmpfile; non-null once spilled
  SpillArena* arena_;           // shared spill file; overrides tmpfile path
  bool arena_spilled_ = false;  // overflow went to arena extents
  std::vector<Extent> extents_;
  uint64_t extent_bytes_ = 0;   // total extent space to release
  Status error_;                // first failure; sticky
};

/// Streams N document-order segments into one downstream sink with bounded
/// buffering: segment k's bytes (a SpillSink filled by whoever produced
/// them) are installed when k is known to be final, and the moment the
/// commit frontier reaches a segment it is replayed downstream and freed.
/// Installs may arrive in any order from any thread (the batch driver
/// installs from pool workers as documents finish); a segment installed
/// ahead of the frontier is force-spilled so waiting costs disk, not
/// memory. Downstream writes happen on whichever caller's thread advances
/// the frontier, never concurrently.
class OrderedCommitSink {
 public:
  /// Per-segment commit callback, for pipelines whose segments go to
  /// DIFFERENT destinations (e.g. one output file per batch document):
  /// invoked exactly once per non-truncated segment, in segment order, on
  /// whichever caller thread advances the frontier (never concurrently).
  /// `segment` may be null (empty segment). A non-OK return sticks and
  /// stops the frontier, exactly like a downstream Append failure --
  /// writers wanting per-segment error isolation record the failure
  /// themselves and return Ok.
  using SegmentWriter =
      std::function<Status(size_t k, SpillSink* segment)>;

  /// `down` must outlive this object and is not written to concurrently
  /// with direct use by the caller.
  OrderedCommitSink(OutputSink* down, size_t segments);

  /// Commits each segment through `writer` instead of replaying into one
  /// downstream sink. At most one segment is being written at any moment,
  /// which is what caps the number of simultaneously open output files in
  /// the per-input batch driver no matter how large the batch is.
  OrderedCommitSink(SegmentWriter writer, size_t segments);

  OrderedCommitSink(const OrderedCommitSink&) = delete;
  OrderedCommitSink& operator=(const OrderedCommitSink&) = delete;

  /// Installs segment k's final content (null = empty segment) and commits
  /// every consecutive ready segment at the frontier. Returns the sticky
  /// downstream/replay error, if any. Thread-safe.
  Status Install(size_t k, std::unique_ptr<SpillSink> segment);

  /// Declares that segments [k, N) will never be installed: the frontier
  /// stops before k forever and pending segments at or beyond k are freed.
  /// Used for early-finishing runs (trailing shards unused) and for
  /// first-error-stops-the-merge semantics. Thread-safe; keeps the
  /// lowest k across calls.
  void Truncate(size_t k);

  /// Next segment index awaiting commit; == segments() when all committed.
  size_t frontier() const;
  /// True once every non-truncated segment has been committed.
  bool finished() const;
  /// Bytes replayed into the downstream sink so far.
  uint64_t committed_bytes() const;
  /// Sticky first error from a downstream Append or a spill replay.
  Status status() const;

 private:
  /// Advances the frontier. Called with `lock` held; segment replays drop
  /// the lock (the committing_ flag keeps commits single-threaded).
  Status CommitReady(std::unique_lock<std::mutex>& lock);

  OutputSink* down_;  // null in SegmentWriter mode
  SegmentWriter writer_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpillSink>> pending_;
  std::vector<bool> ready_;
  size_t limit_;             // segments >= limit_ are truncated
  size_t frontier_ = 0;      // next segment to commit
  bool committing_ = false;  // a thread is replaying outside the lock
  uint64_t committed_bytes_ = 0;
  Status error_;  // first failure; sticky
};

/// A sliding window over an InputStream with absolute (whole-stream) byte
/// positions, mirroring the paper's fixed-size chunked read buffer
/// (Section V: "a pre-allocated buffer to read the document in fixed-size
/// chunks, which we set to eight times the system page size").
///
/// The engine scans forward through the window and occasionally jumps back a
/// bounded distance (right-to-left keyword verification, copy-region start
/// positions). `set_lock()` marks the oldest absolute position that must
/// stay resident; the window slides past everything older, invoking the
/// eviction hook so that pending copy output can be flushed incrementally.
/// The buffer grows only if the locked region itself outgrows the capacity
/// (e.g. a single element copied as one piece larger than the window).
class SlidingWindow {
 public:
  /// Hook invoked with evicted bytes, in stream order, before discard.
  using EvictFn = std::function<void(uint64_t begin, std::string_view data)>;

  static constexpr size_t kDefaultCapacity = 8 * 4096;  // 8 pages

  /// `origin` is the absolute stream position of the first byte `in` will
  /// deliver; window positions are absolute, so a session resuming at byte
  /// offset k of a document passes origin = k.
  SlidingWindow(InputStream* in, size_t capacity = kDefaultCapacity,
                uint64_t origin = 0);

  /// Makes bytes [pos, pos+len) resident, sliding/refilling as needed.
  /// Returns the number of bytes actually available (< len only at EOF).
  /// On I/O error the window behaves as at EOF and status() is set.
  size_t Ensure(uint64_t pos, size_t len);

  /// Returns the resident view starting at `pos`, ensuring at least `len`
  /// bytes when possible. The view may be longer than `len`.
  std::string_view View(uint64_t pos, size_t len);

  /// Maximal resident view starting at `pos` WITHOUT touching the stream;
  /// empty when `pos` is not resident. The bulk-scanning fast paths run
  /// pointer loops (memchr) over this span and only fall back to RefillAt
  /// at span boundaries.
  std::string_view Span(uint64_t pos) const {
    if (pos < base_ || pos >= base_ + size_) return {};
    return std::string_view(buf_.data() + (pos - base_),
                            static_cast<size_t>(base_ + size_ - pos));
  }

  /// Slides/refills so at least one byte at `pos` is resident (respecting
  /// the lock) and returns the maximal resident view there; empty at EOF.
  std::string_view RefillAt(uint64_t pos) { return View(pos, 1); }

  /// Byte at absolute position `pos`; caller must have Ensure()d it.
  char At(uint64_t pos) const { return buf_[pos - base_]; }

  /// True once the underlying stream is exhausted *and* `pos` is at or past
  /// the last byte.
  bool AtEnd(uint64_t pos);

  /// Oldest absolute position that must remain resident (see class comment).
  void set_lock(uint64_t pos) { lock_ = pos; }
  uint64_t lock() const { return lock_; }

  void set_evict_fn(EvictFn fn) { evict_fn_ = std::move(fn); }

  /// First resident absolute position.
  uint64_t base() const { return base_; }
  /// One past the last resident absolute position.
  uint64_t limit() const { return base_ + size_; }
  /// Total bytes pulled from the stream so far.
  uint64_t bytes_read() const { return base_ + size_; }
  /// Current buffer capacity (grows only when the locked span forces it).
  size_t capacity() const { return buf_.size(); }
  /// High-water mark of the buffer capacity; proxy for peak memory.
  size_t max_capacity_used() const { return max_capacity_; }
  /// Absolute position of the first byte the stream delivered.
  uint64_t origin() const { return origin_; }

  /// Bumped whenever resident bytes move inside the buffer (slide) or the
  /// buffer itself is reallocated (growth). Append-only refills do NOT
  /// change it, so (data pointer, base, epoch) keys derived state that must
  /// survive refills but not slides -- the simd::BitmapPlane binding.
  uint64_t epoch() const { return epoch_; }

  /// Forgets a previously observed end-of-stream so the next Ensure probes
  /// the stream again. Used by resumable sessions whose backing stream is a
  /// chunk feed: a drained feed looks like EOF until the next chunk arrives.
  void ClearEof() { eof_ = false; }
  /// True once the stream reported end-of-input (or an error).
  bool eof_seen() const { return eof_; }

  const Status& status() const { return status_; }

 private:
  void SlideTo(uint64_t new_base);
  void Fill();

  InputStream* in_;
  std::vector<char> buf_;
  uint64_t origin_ = 0; // absolute position of the stream's first byte
  uint64_t base_ = 0;   // absolute position of buf_[0]
  size_t size_ = 0;     // valid bytes in buf_
  uint64_t lock_ = 0;   // bytes >= lock_ must stay resident
  uint64_t epoch_ = 0;  // see epoch()
  bool eof_ = false;
  size_t max_capacity_ = 0;
  EvictFn evict_fn_;
  Status status_;
};

/// Per-input projection output naming used by batch pipelines:
/// "dir/in.xml" -> "dir/in.proj.xml"; non-".xml" inputs get ".proj.xml"
/// appended ("data.bin" -> "data.bin.proj.xml").
std::string ProjectedOutputPath(const std::string& input_path);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace smpx

#endif  // SMPX_COMMON_IO_H_
