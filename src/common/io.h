// Byte-stream abstractions: pull-based input streams, append-only output
// sinks, and the sliding window the runtime engine scans through.

#ifndef SMPX_COMMON_IO_H_
#define SMPX_COMMON_IO_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace smpx {

/// Abstract pull source of bytes.
class InputStream {
 public:
  virtual ~InputStream() = default;

  /// Reads up to `len` bytes into `buf`. Returns the number of bytes read;
  /// 0 signals end of stream.
  virtual Result<size_t> Read(char* buf, size_t len) = 0;
};

/// Input stream over caller-owned memory (zero copy).
class MemoryInputStream : public InputStream {
 public:
  explicit MemoryInputStream(std::string_view data) : data_(data) {}

  Result<size_t> Read(char* buf, size_t len) override;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Buffered input stream over a stdio FILE. Owns the handle.
class FileInputStream : public InputStream {
 public:
  /// Opens `path` for binary reading.
  static Result<std::unique_ptr<FileInputStream>> Open(
      const std::string& path);
  ~FileInputStream() override;

  Result<size_t> Read(char* buf, size_t len) override;

 private:
  explicit FileInputStream(std::FILE* f) : file_(f) {}
  std::FILE* file_;
};

/// Abstract append-only byte sink.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Total bytes appended so far.
  uint64_t bytes_written() const { return bytes_written_; }

 protected:
  uint64_t bytes_written_ = 0;
};

/// Accumulates output into an owned string.
class StringSink : public OutputSink {
 public:
  Status Append(std::string_view data) override {
    out_.append(data);
    bytes_written_ += data.size();
    return Status::Ok();
  }
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  std::string out_;
};

/// Discards output but counts bytes; used by throughput benchmarks.
class CountingSink : public OutputSink {
 public:
  Status Append(std::string_view data) override {
    bytes_written_ += data.size();
    return Status::Ok();
  }
};

/// Writes to a stdio FILE. Owns the handle.
class FileSink : public OutputSink {
 public:
  static Result<std::unique_ptr<FileSink>> Open(const std::string& path);
  ~FileSink() override;

  Status Append(std::string_view data) override;
  Status Flush();

 private:
  explicit FileSink(std::FILE* f) : file_(f) {}
  std::FILE* file_;
};

/// A sliding window over an InputStream with absolute (whole-stream) byte
/// positions, mirroring the paper's fixed-size chunked read buffer
/// (Section V: "a pre-allocated buffer to read the document in fixed-size
/// chunks, which we set to eight times the system page size").
///
/// The engine scans forward through the window and occasionally jumps back a
/// bounded distance (right-to-left keyword verification, copy-region start
/// positions). `set_lock()` marks the oldest absolute position that must
/// stay resident; the window slides past everything older, invoking the
/// eviction hook so that pending copy output can be flushed incrementally.
/// The buffer grows only if the locked region itself outgrows the capacity
/// (e.g. a single element copied as one piece larger than the window).
class SlidingWindow {
 public:
  /// Hook invoked with evicted bytes, in stream order, before discard.
  using EvictFn = std::function<void(uint64_t begin, std::string_view data)>;

  static constexpr size_t kDefaultCapacity = 8 * 4096;  // 8 pages

  SlidingWindow(InputStream* in, size_t capacity = kDefaultCapacity);

  /// Makes bytes [pos, pos+len) resident, sliding/refilling as needed.
  /// Returns the number of bytes actually available (< len only at EOF).
  /// On I/O error the window behaves as at EOF and status() is set.
  size_t Ensure(uint64_t pos, size_t len);

  /// Returns the resident view starting at `pos`, ensuring at least `len`
  /// bytes when possible. The view may be longer than `len`.
  std::string_view View(uint64_t pos, size_t len);

  /// Maximal resident view starting at `pos` WITHOUT touching the stream;
  /// empty when `pos` is not resident. The bulk-scanning fast paths run
  /// pointer loops (memchr) over this span and only fall back to RefillAt
  /// at span boundaries.
  std::string_view Span(uint64_t pos) const {
    if (pos < base_ || pos >= base_ + size_) return {};
    return std::string_view(buf_.data() + (pos - base_),
                            static_cast<size_t>(base_ + size_ - pos));
  }

  /// Slides/refills so at least one byte at `pos` is resident (respecting
  /// the lock) and returns the maximal resident view there; empty at EOF.
  std::string_view RefillAt(uint64_t pos) { return View(pos, 1); }

  /// Byte at absolute position `pos`; caller must have Ensure()d it.
  char At(uint64_t pos) const { return buf_[pos - base_]; }

  /// True once the underlying stream is exhausted *and* `pos` is at or past
  /// the last byte.
  bool AtEnd(uint64_t pos);

  /// Oldest absolute position that must remain resident (see class comment).
  void set_lock(uint64_t pos) { lock_ = pos; }
  uint64_t lock() const { return lock_; }

  void set_evict_fn(EvictFn fn) { evict_fn_ = std::move(fn); }

  /// First resident absolute position.
  uint64_t base() const { return base_; }
  /// One past the last resident absolute position.
  uint64_t limit() const { return base_ + size_; }
  /// Total bytes pulled from the stream so far.
  uint64_t bytes_read() const { return base_ + size_; }
  /// Current buffer capacity (grows only when the locked span forces it).
  size_t capacity() const { return buf_.size(); }
  /// High-water mark of the buffer capacity; proxy for peak memory.
  size_t max_capacity_used() const { return max_capacity_; }

  const Status& status() const { return status_; }

 private:
  void SlideTo(uint64_t new_base);
  void Fill();

  InputStream* in_;
  std::vector<char> buf_;
  uint64_t base_ = 0;   // absolute position of buf_[0]
  size_t size_ = 0;     // valid bytes in buf_
  uint64_t lock_ = 0;   // bytes >= lock_ must stay resident
  bool eof_ = false;
  size_t max_capacity_ = 0;
  EvictFn evict_fn_;
  Status status_;
};

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace smpx

#endif  // SMPX_COMMON_IO_H_
