#include "common/strings.h"

#include <cstdio>

namespace smpx {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsXmlWhitespace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsXmlWhitespace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", bytes, units[u]);
  return buf;
}

Result<uint64_t> ParseByteSize(std::string_view s) {
  std::string_view t = StripWhitespace(s);
  if (t.empty() || t[0] < '0' || t[0] > '9') {
    return Status::InvalidArgument("bad byte size '" + std::string(s) + "'");
  }
  uint64_t value = 0;
  size_t i = 0;
  while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
    uint64_t digit = static_cast<uint64_t>(t[i] - '0');
    if (value > (~uint64_t{0} - digit) / 10) {
      return Status::InvalidArgument("byte size '" + std::string(s) +
                                     "' overflows");
    }
    value = value * 10 + digit;
    ++i;
  }
  std::string_view suffix = t.substr(i);
  int shift = 0;
  if (!suffix.empty()) {
    switch (suffix[0]) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default:
        return Status::InvalidArgument("bad byte-size suffix in '" +
                                       std::string(s) + "'");
    }
    std::string_view rest = suffix.substr(1);
    bool rest_ok = rest.empty();
    // Accept "KiB"/"KB"/"Kb"-style spellings after the unit letter.
    if (rest.size() == 1) {
      rest_ok = rest[0] == 'b' || rest[0] == 'B';
    } else if (rest.size() == 2) {
      rest_ok = (rest[0] == 'i' || rest[0] == 'I') &&
                (rest[1] == 'b' || rest[1] == 'B');
    }
    if (!rest_ok) {
      return Status::InvalidArgument("bad byte-size suffix in '" +
                                     std::string(s) + "'");
    }
    if (value != 0 && (value >> (64 - shift)) != 0) {
      return Status::InvalidArgument("byte size '" + std::string(s) +
                                     "' overflows");
    }
  }
  return value << shift;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace smpx
