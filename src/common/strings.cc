#include "common/strings.h"

#include <cstdio>

namespace smpx {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsXmlWhitespace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsXmlWhitespace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", bytes, units[u]);
  return buf;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace smpx
