// Status: lightweight error propagation without exceptions, in the style of
// LevelDB/RocksDB. Functions that can fail return Status (or Result<T>,
// see result.h); success is the common, allocation-free case.

#ifndef SMPX_COMMON_STATUS_H_
#define SMPX_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace smpx {

/// Error categories used across the library.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (bad path syntax...)
  kParseError,        // malformed DTD / XML / query input
  kUnsupported,       // valid but out of scope (e.g. recursive DTD)
  kNotFound,          // missing file, unknown element name
  kResourceExhausted, // memory budget exceeded (mem_engine)
  kIoError,           // read/write failure
  kCancelled,         // cooperative cancellation (losing speculative attempt)
  kInternal,          // invariant violation; indicates a library bug
};

/// Returns a human-readable name for a status code ("InvalidArgument"...).
std::string_view StatusCodeName(StatusCode code);

/// A Status is either OK (empty, no allocation) or carries a code plus a
/// message. Copyable and cheap to move; the error state is heap-allocated
/// only when an error actually occurs.
class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message is empty for OK statuses.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "ParseError: unexpected '<' at offset 12".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define SMPX_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::smpx::Status _smpx_status = (expr);           \
    if (!_smpx_status.ok()) return _smpx_status;    \
  } while (0)

}  // namespace smpx

#endif  // SMPX_COMMON_STATUS_H_
