#include "common/status.h"

namespace smpx {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace smpx
