// Fast 64-bit content hashing in the xxHash64 style: 4-lane striped
// accumulation with avalanche finalization. Used for the boundary-index
// document digest and the runtime-table fingerprint, so the VALUE of this
// function is part of the on-disk index format -- changing it invalidates
// every saved index (see hash_stability tests in tests/common_test.cc
// before touching anything here).
//
// Not cryptographic; collision resistance is only what 64 well-mixed bits
// buy. Input is read as little-endian words regardless of host order.

#ifndef SMPX_COMMON_HASH_H_
#define SMPX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace smpx {

namespace hash_internal {

inline constexpr uint64_t kPrime1 = 11400714785074694791ull;
inline constexpr uint64_t kPrime2 = 14029467366897019727ull;
inline constexpr uint64_t kPrime3 = 1609587929392839161ull;
inline constexpr uint64_t kPrime4 = 9650029242287828579ull;
inline constexpr uint64_t kPrime5 = 2870177450012600261ull;

inline uint64_t Rotl(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t LoadLe64(const char* p) {
  unsigned char b[8];
  std::memcpy(b, p, 8);
  return static_cast<uint64_t>(b[0]) | static_cast<uint64_t>(b[1]) << 8 |
         static_cast<uint64_t>(b[2]) << 16 |
         static_cast<uint64_t>(b[3]) << 24 |
         static_cast<uint64_t>(b[4]) << 32 |
         static_cast<uint64_t>(b[5]) << 40 |
         static_cast<uint64_t>(b[6]) << 48 | static_cast<uint64_t>(b[7]) << 56;
}

inline uint64_t LoadLe32(const char* p) {
  unsigned char b[4];
  std::memcpy(b, p, 4);
  return static_cast<uint64_t>(b[0]) | static_cast<uint64_t>(b[1]) << 8 |
         static_cast<uint64_t>(b[2]) << 16 |
         static_cast<uint64_t>(b[3]) << 24;
}

inline uint64_t Round(uint64_t acc, uint64_t lane) {
  acc += lane * kPrime2;
  acc = Rotl(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t h, uint64_t acc) {
  h ^= Round(0, acc);
  return h * kPrime1 + kPrime4;
}

}  // namespace hash_internal

/// 64-bit hash of `data`; deterministic across platforms and builds.
inline uint64_t Hash64(std::string_view data, uint64_t seed = 0) {
  using namespace hash_internal;
  const char* p = data.data();
  const char* end = p + data.size();
  uint64_t h;
  if (data.size() >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const char* limit = end - 32;
    do {
      v1 = Round(v1, LoadLe64(p));
      v2 = Round(v2, LoadLe64(p + 8));
      v3 = Round(v3, LoadLe64(p + 16));
      v4 = Round(v4, LoadLe64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<uint64_t>(data.size());
  while (p + 8 <= end) {
    h ^= Round(0, LoadLe64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= LoadLe32(p) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p)) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

/// Order-sensitive combiner for hashing a sequence of fields without
/// materializing the canonical byte string (a = Combine(a, field_hash)).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  using namespace hash_internal;
  a ^= Round(0, b);
  return a * kPrime1 + kPrime4;
}

/// Incremental Hash64: Update() in arbitrary-sized pieces, then Digest().
/// Produces EXACTLY Hash64(concatenation of the pieces, seed), so digests
/// computed over a chunked read of a document interoperate with one-shot
/// digests of the same bytes (boundary-index Matches relies on this; the
/// equivalence is pinned by hash_stability tests). Digest() is const and
/// repeatable; Update() after Digest() continues the stream.
class Hash64Stream {
 public:
  explicit Hash64Stream(uint64_t seed = 0)
      : seed_(seed),
        v1_(seed + hash_internal::kPrime1 + hash_internal::kPrime2),
        v2_(seed + hash_internal::kPrime2),
        v3_(seed),
        v4_(seed - hash_internal::kPrime1) {}

  void Update(std::string_view data) {
    using namespace hash_internal;
    total_ += data.size();
    const char* p = data.data();
    size_t n = data.size();
    if (buffered_ > 0) {
      const size_t take = n < sizeof(buf_) - buffered_
                              ? n
                              : sizeof(buf_) - buffered_;
      std::memcpy(buf_ + buffered_, p, take);
      buffered_ += take;
      p += take;
      n -= take;
      if (buffered_ < sizeof(buf_)) return;
      // The one-shot loop consumes stripes while >= 32 bytes remain (a
      // trailing exact stripe included), so a full buffer is always
      // consumable here and the digest tail stays in [0, 31] bytes.
      v1_ = Round(v1_, LoadLe64(buf_));
      v2_ = Round(v2_, LoadLe64(buf_ + 8));
      v3_ = Round(v3_, LoadLe64(buf_ + 16));
      v4_ = Round(v4_, LoadLe64(buf_ + 24));
      buffered_ = 0;
    }
    while (n >= sizeof(buf_)) {
      v1_ = Round(v1_, LoadLe64(p));
      v2_ = Round(v2_, LoadLe64(p + 8));
      v3_ = Round(v3_, LoadLe64(p + 16));
      v4_ = Round(v4_, LoadLe64(p + 24));
      p += 32;
      n -= 32;
    }
    if (n > 0) {
      std::memcpy(buf_, p, n);
      buffered_ = n;
    }
  }

  uint64_t Digest() const {
    using namespace hash_internal;
    uint64_t h;
    if (total_ >= 32) {
      h = Rotl(v1_, 1) + Rotl(v2_, 7) + Rotl(v3_, 12) + Rotl(v4_, 18);
      h = MergeRound(h, v1_);
      h = MergeRound(h, v2_);
      h = MergeRound(h, v3_);
      h = MergeRound(h, v4_);
    } else {
      h = seed_ + kPrime5;
    }
    h += total_;
    const char* p = buf_;
    const char* end = buf_ + buffered_;
    while (p + 8 <= end) {
      h ^= Round(0, LoadLe64(p));
      h = Rotl(h, 27) * kPrime1 + kPrime4;
      p += 8;
    }
    if (p + 4 <= end) {
      h ^= LoadLe32(p) * kPrime1;
      h = Rotl(h, 23) * kPrime2 + kPrime3;
      p += 4;
    }
    while (p < end) {
      h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p)) * kPrime5;
      h = Rotl(h, 11) * kPrime1;
      ++p;
    }
    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
  }

 private:
  uint64_t seed_;
  uint64_t v1_, v2_, v3_, v4_;
  uint64_t total_ = 0;
  char buf_[32];
  size_t buffered_ = 0;
};

}  // namespace smpx

#endif  // SMPX_COMMON_HASH_H_
