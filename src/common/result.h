// Result<T>: a value-or-Status, in the spirit of arrow::Result / absl::StatusOr.

#ifndef SMPX_COMMON_RESULT_H_
#define SMPX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace smpx {

/// Holds either a successfully produced T or the Status explaining why no
/// value could be produced. A Result is never both and never neither.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. It is a programming error
  /// to construct a Result from an OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value; undefined if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

/// Propagates the error of a Result-returning expression, otherwise assigns
/// the unwrapped value to `lhs` (which must be a declaration or lvalue).
#define SMPX_ASSIGN_OR_RETURN(lhs, expr)           \
  SMPX_ASSIGN_OR_RETURN_IMPL_(                     \
      SMPX_CONCAT_(_smpx_result_, __LINE__), lhs, expr)

#define SMPX_CONCAT_INNER_(a, b) a##b
#define SMPX_CONCAT_(a, b) SMPX_CONCAT_INNER_(a, b)
#define SMPX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace smpx

#endif  // SMPX_COMMON_RESULT_H_
