// Small string helpers shared across modules.

#ifndef SMPX_COMMON_STRINGS_H_
#define SMPX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smpx {

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// True for XML whitespace characters (space, tab, CR, LF).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// True for characters that may start an XML name. We accept the practical
/// ASCII subset (letters, '_', ':').
inline bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

/// True for characters that may continue an XML name.
inline bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// Renders a byte count as "12.34MB" (binary units).
std::string HumanBytes(double bytes);

/// Parses a byte count with an optional binary-unit suffix: "4096",
/// "64K"/"64KiB"/"64kb", "1M", "2G" (case-insensitive; K/M/G are 2^10/20/30).
/// Fails on empty input, unknown suffixes, and values that overflow
/// uint64_t.
Result<uint64_t> ParseByteSize(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace smpx

#endif  // SMPX_COMMON_STRINGS_H_
