// Single-document sharding: split one document at top-level element
// boundaries (children of the root) and prefilter the shards concurrently,
// one PrefilterSession per shard against the shared immutable RuntimeTables.
//
// Execution is *fully speculative*: the static boundary-state analysis of
// BuildTables (RuntimeTables::boundary_states) enumerates every DFA state a
// run can be in at a top-level boundary, so all shards -- including the
// document head -- launch in one parallel wave, each non-head shard once
// per candidate entry state. The verification pass resolves segments in
// order *while the wave is still running*: it accepts the run whose
// assumed entry matches its predecessor's actual exit, cancels the
// segment's losing attempts mid-flight (cooperative kill at session safe
// points, buffered output freed on the spot -- wave work is proportional
// to what speculation actually needed, not to shards x classes), and
// deterministically re-runs any shard whose speculation failed
// (mis-placed boundaries, hand-offs inside copy regions, opaque recursion
// balances, DTD-invalid input), so the merged output is ALWAYS
// byte-identical to the serial engine, no matter where the boundaries fall.
// Tables without a usable candidate set fall back to the PR-2 scheme that
// seeds speculation from shard 0's actual exit state.
//
// The boundary scan itself is off the critical path too: the document is
// cut into per-target regions that are scanned concurrently on the pool
// (relative element depths, unknown absolute base), and a cheap sequential
// fix-up resolves absolute depths region by region -- re-scanning only
// regions whose start lies inside a construct (comment/CDATA/DOCTYPE/tag)
// that straddles a region boundary.

#ifndef SMPX_PARALLEL_SHARD_H_
#define SMPX_PARALLEL_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "parallel/thread_pool.h"

namespace smpx::parallel {

struct ShardOptions {
  /// Upper bound on the number of shards; 0 means the pool size.
  size_t max_shards = 0;
  /// Largest number of *behavior classes* worth speculating on. Candidate
  /// states whose vocabulary and transitions coincide (they differ only in
  /// entry actions, which never re-fire at a resume point) are collapsed
  /// into one speculative run; every non-head shard runs once per class,
  /// so class counts beyond this bound cost more in wasted wave work than
  /// the removed serialization saves. Such tables fall back to exit-state
  /// speculation seeded by shard 0.
  size_t max_candidate_states = 4;
  /// Per-segment output buffering budget in bytes; a shard's projected
  /// output beyond it overflows to an unlinked temp file (SpillSink) until
  /// the ordered-commit frontier streams the segment into the caller's
  /// sink and frees it. 0 keeps segments fully in memory (unbounded, the
  /// pre-budget behavior). With a budget B, peak resident memory of a
  /// sharded run is O(shards x classes x B) on top of the per-session
  /// windows, independent of document and projection size.
  size_t max_buffer_bytes = 0;
  core::EngineOptions engine;
};

/// How a sharded run actually executed; the substrate for the scaling
/// bench's "serial fraction" metric and the speculation tests.
struct ShardReport {
  size_t shards = 0;             ///< segments the document was split into
  size_t speculated = 0;         ///< non-head shards launched in the wave
  size_t accepted = 0;           ///< speculative shards whose entry verified
  size_t reruns = 0;             ///< shards re-run sequentially after the wave
  size_t candidate_states = 0;   ///< boundary candidate set size (0 = dynamic)
  size_t candidate_classes = 0;  ///< behavior classes speculated per shard
  /// Bytes prefiltered on the sequential verification path (re-runs, plus
  /// shard 0 in dynamic-fallback mode). The wave itself is perfectly
  /// parallel, so serial_bytes / document size bounds the Amdahl fraction
  /// of a sharded run (the memchr boundary scan is not counted; it runs
  /// region-parallel and costs a small constant per byte).
  uint64_t serial_bytes = 0;
  /// Bytes prefiltered inside the parallel wave, including rejected
  /// speculative attempts (total wave work, not just accepted output).
  /// Early-kill makes this timing-dependent: a losing attempt contributes
  /// only the bytes it prefiltered before its cancellation token fired.
  uint64_t wave_bytes = 0;
  /// Losing attempts cancelled before they ran to completion (skipped
  /// outright or aborted at a session safe point). Timing-dependent; the
  /// deterministic counters above are what tests should assert on.
  size_t killed = 0;
  /// Wave attempts executed inline by the resolving thread because no
  /// worker had picked them up yet (their bytes count as wave work).
  size_t stolen = 0;
  /// Accepted speculative shards whose entry sat inside an active copy
  /// region (hand-off at copy depth > 0). Before (state, depth) candidates
  /// these were forced re-runs; now they ride the wave like clean ones.
  size_t copy_handoffs = 0;
};

/// One segment's execution record: the session's exit checkpoint, stats,
/// and (in capture mode) its buffered output segment. Accepted segments
/// replay the serial run exactly, so `exit` is provably the serial
/// engine's checkpoint at the segment's end offset.
struct ShardResult {
  /// Budget-bounded output segment; null in discard mode (indexing) and
  /// after the caller moved it into an ordered committer. Single-query
  /// tables only; multi-query segments fill `mq_sinks` instead.
  std::unique_ptr<SpillSink> sink;
  /// Multi-query tables: one budget-bounded segment per unique query, in
  /// MultiQueryInfo order (the per-query budget is max_buffer_bytes divided
  /// by the query count). Moved out by the per-query ordered committers.
  std::vector<std::unique_ptr<SpillSink>> mq_sinks;
  /// Multi-query tables: this segment's per-query matches/output bytes.
  std::vector<core::QueryRunStats> mq_stats;
  core::RunStats stats;
  core::SessionCheckpoint exit;
  Status status;
  bool finished = false;  ///< reached a final DFA state
  bool clean = false;     ///< suspended in a plain keyword search
  uint64_t read_end = 0;  ///< absolute end of the bytes this run read
  std::vector<bool> visited;
  /// Hand-off tail [tail_begin, tail_end): copy-region bytes the
  /// predecessor's suspension left unflushed when this segment was accepted
  /// speculatively at copy depth > 0. The speculative session started with
  /// copy_flushed at the boundary, so its own output omits them; the driver
  /// must emit doc[tail_begin, tail_end) immediately BEFORE this segment's
  /// sink. The bytes are already folded into stats.output_bytes (serial
  /// parity); empty for clean hand-offs and re-runs (a re-run resumes from
  /// the true checkpoint and emits them itself).
  uint64_t tail_begin = 0;
  uint64_t tail_end = 0;
};

/// The speculative wave/verify machinery shared by single-document
/// sharding (ShardedRun) and boundary-index construction
/// (index::BoundaryIndex::Build): given a document cut at top-level
/// boundaries into segments, it launches every segment in one parallel
/// wave -- the head for real, each later segment once per candidate entry
/// *behavior class* from the static boundary-state analysis -- and then
/// resolves segments in order, accepting the attempt whose assumed entry
/// matches the predecessor's verified exit and deterministically re-running
/// the segment otherwise. The resolved sequence replays the serial engine
/// byte-for-byte no matter where the boundaries fall or how speculation
/// fared; tables without a usable candidate set fall back to seeding
/// speculation from the head's actual exit state (the PR-2 scheme).
class SpeculativeResolver {
 public:
  struct Options {
    /// See ShardOptions::max_candidate_states.
    size_t max_candidate_states = 4;
    /// Per-segment SpillSink budget in capture mode; 0 = unbounded.
    size_t max_buffer_bytes = 0;
    /// Capture each segment's projected output in ShardResult::sink.
    /// False discards output (byte counts still reach the stats) -- the
    /// indexing mode, which only wants the verified exit checkpoints.
    bool capture_output = true;
    /// Shared spill file for budgeted segment sinks (see SpillArena); may
    /// be null (each overflowing sink then opens its own tmpfile). Must
    /// outlive the resolver.
    SpillArena* arena = nullptr;
    core::EngineOptions engine;
  };

  /// `boundaries` are strictly increasing offsets inside `doc` (typically
  /// from FindTopLevelBoundaries*); segment k then covers
  /// [seg_begin(k), seg_begin(k+1)) with seg_begin(0) = 0 and the last
  /// segment ending at doc.size(). `tables` and `doc` must outlive the
  /// resolver.
  SpeculativeResolver(const core::RuntimeTables& tables, std::string_view doc,
                      const std::vector<uint64_t>& boundaries,
                      const Options& opts);

  /// Aborts and drains any attempts still in flight (see Abort).
  ~SpeculativeResolver();

  size_t segments() const { return seg_begin_.size() - 1; }
  uint64_t seg_begin(size_t k) const { return seg_begin_[k]; }

  /// Submits the head plus every speculative attempt to the pool and
  /// returns WITHOUT waiting -- resolution overlaps the wave. In
  /// dynamic-fallback mode the head runs synchronously on the calling
  /// thread first (its exit seeds the attempts), then the attempts are
  /// submitted. Call once, before Resolve; must not be called from a pool
  /// thread. `pool` must outlive the resolver.
  void LaunchWave(ThreadPool* pool);

  /// Resolves segment k and returns its record. Requires LaunchWave() and
  /// that segments < k are resolved; the caller must stop resolving after
  /// a segment whose status is non-OK or whose run finished (later bytes
  /// are ignored in a serial run, so later segments are meaningless), and
  /// should then Abort() to cancel the attempts that became moot.
  /// Resolution is incremental: this waits only for the one attempt the
  /// predecessor's exit selects (running it inline if no worker has
  /// started it yet) and immediately kills the segment's losing attempts
  /// -- their sessions abort at the next safe point and their buffered
  /// output is freed mid-wave, not after it. Re-runs (the only sequential
  /// work) execute on the calling thread.
  ShardResult& Resolve(size_t k);

  /// Resolved segment records (valid for k already resolved).
  ShardResult& result(size_t k) { return results_[k]; }

  /// Cancels every unresolved attempt and blocks until all in-flight ones
  /// drained. Call before reading report() once resolution stops early
  /// (error, finished run), or to discard the wave wholesale; resolving
  /// after Abort is not allowed. Idempotent.
  void Abort();

  /// Execution metrics; shards/candidate fields are valid after
  /// LaunchWave, accept/rerun/kill counts grow as segments resolve. Only
  /// read it while no attempt is in flight (after the last Resolve plus
  /// Abort, or after all segments resolved and Abort returned): the wave
  /// mutates the work counters concurrently.
  const ShardReport& report() const { return report_; }

 private:
  /// One speculative attempt's slot. The wave task and the resolving
  /// thread meet here: `cancel` is the session's cooperative kill switch,
  /// the rest is guarded by mu_. Cache-line alignment keeps one attempt's
  /// hot state from false-sharing its neighbours' (slots are heap-
  /// allocated per attempt, written by whichever worker runs it).
  struct alignas(64) Attempt {
    std::atomic<bool> cancel{false};
    bool started = false;  ///< a thread owns the run (guarded by mu_)
    bool done = false;     ///< result is final (guarded by mu_)
    bool loser = false;    ///< resolved against; free on sight (mu_)
    ShardResult result;
  };

  void RunSegment(size_t k, const core::SessionCheckpoint* start,
                  ShardResult* r, bool mark_start,
                  const std::atomic<bool>* cancel);
  /// Replays the launch parameters of attempt `idx` (segment, entry
  /// checkpoint, visited marking) into its slot.
  void RunAttempt(size_t idx, Attempt* a);
  /// Pool task wrapper: skips killed-before-start attempts, publishes
  /// completion, frees the sink of an attempt that lost while running.
  void AttemptTask(size_t idx);
  /// Blocks until attempt `idx` is done, stealing the run onto the
  /// calling thread when no worker has claimed it yet.
  void WaitDone(size_t idx);
  /// mu_ held. Marks an attempt dead: a queued one never starts, a
  /// running session aborts at its next safe point, and its buffered
  /// output is freed as soon as it stops (immediately when already done).
  void KillLocked(Attempt* a);
  size_t AttemptIndex(size_t k, size_t c) const {
    return static_spec_ ? 1 + (k - 1) * class_reps_.size() + c : k - 1;
  }

  const core::RuntimeTables& tables_;
  std::string_view doc_;
  std::vector<uint64_t> seg_begin_;  // segments()+1 fenceposts
  Options opts_;
  std::vector<int> class_reps_;        // representative state per class
  std::vector<int> class_rep_depths_;  // entry copy depth per class
  std::vector<size_t> class_of_;       // candidate index -> class
  bool static_spec_ = false;
  bool dynamic_spec_ = false;
  core::SessionCheckpoint dynamic_guess_;
  std::vector<ShardResult> results_;
  std::vector<std::unique_ptr<Attempt>> attempts_;
  size_t outstanding_ = 0;  // submitted pool tasks not yet exited (mu_)
  std::mutex mu_;
  std::condition_variable cv_;
  ShardReport report_;
};

/// Structural scan for shard split points: returns at most `max_splits`
/// strictly increasing offsets, each the position of the '<' opening a
/// child element of the document root at the first top-level boundary at
/// or after the corresponding evenly spaced target offset. The scan is
/// memchr-driven and tracks element depth through comments, CDATA
/// sections, processing instructions, DOCTYPE internal subsets, and quoted
/// attribute values, so a candidate never lands mid-tag or inside opaque
/// markup. Documents with few top-level children simply yield fewer splits
/// (possibly none). `use_plane` routes the structural scans through a
/// local simd::BitmapPlane over the document (classify once, bit-walk
/// everywhere); it changes throughput only, never the boundaries, and is
/// further gated on the process-wide simd::PlaneEnabled().
std::vector<uint64_t> FindTopLevelBoundaries(std::string_view doc,
                                             size_t max_splits,
                                             bool use_plane = true);

/// Region-parallel variant of FindTopLevelBoundaries: each target's region
/// is scanned concurrently on `pool` (relative depths), then a sequential
/// fix-up resolves absolute depths and selects the same boundaries the
/// serial scan would. The tail region past the last split target is not
/// part of the wave: it is scanned lazily after the fix-up (its absolute
/// entry depth is then known) and the scan stops at the first top-level
/// element start, which covers every remaining target -- so, like the
/// serial scanner, nothing past the last selected boundary is ever read.
/// A pool of one worker delegates to the serial scan outright. Results are
/// byte-identical to the serial scanner for well-formed documents whose
/// element depth at interior region starts stays within the scanner's
/// relative range (256); outside that -- or on non-well-formed input --
/// the two scanners may place boundaries differently (both remain safe:
/// ShardedRun verification never trusts a boundary). `scanned_bytes` (may
/// be null) receives the approximate number of document bytes the scan
/// actually consumed, the early-exit observable. Must not be called from
/// a pool thread.
std::vector<uint64_t> FindTopLevelBoundariesParallel(
    std::string_view doc, size_t max_splits, ThreadPool* pool,
    uint64_t* scanned_bytes = nullptr, bool use_plane = true);

/// Counts top-level record starts -- element starts (opening or bachelor
/// tags) whose parent is the document root -- in doc[begin, end), using
/// the same structural rules as FindTopLevelBoundaries. `depth_at_begin`
/// is the number of elements open at `begin` (0 at the document start, 1
/// at a top-level boundary), and the scan must enter at a content
/// position, which every top-level boundary is. Construct skips use the
/// full document, but no construct straddles a top-level boundary, so
/// per-segment counts over a boundary partition sum exactly. Feeds the
/// boundary index's record ordinals.
uint64_t CountTopLevelStarts(std::string_view doc, uint64_t begin,
                             uint64_t end, int64_t depth_at_begin,
                             bool use_plane = true);

/// Prefilters `doc` by sharding it across `pool`. Output and the merged
/// `stats` totals are byte-identical to RunEngine over the same document
/// (up to search-effort counters, which depend on window geometry).
/// Every session writes through a per-segment SpillSink bounded by
/// ShardOptions::max_buffer_bytes; the verification pass commits each
/// segment into `out` (and frees it) the moment its entry is verified, so
/// `out` receives the projection as an in-order stream while verification
/// is still running -- on an error, `out` may hold a partial prefix.
/// `stats` and `report` may be null. Must not be called from a pool thread.
Status ShardedRun(const core::RuntimeTables& tables, std::string_view doc,
                  OutputSink* out, core::RunStats* stats, ThreadPool* pool,
                  const ShardOptions& opts = {},
                  ShardReport* report = nullptr);

/// Sharded execution of multi-query product tables (`tables.multi` set):
/// same speculative wave/verify machinery as ShardedRun, but every segment
/// session writes one budget-bounded SpillSink PER UNIQUE QUERY and each
/// query's segments stream through their own ordered-commit frontier into
/// `query_sinks[u]` (one sink per unique query, MultiQueryInfo order). Every
/// query's output is byte-identical to its independent single-query serial
/// run. `query_stats` (may be null) receives per-unique-query totals;
/// `stats`/`report` as in ShardedRun. Must not be called from a pool thread.
Status MultiQueryShardedRun(const core::RuntimeTables& tables,
                            std::string_view doc,
                            const std::vector<OutputSink*>& query_sinks,
                            std::vector<core::QueryRunStats>* query_stats,
                            core::RunStats* stats, ThreadPool* pool,
                            const ShardOptions& opts = {},
                            ShardReport* report = nullptr);

/// Merges shard- or document-level RunStats into `dst` (counters add,
/// window peak maxes; states_visited is handled by the callers via the
/// sessions' visited() sets).
void MergeRunStats(core::RunStats* dst, const core::RunStats& src);

}  // namespace smpx::parallel

#endif  // SMPX_PARALLEL_SHARD_H_
