// Single-document sharding: split one document at top-level element
// boundaries (children of the root, located by a cheap memchr structural
// scan) and prefilter the shards concurrently, one PrefilterSession per
// shard against the shared immutable RuntimeTables.
//
// Entry states are speculative -- every shard after the first assumes it
// starts in the state shard 0 ended in, which holds exactly for the
// star-shaped roots (<!ELEMENT root (record*)>) that dominate large inputs.
// A sequential verification pass then compares each shard's assumed entry
// against its predecessor's actual exit and deterministically re-runs any
// shard whose speculation failed (including hand-offs inside copy regions
// or opaque recursion), so the merged output is ALWAYS byte-identical to
// the serial engine, no matter where the boundaries fall.

#ifndef SMPX_PARALLEL_SHARD_H_
#define SMPX_PARALLEL_SHARD_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "parallel/thread_pool.h"

namespace smpx::parallel {

struct ShardOptions {
  /// Upper bound on the number of shards; 0 means the pool size.
  size_t max_shards = 0;
  core::EngineOptions engine;
};

/// Structural scan for shard split points: returns at most `max_splits`
/// strictly increasing offsets, each the position of the '<' opening a
/// child element of the document root at the first top-level boundary at
/// or after the corresponding evenly spaced target offset. The scan is
/// memchr-driven and tracks element depth through comments, CDATA
/// sections, processing instructions, DOCTYPE internal subsets, and quoted
/// attribute values, so a candidate never lands mid-tag or inside opaque
/// markup. Documents with few top-level children simply yield fewer splits
/// (possibly none).
std::vector<uint64_t> FindTopLevelBoundaries(std::string_view doc,
                                             size_t max_splits);

/// Prefilters `doc` by sharding it across `pool`. Output and the merged
/// `stats` totals are byte-identical to RunEngine over the same document
/// (up to search-effort counters, which depend on window geometry).
/// `stats` may be null. Must not be called from a pool thread.
Status ShardedRun(const core::RuntimeTables& tables, std::string_view doc,
                  OutputSink* out, core::RunStats* stats, ThreadPool* pool,
                  const ShardOptions& opts = {});

/// Merges shard- or document-level RunStats into `dst` (counters add,
/// window peak maxes; states_visited is handled by the callers via the
/// sessions' visited() sets).
void MergeRunStats(core::RunStats* dst, const core::RunStats& src);

}  // namespace smpx::parallel

#endif  // SMPX_PARALLEL_SHARD_H_
