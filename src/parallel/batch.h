// Multi-document batch prefiltering: run one PrefilterSession per document
// concurrently against the shared immutable RuntimeTables, amortizing the
// static table build across the whole batch. Results and merged statistics
// are assembled in document order, so batch output is deterministic and
// each document's bytes equal its serial run.
//
// Two input shapes:
//  - BatchRun / BatchRunMerged take whole in-memory documents and buffer
//    each output (the original PR-2 drivers);
//  - StreamRun / BatchRunStreaming pull each document through its session
//    in bounded InputSource chunks and write straight to per-document
//    sinks, so peak memory is O(window + chunk) per worker regardless of
//    document size -- the multi-GB batch shape.

#ifndef SMPX_PARALLEL_BATCH_H_
#define SMPX_PARALLEL_BATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "parallel/thread_pool.h"

namespace smpx::parallel {

/// Per-document result of a batch run.
struct BatchResult {
  Status status;
  std::string output;
  core::RunStats stats;
};

/// Prefilters every document in `docs` concurrently on `pool`. Returns
/// per-document results in input order. Must not be called from a pool
/// thread.
std::vector<BatchResult> BatchRun(const core::RuntimeTables& tables,
                                  const std::vector<std::string_view>& docs,
                                  ThreadPool* pool,
                                  const core::EngineOptions& opts = {});

/// Convenience wrapper: concatenates the outputs in document order into
/// `out` and merges the statistics into `stats` (may be null). On a
/// per-document error, returns the first (lowest-index) one and stops the
/// merge there -- only the clean document prefix reaches `out`. Use
/// BatchRun directly for per-document error isolation.
Status BatchRunMerged(const core::RuntimeTables& tables,
                      const std::vector<std::string_view>& docs,
                      OutputSink* out, core::RunStats* stats,
                      ThreadPool* pool,
                      const core::EngineOptions& opts = {});

struct StreamOptions {
  core::EngineOptions engine;
  /// Bytes fed to the session per Resume call; together with the engine
  /// window this bounds a streaming run's peak memory.
  size_t chunk_bytes = 1 << 20;
  /// Per-document output buffering budget for BatchRunStreamingMerged:
  /// a document's projection beyond it overflows to an unlinked temp file
  /// until the ordered-commit frontier streams it into the merged sink.
  /// 0 keeps per-document output fully in memory.
  size_t max_buffer_bytes = 0;
};

/// Prefilters one document by pulling `src` through a resumable session in
/// `chunk_bytes` slices: output is byte-identical to the serial engine,
/// but no more than one chunk (plus the sliding window) is ever resident.
/// Stops reading as soon as the run reaches a final state, like the serial
/// engine. `stats` may be null.
Status StreamRun(const core::RuntimeTables& tables, const InputSource& src,
                 OutputSink* out, core::RunStats* stats,
                 const StreamOptions& opts = {});

/// Streaming batch driver: one StreamRun per document, concurrently on
/// `pool`, each writing to its own caller-provided sink (sinks.size() must
/// equal docs.size(); sinks are written from pool threads but never
/// shared). Returns per-document statuses in input order; `stats` (may be
/// null) receives per-document RunStats in the same order. Errors are
/// isolated per document. Must not be called from a pool thread.
std::vector<Status> BatchRunStreaming(
    const core::RuntimeTables& tables,
    const std::vector<const InputSource*>& docs,
    const std::vector<OutputSink*>& sinks,
    std::vector<core::RunStats>* stats, ThreadPool* pool,
    const StreamOptions& opts = {});

/// Streaming batch with per-document output FILES through the
/// ordered-commit machinery: every document streams into a budgeted
/// SpillSink segment on a pool worker, and each segment is written to its
/// own output file -- opened, replayed, flushed, and closed -- only when
/// the document-order commit frontier reaches it. At most ONE output file
/// is therefore open at any moment, no matter how many documents the
/// batch holds (the pre-PR-5 driver held every output file open for the
/// whole run and died on fd limits at a few hundred documents); a
/// max_buffer_bytes budget additionally bounds resident memory, with
/// overflow parked in unlinked spill tmpfiles. Error isolation matches
/// BatchRunStreaming: per-document statuses in input order (run errors
/// take precedence over that document's file I/O errors), and a failed
/// document's file still receives the partial projection produced before
/// the failure. `stats` (may be null) receives per-document RunStats.
/// Must not be called from a pool thread.
std::vector<Status> BatchRunStreamingToFiles(
    const core::RuntimeTables& tables,
    const std::vector<const InputSource*>& docs,
    const std::vector<std::string>& out_paths,
    std::vector<core::RunStats>* stats, ThreadPool* pool,
    const StreamOptions& opts = {});

/// Streaming replacement for BatchRunMerged: every document is pulled
/// through its session in bounded chunks into a budgeted SpillSink
/// segment, and segments commit into `out` in document order the moment
/// the frontier reaches them -- workers finishing out of order park their
/// segment on disk (not memory) until the frontier arrives. Peak resident
/// memory is O(workers x (window + chunk + budget)) regardless of
/// document and projection sizes. Error semantics match BatchRunMerged:
/// the first (lowest-index) per-document error is returned and only the
/// clean document prefix before it reaches `out`; a failed document
/// contributes no bytes. `stats` (may be null) receives the merged totals
/// of that clean prefix. Must not be called from a pool thread.
Status BatchRunStreamingMerged(const core::RuntimeTables& tables,
                               const std::vector<const InputSource*>& docs,
                               OutputSink* out, core::RunStats* stats,
                               ThreadPool* pool,
                               const StreamOptions& opts = {});

/// Streaming single-document run over multi-query product tables
/// (`tables.multi` set): pulls `src` through one multi-query session in
/// bounded chunks, writing each unique query's projection to its own sink
/// (`query_sinks` in MultiQueryInfo order). Every query's output is
/// byte-identical to its independent single-query serial run.
/// `query_stats` (may be null) receives per-unique-query totals.
Status MultiQueryStreamRun(const core::RuntimeTables& tables,
                           const InputSource& src,
                           const std::vector<OutputSink*>& query_sinks,
                           std::vector<core::QueryRunStats>* query_stats,
                           core::RunStats* stats,
                           const StreamOptions& opts = {});

/// Streaming batch over multi-query tables: one MultiQueryStreamRun per
/// document, concurrently on `pool`; `sinks[i]` holds document i's
/// per-unique-query sinks (written from pool threads but never shared).
/// Per-document statuses in input order; `query_stats` (may be null)
/// receives per-document per-query totals. Must not be called from a pool
/// thread.
std::vector<Status> MultiQueryBatchRunStreaming(
    const core::RuntimeTables& tables,
    const std::vector<const InputSource*>& docs,
    const std::vector<std::vector<OutputSink*>>& sinks,
    std::vector<std::vector<core::QueryRunStats>>* query_stats,
    std::vector<core::RunStats>* stats, ThreadPool* pool,
    const StreamOptions& opts = {});

}  // namespace smpx::parallel

#endif  // SMPX_PARALLEL_BATCH_H_
