// Multi-document batch prefiltering: run one PrefilterSession per document
// concurrently against the shared immutable RuntimeTables, amortizing the
// static table build across the whole batch. Results and merged statistics
// are assembled in document order, so batch output is deterministic and
// each document's bytes equal its serial run.

#ifndef SMPX_PARALLEL_BATCH_H_
#define SMPX_PARALLEL_BATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "parallel/thread_pool.h"

namespace smpx::parallel {

/// Per-document result of a batch run.
struct BatchResult {
  Status status;
  std::string output;
  core::RunStats stats;
};

/// Prefilters every document in `docs` concurrently on `pool`. Returns
/// per-document results in input order. Must not be called from a pool
/// thread.
std::vector<BatchResult> BatchRun(const core::RuntimeTables& tables,
                                  const std::vector<std::string_view>& docs,
                                  ThreadPool* pool,
                                  const core::EngineOptions& opts = {});

/// Convenience wrapper: concatenates the outputs in document order into
/// `out` and merges the statistics into `stats` (may be null). On a
/// per-document error, returns the first (lowest-index) one and stops the
/// merge there -- only the clean document prefix reaches `out`. Use
/// BatchRun directly for per-document error isolation.
Status BatchRunMerged(const core::RuntimeTables& tables,
                      const std::vector<std::string_view>& docs,
                      OutputSink* out, core::RunStats* stats,
                      ThreadPool* pool,
                      const core::EngineOptions& opts = {});

}  // namespace smpx::parallel

#endif  // SMPX_PARALLEL_BATCH_H_
