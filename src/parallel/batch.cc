#include "parallel/batch.h"

#include "common/io.h"
#include "parallel/shard.h"

namespace smpx::parallel {

std::vector<BatchResult> BatchRun(const core::RuntimeTables& tables,
                                  const std::vector<std::string_view>& docs,
                                  ThreadPool* pool,
                                  const core::EngineOptions& opts) {
  std::vector<BatchResult> results(docs.size());
  WaitGroup wg;
  wg.Add(static_cast<int>(docs.size()));
  for (size_t i = 0; i < docs.size(); ++i) {
    pool->Submit([&, i] {
      StringSink sink;
      core::PrefilterSession session(tables, &sink, &results[i].stats,
                                     opts);
      Status s = session.Resume(docs[i]);
      if (s.ok()) s = session.Finish();
      results[i].status = s;
      results[i].output = sink.TakeString();
      wg.Done();
    });
  }
  wg.Wait();
  return results;
}

Status BatchRunMerged(const core::RuntimeTables& tables,
                      const std::vector<std::string_view>& docs,
                      OutputSink* out, core::RunStats* stats,
                      ThreadPool* pool, const core::EngineOptions& opts) {
  std::vector<BatchResult> results = BatchRun(tables, docs, pool, opts);
  // Merge the clean prefix only: a failed document's partial projection
  // (and anything after it) would corrupt the concatenated output, so the
  // merge stops at the first error and reports it.
  size_t max_visited = 0;
  for (const BatchResult& r : results) {
    if (!r.status.ok()) return r.status;
    SMPX_RETURN_IF_ERROR(out->Append(r.output));
    if (stats != nullptr) {
      MergeRunStats(stats, r.stats);
      // states_visited is not additive; every document runs the same
      // automaton, so report the maximum.
      max_visited = std::max(max_visited, r.stats.states_visited);
      stats->states_visited = max_visited;
    }
  }
  return Status::Ok();
}

}  // namespace smpx::parallel
