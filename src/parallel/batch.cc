#include "parallel/batch.h"

#include <algorithm>
#include <vector>

#include "common/io.h"
#include "parallel/shard.h"

namespace smpx::parallel {

std::vector<BatchResult> BatchRun(const core::RuntimeTables& tables,
                                  const std::vector<std::string_view>& docs,
                                  ThreadPool* pool,
                                  const core::EngineOptions& opts) {
  std::vector<BatchResult> results(docs.size());
  pool->RunAndWait(docs.size(), [&](size_t i) {
    StringSink sink;
    core::PrefilterSession session(tables, &sink, &results[i].stats, opts);
    Status s = session.Resume(docs[i]);
    if (s.ok()) s = session.Finish();
    results[i].status = s;
    results[i].output = sink.TakeString();
  });
  return results;
}

Status BatchRunMerged(const core::RuntimeTables& tables,
                      const std::vector<std::string_view>& docs,
                      OutputSink* out, core::RunStats* stats,
                      ThreadPool* pool, const core::EngineOptions& opts) {
  std::vector<BatchResult> results = BatchRun(tables, docs, pool, opts);
  // Merge the clean prefix only: a failed document's partial projection
  // (and anything after it) would corrupt the concatenated output, so the
  // merge stops at the first error and reports it.
  size_t max_visited = 0;
  for (const BatchResult& r : results) {
    if (!r.status.ok()) return r.status;
    SMPX_RETURN_IF_ERROR(out->Append(r.output));
    if (stats != nullptr) {
      MergeRunStats(stats, r.stats);
      // states_visited is not additive; every document runs the same
      // automaton, so report the maximum.
      max_visited = std::max(max_visited, r.stats.states_visited);
      stats->states_visited = max_visited;
    }
  }
  return Status::Ok();
}

Status StreamRun(const core::RuntimeTables& tables, const InputSource& src,
                 OutputSink* out, core::RunStats* stats,
                 const StreamOptions& opts) {
  core::PrefilterSession session(tables, out, stats, opts.engine);
  const size_t chunk = std::max<size_t>(1, opts.chunk_bytes);
  std::vector<char> buf(chunk);
  const uint64_t total = src.size();
  uint64_t offset = 0;
  while (offset < total && !session.finished()) {
    auto n = src.ReadAt(offset, buf.data(), buf.size());
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // defensive: source shorter than advertised
    SMPX_RETURN_IF_ERROR(
        session.Resume(std::string_view(buf.data(), *n)));
    offset += *n;
  }
  if (session.finished()) {
    // Trailing bytes are ignored, as in a serial run; Finish() would be a
    // no-op state-wise but we still want the summary stats filled.
    session.FinalizeStats();
    return Status::Ok();
  }
  return session.Finish();
}

std::vector<Status> BatchRunStreaming(
    const core::RuntimeTables& tables,
    const std::vector<const InputSource*>& docs,
    const std::vector<OutputSink*>& sinks,
    std::vector<core::RunStats>* stats, ThreadPool* pool,
    const StreamOptions& opts) {
  std::vector<Status> statuses(docs.size());
  if (sinks.size() != docs.size()) {
    statuses.assign(docs.size(),
                    Status::InvalidArgument("one sink per document required"));
    return statuses;
  }
  if (stats != nullptr) stats->assign(docs.size(), core::RunStats{});
  pool->RunAndWait(docs.size(), [&](size_t i) {
    statuses[i] = StreamRun(tables, *docs[i], sinks[i],
                            stats != nullptr ? &(*stats)[i] : nullptr, opts);
  });
  return statuses;
}

std::vector<Status> BatchRunStreamingToFiles(
    const core::RuntimeTables& tables,
    const std::vector<const InputSource*>& docs,
    const std::vector<std::string>& out_paths,
    std::vector<core::RunStats>* stats, ThreadPool* pool,
    const StreamOptions& opts) {
  std::vector<Status> statuses(docs.size());
  if (out_paths.size() != docs.size()) {
    statuses.assign(docs.size(), Status::InvalidArgument(
                                     "one output path per document required"));
    return statuses;
  }
  if (stats != nullptr) stats->assign(docs.size(), core::RunStats{});
  const size_t budget = opts.max_buffer_bytes != 0 ? opts.max_buffer_bytes
                                                   : SpillSink::kUnlimited;
  // File errors are isolated per document: the writer records them and
  // returns Ok so the frontier keeps moving -- one unwritable output file
  // must not starve the rest of the batch.
  std::vector<Status> file_status(docs.size());
  // One shared spill file for the whole batch: overflowing and parked
  // segments cost extents, not file descriptors, so a thousand-document
  // batch stays well under tight fd limits (the ulimit cli test).
  SpillArena arena;
  OrderedCommitSink commit(
      [&out_paths, &file_status](size_t k, SpillSink* seg) {
        auto file = BufferedFileSink::Open(out_paths[k]);
        if (!file.ok()) {
          file_status[k] = file.status();
          return Status::Ok();
        }
        Status s = seg != nullptr ? seg->CopyTo(file->get()) : Status::Ok();
        if (s.ok()) s = (*file)->Flush();
        file_status[k] = s;
        return Status::Ok();
      },
      docs.size());
  pool->RunAndWait(docs.size(), [&](size_t i) {
    auto seg = std::make_unique<SpillSink>(budget, &arena);
    statuses[i] = StreamRun(tables, *docs[i], seg.get(),
                            stats != nullptr ? &(*stats)[i] : nullptr, opts);
    // Install even on failure: the file should hold the partial
    // projection the old always-open-file driver would have written.
    commit.Install(i, std::move(seg));
  });
  // A sticky commit error (e.g. a parked segment's spill failing on a
  // full disk) halts the frontier: the writer never ran for documents at
  // or past it, so their files were never (re)written -- report that
  // instead of a silent all-OK.
  const Status commit_status = commit.status();
  const size_t frontier = commit.frontier();
  for (size_t i = 0; i < docs.size(); ++i) {
    if (statuses[i].ok()) statuses[i] = file_status[i];
    if (statuses[i].ok() && !commit_status.ok() && i >= frontier) {
      statuses[i] = commit_status;
    }
  }
  return statuses;
}

Status BatchRunStreamingMerged(const core::RuntimeTables& tables,
                               const std::vector<const InputSource*>& docs,
                               OutputSink* out, core::RunStats* stats,
                               ThreadPool* pool, const StreamOptions& opts) {
  const size_t budget = opts.max_buffer_bytes != 0 ? opts.max_buffer_bytes
                                                   : SpillSink::kUnlimited;
  SpillArena arena;  // one spill fd for every overflowing segment
  OrderedCommitSink commit(out, docs.size());
  std::vector<Status> statuses(docs.size());
  std::vector<core::RunStats> doc_stats(docs.size());
  pool->RunAndWait(docs.size(), [&](size_t i) {
    auto seg = std::make_unique<SpillSink>(budget, &arena);
    statuses[i] = StreamRun(tables, *docs[i], seg.get(), &doc_stats[i],
                            opts);
    if (statuses[i].ok()) {
      // The frontier cannot pass an uninstalled segment, so a document
      // that will fail can never be overtaken by its successors' output:
      // the commit below emits exactly the clean document prefix.
      commit.Install(i, std::move(seg));
    } else {
      commit.Truncate(i);
    }
  });
  size_t max_visited = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
    if (stats != nullptr) {
      MergeRunStats(stats, doc_stats[i]);
      // states_visited is not additive; every document runs the same
      // automaton, so report the maximum.
      max_visited = std::max(max_visited, doc_stats[i].states_visited);
      stats->states_visited = max_visited;
    }
  }
  return commit.status();
}

Status MultiQueryStreamRun(const core::RuntimeTables& tables,
                           const InputSource& src,
                           const std::vector<OutputSink*>& query_sinks,
                           std::vector<core::QueryRunStats>* query_stats,
                           core::RunStats* stats, const StreamOptions& opts) {
  if (tables.multi == nullptr) {
    return Status::InvalidArgument(
        "MultiQueryStreamRun needs multi-query product tables");
  }
  std::vector<core::QueryRunStats> local_qstats;
  core::PrefilterSession session(
      tables, query_sinks, query_stats != nullptr ? query_stats : &local_qstats,
      stats, opts.engine);
  const size_t chunk = std::max<size_t>(1, opts.chunk_bytes);
  std::vector<char> buf(chunk);
  const uint64_t total = src.size();
  uint64_t offset = 0;
  while (offset < total && !session.finished()) {
    auto n = src.ReadAt(offset, buf.data(), buf.size());
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // defensive: source shorter than advertised
    SMPX_RETURN_IF_ERROR(session.Resume(std::string_view(buf.data(), *n)));
    offset += *n;
  }
  if (session.finished()) {
    session.FinalizeStats();
    return Status::Ok();
  }
  return session.Finish();
}

std::vector<Status> MultiQueryBatchRunStreaming(
    const core::RuntimeTables& tables,
    const std::vector<const InputSource*>& docs,
    const std::vector<std::vector<OutputSink*>>& sinks,
    std::vector<std::vector<core::QueryRunStats>>* query_stats,
    std::vector<core::RunStats>* stats, ThreadPool* pool,
    const StreamOptions& opts) {
  std::vector<Status> statuses(docs.size());
  if (sinks.size() != docs.size()) {
    statuses.assign(docs.size(), Status::InvalidArgument(
                                     "one sink set per document required"));
    return statuses;
  }
  if (stats != nullptr) stats->assign(docs.size(), core::RunStats{});
  if (query_stats != nullptr) {
    query_stats->assign(docs.size(), std::vector<core::QueryRunStats>{});
  }
  pool->RunAndWait(docs.size(), [&](size_t i) {
    statuses[i] = MultiQueryStreamRun(
        tables, *docs[i], sinks[i],
        query_stats != nullptr ? &(*query_stats)[i] : nullptr,
        stats != nullptr ? &(*stats)[i] : nullptr, opts);
  });
  return statuses;
}

}  // namespace smpx::parallel
