#include "parallel/thread_pool.h"

namespace smpx::parallel {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunAndWait(size_t n,
                            const std::function<void(size_t)>& body) {
  if (n == 0) return;
  WaitGroup wg;
  wg.Add(static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) {
    Submit([&body, &wg, i] {
      body(i);
      wg.Done();
    });
  }
  wg.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace smpx::parallel
