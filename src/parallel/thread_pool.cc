#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace smpx::parallel {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunAndWait(size_t n,
                            const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // One dispatcher task per worker (not per item): workers claim iteration
  // indices from a shared atomic counter. Large fan-outs (boundary prescan
  // regions, batch docs) otherwise heap-allocate one std::function each
  // and grab the queue lock n times. Everything on the stack outlives the
  // dispatchers because Wait() returns only after the last Done().
  struct Ctl {
    std::atomic<size_t> next{0};
    WaitGroup wg;
  } ctl;
  size_t fan = std::min(n, static_cast<size_t>(size()));
  ctl.wg.Add(static_cast<int>(fan));
  for (size_t w = 0; w < fan; ++w) {
    Submit([&ctl, &body, n] {
      for (size_t i = ctl.next.fetch_add(1, std::memory_order_relaxed);
           i < n; i = ctl.next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
      ctl.wg.Done();
    });
  }
  ctl.wg.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace smpx::parallel
