// A fixed-size thread pool and a Go-style wait group: the only
// concurrency primitives the parallel prefiltering layer needs. Sessions
// never share mutable state (each runs against the immutable RuntimeTables
// with its own window and sink), so the pool is a plain task queue with no
// work stealing or priorities.

#ifndef SMPX_PARALLEL_THREAD_POOL_H_
#define SMPX_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smpx::parallel {

class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not Submit-and-Wait on the same pool from
  /// inside a pool thread (classic self-deadlock).
  void Submit(std::function<void()> task);

  /// Runs `body(i)` for every i in [0, n) across the pool and blocks until
  /// all iterations finished. The common fan-out-and-join shape of the
  /// parallel layer (shard waves, boundary prescans, batch drivers).
  /// Must not be called from a pool thread.
  void RunAndWait(size_t n, const std::function<void(size_t)>& body);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Counts outstanding tasks; Wait blocks until all are Done.
class WaitGroup {
 public:
  void Add(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

}  // namespace smpx::parallel

#endif  // SMPX_PARALLEL_THREAD_POOL_H_
