#include "parallel/shard.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/strings.h"

namespace smpx::parallel {
namespace {

// The helpers below form a second, simplified structural scanner over
// contiguous input, paired with (but independent from) the engine's
// window-based scanning in core/engine.cc (SkipPast/SkipDoctype/the tag
// scan in HandleMatch). The pairing is advisory only: a boundary this
// scanner gets "wrong" relative to the engine's view of the document can
// only mis-speculate a shard's entry state, which the verification pass in
// ShardedRun detects and repairs by re-running -- correctness never
// depends on the two scanners agreeing, only throughput does.

/// Position one past the next occurrence of `term` at or after `from`;
/// doc.size() when absent.
size_t SkipPastTerm(std::string_view doc, size_t from, std::string_view term) {
  size_t r = from;
  while (r + term.size() <= doc.size()) {
    const char* hit = static_cast<const char*>(std::memchr(
        doc.data() + r, term[0], doc.size() - r - (term.size() - 1)));
    if (hit == nullptr) return doc.size();
    r = static_cast<size_t>(hit - doc.data());
    if (std::memcmp(hit, term.data(), term.size()) == 0) {
      return r + term.size();
    }
    ++r;
  }
  return doc.size();
}

/// Position of the '>' closing the tag whose '<' sits at `from`, skipping
/// quoted attribute values; doc.size() when unterminated.
size_t TagEnd(std::string_view doc, size_t from) {
  size_t r = from + 1;
  for (;;) {
    if (r >= doc.size()) return doc.size();
    const char* gt = static_cast<const char*>(
        std::memchr(doc.data() + r, '>', doc.size() - r));
    size_t seg_end =
        gt != nullptr ? static_cast<size_t>(gt - doc.data()) : doc.size();
    const char* dq = static_cast<const char*>(
        std::memchr(doc.data() + r, '"', seg_end - r));
    const char* sq = static_cast<const char*>(
        std::memchr(doc.data() + r, '\'', seg_end - r));
    const char* quote = dq == nullptr   ? sq
                        : sq == nullptr ? dq
                                        : std::min(dq, sq);
    if (quote == nullptr) return seg_end;
    char qc = *quote;
    const char* end = static_cast<const char*>(std::memchr(
        quote + 1, qc, doc.size() - static_cast<size_t>(quote + 1 - doc.data())));
    if (end == nullptr) return doc.size();
    r = static_cast<size_t>(end - doc.data()) + 1;
  }
}

/// Position one past the '>' closing a "<!DOCTYPE"-style construct at
/// `from` (pointing at "<!"), honoring [...] subsets and quoted literals.
/// Memchr-driven with lazily cached per-target offsets, mirroring the
/// engine's SkipDoctype, so a pathological multi-megabyte internal subset
/// does not serialize the boundary scan.
size_t SkipDeclaration(std::string_view doc, size_t from) {
  static constexpr char kTargets[] = {'[', ']', '>', '"', '\''};
  static constexpr int kNumTargets = 5;
  size_t next_hit[kNumTargets] = {0, 0, 0, 0, 0};
  bool stale = true;
  size_t r = from + 2;
  int bracket = 0;
  while (r < doc.size()) {
    size_t hit = doc.size();
    char hc = 0;
    for (int i = 0; i < kNumTargets; ++i) {
      if (stale || next_hit[i] < r) {
        const char* h = static_cast<const char*>(
            std::memchr(doc.data() + r, kTargets[i], doc.size() - r));
        next_hit[i] = h != nullptr ? static_cast<size_t>(h - doc.data())
                                   : doc.size();
      }
      if (next_hit[i] < hit) {
        hit = next_hit[i];
        hc = kTargets[i];
      }
    }
    stale = false;
    if (hit == doc.size()) return doc.size();
    if (hc == '[') {
      ++bracket;
      r = hit + 1;
    } else if (hc == ']') {
      --bracket;
      r = hit + 1;
    } else if (hc == '>') {
      if (bracket <= 0) return hit + 1;
      r = hit + 1;
    } else {
      const char* end = static_cast<const char*>(
          std::memchr(doc.data() + hit + 1, hc, doc.size() - hit - 1));
      if (end == nullptr) return doc.size();
      r = static_cast<size_t>(end - doc.data()) + 1;
    }
  }
  return doc.size();
}

/// One shard's execution record.
struct ShardResult {
  StringSink sink;
  core::RunStats stats;
  core::SessionCheckpoint exit;
  Status status;
  bool finished = false;
  bool clean = false;            // suspended in a plain keyword search
  uint64_t read_end = 0;         // absolute end of the bytes this run read
  std::vector<bool> visited;
};

}  // namespace

std::vector<uint64_t> FindTopLevelBoundaries(std::string_view doc,
                                             size_t max_splits) {
  std::vector<uint64_t> splits;
  if (max_splits == 0 || doc.size() < 2) return splits;
  const size_t stride = doc.size() / (max_splits + 1);
  if (stride == 0) return splits;

  size_t pos = 0;
  size_t depth = 0;        // number of currently open elements
  size_t target_idx = 1;   // next split target = target_idx * stride
  while (pos < doc.size() && splits.size() < max_splits) {
    const char* lt = static_cast<const char*>(
        std::memchr(doc.data() + pos, '<', doc.size() - pos));
    if (lt == nullptr) break;
    size_t t = static_cast<size_t>(lt - doc.data());
    std::string_view rest = doc.substr(t);
    if (rest.size() < 2) break;
    char next = rest[1];
    if (next == '!') {
      if (rest.substr(0, 4) == "<!--") {
        pos = SkipPastTerm(doc, t + 4, "-->");
      } else if (rest.substr(0, 9) == "<![CDATA[") {
        pos = SkipPastTerm(doc, t + 9, "]]>");
      } else {
        pos = SkipDeclaration(doc, t);
      }
      continue;
    }
    if (next == '?') {
      pos = SkipPastTerm(doc, t + 2, "?>");
      continue;
    }
    if (next == '/') {
      size_t end = TagEnd(doc, t);
      if (depth > 0) --depth;
      pos = end + 1;
      continue;
    }
    if (!IsNameChar(next)) {
      pos = t + 1;  // stray '<' in text
      continue;
    }
    // An opening (or bachelor) element tag. depth == 1 means its parent is
    // the document root: a top-level boundary.
    if (depth == 1 && t >= target_idx * stride) {
      splits.push_back(t);
      while (target_idx <= max_splits && target_idx * stride <= t) {
        ++target_idx;  // collapse targets this boundary already covers
      }
    }
    size_t end = TagEnd(doc, t);
    bool bachelor = end < doc.size() && end > t + 1 && doc[end - 1] == '/';
    if (!bachelor) ++depth;
    pos = end + 1;
  }
  return splits;
}

void MergeRunStats(core::RunStats* dst, const core::RunStats& src) {
  dst->input_bytes += src.input_bytes;
  dst->output_bytes += src.output_bytes;
  dst->search.Add(src.search);
  dst->scan_chars += src.scan_chars;
  dst->initial_jumps += src.initial_jumps;
  dst->initial_jump_chars += src.initial_jump_chars;
  dst->matches += src.matches;
  dst->false_matches += src.false_matches;
  dst->bm_searches += src.bm_searches;
  dst->cw_searches += src.cw_searches;
  dst->window_peak = std::max(dst->window_peak, src.window_peak);
}

Status ShardedRun(const core::RuntimeTables& tables, std::string_view doc,
                  OutputSink* out, core::RunStats* stats, ThreadPool* pool,
                  const ShardOptions& opts) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  size_t max_shards =
      opts.max_shards != 0 ? opts.max_shards
                           : static_cast<size_t>(std::max(1, pool->size()));
  std::vector<uint64_t> bounds =
      max_shards > 1 ? FindTopLevelBoundaries(doc, max_shards - 1)
                     : std::vector<uint64_t>();

  // Segment k covers [seg_begin[k], seg_begin[k+1]).
  std::vector<uint64_t> seg_begin;
  seg_begin.push_back(0);
  for (uint64_t b : bounds) seg_begin.push_back(b);
  seg_begin.push_back(doc.size());
  const size_t n = seg_begin.size() - 1;

  // Runs one segment: `start` == nullptr for the document head, otherwise
  // the carried checkpoint (whose cursor may sit before the segment start
  // after a re-run hand-off). The final segment also Finish()es.
  auto run_segment = [&](size_t k, const core::SessionCheckpoint* start,
                         ShardResult* r) {
    uint64_t begin = start != nullptr ? start->cursor : seg_begin[k];
    uint64_t end = seg_begin[k + 1];
    core::EngineOptions eopts = opts.engine;
    core::PrefilterSession session(tables, &r->sink, &r->stats, eopts,
                                   start);
    r->status = session.Resume(
        doc.substr(static_cast<size_t>(begin),
                   static_cast<size_t>(end - begin)));
    if (r->status.ok() && k + 1 == n && !session.finished()) {
      r->status = session.Finish();
    } else {
      session.FinalizeStats();
    }
    r->finished = session.finished();
    r->exit = session.checkpoint();
    r->clean = session.drained_cleanly();
    r->visited = session.visited();
    r->read_end = begin + r->stats.input_bytes;
  };

  std::vector<ShardResult> results(n);

  // Wave 1: the document head runs for real -- its exit state is the
  // speculation seed for every other shard.
  run_segment(0, nullptr, &results[0]);

  // Wave 2: speculative shards in parallel. Skipped when shard 0 already
  // finished the run, errored, or ended in a hand-off speculation cannot
  // model (mid-candidate, open copy region, opaque recursion balance).
  const ShardResult& head = results[0];
  bool speculate = n > 1 && head.status.ok() && !head.finished &&
                   head.clean && head.exit.copy_depth == 0 &&
                   head.exit.nesting_depth == 0;
  core::SessionCheckpoint guess;
  if (speculate) {
    guess = head.exit;
    WaitGroup wg;
    wg.Add(static_cast<int>(n - 1));
    for (size_t k = 1; k < n; ++k) {
      pool->Submit([&, k] {
        core::SessionCheckpoint start = guess;
        start.cursor = seg_begin[k];
        start.copy_flushed = seg_begin[k];
        run_segment(k, &start, &results[k]);
        wg.Done();
      });
    }
    wg.Wait();
  }

  // Sequential verification: accept a speculative shard iff its
  // predecessor's actual hand-off matches the assumed entry; otherwise
  // re-run it (synchronously) from the true checkpoint. Deterministic by
  // construction -- the accepted sequence replays the serial run.
  Status final_status;
  size_t produced = n;
  for (size_t k = 1; k < n; ++k) {
    ShardResult& prev = results[k - 1];
    if (!prev.status.ok()) {
      final_status = prev.status;
      produced = k;
      break;
    }
    if (prev.finished) {
      produced = k;  // serial run ends here; later bytes are ignored
      break;
    }
    bool accepted = speculate && prev.clean &&
                    prev.exit.state == guess.state &&
                    prev.exit.copy_depth == 0 &&
                    prev.exit.nesting_depth == 0;
    if (!accepted) {
      ShardResult rerun;
      core::SessionCheckpoint start = prev.exit;
      run_segment(k, &start, &rerun);
      results[k] = std::move(rerun);
    }
  }
  if (final_status.ok() && produced == n && !results[n - 1].status.ok()) {
    final_status = results[n - 1].status;
  }

  // Deterministic merge in document order.
  for (size_t k = 0; k < produced; ++k) {
    SMPX_RETURN_IF_ERROR(out->Append(results[k].sink.str()));
  }
  if (stats != nullptr) {
    std::vector<bool> visited;
    uint64_t read_end = 0;  // how far into the document reads have advanced
    for (size_t k = 0; k < produced; ++k) {
      // Attribute to each shard the document range it advanced through:
      // re-run hand-offs re-read their predecessor's overlap tail (counted
      // once), and initial jumps across a boundary leave a gap the serial
      // stream would have read and discarded (counted for parity).
      results[k].stats.input_bytes =
          results[k].read_end > read_end ? results[k].read_end - read_end
                                         : 0;
      read_end = std::max(read_end, results[k].read_end);
      MergeRunStats(stats, results[k].stats);
      if (visited.empty()) visited = results[k].visited;
      for (size_t i = 0; i < results[k].visited.size(); ++i) {
        if (results[k].visited[i]) visited[i] = true;
      }
    }
    stats->states_visited = 0;
    for (bool v : visited) {
      if (v) ++stats->states_visited;
    }
  }
  return final_status;
}

}  // namespace smpx::parallel
