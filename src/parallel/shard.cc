#include "parallel/shard.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "simd/bitmap_plane.h"
#include "simd/simd.h"

namespace smpx::parallel {
namespace {

// The helpers below form a second, simplified structural scanner over
// contiguous input, paired with (but independent from) the engine's
// window-based scanning in core/engine.cc (SkipPast/SkipDoctype/the tag
// scan in HandleMatch). The pairing is advisory only: a boundary this
// scanner gets "wrong" relative to the engine's view of the document can
// only mis-speculate a shard's entry state, which the verification pass in
// ShardedRun detects and repairs by re-running -- correctness never
// depends on the two scanners agreeing, only throughput does.

/// Structural scan context over one contiguous document. With the plane
/// (default), a local BitmapPlane bound to the whole doc memoizes every
/// byte class the scan touches -- the '<' candidate lane, the tag-end and
/// DOCTYPE any-of lanes, the comment/PI pair lanes -- so each region pass
/// classifies its windows once instead of per helper call. With the plane
/// disabled the primitives fall back to the per-call kernels; both paths
/// enumerate identical positions (the differential suites assert it).
/// One scanner per scan call: region workers on the pool each build their
/// own (the plane is not thread-safe).
class StructScanner {
 public:
  StructScanner(std::string_view doc, bool use_plane)
      : doc_(doc),
        use_plane_(use_plane && simd::PlaneEnabled() && !doc.empty()),
        open_scan_(doc.data(), doc.size(), '<') {
    if (use_plane_) plane_.Bind(doc.data(), doc.size(), /*origin=*/0);
  }

  /// Next '<' at or after `pos`; doc.size() when none.
  size_t NextOpen(size_t pos) {
    if (pos >= doc_.size()) return doc_.size();
    if (use_plane_) return pos + plane_.FindByte(pos, doc_.size() - pos, '<');
    return open_scan_.Next(pos);
  }

  /// Position one past the next occurrence of `term` at or after `from`;
  /// doc.size() when absent.
  size_t SkipPastTerm(size_t from, std::string_view term) {
    if (from >= doc_.size()) return doc_.size();
    const size_t hit = FindPatternAt(from, term);
    if (hit == doc_.size()) return doc_.size();
    return hit + term.size();
  }

  /// Position of the '>' closing the tag whose '<' sits at `from`, skipping
  /// quoted attribute values; doc.size() when unterminated.
  size_t TagEnd(size_t from) {
    static constexpr simd::ByteSet kTagEnd(">\"'");
    size_t r = from + 1;
    for (;;) {
      if (r >= doc_.size()) return doc_.size();
      const size_t hit = FindAnyAt(r, kTagEnd);
      if (hit == doc_.size()) return doc_.size();
      if (doc_[hit] == '>') return hit;
      const size_t end =
          FindByteAt(hit + 1, static_cast<unsigned char>(doc_[hit]));
      if (end == doc_.size()) return doc_.size();
      r = end + 1;
    }
  }

  /// Position one past the '>' closing a "<!DOCTYPE"-style construct at
  /// `from` (pointing at "<!"), honoring [...] subsets and quoted literals.
  /// Bitmap-driven, mirroring the engine's SkipDoctype: one vectorized
  /// any-of classification per structural step, so a pathological
  /// multi-megabyte internal subset does not serialize the boundary scan.
  size_t SkipDeclaration(size_t from) {
    static constexpr simd::ByteSet kStructural("[]>\"'");
    size_t r = from + 2;
    int bracket = 0;
    while (r < doc_.size()) {
      const size_t hit = FindAnyAt(r, kStructural);
      if (hit == doc_.size()) return doc_.size();
      const char hc = doc_[hit];
      if (hc == '[') {
        ++bracket;
        r = hit + 1;
      } else if (hc == ']') {
        --bracket;
        r = hit + 1;
      } else if (hc == '>') {
        if (bracket <= 0) return hit + 1;
        r = hit + 1;
      } else {
        const size_t end =
            FindByteAt(hit + 1, static_cast<unsigned char>(hc));
        if (end == doc_.size()) return doc_.size();
        r = end + 1;
      }
    }
    return doc_.size();
  }

  /// Position one past the opaque markup construct whose '<' sits at `t`
  /// (`next` = doc[t+1], '!' or '?'): comment, CDATA section, DOCTYPE-style
  /// declaration, or processing instruction. Shared by the serial and the
  /// region-parallel scanner so their construct handling cannot diverge.
  size_t SkipMarkupConstruct(size_t t, char next) {
    if (next == '?') return SkipPastTerm(t + 2, "?>");
    std::string_view rest = doc_.substr(t);
    if (rest.substr(0, 4) == "<!--") return SkipPastTerm(t + 4, "-->");
    if (rest.substr(0, 9) == "<![CDATA[") {
      return SkipPastTerm(t + 9, "]]>");
    }
    return SkipDeclaration(t);
  }

 private:
  // Absolute-position primitives: first hit at or after `from`, doc.size()
  // when absent (the kernels return len-when-absent, so from + len lands
  // exactly on doc.size()).
  size_t FindByteAt(size_t from, unsigned char c) {
    if (from >= doc_.size()) return doc_.size();
    if (use_plane_) return from + plane_.FindByte(from, doc_.size() - from, c);
    return from + simd::FindByte(doc_.data() + from, doc_.size() - from, c);
  }
  size_t FindAnyAt(size_t from, const simd::ByteSet& set) {
    if (from >= doc_.size()) return doc_.size();
    if (use_plane_) return from + plane_.FindAny(from, doc_.size() - from, set);
    return from + simd::FindAny(doc_.data() + from, doc_.size() - from, set);
  }
  size_t FindPatternAt(size_t from, std::string_view term) {
    if (from >= doc_.size()) return doc_.size();
    if (use_plane_) {
      return from + plane_.FindPattern(from, doc_.size() - from, term);
    }
    return from +
           simd::FindPattern(doc_.data() + from, doc_.size() - from, term);
  }

  std::string_view doc_;
  const bool use_plane_;
  simd::MaskScanner open_scan_;  // kernel-path '<' scan (plane off)
  simd::BitmapPlane plane_;
};

constexpr uint64_t kNoPos = ~uint64_t{0};

/// Candidate class sentinel: the candidate is never speculated on (e.g. an
/// in-copy candidate over multi-query product tables).
constexpr size_t kNoClass = ~size_t{0};

/// Deepest region-start element depth the lazy scan can resolve; regions
/// starting deeper than this simply report no boundary (safe: shards just
/// get fewer split candidates there).
constexpr int64_t kMaxRelDepth = 256;

/// What one region's independent scan learned, relative to the (unknown at
/// scan time) element depth at its start.
struct RegionSummary {
  /// first_open[d + kMaxRelDepth]: absolute position of the first element
  /// start encountered at relative depth d, for d in [-kMaxRelDepth, 1];
  /// kNoPos when none. A start at relative depth d is a top-level boundary
  /// iff d + (absolute depth at scan start) == 1.
  std::vector<uint64_t> first_open;
  int64_t depth_delta = 0;   ///< net element-depth change across the scan
  uint64_t resume_pos = 0;   ///< one past the last byte the scan consumed
};

/// Scans every construct *starting* in [begin, end), assuming the scan
/// starts in content (not inside a tag/comment/CDATA/PI/DOCTYPE/quote) at
/// an unknown absolute depth. Construct skips use the full document, so a
/// construct straddling `end` is consumed completely and resume_pos tells
/// the fix-up how far this region's view actually reached.
RegionSummary ScanRegion(std::string_view doc, uint64_t begin, uint64_t end,
                         bool use_plane) {
  RegionSummary sum;
  sum.first_open.assign(static_cast<size_t>(kMaxRelDepth + 2), kNoPos);
  int64_t depth = 0;
  size_t pos = static_cast<size_t>(begin);
  const size_t stop = static_cast<size_t>(end);
  StructScanner sc(doc, use_plane);
  while (pos < stop) {
    size_t t = sc.NextOpen(pos);
    if (t >= stop) {
      pos = stop;
      break;
    }
    std::string_view rest = doc.substr(t);
    if (rest.size() < 2) {
      pos = doc.size();
      break;
    }
    char next = rest[1];
    if (next == '!' || next == '?') {
      pos = sc.SkipMarkupConstruct(t, next);
      continue;
    }
    if (next == '/') {
      size_t tag_end = sc.TagEnd(t);
      --depth;  // may go negative: the region started below its closers
      pos = tag_end + 1;
      continue;
    }
    if (!IsNameChar(next)) {
      pos = t + 1;  // stray '<' in text
      continue;
    }
    // An opening (or bachelor) element tag at relative depth `depth`.
    if (depth <= 1 && depth >= -kMaxRelDepth) {
      size_t slot = static_cast<size_t>(depth + kMaxRelDepth);
      if (sum.first_open[slot] == kNoPos) sum.first_open[slot] = t;
    }
    size_t tag_end = sc.TagEnd(t);
    bool bachelor =
        tag_end < doc.size() && tag_end > t + 1 && doc[tag_end - 1] == '/';
    if (!bachelor) ++depth;
    pos = tag_end + 1;
  }
  sum.depth_delta = depth;
  sum.resume_pos = std::max<uint64_t>(std::min<uint64_t>(pos, doc.size()),
                                      end);
  return sum;
}

/// First element start at absolute depth 1 at or after `begin`, entering
/// the scan at absolute element depth `depth` (known from the region
/// fix-up); kNoPos when none. Unlike ScanRegion this stops at the first
/// hit, so the tail of the document past the last chosen boundary is never
/// read -- the early-exit the serial scanner gets for free. `scanned`
/// accumulates the bytes consumed.
uint64_t FirstTopLevelOpenAt(std::string_view doc, uint64_t begin,
                             int64_t depth, uint64_t* scanned,
                             bool use_plane) {
  size_t pos = static_cast<size_t>(begin);
  uint64_t found = kNoPos;
  StructScanner sc(doc, use_plane);
  while (pos < doc.size()) {
    size_t t = sc.NextOpen(pos);
    if (t == doc.size()) {
      pos = doc.size();
      break;
    }
    std::string_view rest = doc.substr(t);
    if (rest.size() < 2) {
      pos = doc.size();
      break;
    }
    char next = rest[1];
    if (next == '!' || next == '?') {
      pos = sc.SkipMarkupConstruct(t, next);
      continue;
    }
    if (next == '/') {
      --depth;
      pos = sc.TagEnd(t) + 1;
      continue;
    }
    if (!IsNameChar(next)) {
      pos = t + 1;  // stray '<' in text
      continue;
    }
    if (depth == 1) {
      found = t;
      pos = t;
      break;
    }
    size_t tag_end = sc.TagEnd(t);
    bool bachelor =
        tag_end < doc.size() && tag_end > t + 1 && doc[tag_end - 1] == '/';
    if (!bachelor) ++depth;
    pos = tag_end + 1;
  }
  if (scanned != nullptr) {
    *scanned += std::min<uint64_t>(pos, doc.size()) - begin;
  }
  return found;
}

/// True when a resumed session behaves identically from state `a` and `b`:
/// same frontier vocabulary (hence matcher behavior and search counters),
/// same transitions, same opaque-nesting semantics, same finality, same
/// re-entry jump. Entry *actions* are deliberately excluded -- they fire
/// only on transitions, never at a resume point -- so behavior-equivalent
/// boundary candidates (e.g. "after <root>" / "after </record>" in a star
/// root) collapse into a single speculative run.
///
/// This partition is as coarse as exact replay allows. Successors must be
/// the *same states*, not merely equivalent ones: an accepted attempt
/// stands in for the serial run byte-for-byte, including match counters
/// and the states_visited set, and a run routed through a twin state
/// would already diverge on those. Nor is there slack in the transition
/// domain: a state's keyword vocabulary is derived from its transition
/// function, so `keywords` equality plus per-tag successor equality
/// covers every transition the keyword search can reach. Classes that
/// remain distinct (e.g. the phases of an ordered root) differ
/// observably, and the wave cost they add is what early-kill reclaims.
bool SameRuntimeBehavior(const core::RuntimeTables& t, int a, int b) {
  const core::DfaState& A = t.states[static_cast<size_t>(a)];
  const core::DfaState& B = t.states[static_cast<size_t>(b)];
  return A.keywords == B.keywords && A.is_final == B.is_final &&
         A.jump == B.jump && A.count_nesting == B.count_nesting &&
         // The entry tag matters only while tag-balancing an opaque region.
         (!A.count_nesting || A.entry_name == B.entry_name) &&
         A.open_next_id == B.open_next_id &&
         A.close_next_id == B.close_next_id && A.open_next == B.open_next &&
         A.close_next == B.close_next;
}

}  // namespace

std::vector<uint64_t> FindTopLevelBoundaries(std::string_view doc,
                                             size_t max_splits,
                                             bool use_plane) {
  std::vector<uint64_t> splits;
  if (max_splits == 0 || doc.size() < 2) return splits;
  const size_t stride = doc.size() / (max_splits + 1);
  if (stride == 0) return splits;

  size_t pos = 0;
  size_t depth = 0;        // number of currently open elements
  size_t target_idx = 1;   // next split target = target_idx * stride
  StructScanner sc(doc, use_plane);
  while (pos < doc.size() && splits.size() < max_splits) {
    size_t t = sc.NextOpen(pos);
    if (t == doc.size()) break;
    std::string_view rest = doc.substr(t);
    if (rest.size() < 2) break;
    char next = rest[1];
    if (next == '!' || next == '?') {
      pos = sc.SkipMarkupConstruct(t, next);
      continue;
    }
    if (next == '/') {
      size_t end = sc.TagEnd(t);
      if (depth > 0) --depth;
      pos = end + 1;
      continue;
    }
    if (!IsNameChar(next)) {
      pos = t + 1;  // stray '<' in text
      continue;
    }
    // An opening (or bachelor) element tag. depth == 1 means its parent is
    // the document root: a top-level boundary.
    if (depth == 1 && t >= target_idx * stride) {
      splits.push_back(t);
      while (target_idx <= max_splits && target_idx * stride <= t) {
        ++target_idx;  // collapse targets this boundary already covers
      }
    }
    size_t end = sc.TagEnd(t);
    bool bachelor = end < doc.size() && end > t + 1 && doc[end - 1] == '/';
    if (!bachelor) ++depth;
    pos = end + 1;
  }
  return splits;
}

uint64_t CountTopLevelStarts(std::string_view doc, uint64_t begin,
                             uint64_t end, int64_t depth_at_begin,
                             bool use_plane) {
  uint64_t count = 0;
  int64_t depth = depth_at_begin;
  size_t pos = static_cast<size_t>(begin);
  const size_t stop = static_cast<size_t>(std::min<uint64_t>(end, doc.size()));
  StructScanner sc(doc, use_plane);
  while (pos < stop) {
    size_t t = sc.NextOpen(pos);
    if (t >= stop) break;
    std::string_view rest = doc.substr(t);
    if (rest.size() < 2) break;
    char next = rest[1];
    if (next == '!' || next == '?') {
      pos = sc.SkipMarkupConstruct(t, next);
      continue;
    }
    if (next == '/') {
      size_t tag_end = sc.TagEnd(t);
      if (depth > 0) --depth;
      pos = tag_end + 1;
      continue;
    }
    if (!IsNameChar(next)) {
      pos = t + 1;  // stray '<' in text
      continue;
    }
    if (depth == 1) ++count;
    size_t tag_end = sc.TagEnd(t);
    bool bachelor =
        tag_end < doc.size() && tag_end > t + 1 && doc[tag_end - 1] == '/';
    if (!bachelor) ++depth;
    pos = tag_end + 1;
  }
  return count;
}

std::vector<uint64_t> FindTopLevelBoundariesParallel(
    std::string_view doc, size_t max_splits, ThreadPool* pool,
    uint64_t* scanned_bytes, bool use_plane) {
  if (scanned_bytes != nullptr) *scanned_bytes = 0;
  std::vector<uint64_t> splits;
  if (max_splits == 0 || doc.size() < 2) return splits;
  const uint64_t stride = doc.size() / (max_splits + 1);
  if (stride == 0) return splits;
  if (pool->size() <= 1) {
    // A one-worker wave degenerates to a sequential whole-document scan;
    // the serial scanner is strictly better (it stops at the last chosen
    // boundary).
    splits = FindTopLevelBoundaries(doc, max_splits, use_plane);
    if (scanned_bytes != nullptr) {
      *scanned_bytes =
          splits.size() == max_splits ? splits.back() : doc.size();
    }
    return splits;
  }

  // One region per split target; region j = [j*stride, (j+1)*stride). The
  // interior regions are scanned independently on the pool with relative
  // depths; the tail region [max_splits*stride, doc.size()) is *not* part
  // of the wave -- after the fix-up resolves the absolute depth at its
  // start it is scanned lazily, stopping at the first top-level element
  // start (which covers every split target still unfulfilled, all of which
  // sit at or before the tail's begin).
  const size_t interior = max_splits;  // regions 0 .. max_splits-1
  auto region_begin = [stride](size_t j) { return stride * j; };
  auto region_end = [stride](size_t j) { return stride * (j + 1); };
  std::vector<RegionSummary> sums(interior);
  pool->RunAndWait(interior, [&doc, &sums, &region_begin, &region_end,
                              use_plane](size_t j) {
    sums[j] = ScanRegion(doc, region_begin(j), region_end(j), use_plane);
  });
  if (scanned_bytes != nullptr) {
    for (size_t j = 0; j < interior; ++j) {
      *scanned_bytes += sums[j].resume_pos - region_begin(j);
    }
  }

  // Sequential fix-up: thread the actual scan position and absolute depth
  // through the summaries. A region whose start was consumed by a construct
  // straddling in from an earlier region scanned garbage (it assumed its
  // start was content), so it is re-scanned from the construct's true end;
  // a region consumed entirely holds no element starts at all.
  std::vector<uint64_t> boundary(interior, kNoPos);
  uint64_t pos = 0;
  int64_t depth = 0;
  for (size_t j = 0; j < interior; ++j) {
    uint64_t b = region_begin(j);
    uint64_t e = region_end(j);
    if (pos >= e) continue;
    if (pos > b) {
      sums[j] = ScanRegion(doc, pos, e, use_plane);
      if (scanned_bytes != nullptr) {
        *scanned_bytes += sums[j].resume_pos - pos;
      }
    }
    int64_t want = 1 - depth;  // relative depth of an absolute depth-1 start
    if (want >= -kMaxRelDepth && want <= 1) {
      boundary[j] =
          sums[j].first_open[static_cast<size_t>(want + kMaxRelDepth)];
    }
    depth += sums[j].depth_delta;
    pos = std::max(pos, sums[j].resume_pos);
  }

  // Target selection, matching the serial scanner: for each evenly spaced
  // target, the first top-level element start at or after it; a chosen
  // boundary collapses every target it already covers.
  size_t target_idx = 1;
  while (target_idx <= max_splits) {
    size_t j = target_idx;
    while (j < interior && boundary[j] == kNoPos) ++j;
    if (j >= interior) break;  // remaining targets fall through to the tail
    splits.push_back(boundary[j]);
    target_idx = static_cast<size_t>(boundary[j] / stride) + 1;
  }
  if (target_idx <= max_splits) {
    uint64_t begin = std::max<uint64_t>(pos, region_begin(interior));
    if (begin < doc.size()) {
      uint64_t hit =
          FirstTopLevelOpenAt(doc, begin, depth, scanned_bytes, use_plane);
      if (hit != kNoPos) splits.push_back(hit);
    }
  }
  return splits;
}

SpeculativeResolver::SpeculativeResolver(const core::RuntimeTables& tables,
                                         std::string_view doc,
                                         const std::vector<uint64_t>& boundaries,
                                         const Options& opts)
    : tables_(tables), doc_(doc), opts_(opts) {
  seg_begin_.reserve(boundaries.size() + 2);
  seg_begin_.push_back(0);
  for (uint64_t b : boundaries) seg_begin_.push_back(b);
  seg_begin_.push_back(doc.size());
  const size_t n = segments();

  // Collapse the static candidate set into behavior classes; candidates
  // whose vocabulary and transitions coincide (they differ only in entry
  // actions, which never re-fire at a resume point) share one speculative
  // run per segment. A candidate's entry copy depth is part of the class
  // key: an attempt is seeded with it, and a session resumed with one
  // active copy behaves observably differently (emits the segment) from a
  // depth-0 resume of the same state.
  const std::vector<int>& boundary_states = tables_.boundary_states;
  class_of_.assign(boundary_states.size(), kNoClass);
  if (n > 1) {
    for (size_t i = 0; i < boundary_states.size(); ++i) {
      const int depth = i < tables_.boundary_copy_depths.size()
                            ? tables_.boundary_copy_depths[i]
                            : 0;
      if (depth != 0 && tables_.multi != nullptr) {
        // Multi-query in-copy hand-offs re-run (see Resolve); never launch
        // an attempt the engine would reject (no per-query depth vector).
        continue;
      }
      size_t c = 0;
      while (c < class_reps_.size() &&
             !(class_rep_depths_[c] == depth &&
               SameRuntimeBehavior(tables_, class_reps_[c],
                                   boundary_states[i]))) {
        ++c;
      }
      if (c == class_reps_.size()) {
        if (class_reps_.size() == opts_.max_candidate_states) {
          // Too many distinct classes to speculate on: stop partitioning
          // (the deep state comparisons are wasted past the cap) and fall
          // back to dynamic seeding.
          class_reps_.clear();
          class_rep_depths_.clear();
          break;
        }
        class_reps_.push_back(boundary_states[i]);
        class_rep_depths_.push_back(depth);
      }
      class_of_[i] = c;
    }
  }
  static_spec_ = n > 1 && !class_reps_.empty() &&
                 class_reps_.size() <= opts_.max_candidate_states;

  results_.resize(n);
  report_.shards = n;
  report_.candidate_states = static_spec_ ? boundary_states.size() : 0;
  report_.candidate_classes = static_spec_ ? class_reps_.size() : 0;
}

SpeculativeResolver::~SpeculativeResolver() { Abort(); }

void SpeculativeResolver::RunSegment(size_t k,
                                     const core::SessionCheckpoint* start,
                                     ShardResult* r, bool mark_start,
                                     const std::atomic<bool>* cancel) {
  const size_t n = segments();
  uint64_t begin = start != nullptr ? start->feed_begin() : seg_begin_[k];
  uint64_t end = seg_begin_[k + 1];
  core::EngineOptions eopts = opts_.engine;
  eopts.mark_start_state_visited = mark_start;
  eopts.cancel = cancel;
  CountingSink counter;
  std::vector<CountingSink> mq_counters;
  std::unique_ptr<core::PrefilterSession> session;
  if (tables_.multi != nullptr) {
    // Multi-query product tables: one budget-bounded segment per unique
    // query; the aggregate budget is split evenly across the queries.
    const size_t m = static_cast<size_t>(tables_.multi->num_queries);
    const size_t per_query =
        opts_.max_buffer_bytes != 0
            ? std::max<size_t>(opts_.max_buffer_bytes / m, 1)
            : SpillSink::kUnlimited;
    std::vector<OutputSink*> outs(m);
    if (opts_.capture_output) {
      r->mq_sinks.reserve(m);
      for (size_t u = 0; u < m; ++u) {
        r->mq_sinks.push_back(
            std::make_unique<SpillSink>(per_query, opts_.arena));
        outs[u] = r->mq_sinks.back().get();
      }
    } else {
      mq_counters.resize(m);
      for (size_t u = 0; u < m; ++u) outs[u] = &mq_counters[u];
    }
    session = std::make_unique<core::PrefilterSession>(
        tables_, std::move(outs), &r->mq_stats, &r->stats, eopts, start);
  } else {
    OutputSink* out = &counter;
    if (opts_.capture_output) {
      r->sink = std::make_unique<SpillSink>(opts_.max_buffer_bytes != 0
                                                ? opts_.max_buffer_bytes
                                                : SpillSink::kUnlimited,
                                            opts_.arena);
      out = r->sink.get();
    }
    session = std::make_unique<core::PrefilterSession>(tables_, out,
                                                       &r->stats, eopts, start);
  }
  r->status = session->Resume(doc_.substr(static_cast<size_t>(begin),
                                          static_cast<size_t>(end - begin)));
  if (r->status.ok() && k + 1 == n && !session->finished()) {
    r->status = session->Finish();
  } else {
    session->FinalizeStats();
  }
  r->finished = session->finished();
  r->exit = session->checkpoint();
  r->clean = session->drained_cleanly();
  r->visited = session->visited();
  r->read_end = begin + r->stats.input_bytes;
}

void SpeculativeResolver::RunAttempt(size_t idx, Attempt* a) {
  if (static_spec_) {
    if (idx == 0) {
      RunSegment(0, nullptr, &a->result, /*mark_start=*/true, &a->cancel);
      return;
    }
    const size_t classes = class_reps_.size();
    size_t k = 1 + (idx - 1) / classes;
    size_t c = (idx - 1) % classes;
    core::SessionCheckpoint start;
    start.state = class_reps_[c];
    // In-copy candidates resume mid-copy with nothing flushed yet: the
    // session emits [boundary, ...) itself and the driver owes the
    // predecessor's unflushed tail below the boundary (ShardResult::
    // tail_begin/tail_end, recorded on acceptance).
    start.copy_depth = class_rep_depths_[c];
    start.cursor = seg_begin_[k];
    start.copy_flushed = seg_begin_[k];
    // The representative may differ from the true entry state (whose
    // visited bit the predecessor's hand-off owns); don't count it.
    RunSegment(k, &start, &a->result, /*mark_start=*/false, &a->cancel);
  } else {
    size_t k = idx + 1;
    core::SessionCheckpoint start = dynamic_guess_;
    start.cursor = seg_begin_[k];
    start.copy_flushed = seg_begin_[k];
    RunSegment(k, &start, &a->result, /*mark_start=*/true, &a->cancel);
  }
}

void SpeculativeResolver::KillLocked(Attempt* a) {
  if (a->loser) return;
  a->loser = true;
  a->cancel.store(true, std::memory_order_relaxed);
  if (a->done) {
    // Completed before it lost: reclaim its buffer/spill right away. A
    // still-running one frees itself in AttemptTask when it stops.
    a->result.sink.reset();
    a->result.mq_sinks.clear();
    a->result.visited.clear();
  }
}

void SpeculativeResolver::AttemptTask(size_t idx) {
  // `outstanding_` counts *task invocations*, not attempt completions:
  // every exit path below decrements exactly once, so Abort's drain also
  // covers the back-off path of a task whose attempt was stolen -- the
  // resolver must not die while any submitted closure can still run.
  Attempt& a = *attempts_[idx];
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (a.started) {  // stolen by the resolving thread; it published
      --outstanding_;
      cv_.notify_all();
      return;
    }
    if (a.loser) {
      // Killed before it ever started: the whole attempt is reclaimed
      // wave work.
      ++report_.killed;
      a.done = true;
      --outstanding_;
      cv_.notify_all();
      return;
    }
    a.started = true;
  }
  RunAttempt(idx, &a);
  std::unique_lock<std::mutex> lock(mu_);
  report_.wave_bytes += a.result.stats.input_bytes;
  if (a.result.status.code() == StatusCode::kCancelled) ++report_.killed;
  if (a.loser) {
    a.result.sink.reset();
    a.result.mq_sinks.clear();
    a.result.visited.clear();
  }
  a.done = true;
  --outstanding_;
  cv_.notify_all();
}

void SpeculativeResolver::WaitDone(size_t idx) {
  Attempt& a = *attempts_[idx];
  std::unique_lock<std::mutex> lock(mu_);
  if (!a.started && !a.done) {
    // Still queued behind busy workers, but it is the one attempt the
    // resolve loop needs next: run it here instead of idling. The queued
    // pool task sees `started` and backs off.
    a.started = true;
    lock.unlock();
    RunAttempt(idx, &a);
    lock.lock();
    ++report_.stolen;
    report_.wave_bytes += a.result.stats.input_bytes;
    a.done = true;  // the queued task backs off and decrements outstanding_
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&a] { return a.done; });
}

void SpeculativeResolver::LaunchWave(ThreadPool* pool) {
  const size_t n = segments();
  if (static_spec_) {
    // One fully parallel wave: the head plus |classes| speculative runs
    // per non-head segment. Nothing serializes ahead of the wave, and
    // nothing waits for it either -- Resolve picks attempts up as their
    // exits land.
    const size_t classes = class_reps_.size();
    const size_t total = 1 + (n - 1) * classes;
    attempts_.reserve(total);
    for (size_t i = 0; i < total; ++i) {
      attempts_.push_back(std::make_unique<Attempt>());
    }
    report_.speculated = n - 1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      outstanding_ = total;
    }
    for (size_t idx = 0; idx < total; ++idx) {
      pool->Submit([this, idx] { AttemptTask(idx); });
    }
  } else {
    // Dynamic fallback (PR-2 scheme): the document head runs for real --
    // its exit state is the speculation seed for every other segment.
    RunSegment(0, nullptr, &results_[0], /*mark_start=*/true, nullptr);
    report_.serial_bytes += results_[0].stats.input_bytes;
    const ShardResult& head = results_[0];
    // A single-query head suspended inside a copy region still seeds
    // speculation (the attempts resume at its depth, tail bytes are the
    // driver's); multi-query tables need per-query depth vectors the seed
    // cannot supply, so they keep requiring a copy-free hand-off.
    dynamic_spec_ = n > 1 && head.status.ok() && !head.finished &&
                    head.clean && head.exit.nesting_depth == 0 &&
                    (head.exit.copy_depth == 0 || tables_.multi == nullptr);
    if (dynamic_spec_) {
      dynamic_guess_ = head.exit;
      attempts_.reserve(n - 1);
      for (size_t i = 0; i + 1 < n; ++i) {
        attempts_.push_back(std::make_unique<Attempt>());
      }
      report_.speculated = n - 1;
      {
        std::lock_guard<std::mutex> lock(mu_);
        outstanding_ = n - 1;
      }
      for (size_t idx = 0; idx + 1 < n; ++idx) {
        pool->Submit([this, idx] { AttemptTask(idx); });
      }
    }
  }
}

ShardResult& SpeculativeResolver::Resolve(size_t k) {
  if (k == 0) {
    if (static_spec_) {
      WaitDone(0);
      std::lock_guard<std::mutex> lock(mu_);
      results_[0] = std::move(attempts_[0]->result);
    }
    return results_[0];  // dynamic mode ran the head synchronously
  }
  ShardResult& prev = results_[k - 1];
  // Accept the speculative attempt whose assumed entry (state, copy depth)
  // matches the predecessor's actual hand-off; otherwise re-run the
  // segment from the true checkpoint. Deterministic by construction -- the
  // accepted sequence replays the serial run (early-kill only cancels
  // attempts that were never going to be part of it).
  //
  // Why a copy-depth match suffices: a clean drain means no keyword
  // completed in the overlap tail, and no keyword can straddle a
  // top-level '<' (keywords contain '<' only at position 0), so state,
  // copy depth and opaque nesting are all constant from the exit cursor
  // through the boundary -- (state, depth, nesting 0) IS the serial
  // engine's entry configuration there. An in-copy hand-off additionally
  // owes the unflushed copy bytes [exit.copy_flushed, boundary) that the
  // predecessor's suspension withheld; the accepted attempt started
  // flushing at the boundary, so they are recorded as the segment's
  // hand-off tail for the driver and folded into its output stats.
  // Multi-query product tables keep the re-run fallback when copies are
  // active: a candidate would need the full per-query depth vector, which
  // the static analysis does not enumerate.
  const bool maybe_speculated =
      prev.clean && prev.exit.nesting_depth == 0 &&
      (prev.exit.copy_depth == 0 || tables_.multi == nullptr);
  size_t hit = kNoClass;
  if (maybe_speculated) {
    if (static_spec_) {
      const std::vector<int>& boundary_states = tables_.boundary_states;
      const std::vector<int>& depths = tables_.boundary_copy_depths;
      for (size_t c = 0; c < boundary_states.size(); ++c) {
        const int depth = c < depths.size() ? depths[c] : 0;
        if (boundary_states[c] == prev.exit.state &&
            depth == prev.exit.copy_depth && class_of_[c] != kNoClass) {
          hit = class_of_[c];
          break;
        }
      }
    } else if (dynamic_spec_ && prev.exit.state == dynamic_guess_.state &&
               prev.exit.copy_depth == dynamic_guess_.copy_depth) {
      hit = 0;
    }
  }
  const size_t classes = static_spec_ ? class_reps_.size()
                        : dynamic_spec_ ? 1
                                        : 0;
  if (hit != kNoClass) {
    // Kill the losing attempts of this segment before waiting on the
    // winner: a running loser aborts at its next safe point and frees its
    // buffered output mid-wave.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t c = 0; c < classes; ++c) {
        if (c != hit) {
          KillLocked(attempts_[AttemptIndex(k, c)].get());
        }
      }
    }
    WaitDone(AttemptIndex(k, hit));
    {
      std::lock_guard<std::mutex> lock(mu_);
      results_[k] = std::move(attempts_[AttemptIndex(k, hit)]->result);
    }
    if (prev.exit.copy_depth > 0) {
      ++report_.copy_handoffs;
      if (prev.exit.copy_flushed < seg_begin_[k]) {
        results_[k].tail_begin = prev.exit.copy_flushed;
        results_[k].tail_end = seg_begin_[k];
        results_[k].stats.output_bytes +=
            results_[k].tail_end - results_[k].tail_begin;
      }
    }
    ++report_.accepted;
  } else {
    // Mis-speculation: every attempt of this segment lost. Kill them all,
    // then re-run from the true checkpoint on this thread.
    if (classes > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t c = 0; c < classes; ++c) {
        KillLocked(attempts_[AttemptIndex(k, c)].get());
      }
    }
    ShardResult rerun;
    core::SessionCheckpoint start = prev.exit;
    RunSegment(k, &start, &rerun, /*mark_start=*/true, nullptr);
    results_[k] = std::move(rerun);
    ++report_.reruns;
    report_.serial_bytes += results_[k].stats.input_bytes;
  }
  return results_[k];
}

void SpeculativeResolver::Abort() {
  std::unique_lock<std::mutex> lock(mu_);
  for (std::unique_ptr<Attempt>& a : attempts_) KillLocked(a.get());
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void MergeRunStats(core::RunStats* dst, const core::RunStats& src) {
  dst->input_bytes += src.input_bytes;
  dst->output_bytes += src.output_bytes;
  dst->search.Add(src.search);
  dst->scan_chars += src.scan_chars;
  dst->initial_jumps += src.initial_jumps;
  dst->initial_jump_chars += src.initial_jump_chars;
  dst->matches += src.matches;
  dst->false_matches += src.false_matches;
  dst->bm_searches += src.bm_searches;
  dst->cw_searches += src.cw_searches;
  dst->window_peak = std::max(dst->window_peak, src.window_peak);
}

Status ShardedRun(const core::RuntimeTables& tables, std::string_view doc,
                  OutputSink* out, core::RunStats* stats, ThreadPool* pool,
                  const ShardOptions& opts, ShardReport* report) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  if (tables.multi != nullptr) {
    return Status::InvalidArgument(
        "multi-query tables need MultiQueryShardedRun (one sink per query)");
  }
  size_t max_shards =
      opts.max_shards != 0 ? opts.max_shards
                           : static_cast<size_t>(std::max(1, pool->size()));
  std::vector<uint64_t> bounds;
  if (max_shards > 1) {
    bounds = pool->size() > 1
                 ? FindTopLevelBoundariesParallel(doc, max_shards - 1, pool,
                                                  nullptr,
                                                  tables.use_bitmap_plane)
                 : FindTopLevelBoundaries(doc, max_shards - 1,
                                          tables.use_bitmap_plane);
  }

  SpeculativeResolver::Options ropts;
  ropts.max_candidate_states = opts.max_candidate_states;
  ropts.max_buffer_bytes = opts.max_buffer_bytes;
  ropts.engine = opts.engine;
  // All attempts of the wave share one spill file; killed attempts
  // release their extents the moment they are freed.
  SpillArena arena;
  ropts.arena = &arena;
  SpeculativeResolver resolver(tables, doc, bounds, ropts);
  const size_t n = resolver.segments();
  resolver.LaunchWave(pool);

  // Sequential verification with streaming commit: each segment resolved
  // by the SpeculativeResolver (accepted attempt or synchronous re-run) is
  // installed into the ordered-commit frontier immediately, which streams
  // it into `out` and frees its buffer/spill before the next shard is even
  // verified; the rejected attempts of a resolved shard are freed at the
  // same moment. Peak resident output is therefore bounded by the
  // per-segment budget times the outstanding attempts, never by the
  // projection size.
  OrderedCommitSink commit(out, n);
  Status commit_status =
      commit.Install(0, std::move(resolver.Resolve(0).sink));
  Status final_status;
  size_t produced = n;
  for (size_t k = 1; commit_status.ok() && k < n; ++k) {
    ShardResult& prev = resolver.result(k - 1);
    if (!prev.status.ok()) {
      final_status = prev.status;
      produced = k;
      break;
    }
    if (prev.finished) {
      produced = k;  // serial run ends here; later bytes are ignored
      break;
    }
    ShardResult& r = resolver.Resolve(k);
    if (r.tail_end > r.tail_begin) {
      // In-copy hand-off: the predecessor suspended with copy bytes below
      // the boundary unflushed and the accepted attempt's output starts AT
      // the boundary. Segments install strictly in order, so the ordered
      // frontier is caught up with segment k-1 here and the tail streams
      // straight into the output between the two segments.
      commit_status = out->Append(doc.substr(
          static_cast<size_t>(r.tail_begin),
          static_cast<size_t>(r.tail_end - r.tail_begin)));
      if (!commit_status.ok()) break;
    }
    commit_status = commit.Install(k, std::move(r.sink));
  }
  // Cancel whatever the early exits above made moot (attempts past a
  // finished or failed segment) and quiesce the wave: the report's work
  // counters are mutated by in-flight attempts until they drain.
  resolver.Abort();
  if (!commit_status.ok()) {
    if (report != nullptr) *report = resolver.report();
    return commit_status;
  }
  if (produced < n) commit.Truncate(produced);
  if (final_status.ok() && produced == n &&
      !resolver.result(n - 1).status.ok()) {
    final_status = resolver.result(n - 1).status;
  }
  if (report != nullptr) *report = resolver.report();
  if (stats != nullptr) {
    std::vector<bool> visited;
    uint64_t read_end = 0;  // how far into the document reads have advanced
    for (size_t k = 0; k < produced; ++k) {
      // Attribute to each shard the document range it advanced through:
      // re-run hand-offs re-read their predecessor's overlap tail (counted
      // once), and initial jumps across a boundary leave a gap the serial
      // stream would have read and discarded (counted for parity).
      ShardResult& r = resolver.result(k);
      r.stats.input_bytes =
          r.read_end > read_end ? r.read_end - read_end : 0;
      read_end = std::max(read_end, r.read_end);
      MergeRunStats(stats, r.stats);
      if (visited.empty()) visited = r.visited;
      for (size_t i = 0; i < r.visited.size(); ++i) {
        if (r.visited[i]) visited[i] = true;
      }
    }
    stats->states_visited = 0;
    for (bool v : visited) {
      if (v) ++stats->states_visited;
    }
  }
  return final_status;
}

Status MultiQueryShardedRun(const core::RuntimeTables& tables,
                            std::string_view doc,
                            const std::vector<OutputSink*>& query_sinks,
                            std::vector<core::QueryRunStats>* query_stats,
                            core::RunStats* stats, ThreadPool* pool,
                            const ShardOptions& opts, ShardReport* report) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  if (tables.multi == nullptr) {
    return Status::InvalidArgument(
        "MultiQueryShardedRun needs multi-query product tables");
  }
  const size_t m = static_cast<size_t>(tables.multi->num_queries);
  if (query_sinks.size() != m) {
    return Status::InvalidArgument(
        "multi-query sharded run needs one sink per unique query (" +
        std::to_string(m) + "), got " + std::to_string(query_sinks.size()));
  }
  size_t max_shards =
      opts.max_shards != 0 ? opts.max_shards
                           : static_cast<size_t>(std::max(1, pool->size()));
  std::vector<uint64_t> bounds;
  if (max_shards > 1) {
    bounds = pool->size() > 1
                 ? FindTopLevelBoundariesParallel(doc, max_shards - 1, pool,
                                                  nullptr,
                                                  tables.use_bitmap_plane)
                 : FindTopLevelBoundaries(doc, max_shards - 1,
                                          tables.use_bitmap_plane);
  }

  SpeculativeResolver::Options ropts;
  ropts.max_candidate_states = opts.max_candidate_states;
  ropts.max_buffer_bytes = opts.max_buffer_bytes;
  ropts.engine = opts.engine;
  SpillArena arena;
  ropts.arena = &arena;
  SpeculativeResolver resolver(tables, doc, bounds, ropts);
  const size_t n = resolver.segments();
  resolver.LaunchWave(pool);

  // Same sequential verification as ShardedRun, but each query owns its
  // own ordered-commit frontier: the moment a segment's entry is verified,
  // its per-query SpillSinks stream into the respective query sinks and
  // are freed. Per-query matches accumulate from the resolved segments
  // only -- exactly the segments the serial run would have executed.
  std::vector<std::unique_ptr<OrderedCommitSink>> commits;
  commits.reserve(m);
  for (size_t u = 0; u < m; ++u) {
    commits.push_back(std::make_unique<OrderedCommitSink>(query_sinks[u], n));
  }
  std::vector<core::QueryRunStats> totals(m);
  Status commit_status;
  Status final_status;
  size_t produced = n;
  for (size_t k = 0; commit_status.ok() && k < n; ++k) {
    if (k > 0) {
      ShardResult& prev = resolver.result(k - 1);
      if (!prev.status.ok()) {
        final_status = prev.status;
        produced = k;
        break;
      }
      if (prev.finished) {
        produced = k;  // serial run ends here; later bytes are ignored
        break;
      }
    }
    ShardResult& r = resolver.Resolve(k);
    for (size_t u = 0; u < m && u < r.mq_stats.size(); ++u) {
      totals[u].matches += r.mq_stats[u].matches;
      totals[u].output_bytes += r.mq_stats[u].output_bytes;
    }
    for (size_t u = 0; u < m; ++u) {
      std::unique_ptr<SpillSink> seg;
      if (u < r.mq_sinks.size()) seg = std::move(r.mq_sinks[u]);
      Status s = commits[u]->Install(k, std::move(seg));
      if (commit_status.ok() && !s.ok()) commit_status = s;
    }
  }
  resolver.Abort();
  if (!commit_status.ok()) {
    if (report != nullptr) *report = resolver.report();
    return commit_status;
  }
  if (produced < n) {
    for (size_t u = 0; u < m; ++u) commits[u]->Truncate(produced);
  }
  if (final_status.ok() && produced == n &&
      !resolver.result(n - 1).status.ok()) {
    final_status = resolver.result(n - 1).status;
  }
  if (report != nullptr) *report = resolver.report();
  if (query_stats != nullptr) *query_stats = std::move(totals);
  if (stats != nullptr) {
    std::vector<bool> visited;
    uint64_t read_end = 0;
    for (size_t k = 0; k < produced; ++k) {
      ShardResult& r = resolver.result(k);
      r.stats.input_bytes =
          r.read_end > read_end ? r.read_end - read_end : 0;
      read_end = std::max(read_end, r.read_end);
      MergeRunStats(stats, r.stats);
      if (visited.empty()) visited = r.visited;
      for (size_t i = 0; i < r.visited.size(); ++i) {
        if (r.visited[i]) visited[i] = true;
      }
    }
    stats->states_visited = 0;
    for (bool v : visited) {
      if (v) ++stats->states_visited;
    }
  }
  return final_status;
}

}  // namespace smpx::parallel
