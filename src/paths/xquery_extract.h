// Projection-path extraction from XQuery expressions, after Marian &
// Simeon [5] (the algorithm the paper prescribes in Section III, Example 4:
// for XMark Q13 it yields /site/regions/australia/item/name#,
// /site/regions/australia/item/description# and /*).
//
// Supported XQuery subset (sufficient for the XMark benchmark queries and
// typical filter workloads):
//   - FLWOR: for $x in <path> (, $y in <path>)* / let $v := <expr> /
//     where <expr> / order by <expr> / return <expr>
//   - direct element constructors with embedded expressions:
//     <tag attr="{expr}"> { expr, expr } </tag>
//   - rooted paths (/a/b, //a, /a//b, *), variable paths ($x/b//c),
//     step predicates [expr], text() steps and @attr steps
//   - comparisons (=, !=, <, <=, >, >=, eq, ne, lt, le, gt, ge),
//     and/or/not, count/exists/empty/contains/sum/avg/string/data/
//     distinct-values/zero-or-one, numeric and string literals
//
// Extraction rules (following [5]):
//   - paths whose *values or subtrees* are consumed -- returned nodes,
//     constructor content, comparison operands, contains/string/data
//     arguments -- are flagged '#' (descendants required); a trailing
//     /text() step contributes '#' on its parent path;
//   - paths used purely structurally -- for-bindings, count/exists/empty
//     arguments, existence predicates -- stay unflagged;
//   - a trailing @attr step contributes the '@' flag on its parent path;
//   - "/*" is always added (the top-level node, for well-formed output).

#ifndef SMPX_PATHS_XQUERY_EXTRACT_H_
#define SMPX_PATHS_XQUERY_EXTRACT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "paths/projection_path.h"

namespace smpx::paths {

/// Extracts the projection paths for `query`. Fails with kParseError on
/// syntax outside the subset and kUnsupported for constructs whose
/// projection cannot be derived soundly here (e.g. upward axes).
Result<std::vector<ProjectionPath>> ExtractProjectionPaths(
    std::string_view query);

}  // namespace smpx::paths

#endif  // SMPX_PATHS_XQUERY_EXTRACT_H_
