#include "paths/projection_path.h"

#include "common/strings.h"

namespace smpx::paths {

Result<ProjectionPath> ProjectionPath::Parse(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) {
    return Status::InvalidArgument("empty projection path");
  }
  ProjectionPath path;
  // Trailing flags in any order.
  for (;;) {
    if (EndsWith(s, "#")) {
      path.descendants = true;
      s.remove_suffix(1);
    } else if (EndsWith(s, "@")) {
      path.attributes = true;
      s.remove_suffix(1);
    } else {
      break;
    }
  }
  if (s.empty() || s[0] != '/') {
    return Status::InvalidArgument("projection path must start with '/': '" +
                                   std::string(text) + "'");
  }
  size_t i = 0;
  while (i < s.size()) {
    // At a '/': child step, or '//' descendant step.
    PathStep step;
    ++i;  // consume '/'
    if (i < s.size() && s[i] == '/') {
      step.axis = PathStep::Axis::kDescendant;
      ++i;
    }
    if (i >= s.size()) {
      if (step.axis == PathStep::Axis::kDescendant || !path.steps.empty() ||
          i > 1) {
        // "/a/" or "//" -- dangling step.
        if (i == 1 && path.steps.empty()) break;  // bare "/"
        return Status::InvalidArgument("dangling step in projection path '" +
                                       std::string(text) + "'");
      }
      break;  // bare "/"
    }
    if (s[i] == '*') {
      step.wildcard = true;
      ++i;
    } else if (IsNameStartChar(s[i])) {
      size_t b = i;
      while (i < s.size() && IsNameChar(s[i])) ++i;
      step.name = std::string(s.substr(b, i - b));
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, s[i]) +
                                     "' in projection path '" +
                                     std::string(text) + "'");
    }
    path.steps.push_back(std::move(step));
  }
  return path;
}

Result<std::vector<ProjectionPath>> ProjectionPath::ParseList(
    std::string_view text) {
  std::vector<ProjectionPath> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || IsXmlWhitespace(text[i])) {
      std::string_view piece = text.substr(start, i - start);
      start = i + 1;
      if (StripWhitespace(piece).empty()) continue;
      SMPX_ASSIGN_OR_RETURN(ProjectionPath p, Parse(piece));
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::string ProjectionPath::ToString() const {
  if (steps.empty()) {
    return std::string("/") + (descendants ? "#" : "") +
           (attributes ? "@" : "");
  }
  std::string out;
  for (const PathStep& s : steps) {
    out += s.axis == PathStep::Axis::kDescendant ? "//" : "/";
    out += s.wildcard ? "*" : s.name;
  }
  if (descendants) out += "#";
  if (attributes) out += "@";
  return out;
}

ProjectionPath ProjectionPath::Parent() const {
  ProjectionPath p;
  p.steps.assign(steps.begin(), steps.end() - 1);
  return p;
}

bool ProjectionPath::operator==(const ProjectionPath& o) const {
  if (descendants != o.descendants || attributes != o.attributes ||
      steps.size() != o.steps.size()) {
    return false;
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].axis != o.steps[i].axis ||
        steps[i].wildcard != o.steps[i].wildcard ||
        steps[i].name != o.steps[i].name) {
      return false;
    }
  }
  return true;
}

}  // namespace smpx::paths
