#include "paths/xquery_extract.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace smpx::paths {
namespace {

/// Paths describing the nodes an expression evaluates to. Boolean/numeric
/// expressions have none.
using PathSet = std::vector<ProjectionPath>;

class Extractor {
 public:
  explicit Extractor(std::string_view s) : s_(s) {}

  Result<std::vector<ProjectionPath>> Run() {
    SkipWs();
    SMPX_ASSIGN_OR_RETURN(PathSet result, ParseExprSequence());
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing content after query");
    }
    // The query's own results are materialized: flag them '#'.
    EmitValueUse(result);
    // "/*" is always extracted (Section III).
    ProjectionPath star;
    PathStep step;
    step.wildcard = true;
    star.steps.push_back(step);
    Emit(star);
    // Deduplicate, preserving first-seen order.
    std::vector<ProjectionPath> unique;
    for (const ProjectionPath& p : out_) {
      if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
        unique.push_back(p);
      }
    }
    return unique;
  }

 private:
  // --- lexing helpers ------------------------------------------------------

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in XQuery");
  }

  void SkipWs() {
    for (;;) {
      while (pos_ < s_.size() && IsXmlWhitespace(s_[pos_])) ++pos_;
      if (StartsWith(s_.substr(pos_), "(:")) {  // XQuery comment
        size_t close = s_.find(":)", pos_ + 2);
        pos_ = close == std::string_view::npos ? s_.size() : close + 2;
        continue;
      }
      return;
    }
  }

  bool Peek(std::string_view kw) {
    SkipWs();
    return StartsWith(s_.substr(pos_), kw);
  }

  /// Matches a keyword followed by a non-name character.
  bool PeekWord(std::string_view kw) {
    SkipWs();
    if (!StartsWith(s_.substr(pos_), kw)) return false;
    size_t after = pos_ + kw.size();
    return after >= s_.size() || !IsNameChar(s_[after]);
  }

  bool Consume(std::string_view kw) {
    if (!Peek(kw)) return false;
    pos_ += kw.size();
    return true;
  }

  bool ConsumeWord(std::string_view kw) {
    if (!PeekWord(kw)) return false;
    pos_ += kw.size();
    return true;
  }

  Result<std::string> ReadName() {
    SkipWs();
    if (pos_ >= s_.size() || !IsNameStartChar(s_[pos_])) {
      return Err("expected name");
    }
    size_t b = pos_;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) ++pos_;
    return std::string(s_.substr(b, pos_ - b));
  }

  // --- path emission -------------------------------------------------------

  void Emit(const ProjectionPath& p) { out_.push_back(p); }

  void EmitStructuralUse(const PathSet& set) {
    for (const ProjectionPath& p : set) Emit(p);
  }

  void EmitValueUse(const PathSet& set) {
    for (ProjectionPath p : set) {
      // An attribute-final path's value is the attribute itself; the
      // element subtree is not required.
      if (!p.attributes) p.descendants = true;
      Emit(p);
    }
  }

  // --- grammar -------------------------------------------------------------

  /// expr (',' expr)*
  Result<PathSet> ParseExprSequence() {
    SMPX_ASSIGN_OR_RETURN(PathSet acc, ParseOrExpr());
    while (Consume(",")) {
      SMPX_ASSIGN_OR_RETURN(PathSet next, ParseOrExpr());
      acc.insert(acc.end(), next.begin(), next.end());
    }
    return acc;
  }

  Result<PathSet> ParseOrExpr() {
    SMPX_ASSIGN_OR_RETURN(PathSet acc, ParseAndExpr());
    while (ConsumeWord("or")) {
      SMPX_ASSIGN_OR_RETURN(PathSet next, ParseAndExpr());
      // Boolean context: operands are existence/value uses already emitted.
      EmitStructuralUse(acc);
      EmitStructuralUse(next);
      acc.clear();
    }
    return acc;
  }

  Result<PathSet> ParseAndExpr() {
    SMPX_ASSIGN_OR_RETURN(PathSet acc, ParseComparison());
    while (ConsumeWord("and")) {
      SMPX_ASSIGN_OR_RETURN(PathSet next, ParseComparison());
      EmitStructuralUse(acc);
      EmitStructuralUse(next);
      acc.clear();
    }
    return acc;
  }

  bool ConsumeComparisonOp() {
    for (const char* op : {"!=", "<=", ">=", "=", "<", ">"}) {
      if (Consume(op)) return true;
    }
    for (const char* op : {"eq", "ne", "lt", "le", "gt", "ge"}) {
      if (PeekWord(op)) {
        pos_ += 2;
        return true;
      }
    }
    return false;
  }

  Result<PathSet> ParseComparison() {
    SMPX_ASSIGN_OR_RETURN(PathSet left, ParseAdditive());
    SkipWs();
    if (ConsumeComparisonOp()) {
      SMPX_ASSIGN_OR_RETURN(PathSet right, ParseAdditive());
      // Comparison consumes the operand values.
      EmitValueUse(left);
      EmitValueUse(right);
      return PathSet{};
    }
    return left;
  }

  Result<PathSet> ParseAdditive() {
    SMPX_ASSIGN_OR_RETURN(PathSet acc, ParsePrimary());
    for (;;) {
      SkipWs();
      // Arithmetic: '-' only when clearly an operator (avoid name chars);
      // values of both sides are consumed.
      if (Consume("+") || ConsumeWord("div") || ConsumeWord("mod") ||
          ConsumeWord("idiv") || Consume("*") || Consume("-")) {
        SMPX_ASSIGN_OR_RETURN(PathSet next, ParsePrimary());
        EmitValueUse(acc);
        EmitValueUse(next);
        acc.clear();
        continue;
      }
      return acc;
    }
  }

  Result<PathSet> ParsePrimary() {
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end of query");

    if (PeekWord("for") || PeekWord("let") || PeekWord("some") ||
        PeekWord("every")) {
      return ParseFlwor();
    }
    if (PeekWord("if")) return ParseConditional();
    if (Peek("<")) return ParseConstructor();
    if (Consume("(")) {
      if (Consume(")")) return PathSet{};  // empty sequence
      SMPX_ASSIGN_OR_RETURN(PathSet inner, ParseExprSequence());
      if (!Consume(")")) return Err("expected ')'");
      return inner;
    }
    if (Peek("\"") || Peek("'")) {
      SMPX_RETURN_IF_ERROR(SkipStringLiteral());
      return PathSet{};
    }
    if (pos_ < s_.size() &&
        (s_[pos_] == '.' || (s_[pos_] >= '0' && s_[pos_] <= '9'))) {
      while (pos_ < s_.size() &&
             ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
              s_[pos_] == 'e' || s_[pos_] == 'E')) {
        ++pos_;
      }
      return PathSet{};
    }
    if (Peek("$") || Peek("/")) return ParsePath();

    // Function call or a bare relative path (not supported at top level).
    size_t save = pos_;
    auto name = ReadName();
    if (!name.ok()) return Err("expected expression");
    SkipWs();
    if (Consume("(")) return ParseFunctionArgs(*name);
    pos_ = save;
    return Status::Unsupported(
        "bare relative paths are only supported inside predicates");
  }

  Status SkipStringLiteral() {
    SkipWs();
    char quote = s_[pos_++];
    while (pos_ < s_.size() && s_[pos_] != quote) ++pos_;
    if (pos_ >= s_.size()) return Err("unterminated string literal");
    ++pos_;
    return Status::Ok();
  }

  Result<PathSet> ParseConditional() {
    if (!ConsumeWord("if") || !Consume("(")) return Err("malformed if");
    SMPX_ASSIGN_OR_RETURN(PathSet cond, ParseExprSequence());
    EmitStructuralUse(cond);
    if (!Consume(")")) return Err("expected ')' after if condition");
    if (!ConsumeWord("then")) return Err("expected 'then'");
    SMPX_ASSIGN_OR_RETURN(PathSet then_set, ParseOrExpr());
    PathSet result = then_set;
    if (ConsumeWord("else")) {
      SMPX_ASSIGN_OR_RETURN(PathSet else_set, ParseOrExpr());
      result.insert(result.end(), else_set.begin(), else_set.end());
    }
    return result;
  }

  Result<PathSet> ParseFunctionArgs(const std::string& fn) {
    std::vector<PathSet> args;
    SkipWs();
    if (!Consume(")")) {
      for (;;) {
        SMPX_ASSIGN_OR_RETURN(PathSet arg, ParseOrExpr());
        args.push_back(std::move(arg));
        if (Consume(")")) break;
        if (!Consume(",")) return Err("expected ',' in function arguments");
      }
    }
    // Structural functions need the nodes, not their contents.
    if (fn == "count" || fn == "exists" || fn == "empty" || fn == "not" ||
        fn == "position" || fn == "last" || fn == "zero-or-one" ||
        fn == "boolean") {
      for (const PathSet& a : args) EmitStructuralUse(a);
      return PathSet{};
    }
    // Value-consuming functions.
    if (fn == "contains" || fn == "string" || fn == "data" || fn == "sum" ||
        fn == "avg" || fn == "min" || fn == "max" || fn == "number" ||
        fn == "string-length" || fn == "distinct-values" ||
        fn == "starts-with" || fn == "substring" || fn == "concat" ||
        fn == "string-join" || fn == "normalize-space") {
      for (const PathSet& a : args) EmitValueUse(a);
      return PathSet{};
    }
    return Status::Unsupported("function '" + fn +
                               "' is outside the supported subset");
  }

  Result<PathSet> ParseFlwor() {
    // Bindings are scoped: remember what to restore.
    std::vector<std::pair<std::string, PathSet>> saved;
    bool quantified = false;

    for (;;) {
      if (ConsumeWord("for") || ConsumeWord("let")) {
        bool is_let = s_[pos_ - 1] == 't';  // crude but unambiguous here
        do {
          if (!Consume("$")) return Err("expected variable");
          SMPX_ASSIGN_OR_RETURN(std::string var, ReadName());
          PathSet binding;
          if (is_let) {
            if (!Consume(":=")) return Err("expected ':=' in let");
            SMPX_ASSIGN_OR_RETURN(binding, ParseOrExpr());
          } else {
            ConsumeWord("at");  // positional variable: '$p in'
            if (Peek("$") && !PeekWord("in")) {
              // 'for $x at $p in ...': skip the positional variable.
              Consume("$");
              SMPX_RETURN_IF_ERROR(ReadName().status());
            }
            if (!ConsumeWord("in")) return Err("expected 'in' in for");
            SMPX_ASSIGN_OR_RETURN(binding, ParseOrExpr());
            // Iterating navigates the nodes (structural use).
            EmitStructuralUse(binding);
          }
          saved.push_back({var, env_.count(var) ? env_[var] : PathSet{}});
          env_[var] = binding;
        } while (Consume(","));
        continue;
      }
      if (ConsumeWord("some") || ConsumeWord("every")) {
        quantified = true;
        do {
          if (!Consume("$")) return Err("expected variable");
          SMPX_ASSIGN_OR_RETURN(std::string var, ReadName());
          if (!ConsumeWord("in")) return Err("expected 'in'");
          SMPX_ASSIGN_OR_RETURN(PathSet binding, ParseOrExpr());
          EmitStructuralUse(binding);
          saved.push_back({var, env_.count(var) ? env_[var] : PathSet{}});
          env_[var] = binding;
        } while (Consume(","));
        continue;
      }
      break;
    }

    PathSet result;
    if (quantified) {
      if (!ConsumeWord("satisfies")) return Err("expected 'satisfies'");
      SMPX_ASSIGN_OR_RETURN(PathSet body, ParseOrExpr());
      EmitStructuralUse(body);
    } else {
      if (ConsumeWord("where")) {
        SMPX_ASSIGN_OR_RETURN(PathSet cond, ParseExprUntilClause());
        EmitStructuralUse(cond);
      }
      if (ConsumeWord("order")) {
        if (!ConsumeWord("by")) return Err("expected 'by'");
        SMPX_ASSIGN_OR_RETURN(PathSet keys, ParseExprSequence());
        EmitValueUse(keys);  // sorting consumes values
        ConsumeWord("ascending");
        ConsumeWord("descending");
      }
      if (!ConsumeWord("return")) return Err("expected 'return'");
      SMPX_ASSIGN_OR_RETURN(result, ParseOrExpr());
    }

    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      if (it->second.empty()) {
        env_.erase(it->first);
      } else {
        env_[it->first] = it->second;
      }
    }
    return result;
  }

  /// A where-clause expression (stops before order/return keywords, which
  /// ParseOrExpr handles naturally since they are words, not operators).
  Result<PathSet> ParseExprUntilClause() { return ParseOrExpr(); }

  Result<PathSet> ParseConstructor() {
    // '<tag attr="..{expr}..." ...> content </tag>' or '<tag .../>'.
    if (!Consume("<")) return Err("expected '<'");
    SMPX_ASSIGN_OR_RETURN(std::string tag, ReadName());
    // Attributes.
    for (;;) {
      SkipWs();
      if (Consume("/>")) return PathSet{};
      if (Consume(">")) break;
      SMPX_RETURN_IF_ERROR(ReadName().status());
      if (!Consume("=")) return Err("expected '=' in constructor attribute");
      SkipWs();
      if (pos_ >= s_.size() || (s_[pos_] != '"' && s_[pos_] != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = s_[pos_++];
      while (pos_ < s_.size() && s_[pos_] != quote) {
        if (s_[pos_] == '{') {
          ++pos_;
          SMPX_ASSIGN_OR_RETURN(PathSet inner, ParseExprSequence());
          EmitValueUse(inner);
          if (!Consume("}")) return Err("expected '}' in attribute");
        } else {
          ++pos_;
        }
      }
      if (pos_ >= s_.size()) return Err("unterminated attribute value");
      ++pos_;
    }
    // Content: literal text, nested constructors, embedded expressions.
    std::string close = "</" + tag;
    for (;;) {
      if (pos_ >= s_.size()) return Err("unterminated constructor <" + tag);
      if (StartsWith(s_.substr(pos_), close)) {
        pos_ += close.size();
        SkipWs();
        if (!Consume(">")) return Err("expected '>' in closing tag");
        return PathSet{};
      }
      if (s_[pos_] == '{') {
        ++pos_;
        SMPX_ASSIGN_OR_RETURN(PathSet inner, ParseExprSequence());
        EmitValueUse(inner);
        if (!Consume("}")) return Err("expected '}'");
        continue;
      }
      if (s_[pos_] == '<' && pos_ + 1 < s_.size() &&
          IsNameStartChar(s_[pos_ + 1])) {
        SMPX_RETURN_IF_ERROR(ParseConstructor().status());
        continue;
      }
      ++pos_;  // literal content
    }
  }

  /// Rooted or variable-relative path, optionally with predicates, text()
  /// and @attr steps.
  Result<PathSet> ParsePath() {
    PathSet bases;
    bool rooted = false;
    if (Consume("$")) {
      SMPX_ASSIGN_OR_RETURN(std::string var, ReadName());
      auto it = env_.find(var);
      if (it == env_.end()) {
        return Status::Unsupported("unbound variable $" + var);
      }
      bases = it->second;
    } else {
      rooted = true;
      bases.push_back(ProjectionPath{});
    }

    for (;;) {
      SkipWs();
      PathStep::Axis axis;
      if (Consume("//")) {
        axis = PathStep::Axis::kDescendant;
      } else if (Consume("/")) {
        axis = PathStep::Axis::kChild;
      } else {
        break;
      }
      SkipWs();
      if (ConsumeWord("text()")) {
        // text() consumes the parent's character data: '#' on the base.
        for (ProjectionPath& p : bases) p.descendants = true;
        return bases;
      }
      if (Consume("@")) {
        SMPX_RETURN_IF_ERROR(ReadName().status());
        for (ProjectionPath& p : bases) p.attributes = true;
        return bases;
      }
      if (ConsumeWord("descendant-or-self::node()")) {
        // The expanded form of '//': treat the next '/step' as descendant.
        if (!Consume("/")) return Err("expected '/' after dos::node()");
        axis = PathStep::Axis::kDescendant;
        SkipWs();
      }
      PathStep step;
      step.axis = axis;
      if (Consume("*")) {
        step.wildcard = true;
      } else {
        SMPX_ASSIGN_OR_RETURN(step.name, ReadName());
        if (Peek("(")) {
          return Status::Unsupported("node test '" + step.name +
                                     "()' is outside the subset");
        }
      }
      for (ProjectionPath& p : bases) p.steps.push_back(step);

      // Predicates: relative paths inside resolve against the path so far.
      while (Consume("[")) {
        SMPX_RETURN_IF_ERROR(ParsePredicate(bases));
        if (!Consume("]")) return Err("expected ']'");
      }
    }
    if (rooted && bases.size() == 1 && bases[0].steps.empty()) {
      return Err("bare '/' is not a useful projection source");
    }
    return bases;
  }

  /// Inside '[...]': a positional predicate (number, last()), or an
  /// expression whose relative paths extend `context`.
  Status ParsePredicate(const PathSet& context) {
    SkipWs();
    // Positional predicates need no extra paths.
    if (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      return Status::Ok();
    }
    if (ConsumeWord("last()")) return Status::Ok();
    if (ConsumeWord("position()")) {
      // position() = N
      if (ConsumeComparisonOp()) {
        SkipWs();
        while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
      }
      return Status::Ok();
    }
    // General expression with the context paths bound to a fresh variable:
    // rewrite-free approach -- temporarily bind "." semantics by extending
    // the environment under a reserved name used by ParsePredicateExpr.
    return ParsePredicateExpr(context);
  }

  /// Conservative predicate handling: relative paths (name, @attr, text())
  /// extend the context; the predicate consumes their values.
  Status ParsePredicateExpr(const PathSet& context) {
    // Parse:  relpath (op literal)? (('and'|'or') ...)*
    for (;;) {
      SkipWs();
      PathSet operand = context;
      if (Consume("@")) {
        SMPX_RETURN_IF_ERROR(ReadName().status());
        for (ProjectionPath& p : operand) p.attributes = true;
        SkipWs();
        if (ConsumeComparisonOp()) {
          SkipWs();
          if (Peek("\"") || Peek("'")) {
            SMPX_RETURN_IF_ERROR(SkipStringLiteral());
          } else {
            while (pos_ < s_.size() &&
                   ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.')) {
              ++pos_;
            }
          }
        }
        EmitStructuralUse(operand);
      } else if (PeekWord("contains")) {
        pos_ += 8;
        if (!Consume("(")) return Err("expected '(' after contains");
        SMPX_RETURN_IF_ERROR(ParsePredicateExpr(context));
        if (!Consume(",")) return Err("expected ',' in contains");
        SkipWs();
        SMPX_RETURN_IF_ERROR(SkipStringLiteral());
        if (!Consume(")")) return Err("expected ')'");
      } else if (ConsumeWord("not")) {
        if (!Consume("(")) return Err("expected '(' after not");
        SMPX_RETURN_IF_ERROR(ParsePredicateExpr(context));
        if (!Consume(")")) return Err("expected ')'");
      } else if (ConsumeWord("text()")) {
        PathSet operand2 = context;
        SkipWs();
        if (ConsumeComparisonOp()) {
          SkipWs();
          SMPX_RETURN_IF_ERROR(SkipStringLiteral());
        }
        EmitValueUse(operand2);
      } else if (pos_ < s_.size() && IsNameStartChar(s_[pos_])) {
        // Relative path: step ('/' step)*, maybe ending in text()/@attr.
        bool value_use = false;
        for (;;) {
          if (ConsumeWord("text()")) {
            value_use = true;
            break;
          }
          if (Consume("@")) {
            SMPX_RETURN_IF_ERROR(ReadName().status());
            for (ProjectionPath& p : operand) p.attributes = true;
            break;
          }
          PathStep step;
          step.axis = PathStep::Axis::kChild;
          SMPX_ASSIGN_OR_RETURN(step.name, ReadName());
          for (ProjectionPath& p : operand) p.steps.push_back(step);
          if (Consume("//")) {
            // e.g. MedlineJournalInfo//text()
            if (ConsumeWord("text()")) {
              value_use = true;
              break;
            }
            return Status::Unsupported(
                "descendant steps inside predicates are only supported "
                "before text()");
          }
          if (!Consume("/")) break;
        }
        SkipWs();
        if (ConsumeComparisonOp()) {
          SkipWs();
          if (Peek("\"") || Peek("'")) {
            SMPX_RETURN_IF_ERROR(SkipStringLiteral());
          } else {
            while (pos_ < s_.size() &&
                   ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.')) {
              ++pos_;
            }
          }
          value_use = true;
        }
        if (value_use) {
          EmitValueUse(operand);
        } else {
          EmitStructuralUse(operand);
        }
      } else {
        return Err("unsupported predicate form");
      }
      SkipWs();
      if (ConsumeWord("and") || ConsumeWord("or")) continue;
      return Status::Ok();
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  std::map<std::string, PathSet> env_;
  std::vector<ProjectionPath> out_;
};

}  // namespace

Result<std::vector<ProjectionPath>> ExtractProjectionPaths(
    std::string_view query) {
  std::string_view q = StripWhitespace(query);
  // Allow the paper's "<q>{ ... }</q>" wrapper form directly.
  Extractor extractor(q);
  return extractor.Run();
}

}  // namespace smpx::paths
