// Relevance of document branches according to Definition 3 of the paper:
//   C1 -- the leaf is matched by a path in P+ (prefix closure of P),
//   C2 -- some node of the branch is matched by a '#'-flagged path,
//   C3 -- substituting some tag t at the leaf, both a child-form path
//         (.../t) and a descendant-form path (...//t) match; such nodes
//         shield vital ancestor-descendant relationships (Example 6).

#ifndef SMPX_PATHS_RELEVANCE_H_
#define SMPX_PATHS_RELEVANCE_H_

#include <string>
#include <vector>

#include "paths/path_nfa.h"
#include "paths/projection_path.h"

namespace smpx::paths {

/// Computes P+ -- `paths` plus every proper step-prefix (flags dropped on
/// prefixes), deduplicated. The result contains the originals first.
std::vector<ProjectionPath> PrefixClosure(
    const std::vector<ProjectionPath>& paths);

/// Per-branch relevance verdict.
struct BranchRelevance {
  bool c1 = false;
  bool c2 = false;
  bool c3 = false;
  /// The leaf itself is matched by a '#'-flagged path: the state pair gets
  /// the copy on / copy off action (the whole subtree is required).
  bool leaf_hash = false;
  /// The leaf is matched by an '@'-flagged path: copy the attributes.
  bool leaf_attrs = false;

  bool relevant() const { return c1 || c2 || c3; }
};

/// Evaluates Definition 3 for document branches. `alphabet` is the set of
/// candidate tags for C3 (all element names of the DTD).
class RelevanceAnalyzer {
 public:
  RelevanceAnalyzer(std::vector<ProjectionPath> paths,
                    std::vector<std::string> alphabet);

  /// Relevance of the element node with this branch (root..self labels).
  /// The empty branch is the document node, always relevant via "/".
  BranchRelevance Analyze(const std::vector<std::string>& branch) const;

  /// Relevance of a text token whose parent element has this branch:
  /// text nodes carry no label, so only C2 over the parent branch applies.
  bool TextRelevant(const std::vector<std::string>& parent_branch) const;

  /// The closure P+ in use.
  const std::vector<ProjectionPath>& closure() const { return closure_; }
  /// The original paths P.
  const std::vector<ProjectionPath>& paths() const { return paths_; }

  // --- low-level hooks for DFA-caching traversals --------------------------

  /// The evaluator over P+ (state sets map 1:1 to closure()).
  const PathSetEvaluator& evaluator() const { return evaluator_; }
  /// True iff some '#'-flagged path accepts in `state`.
  bool AnyHashAccepting(const PathSetEvaluator::State& state) const;
  /// Classifies a node given its post-label state, the parent's state (for
  /// C3 substitution) and the C2 flag accumulated so far (which must
  /// already include `state` itself).
  BranchRelevance Classify(const PathSetEvaluator::State& state,
                           const PathSetEvaluator::State& parent_state,
                           bool c2_so_far, bool at_document_node) const;

 private:
  friend class IncrementalRelevance;

  std::vector<ProjectionPath> paths_;
  std::vector<ProjectionPath> closure_;
  std::vector<std::string> alphabet_;
  PathSetEvaluator evaluator_;        // over closure_
  std::vector<bool> is_hash_;         // per closure entry
  std::vector<bool> is_attr_;         // per closure entry
  // Last-step form per closure entry; empty paths have neither form.
  std::vector<bool> child_form_;
  std::vector<bool> desc_form_;
};

/// Derives a sufficient C3 candidate alphabet from the paths themselves:
/// the last-step names of all paths plus a fresh sentinel covering
/// wildcard-ending forms. Useful when no DTD is at hand (the tokenizing
/// projector baseline).
std::vector<std::string> DeriveC3Alphabet(
    const std::vector<ProjectionPath>& paths);

/// Stack-shaped incremental interface to RelevanceAnalyzer for document
/// traversals: Push/Pop element labels as the document is walked; Current()
/// gives the relevance of the node on top of the stack in O(paths * C3
/// alphabet) instead of re-walking the branch.
class IncrementalRelevance {
 public:
  /// `analyzer` must outlive this object.
  explicit IncrementalRelevance(const RelevanceAnalyzer* analyzer);

  void Push(std::string_view label);
  void Pop();
  /// Depth of the stack (0 = document node).
  size_t depth() const { return states_.size() - 1; }

  /// Relevance of the current node (document node at depth 0).
  BranchRelevance Current() const;
  /// C2 for text children of the current node.
  bool TextRelevantHere() const { return c2_stack_.back(); }

 private:
  const RelevanceAnalyzer* analyzer_;
  std::vector<PathSetEvaluator::State> states_;
  std::vector<bool> c2_stack_;  // C2 accumulated up to each depth
};

}  // namespace smpx::paths

#endif  // SMPX_PATHS_RELEVANCE_H_
