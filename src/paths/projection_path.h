// Projection paths (paper Section III, following Marian & Simeon [5]):
// sequences of downward XPath steps without predicates, optionally flagged
// with '#' ("descendants of selected nodes are also required"). We add an
// '@' flag marking that the selected nodes' attributes are required, which
// the paper handles implicitly ("possibly also copying the attributes ...
// depending on the matched projection paths").

#ifndef SMPX_PATHS_PROJECTION_PATH_H_
#define SMPX_PATHS_PROJECTION_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smpx::paths {

/// One navigation step.
struct PathStep {
  enum class Axis : unsigned char {
    kChild,       ///< /name
    kDescendant,  ///< //name
  };

  Axis axis = Axis::kChild;
  std::string name;     ///< element name; empty when wildcard
  bool wildcard = false;

  /// True iff this step's node test accepts `label`.
  bool Accepts(std::string_view label) const {
    return wildcard || name == label;
  }
};

/// A parsed projection path such as "/site//item/description#".
struct ProjectionPath {
  std::vector<PathStep> steps;
  bool descendants = false;  ///< '#': keep whole subtrees of selected nodes
  bool attributes = false;   ///< '@': keep attributes of selected nodes

  /// Parses "/a/b", "//a", "/a//b#", "/*", "/a/b#@" ... The empty path "/"
  /// (selecting the document node) has zero steps.
  static Result<ProjectionPath> Parse(std::string_view text);

  /// Parses a whitespace/newline-separated list of paths.
  static Result<std::vector<ProjectionPath>> ParseList(std::string_view text);

  std::string ToString() const;

  /// The path with its last step removed (flags dropped). Precondition:
  /// at least one step.
  ProjectionPath Parent() const;

  bool operator==(const ProjectionPath& o) const;
};

}  // namespace smpx::paths

#endif  // SMPX_PATHS_PROJECTION_PATH_H_
