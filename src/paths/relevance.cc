#include "paths/relevance.h"

#include <algorithm>

namespace smpx::paths {

std::vector<ProjectionPath> PrefixClosure(
    const std::vector<ProjectionPath>& paths) {
  std::vector<ProjectionPath> out;
  auto add = [&out](const ProjectionPath& p) {
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  };
  for (const ProjectionPath& p : paths) add(p);
  for (const ProjectionPath& p : paths) {
    ProjectionPath cur = p;
    while (!cur.steps.empty()) {
      cur = cur.Parent();
      add(cur);
    }
  }
  return out;
}

RelevanceAnalyzer::RelevanceAnalyzer(std::vector<ProjectionPath> paths,
                                     std::vector<std::string> alphabet)
    : paths_(std::move(paths)),
      closure_(PrefixClosure(paths_)),
      alphabet_(std::move(alphabet)),
      evaluator_(&closure_) {
  is_hash_.reserve(closure_.size());
  for (const ProjectionPath& p : closure_) {
    is_hash_.push_back(p.descendants);
    is_attr_.push_back(p.attributes);
    bool child = false;
    bool desc = false;
    if (!p.steps.empty()) {
      child = p.steps.back().axis == PathStep::Axis::kChild;
      desc = p.steps.back().axis == PathStep::Axis::kDescendant;
    }
    child_form_.push_back(child);
    desc_form_.push_back(desc);
  }
}

BranchRelevance RelevanceAnalyzer::Analyze(
    const std::vector<std::string>& branch) const {
  BranchRelevance out;

  // Walk the branch, tracking C2 (a '#'-path matching any prefix) along the
  // way, and keep the evaluator state *before* the leaf for C3.
  PathSetEvaluator::State state = evaluator_.Initial();
  PathSetEvaluator::State before_leaf = state;
  for (size_t i = 0; i < branch.size(); ++i) {
    if (i + 1 == branch.size()) before_leaf = state;
    evaluator_.Step(branch[i], &state);
    for (size_t p = 0; p < closure_.size(); ++p) {
      if (is_hash_[p] && evaluator_.PathAccepts(p, state)) out.c2 = true;
    }
  }
  if (branch.empty()) {
    // The document node: matched by the empty path "/", always in P+.
    out.c1 = true;
    for (size_t p = 0; p < closure_.size(); ++p) {
      if (closure_[p].steps.empty() && is_hash_[p] &&
          evaluator_.PathAccepts(p, state)) {
        out.c2 = true;
        out.leaf_hash = true;
      }
    }
    return out;
  }

  // C1 and leaf flags from the full-branch state.
  for (size_t p = 0; p < closure_.size(); ++p) {
    if (!evaluator_.PathAccepts(p, state)) continue;
    out.c1 = true;
    if (is_hash_[p]) out.leaf_hash = true;
    if (is_attr_[p]) out.leaf_attrs = true;
  }

  // C3: substitute each candidate tag t at the leaf; require a child-form
  // and a descendant-form path to both match.
  if (!out.c1) {
    for (const std::string& t : alphabet_) {
      PathSetEvaluator::State sub = before_leaf;
      evaluator_.Step(t, &sub);
      bool child = false;
      bool desc = false;
      for (size_t p = 0; p < closure_.size() && !(child && desc); ++p) {
        if (!evaluator_.PathAccepts(p, sub)) continue;
        child = child || child_form_[p];
        desc = desc || desc_form_[p];
      }
      if (child && desc) {
        out.c3 = true;
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> DeriveC3Alphabet(
    const std::vector<ProjectionPath>& paths) {
  std::vector<std::string> out;
  bool any_wildcard_last = false;
  for (const ProjectionPath& p : PrefixClosure(paths)) {
    if (p.steps.empty()) continue;
    const PathStep& last = p.steps.back();
    if (last.wildcard) {
      any_wildcard_last = true;
    } else if (std::find(out.begin(), out.end(), last.name) == out.end()) {
      out.push_back(last.name);
    }
  }
  if (any_wildcard_last) {
    out.push_back("__smpx_c3_fresh__");  // a tag matched only by wildcards
  }
  return out;
}

IncrementalRelevance::IncrementalRelevance(const RelevanceAnalyzer* analyzer)
    : analyzer_(analyzer) {
  states_.push_back(analyzer_->evaluator_.Initial());
  c2_stack_.push_back(false);
}

void IncrementalRelevance::Push(std::string_view label) {
  PathSetEvaluator::State next = states_.back();
  analyzer_->evaluator_.Step(label, &next);
  bool c2 = c2_stack_.back();
  if (!c2) {
    for (size_t p = 0; p < analyzer_->closure_.size(); ++p) {
      if (analyzer_->is_hash_[p] &&
          analyzer_->evaluator_.PathAccepts(p, next)) {
        c2 = true;
        break;
      }
    }
  }
  states_.push_back(std::move(next));
  c2_stack_.push_back(c2);
}

void IncrementalRelevance::Pop() {
  states_.pop_back();
  c2_stack_.pop_back();
}

BranchRelevance IncrementalRelevance::Current() const {
  if (states_.size() == 1) {
    return analyzer_->Classify(states_.back(), states_.back(),
                               c2_stack_.back(), /*at_document_node=*/true);
  }
  return analyzer_->Classify(states_.back(), states_[states_.size() - 2],
                             c2_stack_.back(), /*at_document_node=*/false);
}

bool RelevanceAnalyzer::AnyHashAccepting(
    const PathSetEvaluator::State& state) const {
  for (size_t p = 0; p < closure_.size(); ++p) {
    if (is_hash_[p] && evaluator_.PathAccepts(p, state)) return true;
  }
  return false;
}

BranchRelevance RelevanceAnalyzer::Classify(
    const PathSetEvaluator::State& state,
    const PathSetEvaluator::State& parent_state, bool c2_so_far,
    bool at_document_node) const {
  BranchRelevance out;
  out.c2 = c2_so_far;
  if (at_document_node) {
    out.c1 = true;  // matched by "/"
    return out;
  }
  for (size_t p = 0; p < closure_.size(); ++p) {
    if (!evaluator_.PathAccepts(p, state)) continue;
    out.c1 = true;
    if (is_hash_[p]) out.leaf_hash = true;
    if (is_attr_[p]) out.leaf_attrs = true;
  }
  if (!out.c1) {
    for (const std::string& t : alphabet_) {
      PathSetEvaluator::State sub = parent_state;
      evaluator_.Step(t, &sub);
      bool child = false;
      bool desc = false;
      for (size_t p = 0; p < closure_.size() && !(child && desc); ++p) {
        if (!evaluator_.PathAccepts(p, sub)) continue;
        child = child || child_form_[p];
        desc = desc || desc_form_[p];
      }
      if (child && desc) {
        out.c3 = true;
        break;
      }
    }
  }
  return out;
}

bool RelevanceAnalyzer::TextRelevant(
    const std::vector<std::string>& parent_branch) const {
  PathSetEvaluator::State state = evaluator_.Initial();
  for (size_t i = 0; i < parent_branch.size(); ++i) {
    evaluator_.Step(parent_branch[i], &state);
    for (size_t p = 0; p < closure_.size(); ++p) {
      if (is_hash_[p] && evaluator_.PathAccepts(p, state)) return true;
    }
  }
  return false;
}

}  // namespace smpx::paths
