// Incremental evaluation of projection-path sets over document branches
// (root-to-node label sequences). Each path is an NFA whose states are step
// indices; a branch is accepted when the final state is active after the
// leaf label. Supports the prefix-closure P+ and per-prefix acceptance
// queries needed by Definition 3.

#ifndef SMPX_PATHS_PATH_NFA_H_
#define SMPX_PATHS_PATH_NFA_H_

#include <string>
#include <string_view>
#include <vector>

#include "paths/projection_path.h"

namespace smpx::paths {

/// NFA state sets for one path; states are "next step to match" indices,
/// 0..steps.size() (the latter = accepted).
class PathNfa {
 public:
  explicit PathNfa(const ProjectionPath* path);

  /// Active state set after consuming no labels (document node).
  std::vector<bool> InitialStates() const;

  /// Advances `states` by one label, in place.
  void Step(std::string_view label, std::vector<bool>* states) const;

  /// True iff the accept state is active.
  bool Accepts(const std::vector<bool>& states) const {
    return states[path_->steps.size()];
  }

  const ProjectionPath& path() const { return *path_; }

 private:
  const ProjectionPath* path_;
};

/// Convenience: does `path` select the node with this branch?
bool PathMatchesBranch(const ProjectionPath& path,
                       const std::vector<std::string>& branch);

/// A set of paths evaluated in lockstep over a branch, exposing which paths
/// accept after every prefix. This is the workhorse behind relevance
/// analysis (relevance.h) and the projection-safety oracle (query module).
class PathSetEvaluator {
 public:
  /// `paths` must outlive the evaluator.
  explicit PathSetEvaluator(const std::vector<ProjectionPath>* paths);

  /// A snapshot of NFA state sets for all paths.
  struct State {
    std::vector<std::vector<bool>> sets;
  };

  State Initial() const;
  void Step(std::string_view label, State* state) const;

  /// Indices of paths accepting in `state`.
  std::vector<size_t> Accepting(const State& state) const;
  bool AnyAccepting(const State& state) const;
  bool PathAccepts(size_t index, const State& state) const;

  /// What the path set demands at a node whose branch drove the evaluator
  /// into `state`: `select` -- some path selects the node itself;
  /// `descendants` -- some selecting path carries '#' (keep the whole
  /// subtree); `attributes` -- some selecting path carries '@'. Two path
  /// sets inducing equal flag triples after every branch are equivalent
  /// projection queries -- query::EquivalentProjectionQueries walks the
  /// product of two evaluators over a DTD alphabet comparing exactly this.
  struct AcceptFlags {
    bool select = false;
    bool descendants = false;
    bool attributes = false;

    bool operator==(const AcceptFlags& o) const {
      return select == o.select && descendants == o.descendants &&
             attributes == o.attributes;
    }
    bool operator!=(const AcceptFlags& o) const { return !(*this == o); }
  };
  AcceptFlags Flags(const State& state) const;

  const std::vector<ProjectionPath>& paths() const { return *paths_; }

 private:
  const std::vector<ProjectionPath>* paths_;
  std::vector<PathNfa> nfas_;
};

}  // namespace smpx::paths

#endif  // SMPX_PATHS_PATH_NFA_H_
