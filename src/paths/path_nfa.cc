#include "paths/path_nfa.h"

namespace smpx::paths {

PathNfa::PathNfa(const ProjectionPath* path) : path_(path) {}

std::vector<bool> PathNfa::InitialStates() const {
  std::vector<bool> states(path_->steps.size() + 1, false);
  states[0] = true;
  return states;
}

void PathNfa::Step(std::string_view label, std::vector<bool>* states) const {
  const std::vector<PathStep>& steps = path_->steps;
  std::vector<bool> next(steps.size() + 1, false);
  for (size_t s = 0; s < steps.size(); ++s) {
    if (!(*states)[s]) continue;
    const PathStep& step = steps[s];
    if (step.axis == PathStep::Axis::kDescendant) {
      // '//name': consume any label and stay (the label is an intermediate
      // ancestor), or consume a matching label and advance.
      next[s] = true;
    }
    if (step.Accepts(label)) next[s + 1] = true;
  }
  // The accept state consumes nothing further: a path selects exactly the
  // node at its end, so a longer branch is not selected by it.
  *states = std::move(next);
}

bool PathMatchesBranch(const ProjectionPath& path,
                       const std::vector<std::string>& branch) {
  PathNfa nfa(&path);
  std::vector<bool> states = nfa.InitialStates();
  for (const std::string& label : branch) nfa.Step(label, &states);
  return nfa.Accepts(states);
}

PathSetEvaluator::PathSetEvaluator(const std::vector<ProjectionPath>* paths)
    : paths_(paths) {
  nfas_.reserve(paths_->size());
  for (const ProjectionPath& p : *paths_) nfas_.emplace_back(&p);
}

PathSetEvaluator::State PathSetEvaluator::Initial() const {
  State state;
  state.sets.reserve(nfas_.size());
  for (const PathNfa& nfa : nfas_) state.sets.push_back(nfa.InitialStates());
  return state;
}

void PathSetEvaluator::Step(std::string_view label, State* state) const {
  for (size_t i = 0; i < nfas_.size(); ++i) {
    nfas_[i].Step(label, &state->sets[i]);
  }
}

std::vector<size_t> PathSetEvaluator::Accepting(const State& state) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nfas_.size(); ++i) {
    if (nfas_[i].Accepts(state.sets[i])) out.push_back(i);
  }
  return out;
}

bool PathSetEvaluator::AnyAccepting(const State& state) const {
  for (size_t i = 0; i < nfas_.size(); ++i) {
    if (nfas_[i].Accepts(state.sets[i])) return true;
  }
  return false;
}

bool PathSetEvaluator::PathAccepts(size_t index, const State& state) const {
  return nfas_[index].Accepts(state.sets[index]);
}

PathSetEvaluator::AcceptFlags PathSetEvaluator::Flags(
    const State& state) const {
  AcceptFlags f;
  for (size_t i = 0; i < nfas_.size(); ++i) {
    if (!nfas_[i].Accepts(state.sets[i])) continue;
    f.select = true;
    if ((*paths_)[i].descendants) f.descendants = true;
    if ((*paths_)[i].attributes) f.attributes = true;
  }
  return f;
}

}  // namespace smpx::paths
