#include "strmatch/commentz_walter.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <queue>

#include "simd/bitmap_plane.h"
#include "simd/simd.h"
#include "strmatch/byte_scan.h"

namespace smpx::strmatch {

namespace detail {

ReverseTrie::ReverseTrie(const std::vector<std::string>& patterns) {
  assert(!patterns.empty());
  nodes.emplace_back();  // root
  wmin = patterns[0].size();
  wmax = 0;
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    const std::string& p = patterns[pi];
    assert(!p.empty());
    wmin = std::min(wmin, p.size());
    wmax = std::max(wmax, p.size());
    int node = 0;
    for (size_t k = p.size(); k-- > 0;) {  // insert reversed
      unsigned char c = static_cast<unsigned char>(p[k]);
      int child = nodes[node].next[c];
      if (child < 0) {
        child = static_cast<int>(nodes.size());
        nodes[node].next[c] = child;
        Node n;
        n.parent = node;
        n.depth = nodes[node].depth + 1;
        n.in_char = c;
        nodes.push_back(n);
      }
      node = child;
    }
    // Keep the first pattern index on duplicates.
    if (nodes[node].pattern < 0) nodes[node].pattern = static_cast<int>(pi);
  }
}

namespace {

/// Aho-Corasick failure links over the reverse trie: fail(u) is the deepest
/// node whose word is a proper suffix of word(u). Used to compute the
/// Commentz-Walter shift1/shift2 functions ("word(v) is a proper suffix of
/// word(u)" iff v lies on u's failure chain).
std::vector<int> ComputeFailureLinks(const ReverseTrie& trie) {
  std::vector<int> fail(trie.nodes.size(), 0);
  std::queue<int> bfs;
  for (int c = 0; c < 256; ++c) {
    int child = trie.nodes[0].next[c];
    if (child >= 0) bfs.push(child);
  }
  while (!bfs.empty()) {
    int u = bfs.front();
    bfs.pop();
    for (int c = 0; c < 256; ++c) {
      int child = trie.nodes[u].next[c];
      if (child < 0) continue;
      int f = fail[u];
      while (f != 0 && trie.nodes[f].next[c] < 0) f = fail[f];
      int fc = trie.nodes[f].next[c];
      fail[child] = (fc >= 0 && fc != child) ? fc : 0;
      bfs.push(child);
    }
  }
  return fail;
}

}  // namespace
}  // namespace detail

CommentzWalterMatcher::CommentzWalterMatcher(
    std::vector<std::string> patterns)
    : patterns_(std::move(patterns)), trie_(patterns_) {
  const size_t wmin = trie_.wmin;
  const size_t num_nodes = trie_.nodes.size();

  // char table: minimal distance (>= 1) of each character from a pattern
  // end, looking at most wmin characters deep; wmin + 1 when absent.
  char_shift_.fill(wmin + 1);
  for (const std::string& p : patterns_) {
    for (size_t d = 1; d <= std::min(wmin, p.size() - 1); ++d) {
      unsigned char c = static_cast<unsigned char>(p[p.size() - 1 - d]);
      char_shift_[c] = std::min(char_shift_[c], d);
    }
  }

  // shift1 / shift2 via failure chains.
  std::vector<int> fail = detail::ComputeFailureLinks(trie_);
  shift1_.assign(num_nodes, wmin);
  shift1_[0] = 1;
  shift2_.assign(num_nodes, wmin);
  for (size_t u = 1; u < num_nodes; ++u) {
    bool terminal = trie_.nodes[u].pattern >= 0;
    for (int v = fail[u]; v != 0; v = fail[v]) {
      size_t diff = static_cast<size_t>(trie_.nodes[u].depth -
                                        trie_.nodes[v].depth);
      shift1_[v] = std::min(shift1_[v], diff);
      if (terminal) shift2_[v] = std::min(shift2_[v], diff);
    }
    if (terminal) {
      // Root: any terminal at depth d caps shift2(root) at d... but the
      // classical definition keeps shift2(root) = wmin; depths are >= wmin
      // only for the shortest pattern, so min(d) == wmin is already tight.
      shift2_[0] = std::min(shift2_[0], static_cast<size_t>(
                                            trie_.nodes[u].depth));
      shift1_[0] = 1;
    }
  }
  // shift2 is monotone along trie edges: a node inherits its parent's bound.
  for (size_t u = 1; u < num_nodes; ++u) {
    shift2_[u] = std::min(shift2_[u],
                          shift2_[static_cast<size_t>(trie_.nodes[u].parent)]);
  }

  // memchr fast path precomputation (see header).
  lead_ = patterns_[0][0];
  fast_path_ = true;
  for (const std::string& p : patterns_) {
    if (p[0] != lead_ ||
        p.find(lead_, 1) != std::string::npos) {
      fast_path_ = false;
      break;
    }
  }
  if (fast_path_) {
    // Forward trie over the patterns (lead byte included as the root
    // edge). Earlier pattern indices win on duplicates, matching the
    // naive oracle's tie-breaking.
    fwd_.emplace_back();
    for (size_t pi = 0; pi < patterns_.size(); ++pi) {
      int32_t node = 0;
      for (char c : patterns_[pi]) {
        // By value, not by reference: emplace_back below may reallocate
        // fwd_ and a reference into it would dangle.
        int32_t slot = fwd_[static_cast<size_t>(node)]
                           .next[static_cast<unsigned char>(c)];
        if (slot < 0) {
          slot = static_cast<int32_t>(fwd_.size());
          fwd_[static_cast<size_t>(node)]
              .next[static_cast<unsigned char>(c)] = slot;
          fwd_.emplace_back();
        }
        node = slot;
      }
      if (fwd_[static_cast<size_t>(node)].pattern < 0) {
        fwd_[static_cast<size_t>(node)].pattern = static_cast<int32_t>(pi);
      }
    }

    // Second-byte precheck (plane trie-verify vectorization): valid only
    // when it mirrors the first two forward-trie steps exactly -- no
    // length-1 pattern (the lead step must never be terminal) and at most
    // ByteSet-many distinct second bytes.
    const int32_t lead_node =
        fwd_[0].next[static_cast<unsigned char>(lead_)];
    if (lead_node >= 0 && fwd_[static_cast<size_t>(lead_node)].pattern < 0) {
      precheck_ok_ = true;
      for (int c = 0; c < 256; ++c) {
        if (fwd_[static_cast<size_t>(lead_node)].next[c] < 0) continue;
        if (second_set_.n >= 8) {
          precheck_ok_ = false;
          break;
        }
        second_set_.chars[second_set_.n++] = static_cast<unsigned char>(c);
      }
    }
  }
}

Match CommentzWalterMatcher::SearchFast(std::string_view text, size_t from,
                                        SearchStats* stats,
                                        const PlaneContext* ctx) const {
  const size_t n = text.size();
  const char* d = text.data();
  const unsigned char lead = static_cast<unsigned char>(lead_);

  // Anchored verification: walk the forward trie; the first terminal is
  // the shortest match at the anchor, i.e. (occurrences cannot overlap)
  // the minimal-end occurrence.
  size_t prev = from;  // one past the previous candidate (shift stats)
  auto verify = [&](size_t s) -> Match {
    if (stats != nullptr) {
      if (s > prev) {
        ++stats->shifts;
        stats->shift_chars += s - prev;
      }
      prev = s + 1;
    }
    int32_t node = 0;
    for (size_t k = s; k < n; ++k) {
      if (stats != nullptr) ++stats->comparisons;
      node = fwd_[static_cast<size_t>(node)]
                 .next[static_cast<unsigned char>(d[k])];
      if (node < 0) return {};
      int32_t pat = fwd_[static_cast<size_t>(node)].pattern;
      if (pat >= 0) return {s, pat};
    }
    return {};
  };

  // Candidate scan: pop every lead-byte hit out of each 8-byte word (SWAR,
  // byte_scan.h) or 64-byte block (SIMD bitmap). Both enumerate hits in
  // ascending text order, so matches and stats are tier-independent.
  size_t k = from;
  if (skip_mode_ == SkipLoopMode::kSimd) {
    if (ctx != nullptr && ctx->plane != nullptr) {
      simd::BitmapPlane* plane = ctx->plane;
      const bool pre = precheck_ok_;
      // Lane resolved once for the whole scan; the walk below reads raw
      // lane words chunk by chunk, so the per-block cost is one load.
      const simd::BitmapPlane::LaneRef lead_lane = plane->EqLaneRef(lead);
      // Aligned word walk: one lane word per 64 text bytes, edges masked
      // in place. Candidate positions and order are identical to the
      // block-at-a-time kernel loop below.
      if (k < n) {
        const uint64_t abs_begin = ctx->abs_base + k;
        const uint64_t abs_end = ctx->abs_base + n;
        const size_t w_end = plane->WordIndexOf(abs_end - 1) + 1;
        size_t w = plane->WordIndexOf(abs_begin);
        while (w < w_end) {
          const size_t c = w / simd::BitmapPlane::kChunkWords;
          size_t w_stop = (c + 1) * simd::BitmapPlane::kChunkWords;
          if (w_stop > w_end) w_stop = w_end;
          const uint64_t* words = plane->ChunkWords(lead_lane, c);
          for (; w < w_stop; ++w) {
            uint64_t hits = words[w];
            if (hits == 0) continue;
            const uint64_t base = plane->WordBase(w);
            if (base < abs_begin) hits &= ~simd::TakeMask(abs_begin - base);
            if (abs_end - base < simd::kBlock) {
              hits &= simd::TakeMask(abs_end - base);
            }
            uint64_t second = 0;
            if (pre && hits != 0) {
              // Bit i = the byte after position base + i is a viable
              // second byte -- same bit index as the lead hit at base + i.
              // Classified on demand from the text (one masked-tail call
              // per candidate word): the bits every consulted index sees
              // are exactly what a memoized any-lane would hold, but
              // sparse candidates never pay for whole-chunk fills.
              const uint64_t lo =
                  base < abs_begin ? abs_begin - base : uint64_t{0};
              const uint64_t at = base + 1 + lo;
              if (abs_end > at) {
                uint64_t count = abs_end - at;
                if (count > simd::kBlock - lo) count = simd::kBlock - lo;
                second = simd::AnyMaskTail(
                             reinterpret_cast<const unsigned char*>(d) +
                                 static_cast<size_t>(at - ctx->abs_base),
                             static_cast<size_t>(count), second_set_)
                         << lo;
              }
              if (stats == nullptr) {
                // A killed candidate verifies to no-match with no side
                // effects, so it can be dropped wholesale. (A clear bit
                // can also mean text ends at the candidate's second byte;
                // verify returns no-match there too since no pattern is
                // 1 byte.)
                hits &= second;
              }
            }
            while (hits != 0) {
              size_t bit = simd::NextSetBit(hits);
              hits = simd::ClearLowestBit(hits);
              size_t s = static_cast<size_t>(base + bit - ctx->abs_base);
              if (pre && stats != nullptr && s + 1 < n &&
                  ((second >> bit) & 1) == 0) {
                // Precheck kill: account exactly what verify would have --
                // the shift bookkeeping plus two comparisons (lead step +
                // failed second step) -- without touching the trie.
                if (s > prev) {
                  ++stats->shifts;
                  stats->shift_chars += s - prev;
                }
                prev = s + 1;
                stats->comparisons += 2;
                continue;
              }
              Match m = verify(s);
              if (m.found()) return m;
            }
          }
        }
      }
      if (stats != nullptr && n > prev) {
        ++stats->shifts;
        stats->shift_chars += n - prev;
      }
      return {};
    }
    const simd::Kernels& kn = simd::Active();
    const unsigned char* ud = reinterpret_cast<const unsigned char*>(d);
    while (k < n) {
      size_t take = n - k;
      uint64_t hits;
      if (take >= simd::kBlock) {
        take = simd::kBlock;
        hits = kn.eq64(ud + k, lead);
      } else {
        hits = simd::EqMaskTail(ud + k, take, lead);
      }
      while (hits != 0) {
        size_t s = k + simd::NextSetBit(hits);
        Match m = verify(s);
        if (m.found()) return m;
        hits = simd::ClearLowestBit(hits);
      }
      k += take;
    }
    if (stats != nullptr && n > prev) {
      ++stats->shifts;
      stats->shift_chars += n - prev;
    }
    return {};
  }
  for (; k + 8 <= n; k += 8) {
    uint64_t hits = detail::ByteEqMask(detail::LoadWord(d + k), lead);
    while (hits != 0) {
      size_t s = k + detail::LowestHitByte(hits);
      Match m = verify(s);
      if (m.found()) return m;
      hits = detail::ClearLowestHit(hits);
    }
  }
  for (; k < n; ++k) {
    if (static_cast<unsigned char>(d[k]) == lead) {
      Match m = verify(k);
      if (m.found()) return m;
    }
  }
  if (stats != nullptr && n > prev) {
    ++stats->shifts;
    stats->shift_chars += n - prev;
  }
  return {};
}

Match CommentzWalterMatcher::Search(std::string_view text, size_t from,
                                    SearchStats* stats) const {
  return Search(text, from, stats, nullptr);
}

Match CommentzWalterMatcher::Search(std::string_view text, size_t from,
                                    SearchStats* stats,
                                    const PlaneContext* ctx) const {
  const size_t n = text.size();
  const size_t wmin = trie_.wmin;
  if (wmin == 0 || from > n || n - from < wmin) return {};
  if (fast_path_ && skip_mode_ != SkipLoopMode::kClassic) {
    return SearchFast(text, from, stats, ctx);
  }

  size_t i = from + wmin - 1;  // window end position in text
  while (i < n) {
    int v = 0;
    size_t j = 0;  // characters matched walking right-to-left
    Match best;    // deepest admissible terminal on the walk
    for (;;) {
      if (j > i) break;  // reached text start
      unsigned char c = static_cast<unsigned char>(text[i - j]);
      if (stats != nullptr) ++stats->comparisons;
      int child = trie_.Child(v, c);
      if (child < 0) break;
      v = child;
      ++j;
      int pat = trie_.nodes[v].pattern;
      if (pat >= 0) {
        size_t start = i - j + 1;
        if (start >= from) best = Match{start, pat};
      }
    }
    if (best.found()) return best;

    // Shift: min(max(shift1(v), char(c) - j - 1), shift2(v)). shift1 and the
    // bad-character rule give consistency lower bounds; shift2 caps the
    // shift so that no full-pattern end position can be stepped over.
    size_t cs = 0;  // bad-character contribution; 0 when text start reached
    if (j <= i) {
      unsigned char c = static_cast<unsigned char>(text[i - j]);
      size_t ch = char_shift_[c];
      cs = ch > j + 1 ? ch - j - 1 : 0;
    }
    size_t shift = std::min(std::max(shift1_[static_cast<size_t>(v)], cs),
                            shift2_[static_cast<size_t>(v)]);
    if (shift == 0) shift = 1;
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
  }
  return {};
}

SetHorspoolMatcher::SetHorspoolMatcher(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)), trie_(patterns_) {
  const size_t wmin = trie_.wmin;
  shift_.fill(wmin);
  for (const std::string& p : patterns_) {
    for (size_t d = 1; d <= std::min(wmin - 1, p.size() - 1); ++d) {
      unsigned char c = static_cast<unsigned char>(p[p.size() - 1 - d]);
      shift_[c] = std::min(shift_[c], d);
    }
  }
}

Match SetHorspoolMatcher::Search(std::string_view text, size_t from,
                                 SearchStats* stats) const {
  const size_t n = text.size();
  const size_t wmin = trie_.wmin;
  if (wmin == 0 || from > n || n - from < wmin) return {};

  size_t i = from + wmin - 1;
  while (i < n) {
    unsigned char last = static_cast<unsigned char>(text[i]);
    int v = 0;
    size_t j = 0;
    Match best;
    for (;;) {
      if (j > i) break;
      unsigned char c = static_cast<unsigned char>(text[i - j]);
      if (stats != nullptr) ++stats->comparisons;
      int child = trie_.Child(v, c);
      if (child < 0) break;
      v = child;
      ++j;
      int pat = trie_.nodes[v].pattern;
      if (pat >= 0) {
        size_t start = i - j + 1;
        if (start >= from) best = Match{start, pat};
      }
    }
    if (best.found()) return best;
    size_t shift = shift_[last];
    if (shift == 0) shift = 1;
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
  }
  return {};
}

}  // namespace smpx::strmatch
