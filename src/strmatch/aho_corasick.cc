#include "strmatch/aho_corasick.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace smpx::strmatch {

AhoCorasickMatcher::AhoCorasickMatcher(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {
  assert(!patterns_.empty());
  nodes_.emplace_back();
  nodes_[0].go.fill(0);
  min_len_ = patterns_[0].size();
  max_len_ = 0;

  // Build the plain trie first (go entries point to 0 meaning "unset";
  // disambiguated because no edge ever returns to the root in a trie).
  std::vector<std::array<int, 256>> raw(1);
  raw[0].fill(-1);
  for (size_t pi = 0; pi < patterns_.size(); ++pi) {
    const std::string& p = patterns_[pi];
    assert(!p.empty());
    min_len_ = std::min(min_len_, p.size());
    max_len_ = std::max(max_len_, p.size());
    int node = 0;
    for (char ch : p) {
      unsigned char c = static_cast<unsigned char>(ch);
      if (raw[static_cast<size_t>(node)][c] < 0) {
        raw[static_cast<size_t>(node)][c] = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        nodes_.back().go.fill(0);
        raw.emplace_back();
        raw.back().fill(-1);
      }
      node = raw[static_cast<size_t>(node)][c];
    }
    if (nodes_[static_cast<size_t>(node)].pattern < 0 ||
        nodes_[static_cast<size_t>(node)].pattern_len <
            static_cast<int>(p.size())) {
      nodes_[static_cast<size_t>(node)].pattern = static_cast<int>(pi);
      nodes_[static_cast<size_t>(node)].pattern_len =
          static_cast<int>(p.size());
    }
  }

  // BFS: complete goto into a DFA and fold outputs along failure links.
  std::vector<int> fail(nodes_.size(), 0);
  std::queue<int> bfs;
  for (int c = 0; c < 256; ++c) {
    int child = raw[0][c];
    if (child < 0) {
      nodes_[0].go[static_cast<size_t>(c)] = 0;
    } else {
      nodes_[0].go[static_cast<size_t>(c)] = child;
      bfs.push(child);
    }
  }
  while (!bfs.empty()) {
    int u = bfs.front();
    bfs.pop();
    int fu = fail[static_cast<size_t>(u)];
    // Prefer reporting the longest pattern ending at u (smallest start).
    if (nodes_[static_cast<size_t>(fu)].pattern >= 0 &&
        nodes_[static_cast<size_t>(fu)].pattern_len >
            nodes_[static_cast<size_t>(u)].pattern_len) {
      nodes_[static_cast<size_t>(u)].pattern =
          nodes_[static_cast<size_t>(fu)].pattern;
      nodes_[static_cast<size_t>(u)].pattern_len =
          nodes_[static_cast<size_t>(fu)].pattern_len;
    }
    for (int c = 0; c < 256; ++c) {
      int child = raw[static_cast<size_t>(u)][c];
      if (child < 0) {
        nodes_[static_cast<size_t>(u)].go[static_cast<size_t>(c)] =
            nodes_[static_cast<size_t>(fu)].go[static_cast<size_t>(c)];
      } else {
        nodes_[static_cast<size_t>(u)].go[static_cast<size_t>(c)] = child;
        fail[static_cast<size_t>(child)] =
            nodes_[static_cast<size_t>(fu)].go[static_cast<size_t>(c)];
        bfs.push(child);
      }
    }
  }
}

Match AhoCorasickMatcher::Search(std::string_view text, size_t from,
                                 SearchStats* stats) const {
  int state = 0;
  for (size_t i = from; i < text.size(); ++i) {
    if (stats != nullptr) ++stats->comparisons;
    state = nodes_[static_cast<size_t>(state)]
                .go[static_cast<unsigned char>(text[i])];
    const Node& node = nodes_[static_cast<size_t>(state)];
    if (node.pattern >= 0) {
      size_t start = i + 1 - static_cast<size_t>(node.pattern_len);
      if (start >= from) return {start, node.pattern};
    }
  }
  return {};
}

}  // namespace smpx::strmatch
