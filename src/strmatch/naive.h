// Reference scanners: a position-by-position naive matcher (the oracle used
// in differential tests) and a memchr('<')-driven scanner that models what a
// hand-tuned tag seeker without skip tables achieves.

#ifndef SMPX_STRMATCH_NAIVE_H_
#define SMPX_STRMATCH_NAIVE_H_

#include <string>
#include <vector>

#include "strmatch/matcher.h"

namespace smpx::strmatch {

class NaiveMatcher : public Matcher {
 public:
  explicit NaiveMatcher(std::vector<std::string> patterns);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;

  size_t min_length() const override { return min_len_; }
  size_t max_length() const override { return max_len_; }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "Naive"; }

 private:
  std::vector<std::string> patterns_;
  size_t min_len_ = 0;
  size_t max_len_ = 0;
};

/// Scans with memchr for the first character of each pattern (all prefilter
/// keywords start with '<'), then verifies candidates. Requires every
/// pattern to share the same first character.
class MemchrMatcher : public Matcher {
 public:
  explicit MemchrMatcher(std::vector<std::string> patterns);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;

  size_t min_length() const override { return min_len_; }
  size_t max_length() const override { return max_len_; }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "Memchr"; }

 private:
  std::vector<std::string> patterns_;
  char lead_;
  size_t min_len_ = 0;
  size_t max_len_ = 0;
};

}  // namespace smpx::strmatch

#endif  // SMPX_STRMATCH_NAIVE_H_
