#include "strmatch/naive.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace smpx::strmatch {
namespace {

/// Scans candidate ends in increasing order; at each end returns the longest
/// pattern matching there (the Matcher contract).
Match ScanByEnd(const std::vector<std::string>& patterns,
                std::string_view text, size_t from, size_t min_len,
                SearchStats* stats) {
  if (text.size() < min_len || from + min_len > text.size()) return {};
  for (size_t end = from + min_len - 1; end < text.size(); ++end) {
    Match best;
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
      const std::string& p = patterns[pi];
      if (end + 1 < p.size()) continue;
      size_t start = end + 1 - p.size();
      if (start < from) continue;
      bool ok = true;
      for (size_t k = 0; k < p.size(); ++k) {
        if (stats != nullptr) ++stats->comparisons;
        if (text[start + k] != p[k]) {
          ok = false;
          break;
        }
      }
      if (ok && (!best.found() || start < best.pos)) {
        best = Match{start, static_cast<int>(pi)};
      }
    }
    if (best.found()) return best;
  }
  return {};
}

}  // namespace

NaiveMatcher::NaiveMatcher(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {
  assert(!patterns_.empty());
  min_len_ = patterns_[0].size();
  for (const std::string& p : patterns_) {
    assert(!p.empty());
    min_len_ = std::min(min_len_, p.size());
    max_len_ = std::max(max_len_, p.size());
  }
}

Match NaiveMatcher::Search(std::string_view text, size_t from,
                           SearchStats* stats) const {
  return ScanByEnd(patterns_, text, from, min_len_, stats);
}

MemchrMatcher::MemchrMatcher(std::vector<std::string> patterns)
    : patterns_(std::move(patterns)) {
  assert(!patterns_.empty());
  lead_ = patterns_[0][0];
  min_len_ = patterns_[0].size();
  for (const std::string& p : patterns_) {
    assert(!p.empty());
    assert(p[0] == lead_ && "MemchrMatcher requires a shared lead character");
    min_len_ = std::min(min_len_, p.size());
    max_len_ = std::max(max_len_, p.size());
  }
}

Match MemchrMatcher::Search(std::string_view text, size_t from,
                            SearchStats* stats) const {
  size_t pos = from;
  while (pos < text.size()) {
    const void* hit =
        std::memchr(text.data() + pos, lead_, text.size() - pos);
    if (hit == nullptr) return {};
    size_t cand = static_cast<size_t>(static_cast<const char*>(hit) -
                                      text.data());
    // memchr inspected every byte up to and including the hit.
    if (stats != nullptr) stats->comparisons += cand - pos + 1;
    Match best;
    for (size_t pi = 0; pi < patterns_.size(); ++pi) {
      const std::string& p = patterns_[pi];
      if (cand + p.size() > text.size()) continue;
      bool ok = true;
      for (size_t k = 1; k < p.size(); ++k) {
        if (stats != nullptr) ++stats->comparisons;
        if (text[cand + k] != p[k]) {
          ok = false;
          break;
        }
      }
      if (ok && (!best.found() ||
                 p.size() > patterns_[static_cast<size_t>(best.pattern)]
                                .size())) {
        best = Match{cand, static_cast<int>(pi)};
      }
    }
    if (best.found()) return best;
    pos = cand + 1;
  }
  return {};
}

}  // namespace smpx::strmatch
