// Commentz-Walter multi-keyword search [13]: a Boyer-Moore-style skip
// algorithm over a trie of reversed patterns. Used by the prefilter whenever
// a frontier vocabulary holds more than one keyword. Also provides the
// Set-Horspool simplification used as an ablation comparator.

#ifndef SMPX_STRMATCH_COMMENTZ_WALTER_H_
#define SMPX_STRMATCH_COMMENTZ_WALTER_H_

#include <array>
#include <string>
#include <vector>

#include "simd/simd.h"
#include "strmatch/matcher.h"

namespace smpx::strmatch {

namespace detail {

/// Trie over the *reversed* patterns; node 0 is the root. Matching walks the
/// text right-to-left from a window end, so trie depth equals distance from
/// the occurrence end.
struct ReverseTrie {
  struct Node {
    std::array<int, 256> next;  // -1 when absent
    int parent = -1;
    int depth = 0;
    int pattern = -1;  // index of the pattern ending here, -1 otherwise
    unsigned char in_char = 0;

    Node() { next.fill(-1); }
  };

  explicit ReverseTrie(const std::vector<std::string>& patterns);

  int Child(int node, unsigned char c) const { return nodes[node].next[c]; }

  std::vector<Node> nodes;
  size_t wmin = 0;  // shortest pattern length
  size_t wmax = 0;  // longest pattern length
};

}  // namespace detail

/// Commentz-Walter algorithm B: combines per-character shifts with the
/// trie-structural shift1/shift2 functions.
class CommentzWalterMatcher : public Matcher {
 public:
  /// All patterns must be non-empty; at least one pattern.
  explicit CommentzWalterMatcher(std::vector<std::string> patterns);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;
  Match Search(std::string_view text, size_t from, SearchStats* stats,
               const PlaneContext* ctx) const override;

  size_t min_length() const override { return trie_.wmin; }
  size_t max_length() const override { return trie_.wmax; }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "CW"; }
  void set_skip_mode(SkipLoopMode mode) override { skip_mode_ = mode; }

 private:
  Match SearchFast(std::string_view text, size_t from, SearchStats* stats,
                   const PlaneContext* ctx) const;

  std::vector<std::string> patterns_;
  detail::ReverseTrie trie_;
  std::array<size_t, 256> char_shift_;  // min end-distance of c, else wmin+1
  std::vector<size_t> shift1_;          // per trie node
  std::vector<size_t> shift2_;          // per trie node

  // memchr fast path: usable when every pattern starts with the same byte
  // and that byte never recurs inside any pattern (always true for the
  // prefilter's "<t"/"</t" vocabularies). Occurrences then cannot overlap,
  // so a memchr-for-the-lead candidate scan with anchored verification is
  // exact under the minimal-end contract. Verification walks a *forward*
  // trie over the patterns (one node lookup per text byte, regardless of
  // the vocabulary size); the first terminal reached is the shortest match
  // at the anchor, i.e. the minimal-end occurrence.
  struct ForwardTrieNode {
    std::array<int32_t, 256> next;  // -1 when absent
    int32_t pattern = -1;           // pattern ending exactly here

    ForwardTrieNode() { next.fill(-1); }
  };

  bool fast_path_ = false;
  SkipLoopMode skip_mode_ = SkipLoopMode::kSimd;  // candidate-scan tier
  char lead_ = 0;
  std::vector<ForwardTrieNode> fwd_;  // rooted at fwd_[0]'s lead child

  // Plane-fed trie-verify vectorization: when every pattern is >= 2 bytes
  // and the forward trie's lead node has <= 8 distinct children, a
  // candidate whose *second* text byte is outside `second_set_` is doomed
  // after exactly two trie steps. The plane's any(second_set_) lane kills
  // such candidates in bulk before any trie node is touched; the kill
  // accounts the identical stats verify would have (shift bookkeeping plus
  // the two counted comparisons), so matches and SearchStats stay
  // tier- and plane-independent.
  bool precheck_ok_ = false;
  simd::ByteSet second_set_;
};

/// Set-Horspool: same reversed trie, but shifts only by the bad-character
/// rule keyed on the window-end character.
class SetHorspoolMatcher : public Matcher {
 public:
  explicit SetHorspoolMatcher(std::vector<std::string> patterns);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;

  size_t min_length() const override { return trie_.wmin; }
  size_t max_length() const override { return trie_.wmax; }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "SetHorspool"; }

 private:
  std::vector<std::string> patterns_;
  detail::ReverseTrie trie_;
  std::array<size_t, 256> shift_;
};

}  // namespace smpx::strmatch

#endif  // SMPX_STRMATCH_COMMENTZ_WALTER_H_
