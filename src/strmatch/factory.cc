#include <memory>

#include "strmatch/aho_corasick.h"
#include "strmatch/boyer_moore.h"
#include "strmatch/commentz_walter.h"
#include "strmatch/matcher.h"
#include "strmatch/naive.h"

namespace smpx::strmatch {

std::unique_ptr<Matcher> MakeMatcher(std::vector<std::string> patterns,
                                     Algorithm algo) {
  if (patterns.empty()) return nullptr;
  for (const std::string& p : patterns) {
    if (p.empty()) return nullptr;
  }
  switch (algo) {
    case Algorithm::kAuto:
      if (patterns.size() == 1) {
        return std::make_unique<BoyerMooreMatcher>(std::move(patterns[0]));
      }
      return std::make_unique<CommentzWalterMatcher>(std::move(patterns));
    case Algorithm::kBoyerMoore:
      if (patterns.size() != 1) return nullptr;
      return std::make_unique<BoyerMooreMatcher>(std::move(patterns[0]));
    case Algorithm::kHorspool:
      if (patterns.size() != 1) return nullptr;
      return std::make_unique<HorspoolMatcher>(std::move(patterns[0]));
    case Algorithm::kCommentzWalter:
      return std::make_unique<CommentzWalterMatcher>(std::move(patterns));
    case Algorithm::kSetHorspool:
      return std::make_unique<SetHorspoolMatcher>(std::move(patterns));
    case Algorithm::kAhoCorasick:
      return std::make_unique<AhoCorasickMatcher>(std::move(patterns));
    case Algorithm::kNaive:
      return std::make_unique<NaiveMatcher>(std::move(patterns));
    case Algorithm::kMemchr: {
      char lead = patterns[0][0];
      for (const std::string& p : patterns) {
        if (p[0] != lead) return nullptr;
      }
      return std::make_unique<MemchrMatcher>(std::move(patterns));
    }
  }
  return nullptr;
}

std::string_view AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kAuto:
      return "Auto";
    case Algorithm::kBoyerMoore:
      return "BM";
    case Algorithm::kHorspool:
      return "Horspool";
    case Algorithm::kCommentzWalter:
      return "CW";
    case Algorithm::kSetHorspool:
      return "SetHorspool";
    case Algorithm::kAhoCorasick:
      return "AC";
    case Algorithm::kNaive:
      return "Naive";
    case Algorithm::kMemchr:
      return "Memchr";
  }
  return "Unknown";
}

}  // namespace smpx::strmatch
