#include "strmatch/boyer_moore.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "simd/simd.h"
#include "strmatch/byte_scan.h"

namespace smpx::strmatch {
namespace {

// Computes, for each position i, the length of the longest suffix of the
// pattern that ends at i (the classical "suffixes" array of the good-suffix
// preprocessing). Signed arithmetic follows the textbook formulation.
std::vector<int> ComputeSuffixes(const std::string& p) {
  const int m = static_cast<int>(p.size());
  std::vector<int> suf(m, 0);
  suf[m - 1] = m;
  int g = m - 1;
  int f = m - 1;
  for (int i = m - 2; i >= 0; --i) {
    if (i > g && suf[i + m - 1 - f] < i - g) {
      suf[i] = suf[i + m - 1 - f];
    } else {
      if (i < g) g = i;
      f = i;
      while (g >= 0 && p[g] == p[g + m - 1 - f]) --g;
      suf[i] = f - g;
    }
  }
  return suf;
}

/// Rough rarity ranking of bytes in XML-shaped text (markup + English
/// prose); smaller = rarer. Used to pick the memchr probe byte: probing the
/// rarest pattern byte minimizes candidate verifications. For the
/// prefilter's "<t"/"</t" keywords this always selects '<'.
int XmlByteRarity(unsigned char c) {
  switch (c) {
    case '<':
      return 0;
    case '>':
      return 10;
    case '/':
      return 15;
    case '=':
    case '"':
    case '\'':
      return 25;
    default:
      break;
  }
  if (c >= 'A' && c <= 'Z') return 30;
  if (c >= '0' && c <= '9') return 40;
  switch (c) {
    case 'j':
    case 'k':
    case 'q':
    case 'x':
    case 'z':
      return 45;
    case 'b':
    case 'g':
    case 'v':
    case 'w':
      return 55;
    case 'c':
    case 'd':
    case 'f':
    case 'h':
    case 'l':
    case 'm':
    case 'p':
    case 'u':
    case 'y':
      return 65;
    case 'a':
    case 'e':
    case 'i':
    case 'n':
    case 'o':
    case 'r':
    case 's':
    case 't':
      return 80;
    case ' ':
    case '\t':
    case '\n':
    case '\r':
      return 90;
    default:
      return 35;  // other punctuation / non-ASCII
  }
}

}  // namespace

BoyerMooreMatcher::BoyerMooreMatcher(std::string pattern) {
  assert(!pattern.empty());
  patterns_.push_back(std::move(pattern));
  const std::string& p = patterns_[0];
  const size_t m = p.size();

  bad_char_.fill(-1);
  for (size_t i = 0; i < m; ++i) {
    bad_char_[static_cast<unsigned char>(p[i])] = static_cast<int>(i);
  }

  // Strong good-suffix shift table (textbook preBmGs).
  const int im = static_cast<int>(m);
  good_suffix_.assign(m, m);
  std::vector<int> suf = ComputeSuffixes(p);
  int j = 0;
  for (int i = im - 1; i >= 0; --i) {
    // Case 2: a prefix of p equals the matched suffix.
    if (suf[i] == i + 1) {
      for (; j < im - 1 - i; ++j) {
        if (good_suffix_[j] == m) good_suffix_[j] = im - 1 - i;
      }
    }
  }
  for (int i = 0; i <= im - 2; ++i) {
    // Case 1: the matched suffix reoccurs elsewhere in the pattern.
    good_suffix_[im - 1 - suf[i]] = im - 1 - i;
  }

  // Probe byte for the memchr skip loop: the rarest byte of the pattern
  // (ties go to the rightmost occurrence).
  for (size_t i = 1; i < m; ++i) {
    if (XmlByteRarity(static_cast<unsigned char>(p[i])) <=
        XmlByteRarity(static_cast<unsigned char>(p[probe_pos_]))) {
      probe_pos_ = i;
    }
  }
  // Second probe for the pair scan (long patterns only): the rarest byte at
  // any other position. Requiring both bytes to match multiplies the two
  // densities, which is what keeps verify counts low on text-heavy input
  // where even the rarest single byte still occurs every few hundred
  // characters.
  if (m >= 4) {
    pair_probe_ = true;
    probe2_pos_ = probe_pos_ == 0 ? 1 : 0;
    for (size_t i = 1; i < m; ++i) {
      if (i == probe_pos_) continue;
      if (XmlByteRarity(static_cast<unsigned char>(p[i])) <=
          XmlByteRarity(static_cast<unsigned char>(p[probe2_pos_]))) {
        probe2_pos_ = i;
      }
    }
  }
}

Match BoyerMooreMatcher::Search(std::string_view text, size_t from,
                                SearchStats* stats) const {
  return Search(text, from, stats, nullptr);
}

Match BoyerMooreMatcher::Search(std::string_view text, size_t from,
                                SearchStats* stats,
                                const PlaneContext* ctx) const {
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  const size_t n = text.size();
  if (from > n || n - from < m) return {};
  if (skip_mode_ != SkipLoopMode::kClassic) {
    return SearchSkip(text, from, stats, ctx);
  }

  size_t i = from;  // current alignment: pattern start at text position i
  while (i + m <= n) {
    size_t j = m;  // compare right to left; j is 1 + index to compare
    while (j > 0) {
      if (stats != nullptr) ++stats->comparisons;
      if (text[i + j - 1] != p[j - 1]) break;
      --j;
    }
    if (j == 0) return {i, 0};
    const size_t jm1 = j - 1;
    int bc = bad_char_[static_cast<unsigned char>(text[i + jm1])];
    ptrdiff_t bad_shift = static_cast<ptrdiff_t>(jm1) - bc;
    size_t shift = std::max<ptrdiff_t>(
        static_cast<ptrdiff_t>(good_suffix_[jm1]), bad_shift);
    if (shift == 0) shift = 1;  // defensive; strong tables never yield 0
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
  }
  return {};
}

// Note on the bitmap plane: BM deliberately does NOT consult it. The probe
// byte for tag keywords is '<', which occurs every ~25 bytes in
// element-dense XML, so nearly every 64-byte block has hits and a bitmap
// walk cannot skip anything -- it only adds bitmap loads and per-word
// rechecks on top of the pair kernel's two loads + two compares per block.
// And because each BM state searches a disjoint, monotonically-advancing
// region, the per-call kernels classify each byte at most once already;
// memoizing per-state pair classes in plane lanes was measured to cost
// ~1.5 extra full-document classification passes for zero reuse. The
// PlaneContext parameter stays for interface uniformity (Commentz-Walter
// does profit from the shared '<' lead lane).
Match BoyerMooreMatcher::SearchSkip(std::string_view text, size_t from,
                                    SearchStats* stats,
                                    const PlaneContext* /*ctx*/) const {
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  const size_t n = text.size();
  const char* d = text.data();
  const unsigned char* ud = reinterpret_cast<const unsigned char*>(d);

  // Skip loop: no occurrence can align unless its probe byte (the rarest
  // pattern byte, '<' for tag keywords) matches, so only probe-byte hits
  // become candidate alignments. The hits are popped word-at-a-time (SWAR,
  // byte_scan.h) or block-at-a-time (SIMD bitmaps, simd/simd.h) -- both
  // enumerate candidates in ascending text order, so matches AND stats are
  // tier-independent. Candidates below the BM-shift frontier `i` are
  // dropped without a verify.
  const size_t kp = probe_pos_;
  const unsigned char probe = static_cast<unsigned char>(p[kp]);
  size_t i = from;  // minimal admissible alignment (the shift frontier)

  // Right-to-left verify at alignment `a`; advances `i` past `a` via the
  // classical bad-character/good-suffix shift on mismatch.
  auto verify = [&](size_t a) -> bool {
    if (stats != nullptr && a > i) {
      ++stats->shifts;
      stats->shift_chars += a - i;
    }
    i = a;
    size_t j = m;  // compare right to left; j is 1 + index to compare
    while (j > 0) {
      if (stats != nullptr) ++stats->comparisons;
      if (d[a + j - 1] != p[j - 1]) break;
      --j;
    }
    if (j == 0) return true;
    const size_t jm1 = j - 1;
    int bc = bad_char_[static_cast<unsigned char>(d[a + jm1])];
    ptrdiff_t bad_shift = static_cast<ptrdiff_t>(jm1) - bc;
    size_t shift = std::max<ptrdiff_t>(
        static_cast<ptrdiff_t>(good_suffix_[jm1]), bad_shift);
    if (shift == 0) shift = 1;  // defensive; strong tables never yield 0
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
    return false;
  };

  if (pair_probe_) {
    // Two-byte SWAR pair probe: a candidate alignment survives only when
    // BOTH probe bytes match, one word-load + mask each. The second load
    // never reads past the text: with lo/hi <= m-1, the last alignment's
    // hi byte sits at (n - m) + hi <= n - 1.
    const size_t lo = std::min(kp, probe2_pos_);
    const size_t hi = std::max(kp, probe2_pos_);
    const unsigned char b_lo = static_cast<unsigned char>(p[lo]);
    const unsigned char b_hi = static_cast<unsigned char>(p[hi]);
    const size_t delta = hi - lo;
    const size_t scan_end = n - m + lo + 1;
    size_t k = from + lo;
    if (skip_mode_ == SkipLoopMode::kSimd) {
      // Block-at-a-time pair probe. The full-block branch is in-bounds:
      // k + 64 <= scan_end implies k + delta + 64 <= n - m + hi + 1 <= n.
      const simd::Kernels& kn = simd::Active();
      while (k < scan_end) {
        size_t take = scan_end - k;
        uint64_t hits;
        if (take >= simd::kBlock) {
          take = simd::kBlock;
          hits = kn.pair64(ud + k, delta, b_lo, b_hi);
        } else {
          hits = simd::PairMaskTail(ud + k, n - k, delta, b_lo, b_hi) &
                 simd::TakeMask(take);
        }
        while (hits != 0) {
          size_t a = k + simd::NextSetBit(hits) - lo;
          hits = simd::ClearLowestBit(hits);
          if (a < i) continue;  // below the shift frontier
          if (verify(a)) return {a, 0};
        }
        k += take;
      }
      if (stats != nullptr && n - m + 1 > i) {
        ++stats->shifts;
        stats->shift_chars += n - m + 1 - i;
      }
      return {};
    }
    for (; k + 8 <= scan_end; k += 8) {
      uint64_t hits =
          detail::ByteEqMask(detail::LoadWord(d + k), b_lo) &
          detail::ByteEqMask(detail::LoadWord(d + k + delta), b_hi);
      while (hits != 0) {
        size_t a = k + detail::LowestHitByte(hits) - lo;
        hits = detail::ClearLowestHit(hits);
        if (a < i) continue;  // below the shift frontier
        if (verify(a)) return {a, 0};
      }
    }
    for (; k < scan_end; ++k) {
      if (static_cast<unsigned char>(d[k]) == b_lo &&
          static_cast<unsigned char>(d[k + delta]) == b_hi) {
        size_t a = k - lo;
        if (a < i) continue;
        if (verify(a)) return {a, 0};
      }
    }
    if (stats != nullptr && n - m + 1 > i) {
      ++stats->shifts;
      stats->shift_chars += n - m + 1 - i;
    }
    return {};
  }

  // Scan probe positions s in [from + kp, n - m + kp]; alignment a = s - kp.
  const size_t scan_end = n - m + kp + 1;
  size_t k = from + kp;
  if (skip_mode_ == SkipLoopMode::kSimd) {
    const simd::Kernels& kn = simd::Active();
    while (k < scan_end) {
      size_t take = scan_end - k;
      uint64_t hits;
      if (take >= simd::kBlock) {
        take = simd::kBlock;
        hits = kn.eq64(ud + k, probe);
      } else {
        hits = simd::EqMaskTail(ud + k, take, probe);
      }
      while (hits != 0) {
        size_t a = k + simd::NextSetBit(hits) - kp;
        hits = simd::ClearLowestBit(hits);
        if (a < i) continue;  // below the shift frontier
        if (verify(a)) return {a, 0};
      }
      k += take;
    }
    if (stats != nullptr && n - m + 1 > i) {
      ++stats->shifts;
      stats->shift_chars += n - m + 1 - i;
    }
    return {};
  }
  for (; k + 8 <= scan_end; k += 8) {
    uint64_t hits = detail::ByteEqMask(detail::LoadWord(d + k), probe);
    while (hits != 0) {
      size_t a = k + detail::LowestHitByte(hits) - kp;
      hits = detail::ClearLowestHit(hits);
      if (a < i) continue;  // below the shift frontier
      if (verify(a)) return {a, 0};
    }
  }
  for (; k < scan_end; ++k) {
    if (static_cast<unsigned char>(d[k]) == probe) {
      size_t a = k - kp;
      if (a < i) continue;
      if (verify(a)) return {a, 0};
    }
  }
  if (stats != nullptr && n - m + 1 > i) {
    ++stats->shifts;
    stats->shift_chars += n - m + 1 - i;
  }
  return {};
}

HorspoolMatcher::HorspoolMatcher(std::string pattern) {
  assert(!pattern.empty());
  patterns_.push_back(std::move(pattern));
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  shift_.fill(m);
  for (size_t i = 0; i + 1 < m; ++i) {
    shift_[static_cast<unsigned char>(p[i])] = m - 1 - i;
  }
}

Match HorspoolMatcher::Search(std::string_view text, size_t from,
                              SearchStats* stats) const {
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  const size_t n = text.size();
  if (from > n || n - from < m) return {};

  size_t i = from;
  while (i + m <= n) {
    size_t j = m;
    while (j > 0) {
      if (stats != nullptr) ++stats->comparisons;
      if (text[i + j - 1] != p[j - 1]) break;
      --j;
    }
    if (j == 0) return {i, 0};
    size_t shift = shift_[static_cast<unsigned char>(text[i + m - 1])];
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
  }
  return {};
}

}  // namespace smpx::strmatch
