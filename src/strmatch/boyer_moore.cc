#include "strmatch/boyer_moore.h"

#include <algorithm>
#include <cassert>

namespace smpx::strmatch {
namespace {

// Computes, for each position i, the length of the longest suffix of the
// pattern that ends at i (the classical "suffixes" array of the good-suffix
// preprocessing). Signed arithmetic follows the textbook formulation.
std::vector<int> ComputeSuffixes(const std::string& p) {
  const int m = static_cast<int>(p.size());
  std::vector<int> suf(m, 0);
  suf[m - 1] = m;
  int g = m - 1;
  int f = m - 1;
  for (int i = m - 2; i >= 0; --i) {
    if (i > g && suf[i + m - 1 - f] < i - g) {
      suf[i] = suf[i + m - 1 - f];
    } else {
      if (i < g) g = i;
      f = i;
      while (g >= 0 && p[g] == p[g + m - 1 - f]) --g;
      suf[i] = f - g;
    }
  }
  return suf;
}

}  // namespace

BoyerMooreMatcher::BoyerMooreMatcher(std::string pattern) {
  assert(!pattern.empty());
  patterns_.push_back(std::move(pattern));
  const std::string& p = patterns_[0];
  const size_t m = p.size();

  bad_char_.fill(-1);
  for (size_t i = 0; i < m; ++i) {
    bad_char_[static_cast<unsigned char>(p[i])] = static_cast<int>(i);
  }

  // Strong good-suffix shift table (textbook preBmGs).
  const int im = static_cast<int>(m);
  good_suffix_.assign(m, m);
  std::vector<int> suf = ComputeSuffixes(p);
  int j = 0;
  for (int i = im - 1; i >= 0; --i) {
    // Case 2: a prefix of p equals the matched suffix.
    if (suf[i] == i + 1) {
      for (; j < im - 1 - i; ++j) {
        if (good_suffix_[j] == m) good_suffix_[j] = im - 1 - i;
      }
    }
  }
  for (int i = 0; i <= im - 2; ++i) {
    // Case 1: the matched suffix reoccurs elsewhere in the pattern.
    good_suffix_[im - 1 - suf[i]] = im - 1 - i;
  }
}

Match BoyerMooreMatcher::Search(std::string_view text, size_t from,
                                SearchStats* stats) const {
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  const size_t n = text.size();
  if (from > n || n - from < m) return {};

  size_t i = from;  // current alignment: pattern start at text position i
  while (i + m <= n) {
    size_t j = m;  // compare right to left; j is 1 + index to compare
    while (j > 0) {
      if (stats != nullptr) ++stats->comparisons;
      if (text[i + j - 1] != p[j - 1]) break;
      --j;
    }
    if (j == 0) return {i, 0};
    const size_t jm1 = j - 1;
    int bc = bad_char_[static_cast<unsigned char>(text[i + jm1])];
    ptrdiff_t bad_shift = static_cast<ptrdiff_t>(jm1) - bc;
    size_t shift = std::max<ptrdiff_t>(
        static_cast<ptrdiff_t>(good_suffix_[jm1]), bad_shift);
    if (shift == 0) shift = 1;  // defensive; strong tables never yield 0
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
  }
  return {};
}

HorspoolMatcher::HorspoolMatcher(std::string pattern) {
  assert(!pattern.empty());
  patterns_.push_back(std::move(pattern));
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  shift_.fill(m);
  for (size_t i = 0; i + 1 < m; ++i) {
    shift_[static_cast<unsigned char>(p[i])] = m - 1 - i;
  }
}

Match HorspoolMatcher::Search(std::string_view text, size_t from,
                              SearchStats* stats) const {
  const std::string& p = patterns_[0];
  const size_t m = p.size();
  const size_t n = text.size();
  if (from > n || n - from < m) return {};

  size_t i = from;
  while (i + m <= n) {
    size_t j = m;
    while (j > 0) {
      if (stats != nullptr) ++stats->comparisons;
      if (text[i + j - 1] != p[j - 1]) break;
      --j;
    }
    if (j == 0) return {i, 0};
    size_t shift = shift_[static_cast<unsigned char>(text[i + m - 1])];
    if (stats != nullptr) {
      ++stats->shifts;
      stats->shift_chars += shift;
    }
    i += shift;
  }
  return {};
}

}  // namespace smpx::strmatch
