// Aho-Corasick multi-keyword automaton [12]: inspects every character of the
// text (no skips). Serves as the related-work baseline (Takeda et al. [21]
// build XML matching on AC) and as a correctness oracle for the skip-based
// matchers.

#ifndef SMPX_STRMATCH_AHO_CORASICK_H_
#define SMPX_STRMATCH_AHO_CORASICK_H_

#include <array>
#include <string>
#include <vector>

#include "strmatch/matcher.h"

namespace smpx::strmatch {

class AhoCorasickMatcher : public Matcher {
 public:
  explicit AhoCorasickMatcher(std::vector<std::string> patterns);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;

  size_t min_length() const override { return min_len_; }
  size_t max_length() const override { return max_len_; }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "AC"; }

 private:
  struct Node {
    std::array<int, 256> go;  // goto function completed into a DFA
    int pattern = -1;         // longest pattern ending here (after closure)
    int pattern_len = 0;
  };

  std::vector<std::string> patterns_;
  std::vector<Node> nodes_;
  size_t min_len_ = 0;
  size_t max_len_ = 0;
};

}  // namespace smpx::strmatch

#endif  // SMPX_STRMATCH_AHO_CORASICK_H_
