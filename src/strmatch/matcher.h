// Common interface for the string matching algorithms that power the
// prefilter's frontier-vocabulary searches (paper Section II): Boyer-Moore
// for single keywords, Commentz-Walter for keyword sets, plus comparators
// (Aho-Corasick, Horspool variants, naive) used by baselines and ablations.

#ifndef SMPX_STRMATCH_MATCHER_H_
#define SMPX_STRMATCH_MATCHER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace smpx::simd {
class BitmapPlane;
}  // namespace smpx::simd

namespace smpx::strmatch {

/// Counters reproducing the paper's per-query measurement columns:
/// `comparisons` backs "Char Comp. %" and `shifts`/`shift_chars` back
/// "∅ Shift Size" (Table I/II).
struct SearchStats {
  uint64_t comparisons = 0;  ///< text characters inspected
  uint64_t shifts = 0;       ///< number of forward window shifts
  uint64_t shift_chars = 0;  ///< total characters shifted forward

  void Add(const SearchStats& o) {
    comparisons += o.comparisons;
    shifts += o.shifts;
    shift_chars += o.shift_chars;
  }
  /// Average forward shift in characters (0 when no shift happened).
  double AvgShift() const {
    return shifts == 0 ? 0.0
                       : static_cast<double>(shift_chars) /
                             static_cast<double>(shifts);
  }
};

/// Result of a search: position of the occurrence and which pattern matched.
struct Match {
  static constexpr size_t npos = std::numeric_limits<size_t>::max();

  size_t pos = npos;  ///< start offset of the occurrence in the text
  int pattern = -1;   ///< index into patterns(), -1 if no match

  bool found() const { return pos != npos; }
};

/// Candidate-scan implementation tiers for the skip-loop fast paths (BM,
/// CW). All three produce identical matches AND identical SearchStats: the
/// candidate order is ascending text position in every tier, and the
/// verify/shift logic is shared, so the tiers differ only in how fast
/// candidates are enumerated.
enum class SkipLoopMode {
  kClassic = 0,  ///< textbook scan loops (no candidate fast path)
  kSwar = 1,     ///< 8-bytes-per-word probe loops (byte_scan.h)
  kSimd = 2,     ///< dispatched 64-byte bitmap probes (simd/simd.h)
};

/// The caller's shared structural bitmap plane, offered to Search so the
/// kSimd candidate probes read memoized class words instead of re-running
/// kernels over the text. `abs_base` is the absolute position of
/// text.data()[0] within the plane's binding (the plane must cover the
/// whole text). Matchers are shared across threads, so the plane travels
/// per call, never through matcher state; candidate order and stats are
/// identical with or without it.
struct PlaneContext {
  simd::BitmapPlane* plane = nullptr;
  uint64_t abs_base = 0;
};

/// A compiled set of patterns searchable in a text.
///
/// Contract: Search returns an occurrence with the minimal *end* position
/// among all occurrences starting at or after `from`; among occurrences
/// ending there, the one with the smallest start (i.e. the longest pattern)
/// is reported. For the prefilter's vocabularies -- where every keyword
/// starts with '<' and contains no further '<' -- occurrences at distinct
/// positions cannot overlap, so minimal-end equals minimal-start order.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Searches `text` for the first occurrence starting at or after `from`.
  /// `stats` may be null.
  virtual Match Search(std::string_view text, size_t from,
                       SearchStats* stats) const = 0;

  /// Plane-aware overload: algorithms with a kSimd fast path (BM, CW) read
  /// their candidate probes from `ctx->plane` when given one; everyone else
  /// ignores it. Matches and stats are identical to the 3-arg Search.
  virtual Match Search(std::string_view text, size_t from, SearchStats* stats,
                       const PlaneContext* ctx) const {
    (void)ctx;
    return Search(text, from, stats);
  }

  /// Shortest / longest pattern lengths.
  virtual size_t min_length() const = 0;
  virtual size_t max_length() const = 0;

  virtual const std::vector<std::string>& patterns() const = 0;

  /// Algorithm name for reports ("BM", "CW", ...).
  virtual std::string_view name() const = 0;

  /// Selects the candidate skip-loop tier (BM, CW). Default kSimd;
  /// kClassic restores the classical textbook scan loops (ablation and
  /// differential-testing baseline). No-op for algorithms without a fast
  /// path.
  virtual void set_skip_mode(SkipLoopMode mode) { (void)mode; }

  /// Back-compat shim: `false` = kClassic, `true` = kSimd.
  void set_skip_loops(bool enabled) {
    set_skip_mode(enabled ? SkipLoopMode::kSimd : SkipLoopMode::kClassic);
  }
};

/// Algorithm selector for MakeMatcher.
enum class Algorithm {
  kAuto,         ///< BM for one pattern, CW otherwise (the paper's policy)
  kBoyerMoore,   ///< single pattern only
  kHorspool,     ///< single pattern only
  kCommentzWalter,
  kSetHorspool,
  kAhoCorasick,
  kNaive,
  kMemchr,       ///< memchr('<')-driven candidate scan
};

/// Builds a matcher for `patterns` (all non-empty) with `algo`.
/// Returns nullptr if the algorithm cannot handle the pattern count
/// (e.g. Boyer-Moore with two patterns).
std::unique_ptr<Matcher> MakeMatcher(std::vector<std::string> patterns,
                                     Algorithm algo = Algorithm::kAuto);

/// Human-readable algorithm name.
std::string_view AlgorithmName(Algorithm algo);

}  // namespace smpx::strmatch

#endif  // SMPX_STRMATCH_MATCHER_H_
