// Word-at-a-time (SWAR) byte scanning primitives for the matcher skip
// loops. libc memchr wins on long strides, but the prefilter's candidate
// bytes ('<') recur every ~15 bytes in tag-dense XML, where the per-call
// overhead of memchr dominates; an inlined 8-bytes-per-iteration scan that
// pops all hits out of each word amortizes to a few ops per byte with no
// per-candidate call cost.

#ifndef SMPX_STRMATCH_BYTE_SCAN_H_
#define SMPX_STRMATCH_BYTE_SCAN_H_

#include <cstdint>
#include <cstring>

namespace smpx::strmatch::detail {

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHighs = 0x8080808080808080ull;

/// Returns a word with bit 7 set in every byte of `w` equal to `c`. Uses
/// the exact (carry-free) zero-byte detector: the cheaper
/// `(x - ones) & ~x & highs` variant has false positives in bytes above a
/// true hit, which would inflate the candidate stream.
inline uint64_t ByteEqMask(uint64_t w, unsigned char c) {
  uint64_t x = w ^ (kOnes * c);
  // High bit of each byte is 0 iff the byte is zero.
  uint64_t nonzero = ((x & ~kHighs) + ~kHighs) | x;
  return ~nonzero & kHighs;
}

/// Loads 8 bytes unaligned, normalized so that the byte at `p` is the
/// least significant one (text order == bit order for the hit-popping
/// helpers below regardless of host endianness).
inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  w = __builtin_bswap64(w);
#endif
  return w;
}

/// Byte offset (0-7) of the lowest set mask bit.
inline unsigned LowestHitByte(uint64_t mask) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(mask)) >> 3;
#else
  unsigned off = 0;
  while ((mask & 0xff) == 0) {
    mask >>= 8;
    ++off;
  }
  return off;
#endif
}

/// Clears the lowest set mask bit (advance to the next hit in the word).
inline uint64_t ClearLowestHit(uint64_t mask) { return mask & (mask - 1); }

}  // namespace smpx::strmatch::detail

#endif  // SMPX_STRMATCH_BYTE_SCAN_H_
