// Boyer-Moore single-keyword search [11] with both the bad-character and
// (strong) good-suffix heuristics, as used by the prefilter whenever a
// frontier vocabulary contains exactly one keyword.

#ifndef SMPX_STRMATCH_BOYER_MOORE_H_
#define SMPX_STRMATCH_BOYER_MOORE_H_

#include <array>
#include <string>
#include <vector>

#include "strmatch/matcher.h"

namespace smpx::strmatch {

class BoyerMooreMatcher : public Matcher {
 public:
  /// `pattern` must be non-empty.
  explicit BoyerMooreMatcher(std::string pattern);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;
  Match Search(std::string_view text, size_t from, SearchStats* stats,
               const PlaneContext* ctx) const override;

  size_t min_length() const override { return patterns_[0].size(); }
  size_t max_length() const override { return patterns_[0].size(); }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "BM"; }
  void set_skip_mode(SkipLoopMode mode) override { skip_mode_ = mode; }

 private:
  Match SearchSkip(std::string_view text, size_t from, SearchStats* stats,
                   const PlaneContext* ctx) const;

  std::vector<std::string> patterns_;       // exactly one element
  std::array<int, 256> bad_char_;           // last occurrence index, -1 if none
  std::vector<size_t> good_suffix_;         // shift for mismatch at index j
  SkipLoopMode skip_mode_ = SkipLoopMode::kSimd;  // rare-byte probe tier
  size_t probe_pos_ = 0;                    // offset of the rarest byte
  size_t probe2_pos_ = 0;                   // offset of the 2nd-rarest byte
  bool pair_probe_ = false;                 // use the two-byte pair probe
};

/// Horspool simplification (bad-character rule keyed on the window's last
/// character only); ablation comparator.
class HorspoolMatcher : public Matcher {
 public:
  explicit HorspoolMatcher(std::string pattern);

  Match Search(std::string_view text, size_t from,
               SearchStats* stats) const override;

  size_t min_length() const override { return patterns_[0].size(); }
  size_t max_length() const override { return patterns_[0].size(); }
  const std::vector<std::string>& patterns() const override {
    return patterns_;
  }
  std::string_view name() const override { return "Horspool"; }

 private:
  std::vector<std::string> patterns_;
  std::array<size_t, 256> shift_;
};

}  // namespace smpx::strmatch

#endif  // SMPX_STRMATCH_BOYER_MOORE_H_
