#include "xml/escape.h"

#include <cstdlib>

namespace smpx::xml {
namespace {

std::string EscapeImpl(std::string_view raw, bool attr) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (attr) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string EscapeText(std::string_view raw) { return EscapeImpl(raw, false); }

std::string EscapeAttribute(std::string_view raw) {
  return EscapeImpl(raw, true);
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out += s[i++];
      continue;
    }
    size_t semi = s.find(';', i);
    if (semi == std::string_view::npos || semi - i > 12) {
      out += s[i++];
      continue;
    }
    std::string_view ent = s.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "amp") {
      out += '&';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      long code = 0;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      } else {
        // Preserve non-ASCII references verbatim; we operate byte-wise.
        out.append(s.substr(i, semi - i + 1));
      }
    } else {
      out.append(s.substr(i, semi - i + 1));
      i = semi + 1;
      continue;
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace smpx::xml
