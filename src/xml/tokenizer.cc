#include "xml/tokenizer.h"

#include "common/strings.h"

namespace smpx::xml {

Tokenizer::Tokenizer(std::string_view input, TokenizerOptions opts)
    : input_(input), opts_(opts) {}

void Tokenizer::Fail(const std::string& msg) {
  if (status_.ok()) {
    status_ = Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }
  pos_ = input_.size();  // stop iteration
}

bool Tokenizer::Next(Token* token) {
  if (!status_.ok() || pos_ >= input_.size()) {
    if (status_.ok() && opts_.check_well_formed && !open_tags_.empty()) {
      status_ = Status::ParseError("unclosed element <" +
                                   std::string(open_tags_.back()) +
                                   "> at end of input");
      open_tags_.clear();
    }
    return false;
  }
  if (input_[pos_] == '<') {
    if (pos_ + 1 < input_.size() &&
        (input_[pos_ + 1] == '!' || input_[pos_ + 1] == '?')) {
      return LexMarkupDeclaration(token);
    }
    return LexTag(token);
  }
  return LexText(token);
}

bool Tokenizer::LexText(Token* token) {
  // Conforming SAX behaviour: character data is examined character by
  // character -- every byte must be checked for markup ('<'), entity
  // references ('&' must start a well-formed reference), and character
  // validity. This is the cost the paper's prefilter avoids by skipping.
  uint64_t begin = pos_;
  uint64_t p = pos_;
  while (p < input_.size()) {
    char c = input_[p];
    if (c == '<') break;
    if (c == '&') {
      uint64_t q = p + 1;
      if (q < input_.size() && input_[q] == '#') {
        ++q;
        if (q < input_.size() && (input_[q] == 'x' || input_[q] == 'X')) ++q;
        while (q < input_.size() &&
               ((input_[q] >= '0' && input_[q] <= '9') ||
                (input_[q] >= 'a' && input_[q] <= 'f') ||
                (input_[q] >= 'A' && input_[q] <= 'F'))) {
          ++q;
        }
      } else {
        while (q < input_.size() && IsNameChar(input_[q])) ++q;
      }
      if (q <= p + 1 || q >= input_.size() || input_[q] != ';') {
        pos_ = p;
        Fail("bare '&' in character data");
        return false;
      }
      p = q + 1;
      continue;
    }
    if (static_cast<unsigned char>(c) < 0x20 && c != '\t' && c != '\n' &&
        c != '\r') {
      pos_ = p;
      Fail("invalid control character in character data");
      return false;
    }
    ++p;
  }
  uint64_t end = p;
  pos_ = end;
  std::string_view text = input_.substr(begin, end - begin);
  if (!opts_.report_whitespace_text &&
      StripWhitespace(text).empty()) {
    return Next(token);
  }
  token->type = TokenType::kText;
  token->name = {};
  token->text = text;
  token->attrs.clear();
  token->begin = begin;
  token->end = end;
  return true;
}

bool Tokenizer::LexMarkupDeclaration(Token* token) {
  uint64_t begin = pos_;
  if (input_[pos_ + 1] == '?') {
    size_t close = input_.find("?>", pos_ + 2);
    if (close == std::string_view::npos) {
      Fail("unterminated processing instruction");
      return false;
    }
    token->type = TokenType::kPi;
    token->text = input_.substr(pos_ + 2, close - pos_ - 2);
    token->name = {};
    token->attrs.clear();
    token->begin = begin;
    token->end = close + 2;
    pos_ = close + 2;
    return true;
  }
  // '<!': comment, CDATA, or DOCTYPE.
  if (StartsWith(input_.substr(pos_), "<!--")) {
    size_t close = input_.find("-->", pos_ + 4);
    if (close == std::string_view::npos) {
      Fail("unterminated comment");
      return false;
    }
    token->type = TokenType::kComment;
    token->text = input_.substr(pos_ + 4, close - pos_ - 4);
    token->name = {};
    token->attrs.clear();
    token->begin = begin;
    token->end = close + 3;
    pos_ = close + 3;
    return true;
  }
  if (StartsWith(input_.substr(pos_), "<![CDATA[")) {
    size_t close = input_.find("]]>", pos_ + 9);
    if (close == std::string_view::npos) {
      Fail("unterminated CDATA section");
      return false;
    }
    token->type = TokenType::kCData;
    token->text = input_.substr(pos_ + 9, close - pos_ - 9);
    token->name = {};
    token->attrs.clear();
    token->begin = begin;
    token->end = close + 3;
    pos_ = close + 3;
    return true;
  }
  if (StartsWith(input_.substr(pos_), "<!DOCTYPE")) {
    // Scan to the matching '>' respecting one level of '[...]' subset.
    uint64_t p = pos_ + 9;
    int bracket = 0;
    while (p < input_.size()) {
      char c = input_[p];
      if (c == '[') ++bracket;
      if (c == ']') --bracket;
      if (c == '>' && bracket <= 0) break;
      ++p;
    }
    if (p >= input_.size()) {
      Fail("unterminated DOCTYPE");
      return false;
    }
    token->type = TokenType::kDoctype;
    token->text = input_.substr(pos_, p + 1 - pos_);
    token->name = {};
    token->attrs.clear();
    token->begin = begin;
    token->end = p + 1;
    pos_ = p + 1;
    return true;
  }
  Fail("unrecognized markup declaration");
  return false;
}

bool Tokenizer::LexTag(Token* token) {
  uint64_t begin = pos_;
  uint64_t p = pos_ + 1;
  bool closing = false;
  if (p < input_.size() && input_[p] == '/') {
    closing = true;
    ++p;
  }
  if (p >= input_.size() || !IsNameStartChar(input_[p])) {
    Fail("expected tag name after '<'");
    return false;
  }
  uint64_t name_begin = p;
  while (p < input_.size() && IsNameChar(input_[p])) ++p;
  std::string_view name = input_.substr(name_begin, p - name_begin);

  token->attrs.clear();
  // Attributes (start tags only; closing tags allow trailing whitespace).
  for (;;) {
    while (p < input_.size() && IsXmlWhitespace(input_[p])) ++p;
    if (p >= input_.size()) {
      Fail("unterminated tag");
      return false;
    }
    char c = input_[p];
    if (c == '>') {
      ++p;
      break;
    }
    if (c == '/') {
      if (closing || p + 1 >= input_.size() || input_[p + 1] != '>') {
        Fail("malformed tag end");
        return false;
      }
      p += 2;
      token->type = TokenType::kEmptyTag;
      token->name = name;
      token->text = {};
      token->begin = begin;
      token->end = p;
      pos_ = p;
      return true;
    }
    if (closing) {
      Fail("unexpected character in closing tag");
      return false;
    }
    if (!IsNameStartChar(c)) {
      Fail("expected attribute name");
      return false;
    }
    uint64_t an = p;
    while (p < input_.size() && IsNameChar(input_[p])) ++p;
    std::string_view aname = input_.substr(an, p - an);
    while (p < input_.size() && IsXmlWhitespace(input_[p])) ++p;
    if (p >= input_.size() || input_[p] != '=') {
      Fail("expected '=' after attribute name");
      return false;
    }
    ++p;
    while (p < input_.size() && IsXmlWhitespace(input_[p])) ++p;
    if (p >= input_.size() || (input_[p] != '"' && input_[p] != '\'')) {
      Fail("expected quoted attribute value");
      return false;
    }
    char quote = input_[p];
    ++p;
    uint64_t vb = p;
    while (p < input_.size() && input_[p] != quote) {
      if (input_[p] == '<') {
        Fail("'<' not allowed in attribute value");
        return false;
      }
      ++p;
    }
    if (p >= input_.size()) {
      Fail("unterminated attribute value");
      return false;
    }
    token->attrs.push_back(Attribute{aname, input_.substr(vb, p - vb)});
    ++p;
  }

  token->type = closing ? TokenType::kEndTag : TokenType::kStartTag;
  token->name = name;
  token->text = {};
  token->begin = begin;
  token->end = p;
  pos_ = p;

  if (opts_.check_well_formed) {
    if (closing) {
      if (open_tags_.empty() || open_tags_.back() != name) {
        pos_ = begin;  // report at the offending tag
        Fail("mismatched closing tag </" + std::string(name) + ">");
        return false;
      }
      open_tags_.pop_back();
    } else {
      open_tags_.push_back(name);
    }
  }
  return true;
}

Result<std::vector<Token>> TokenizeAll(std::string_view input,
                                       TokenizerOptions opts) {
  Tokenizer tok(input, opts);
  std::vector<Token> out;
  Token t;
  while (tok.Next(&t)) out.push_back(t);
  if (!tok.status().ok()) return tok.status();
  return out;
}

Status CheckWellFormed(std::string_view input) {
  TokenizerOptions opts;
  opts.check_well_formed = true;
  Tokenizer tok(input, opts);
  Token t;
  int depth = 0;
  int roots = 0;
  bool seen_any = false;
  while (tok.Next(&t)) {
    seen_any = true;
    switch (t.type) {
      case TokenType::kStartTag:
        if (depth == 0) ++roots;
        ++depth;
        break;
      case TokenType::kEndTag:
        --depth;
        break;
      case TokenType::kEmptyTag:
        if (depth == 0) ++roots;
        break;
      case TokenType::kText:
        if (depth == 0 && !StripWhitespace(t.text).empty()) {
          return Status::ParseError("character data outside the root element");
        }
        break;
      default:
        break;
    }
  }
  SMPX_RETURN_IF_ERROR(tok.status());
  if (!seen_any || roots == 0) {
    return Status::ParseError("no root element");
  }
  if (roots > 1) {
    return Status::ParseError("multiple root elements");
  }
  return Status::Ok();
}

}  // namespace smpx::xml
