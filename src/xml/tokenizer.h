// Pull-based SAX-style XML tokenizer over a contiguous buffer. This is the
// substrate for every "tokenize the whole input" system in the evaluation:
// the Xerces throughput stand-in (Fig. 7c), the TBP-style projector
// (Table III), the streaming XPath engine (Fig. 7b), and the DOM builder.
//
// It deliberately processes *every* character -- the contrast to the
// skip-based prefilter is the paper's central claim.

#ifndef SMPX_XML_TOKENIZER_H_
#define SMPX_XML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "xml/token.h"

namespace smpx::xml {

/// Tokenizer options; the two presets model the SAX1/SAX2 gap in Fig. 7(c).
struct TokenizerOptions {
  /// Verify tag nesting (open/close balance); "SAX2-like" mode.
  bool check_well_formed = false;
  /// Deliver whitespace-only text tokens (they are always scanned either way).
  bool report_whitespace_text = true;
};

class Tokenizer {
 public:
  /// `input` must outlive the tokenizer; token views point into it.
  explicit Tokenizer(std::string_view input, TokenizerOptions opts = {});

  /// Fetches the next token into `*token`. Returns true when a token was
  /// produced, false at end of input. Errors are reported via status().
  bool Next(Token* token);

  /// First error encountered, if any.
  const Status& status() const { return status_; }

  /// Byte offset of the next unconsumed character.
  uint64_t position() const { return pos_; }

  /// True once the input is exhausted without a pending error.
  bool AtEnd() const { return pos_ >= input_.size(); }

 private:
  bool LexTag(Token* token);
  bool LexText(Token* token);
  bool LexMarkupDeclaration(Token* token);  // comments, doctype, CDATA
  void Fail(const std::string& msg);

  std::string_view input_;
  TokenizerOptions opts_;
  uint64_t pos_ = 0;
  Status status_;
  std::vector<std::string_view> open_tags_;  // only when check_well_formed
};

/// Convenience: tokenizes the whole input, returning all tokens or the
/// first error.
Result<std::vector<Token>> TokenizeAll(std::string_view input,
                                       TokenizerOptions opts = {});

/// Checks that `input` is a well-formed element tree (single root, balanced
/// tags). Used by tests on projector output.
Status CheckWellFormed(std::string_view input);

}  // namespace smpx::xml

#endif  // SMPX_XML_TOKENIZER_H_
