// Arena-based in-memory XML tree with an explicit allocation budget. The
// budget reproduces the paper's Fig. 7(a) setup, where the in-memory query
// engine (QizX, capped at 1 GB heap) fails on large unprojected documents
// but succeeds after prefiltering.

#ifndef SMPX_XML_DOM_H_
#define SMPX_XML_DOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace smpx::xml {

/// Node index into Document::nodes; 0 is always the root element.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct DomAttribute {
  std::string name;
  std::string value;  ///< entity-expanded
};

struct DomNode {
  enum class Kind : unsigned char { kElement, kText };

  Kind kind = Kind::kElement;
  std::string name;               ///< element name (elements only)
  std::string text;               ///< character data (text nodes only)
  std::vector<DomAttribute> attrs;
  std::vector<NodeId> children;
  NodeId parent = kInvalidNode;
};

/// A parsed document. Move-only (the node arena can be large).
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const DomNode& node(NodeId id) const { return nodes_[id]; }
  DomNode& node(NodeId id) { return nodes_[id]; }
  NodeId root() const { return 0; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Approximate heap footprint of the tree, the unit the memory budget is
  /// accounted in.
  uint64_t approx_bytes() const { return approx_bytes_; }

  /// Appends a node; used by the parser and by tests building trees by hand.
  NodeId AddNode(DomNode node);

  /// Serializes the subtree at `id` (whole document for root()).
  std::string Serialize(NodeId id) const;
  void SerializeTo(NodeId id, std::string* out) const;

  /// Concatenated text content of the subtree (XPath string-value).
  std::string TextContent(NodeId id) const;

 private:
  std::vector<DomNode> nodes_;
  uint64_t approx_bytes_ = 0;
};

struct ParseOptions {
  /// Maximum approx_bytes() the tree may reach; 0 = unlimited. Exceeding it
  /// yields ResourceExhausted -- the "out of main memory" outcome of
  /// Fig. 7(a).
  uint64_t memory_budget = 0;
  /// Drop whitespace-only text nodes.
  bool skip_whitespace_text = true;
};

/// Parses a document (prolog/DOCTYPE/comments allowed and skipped).
Result<Document> ParseDocument(std::string_view input,
                               const ParseOptions& opts = {});

}  // namespace smpx::xml

#endif  // SMPX_XML_DOM_H_
