#include "xml/dom.h"

#include "common/strings.h"
#include "xml/escape.h"
#include "xml/tokenizer.h"

namespace smpx::xml {
namespace {

uint64_t NodeBytes(const DomNode& n) {
  uint64_t b = sizeof(DomNode);
  b += n.name.capacity() + n.text.capacity();
  for (const DomAttribute& a : n.attrs) {
    b += sizeof(DomAttribute) + a.name.capacity() + a.value.capacity();
  }
  b += n.children.capacity() * sizeof(NodeId);
  return b;
}

}  // namespace

NodeId Document::AddNode(DomNode node) {
  approx_bytes_ += NodeBytes(node);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Document::SerializeTo(NodeId id, std::string* out) const {
  const DomNode& n = nodes_[id];
  if (n.kind == DomNode::Kind::kText) {
    out->append(EscapeText(n.text));
    return;
  }
  out->push_back('<');
  out->append(n.name);
  for (const DomAttribute& a : n.attrs) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EscapeAttribute(a.value));
    out->push_back('"');
  }
  if (n.children.empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (NodeId c : n.children) SerializeTo(c, out);
  out->append("</");
  out->append(n.name);
  out->push_back('>');
}

std::string Document::Serialize(NodeId id) const {
  std::string out;
  SerializeTo(id, &out);
  return out;
}

std::string Document::TextContent(NodeId id) const {
  std::string out;
  std::vector<NodeId> stack = {id};
  // Iterative DFS preserving document order.
  std::vector<NodeId> order;
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    const DomNode& n = nodes_[cur];
    if (n.kind == DomNode::Kind::kText) {
      order.push_back(cur);
    } else {
      for (size_t i = n.children.size(); i-- > 0;) {
        stack.push_back(n.children[i]);
      }
    }
  }
  for (NodeId t : order) out += nodes_[t].text;
  return out;
}

Result<Document> ParseDocument(std::string_view input,
                               const ParseOptions& opts) {
  TokenizerOptions topts;
  topts.check_well_formed = true;
  Tokenizer tok(input, topts);

  Document doc;
  std::vector<NodeId> stack;
  bool have_root = false;
  Token t;
  while (tok.Next(&t)) {
    if (opts.memory_budget != 0 && doc.approx_bytes() > opts.memory_budget) {
      return Status::ResourceExhausted(
          "document tree exceeds the memory budget of " +
          std::to_string(opts.memory_budget) + " bytes");
    }
    switch (t.type) {
      case TokenType::kStartTag:
      case TokenType::kEmptyTag: {
        if (stack.empty() && have_root) {
          return Status::ParseError("multiple root elements");
        }
        DomNode n;
        n.kind = DomNode::Kind::kElement;
        n.name = std::string(t.name);
        for (const Attribute& a : t.attrs) {
          n.attrs.push_back(
              DomAttribute{std::string(a.name), Unescape(a.value)});
        }
        n.parent = stack.empty() ? kInvalidNode : stack.back();
        NodeId id = doc.AddNode(std::move(n));
        if (!stack.empty()) {
          doc.node(stack.back()).children.push_back(id);
        } else {
          have_root = true;
          if (id != doc.root()) {
            return Status::Internal("root element is not node 0");
          }
        }
        if (t.type == TokenType::kStartTag) stack.push_back(id);
        break;
      }
      case TokenType::kEndTag:
        // Balance already checked by the tokenizer.
        stack.pop_back();
        break;
      case TokenType::kText: {
        if (stack.empty()) break;  // prolog whitespace
        if (opts.skip_whitespace_text &&
            StripWhitespace(t.text).empty()) {
          break;
        }
        DomNode n;
        n.kind = DomNode::Kind::kText;
        n.text = Unescape(t.text);
        n.parent = stack.back();
        NodeId id = doc.AddNode(std::move(n));
        doc.node(stack.back()).children.push_back(id);
        break;
      }
      case TokenType::kCData: {
        if (stack.empty()) break;
        DomNode n;
        n.kind = DomNode::Kind::kText;
        n.text = std::string(t.text);
        n.parent = stack.back();
        NodeId id = doc.AddNode(std::move(n));
        doc.node(stack.back()).children.push_back(id);
        break;
      }
      case TokenType::kComment:
      case TokenType::kPi:
      case TokenType::kDoctype:
        break;  // not materialized
    }
  }
  SMPX_RETURN_IF_ERROR(tok.status());
  if (!have_root) return Status::ParseError("no root element");
  return doc;
}

}  // namespace smpx::xml
