// XML entity escaping/unescaping for text and attribute values.

#ifndef SMPX_XML_ESCAPE_H_
#define SMPX_XML_ESCAPE_H_

#include <string>
#include <string_view>

namespace smpx::xml {

/// Escapes '&', '<', '>' for element content.
std::string EscapeText(std::string_view raw);

/// Escapes '&', '<', '>', '"' for double-quoted attribute values.
std::string EscapeAttribute(std::string_view raw);

/// Expands the five predefined entities and decimal/hex character
/// references. Unknown entities are preserved verbatim.
std::string Unescape(std::string_view escaped);

}  // namespace smpx::xml

#endif  // SMPX_XML_ESCAPE_H_
