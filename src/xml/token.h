// XML token model produced by the SAX-style tokenizer. This is the
// "tokenize everything" representation the paper's baselines rely on and
// that the SMP prefilter deliberately avoids.

#ifndef SMPX_XML_TOKEN_H_
#define SMPX_XML_TOKEN_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace smpx::xml {

enum class TokenType : unsigned char {
  kStartTag,   ///< <a ...>
  kEndTag,     ///< </a>
  kEmptyTag,   ///< <a ...
               ///< (bachelor tag in the paper's terminology)
  kText,       ///< character data
  kComment,    ///< <!-- ... -->
  kPi,         ///< <? ... ?>
  kDoctype,    ///< <!DOCTYPE ...> (with optional internal subset)
  kCData,      ///< <![CDATA[ ... ]]>
};

/// One attribute; views point into the tokenizer's input buffer.
struct Attribute {
  std::string_view name;
  std::string_view value;  ///< raw value, entities not expanded
};

/// A single token; all views point into the tokenizer's input buffer and
/// stay valid as long as that buffer lives.
struct Token {
  TokenType type = TokenType::kText;
  std::string_view name;        ///< tag name for tag tokens
  std::string_view text;        ///< character data / comment body
  std::vector<Attribute> attrs; ///< start/empty tags only
  uint64_t begin = 0;           ///< byte offset of the token's first char
  uint64_t end = 0;             ///< one past the token's last char

  bool IsTag() const {
    return type == TokenType::kStartTag || type == TokenType::kEndTag ||
           type == TokenType::kEmptyTag;
  }
};

}  // namespace smpx::xml

#endif  // SMPX_XML_TOKEN_H_
