// AVX2 tier: 32-byte vector classification; two vector compares cover a
// 64-byte block. Compiled with -mavx2 (CMake per-file flags); only ever
// called after the dispatcher verified AVX2 support at runtime.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "simd/kernels.h"

// Normally this TU is compiled with -mavx2 (CMake per-file flags); if the
// flag is unavailable, fall back to per-function target attributes so the
// intrinsics still compile.
#if defined(__AVX2__)
#define SMPX_TARGET_AVX2
#else
#define SMPX_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace smpx::simd::detail {
namespace {

SMPX_TARGET_AVX2 inline uint64_t MoveMask32(__m256i eq) {
  return static_cast<uint64_t>(
      static_cast<uint32_t>(_mm256_movemask_epi8(eq)));
}

SMPX_TARGET_AVX2 uint64_t Eq64Avx2(const unsigned char* p, unsigned char c) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
  return MoveMask32(_mm256_cmpeq_epi8(lo, needle)) |
         (MoveMask32(_mm256_cmpeq_epi8(hi, needle)) << 32);
}

SMPX_TARGET_AVX2 uint64_t Any64Avx2(const unsigned char* p,
                                    const ByteSet& set) {
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
  __m256i hits_lo = _mm256_setzero_si256();
  __m256i hits_hi = _mm256_setzero_si256();
  for (unsigned j = 0; j < set.n; ++j) {
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(set.chars[j]));
    hits_lo = _mm256_or_si256(hits_lo, _mm256_cmpeq_epi8(lo, needle));
    hits_hi = _mm256_or_si256(hits_hi, _mm256_cmpeq_epi8(hi, needle));
  }
  return MoveMask32(hits_lo) | (MoveMask32(hits_hi) << 32);
}

SMPX_TARGET_AVX2 uint64_t Pair64Avx2(const unsigned char* p, size_t delta,
                                     unsigned char a, unsigned char b) {
  const __m256i na = _mm256_set1_epi8(static_cast<char>(a));
  const __m256i nb = _mm256_set1_epi8(static_cast<char>(b));
  __m256i lo0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i lo1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
  __m256i hi0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + delta));
  __m256i hi1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + delta + 32));
  uint64_t mask =
      MoveMask32(_mm256_and_si256(_mm256_cmpeq_epi8(lo0, na),
                                  _mm256_cmpeq_epi8(hi0, nb))) |
      (MoveMask32(_mm256_and_si256(_mm256_cmpeq_epi8(lo1, na),
                                   _mm256_cmpeq_epi8(hi1, nb)))
       << 32);
  return mask;
}

SMPX_TARGET_AVX2 void EqFillAvx2(const unsigned char* p, size_t nblocks,
                                 unsigned char c, uint64_t* out) {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
  for (size_t b = 0; b < nblocks; ++b) {
    const unsigned char* q = p + kBlock * b;
    __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
    __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + 32));
    out[b] = MoveMask32(_mm256_cmpeq_epi8(lo, needle)) |
             (MoveMask32(_mm256_cmpeq_epi8(hi, needle)) << 32);
  }
}

SMPX_TARGET_AVX2 void AnyFillAvx2(const unsigned char* p, size_t nblocks,
                                  const ByteSet& set, uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Any64Avx2(p + kBlock * b, set);
}

SMPX_TARGET_AVX2 void PairFillAvx2(const unsigned char* p, size_t nblocks,
                                   size_t delta, unsigned char a,
                                   unsigned char b, uint64_t* out) {
  const __m256i na = _mm256_set1_epi8(static_cast<char>(a));
  const __m256i nb = _mm256_set1_epi8(static_cast<char>(b));
  for (size_t k = 0; k < nblocks; ++k) {
    const unsigned char* q = p + kBlock * k;
    __m256i lo0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
    __m256i lo1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + 32));
    __m256i hi0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + delta));
    __m256i hi1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + delta + 32));
    out[k] = MoveMask32(_mm256_and_si256(_mm256_cmpeq_epi8(lo0, na),
                                         _mm256_cmpeq_epi8(hi0, nb))) |
             (MoveMask32(_mm256_and_si256(_mm256_cmpeq_epi8(lo1, na),
                                          _mm256_cmpeq_epi8(hi1, nb)))
              << 32);
  }
}

constexpr Kernels kAvx2 = {Isa::kAvx2,  Eq64Avx2,    Any64Avx2,   Pair64Avx2,
                           EqFillAvx2,  AnyFillAvx2, PairFillAvx2};

}  // namespace

const Kernels& Avx2Kernels() { return kAvx2; }

}  // namespace smpx::simd::detail

#endif
