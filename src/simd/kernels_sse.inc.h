// Shared 16-byte-vector kernel bodies for the SSE tiers. Included by
// kernels_sse2.cc and kernels_sse42.cc, which define
//
//   SMPX_SSE_ISA       the Isa enumerator of the tier
//   SMPX_SSE_ACCESSOR  the accessor function to define (Sse2Kernels, ...)
//
// before inclusion; CMake compiles each includer with the matching -m<isa>
// flags, so the same intrinsics code is scheduled for each feature level.
// No include guard: the file is a template body, included once per tier TU.

#include <emmintrin.h>

#include "simd/kernels.h"

namespace smpx::simd::detail {
namespace {

inline uint64_t MoveMask16(__m128i eq) {
  return static_cast<uint64_t>(static_cast<uint32_t>(_mm_movemask_epi8(eq)));
}

uint64_t Eq64Sse(const unsigned char* p, unsigned char c) {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(c));
  uint64_t mask = 0;
  for (size_t v = 0; v < kBlock / 16; ++v) {
    __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * v));
    mask |= MoveMask16(_mm_cmpeq_epi8(block, needle)) << (16 * v);
  }
  return mask;
}

uint64_t Any64Sse(const unsigned char* p, const ByteSet& set) {
  uint64_t mask = 0;
  for (size_t v = 0; v < kBlock / 16; ++v) {
    __m128i block = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * v));
    __m128i hits = _mm_setzero_si128();
    for (unsigned j = 0; j < set.n; ++j) {
      __m128i needle = _mm_set1_epi8(static_cast<char>(set.chars[j]));
      hits = _mm_or_si128(hits, _mm_cmpeq_epi8(block, needle));
    }
    mask |= MoveMask16(hits) << (16 * v);
  }
  return mask;
}

uint64_t Pair64Sse(const unsigned char* p, size_t delta, unsigned char a,
                   unsigned char b) {
  const __m128i na = _mm_set1_epi8(static_cast<char>(a));
  const __m128i nb = _mm_set1_epi8(static_cast<char>(b));
  uint64_t mask = 0;
  for (size_t v = 0; v < kBlock / 16; ++v) {
    __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * v));
    __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(p + 16 * v + delta));
    __m128i hits =
        _mm_and_si128(_mm_cmpeq_epi8(lo, na), _mm_cmpeq_epi8(hi, nb));
    mask |= MoveMask16(hits) << (16 * v);
  }
  return mask;
}

void EqFillSse(const unsigned char* p, size_t nblocks, unsigned char c,
               uint64_t* out) {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(c));
  for (size_t b = 0; b < nblocks; ++b) {
    const unsigned char* q = p + kBlock * b;
    uint64_t mask = 0;
    for (size_t v = 0; v < kBlock / 16; ++v) {
      __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 16 * v));
      mask |= MoveMask16(_mm_cmpeq_epi8(block, needle)) << (16 * v);
    }
    out[b] = mask;
  }
}

void AnyFillSse(const unsigned char* p, size_t nblocks, const ByteSet& set,
                uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Any64Sse(p + kBlock * b, set);
}

void PairFillSse(const unsigned char* p, size_t nblocks, size_t delta,
                 unsigned char a, unsigned char b, uint64_t* out) {
  const __m128i na = _mm_set1_epi8(static_cast<char>(a));
  const __m128i nb = _mm_set1_epi8(static_cast<char>(b));
  for (size_t k = 0; k < nblocks; ++k) {
    const unsigned char* q = p + kBlock * k;
    uint64_t mask = 0;
    for (size_t v = 0; v < kBlock / 16; ++v) {
      __m128i lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 16 * v));
      __m128i hi = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(q + 16 * v + delta));
      __m128i hits =
          _mm_and_si128(_mm_cmpeq_epi8(lo, na), _mm_cmpeq_epi8(hi, nb));
      mask |= MoveMask16(hits) << (16 * v);
    }
    out[k] = mask;
  }
}

constexpr Kernels kSseTable = {SMPX_SSE_ISA, Eq64Sse,    Any64Sse,
                               Pair64Sse,    EqFillSse,  AnyFillSse,
                               PairFillSse};

}  // namespace

const Kernels& SMPX_SSE_ACCESSOR() { return kSseTable; }

}  // namespace smpx::simd::detail
