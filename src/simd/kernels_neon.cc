// NEON tier (aarch64 baseline): 16-byte vector classification. NEON has no
// movemask; the compare result is ANDed with per-lane bit weights
// (1,2,4,...,128 repeating) and each 8-lane half is summed horizontally
// (vaddv_u8) into one LSB-first byte of the block mask.

#if defined(__aarch64__) || defined(_M_ARM64)

#include <arm_neon.h>

#include "simd/kernels.h"

namespace smpx::simd::detail {
namespace {

inline uint64_t MoveMask16Neon(uint8x16_t eq) {
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128,
                              1, 2, 4, 8, 16, 32, 64, 128};
  uint8x16_t bits = vandq_u8(eq, weights);
  return static_cast<uint64_t>(vaddv_u8(vget_low_u8(bits))) |
         (static_cast<uint64_t>(vaddv_u8(vget_high_u8(bits))) << 8);
}

uint64_t Eq64Neon(const unsigned char* p, unsigned char c) {
  const uint8x16_t needle = vdupq_n_u8(c);
  uint64_t mask = 0;
  for (size_t v = 0; v < kBlock / 16; ++v) {
    uint8x16_t block = vld1q_u8(p + 16 * v);
    mask |= MoveMask16Neon(vceqq_u8(block, needle)) << (16 * v);
  }
  return mask;
}

uint64_t Any64Neon(const unsigned char* p, const ByteSet& set) {
  uint64_t mask = 0;
  for (size_t v = 0; v < kBlock / 16; ++v) {
    uint8x16_t block = vld1q_u8(p + 16 * v);
    uint8x16_t hits = vdupq_n_u8(0);
    for (unsigned j = 0; j < set.n; ++j) {
      hits = vorrq_u8(hits, vceqq_u8(block, vdupq_n_u8(set.chars[j])));
    }
    mask |= MoveMask16Neon(hits) << (16 * v);
  }
  return mask;
}

uint64_t Pair64Neon(const unsigned char* p, size_t delta, unsigned char a,
                    unsigned char b) {
  const uint8x16_t na = vdupq_n_u8(a);
  const uint8x16_t nb = vdupq_n_u8(b);
  uint64_t mask = 0;
  for (size_t v = 0; v < kBlock / 16; ++v) {
    uint8x16_t lo = vld1q_u8(p + 16 * v);
    uint8x16_t hi = vld1q_u8(p + 16 * v + delta);
    uint8x16_t hits = vandq_u8(vceqq_u8(lo, na), vceqq_u8(hi, nb));
    mask |= MoveMask16Neon(hits) << (16 * v);
  }
  return mask;
}

void EqFillNeon(const unsigned char* p, size_t nblocks, unsigned char c,
                uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Eq64Neon(p + kBlock * b, c);
}

void AnyFillNeon(const unsigned char* p, size_t nblocks, const ByteSet& set,
                 uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Any64Neon(p + kBlock * b, set);
}

void PairFillNeon(const unsigned char* p, size_t nblocks, size_t delta,
                  unsigned char a, unsigned char b, uint64_t* out) {
  for (size_t k = 0; k < nblocks; ++k) {
    out[k] = Pair64Neon(p + kBlock * k, delta, a, b);
  }
}

constexpr Kernels kNeon = {Isa::kNeon,  Eq64Neon,    Any64Neon,   Pair64Neon,
                           EqFillNeon,  AnyFillNeon, PairFillNeon};

}  // namespace

const Kernels& NeonKernels() { return kNeon; }

}  // namespace smpx::simd::detail

#endif
