// Shared structural bitmap plane: classify each resident window once,
// consume it everywhere.
//
// PR 7's kernels classify bytes per call -- every FindByte/FindAny/
// FindPattern/MaskScanner invocation runs its own block loop through the
// dispatch indirection, and blocks straddling call boundaries are
// re-classified by the next call. The plane is the simdjson-style stage-1
// answer (Langdale & Lemire): one bulk vectorized pass per lane fills a
// memoized LSB-first bitmap over the bound buffer, and every consumer --
// the engine's tag-end/quote/DOCTYPE/comment/PI scans, the boundary
// scanner, the BM/CW candidate probes -- bit-walks those words instead of
// re-running kernels.
//
// Lanes are memoized by byte class: eq(c), any(set), and pair(a, b, delta)
// each get one lane, filled lazily one kFillChunk-byte chunk at a time
// (a per-lane chunk bitmap tracks what is classified) so a lane only ever
// pays for the chunks its queries actually touch -- early-exit scans never
// classify bytes nobody looks at, a lane first queried deep into the
// buffer does not classify the prefix, and an evicted-then-recreated lane
// refills only what is re-queried -- while steady scans amortize to one
// dispatch call per chunk instead of per 64-byte block. Positions are
// ABSOLUTE (the binding records the buffer's origin), so classifications
// survive as long as the binding does; SlidingWindow append-refills keep
// every computed lane (only the chunks holding the old partial tail word
// -- plus, for pair lanes, the trailing delta bytes whose partner used to
// sit past the end -- re-open), and slides/reallocs -- detected via the
// (data, origin, epoch) key -- invalidate everything.
//
// Every lane is computed by the active dispatch tier (simd::Active()), so
// a forced-scalar process fills its plane with the same scalar oracle the
// per-call path uses: outputs are bit-identical to the kernels under every
// tier by construction, which is what the differential suites assert.
//
// Not thread-safe: each consumer (engine session, scan call) owns its own
// plane. Tables-less consumers gate on PlaneEnabled() alone; engine
// sessions AND it with TableOptions::use_bitmap_plane.

#ifndef SMPX_SIMD_BITMAP_PLANE_H_
#define SMPX_SIMD_BITMAP_PLANE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "simd/simd.h"

namespace smpx::simd {

/// Process-wide plane switch, default on; SMPX_DISABLE_PLANE=1 in the
/// environment disables it at startup (the CI force-disabled job).
bool PlaneEnabled();
/// Test/bench hook; not thread-safe against concurrent scans.
void SetPlaneEnabled(bool on);

class BitmapPlane {
 public:
  /// Classification granularity: lanes fill one chunk per miss, tracked in
  /// a per-lane chunk bitmap.
  static constexpr size_t kFillChunk = 8192;

  /// Lane words per fill chunk (the granularity of ChunkWords walks).
  static constexpr size_t kChunkWords = kFillChunk / kBlock;

  BitmapPlane() = default;
  BitmapPlane(const BitmapPlane&) = delete;
  BitmapPlane& operator=(const BitmapPlane&) = delete;

  /// (Re)binds the plane to the resident bytes [data, data + n) whose first
  /// byte sits at absolute position `origin`. `epoch` must change whenever
  /// the bytes behind an unchanged (data, origin) pair may have moved or
  /// been rewritten (SlidingWindow::epoch(); fixed buffers pass 0).
  /// Re-binding the same buffer is free; append-only growth (same data,
  /// origin, epoch, larger n) keeps every computed lane and re-opens only
  /// the chunks around the old end whose bits depended on the old length;
  /// anything else invalidates all lanes.
  void Bind(const char* data, size_t n, uint64_t origin, uint64_t epoch = 0);

  bool bound() const { return data_ != nullptr; }
  uint64_t origin() const { return origin_; }
  uint64_t end() const { return origin_ + n_; }

  /// simd::FindByte over the absolute range [abs, abs + len): RELATIVE
  /// offset of the first byte == c, len when absent. The range must lie
  /// within the binding.
  size_t FindByte(uint64_t abs, size_t len, unsigned char c);
  /// simd::FindAny over [abs, abs + len).
  size_t FindAny(uint64_t abs, size_t len, const ByteSet& set);
  /// simd::FindPattern over [abs, abs + len).
  size_t FindPattern(uint64_t abs, size_t len, std::string_view term);

  /// The 64 classification bits at absolute positions [abs, abs + 64):
  /// bit i = (byte at abs + i == c); bits at or past the binding end are 0.
  /// The matcher probe primitive -- one unaligned word extracted from the
  /// lane, any alignment.
  uint64_t EqWord(unsigned char c, uint64_t abs);
  uint64_t AnyWord(const ByteSet& set, uint64_t abs);
  /// Bit i = (byte at abs+i == a && byte at abs+i+delta == b); bits whose
  /// partner would sit at or past the binding end are 0 (the PairMaskTail
  /// convention).
  uint64_t PairWord(unsigned char a, unsigned char b, size_t delta,
                    uint64_t abs);

  /// A resolved lane for hot probe loops: Word() through a ref skips the
  /// per-query class lookup that EqWord/AnyWord/PairWord pay. Resolve every
  /// ref a loop needs up front, then probe. Refs stay valid while the plane
  /// stays bound to the same buffer (append refills included) and no *new*
  /// byte class is requested: only a new class can recycle a lane, and the
  /// lanes behind freshly resolved refs are the most recently used, so a
  /// loop's refs can never evict one another. Word() asserts freshness in
  /// debug builds.
  struct LaneRef {
   private:
    friend class BitmapPlane;
    void* lane = nullptr;
    uint64_t gen = 0;
  };
  LaneRef EqLaneRef(unsigned char c);
  LaneRef AnyLaneRef(const ByteSet& set);
  LaneRef PairLaneRef(unsigned char a, unsigned char b, size_t delta);
  /// The 64 lane bits at [abs, abs + 64) through a resolved ref --
  /// identical to EqWord/AnyWord/PairWord for the ref's class.
  uint64_t Word(LaneRef ref, uint64_t abs) {
    Lane* l = static_cast<Lane*>(ref.lane);
    assert(l != nullptr && l->gen == ref.gen && "stale LaneRef");
    return Extract(l, abs);
  }

  /// Aligned access for stride-64 probe loops: lane word w holds the bits
  /// for absolute positions [WordBase(w), WordBase(w) + 64), so walking w
  /// upward reads each word exactly once with no cross-word stitching --
  /// cheaper than Word() at arbitrary alignment. WordIndexOf/WordBase
  /// convert between absolute positions and word indexes.
  size_t WordIndexOf(uint64_t abs) const {
    return static_cast<size_t>(abs - origin_) / kBlock;
  }
  uint64_t WordBase(size_t w) const { return origin_ + w * kBlock; }
  uint64_t AlignedWord(LaneRef ref, size_t w) {
    Lane* l = static_cast<Lane*>(ref.lane);
    assert(l != nullptr && l->gen == ref.gen && "stale LaneRef");
    return WordAt(l, w);
  }
  /// The cheapest walk: ensures chunk c (words [c * kChunkWords, ...)) is
  /// classified and returns the lane's word array, indexed by the same
  /// word indexes WordIndexOf yields. Words past the binding end are not
  /// dereferenceable -- cap walks at WordIndexOf(end() - 1) + 1. The
  /// pointer is invalidated by the next fill on this lane (a later chunk
  /// can grow the array), so re-fetch it for every chunk walked.
  const uint64_t* ChunkWords(LaneRef ref, size_t c) {
    Lane* l = static_cast<Lane*>(ref.lane);
    assert(l != nullptr && l->gen == ref.gen && "stale LaneRef");
    if (!ChunkFilled(*l, c)) FillChunk(l, c);
    return l->words.data();
  }

 private:
  enum class LaneKind : uint8_t { kEq, kAny, kPair };

  /// One memoized byte-class bitmap. `filled` holds one bit per
  /// kFillChunk-byte chunk of the binding; only chunks whose bit is set
  /// have classified words, so the kernel work a lane pays tracks the
  /// chunks its queries touch, not the binding size. `words` grows to
  /// cover the highest filled chunk (unfilled gaps are zero-allocated but
  /// never classified).
  struct Lane {
    LaneKind kind = LaneKind::kEq;
    unsigned char a = 0;
    unsigned char b = 0;
    size_t delta = 0;
    ByteSet set;
    std::vector<uint64_t> words;
    std::vector<uint64_t> filled;
    uint64_t last_use = 0;
    uint64_t gen = 0;  // bumped when the lane is re-keyed (LaneRef freshness)
  };

  /// Enough for every structural class plus the shared matcher lead class
  /// of a complex query mix: evicting a live class forces whole-chunk
  /// refills, which costs far more than the lane table scan ever can.
  static constexpr size_t kMaxLanes = 16;

  Lane* GetLane(LaneKind kind, unsigned char a, unsigned char b, size_t delta,
                const ByteSet* set);
  /// Classifies chunk c of `lane` (words [c * kChunkWords, the chunk end or
  /// the binding end)) via one bulk kernel call for the in-bounds blocks
  /// and masked tails at the edge, then marks it filled.
  void FillChunk(Lane* lane, size_t c);
  bool ChunkFilled(const Lane& lane, size_t c) const {
    return ((lane.filled[c >> 6] >> (c & 63)) & 1) != 0;
  }
  /// The lane's word w (bits for bytes [64w, 64w + 64)), filling the
  /// enclosing chunk on demand; 0 for words entirely past the binding end.
  inline uint64_t WordAt(Lane* lane, size_t w) {
    if (w * kBlock >= n_) return 0;
    const size_t c = w / kChunkWords;
    if (((lane->filled[c >> 6] >> (c & 63)) & 1) == 0) FillChunk(lane, c);
    return lane->words[w];
  }
  /// 64 lane bits starting at absolute position abs (unaligned extraction).
  uint64_t Extract(Lane* lane, uint64_t abs);
  /// First set lane bit in [abs, abs + len), as a relative offset; len when
  /// none.
  size_t ScanLane(Lane* lane, uint64_t abs, size_t len);

  const char* data_ = nullptr;
  size_t n_ = 0;
  size_t chunks_ = 0;      // kFillChunk-byte chunks covering the binding
  size_t fill_words_ = 0;  // uint64 words in each lane's chunk bitmap
  uint64_t origin_ = 0;
  uint64_t epoch_ = 0;
  uint64_t tick_ = 0;
  uint8_t mru_[3] = {255, 255, 255};  // most recent lane index per LaneKind
  std::vector<Lane> lanes_;
};

}  // namespace smpx::simd

#endif  // SMPX_SIMD_BITMAP_PLANE_H_
