// Runtime tier selection. Detection runs once on first use (or on SetIsa):
// x86 tiers are gated by __builtin_cpu_supports, NEON by compiling for
// aarch64 at all. SMPX_FORCE_ISA pins a tier by name; forcing a tier the
// host lacks falls back to the best available at or below it, so a single
// CI matrix entry works across heterogeneous runners.

#include "simd/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

namespace smpx::simd {

namespace detail {

std::atomic<const Kernels*> g_active{nullptr};

namespace {

const Kernels* TierOrNull(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &ScalarKernels();
    case Isa::kSwar:
      return &SwarKernels();
#if defined(SMPX_SIMD_X86)
    case Isa::kSse2:
      return __builtin_cpu_supports("sse2") ? &Sse2Kernels() : nullptr;
    case Isa::kSse42:
      return __builtin_cpu_supports("sse4.2") ? &Sse42Kernels() : nullptr;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") ? &Avx2Kernels() : nullptr;
#endif
#if defined(SMPX_SIMD_NEON)
    case Isa::kNeon:
      return &NeonKernels();
#endif
    default:
      return nullptr;
  }
}

/// Best available tier at or below `want` (kSwar is always available, so
/// this never falls through to scalar unless scalar itself was requested).
const Kernels* BestAtOrBelow(Isa want) {
  for (int i = static_cast<int>(want); i > 0; --i) {
    if (const Kernels* k = TierOrNull(static_cast<Isa>(i))) return k;
  }
  return &ScalarKernels();
}

Isa BestIsa() {
#if defined(SMPX_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kAvx2;
#endif
}

}  // namespace

const Kernels& Init() {
  Isa want = BestIsa();
  if (const char* force = std::getenv("SMPX_FORCE_ISA")) {
    Isa forced;
    if (!ParseIsa(force, &forced)) {
      // A typo'd tier name silently falling back to best-available would
      // invalidate every differential CI run that relies on the pin; fail
      // loudly instead.
      std::fprintf(stderr,
                   "smpx: unrecognized SMPX_FORCE_ISA value \"%s\" "
                   "(expected scalar|swar|sse2|sse42|avx2|neon)\n",
                   force);
      std::abort();
    }
    want = forced;
  }
  const Kernels* k = BestAtOrBelow(want);
  g_active.store(k, std::memory_order_relaxed);
  return *k;
}

}  // namespace detail

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSwar:
      return "swar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kSse42:
      return "sse42";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseIsa(std::string_view name, Isa* out) {
  for (Isa isa : {Isa::kScalar, Isa::kSwar, Isa::kSse2, Isa::kSse42,
                  Isa::kAvx2, Isa::kNeon}) {
    if (name == IsaName(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

bool IsaAvailable(Isa isa) { return detail::TierOrNull(isa) != nullptr; }

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSwar, Isa::kSse2, Isa::kSse42,
                  Isa::kAvx2, Isa::kNeon}) {
    if (IsaAvailable(isa)) out.push_back(isa);
  }
  return out;
}

Isa SetIsa(Isa isa) {
  const Kernels* k = detail::BestAtOrBelow(isa);
  detail::g_active.store(k, std::memory_order_relaxed);
  return k->isa;
}

}  // namespace smpx::simd
