// Scalar reference tier: straight per-byte loops with no word or vector
// tricks. Deliberately the simplest possible implementation -- it is the
// oracle the SWAR and vector tiers are differentially verified against
// (tests/simd_test.cc, dispatch_diff_test, fuzz_diff_test), so its
// correctness must be evident by inspection.

#include "simd/kernels.h"

namespace smpx::simd::detail {
namespace {

uint64_t Eq64Scalar(const unsigned char* p, unsigned char c) {
  uint64_t mask = 0;
  for (size_t i = 0; i < kBlock; ++i) {
    mask |= static_cast<uint64_t>(p[i] == c) << i;
  }
  return mask;
}

uint64_t Any64Scalar(const unsigned char* p, const ByteSet& set) {
  uint64_t mask = 0;
  for (size_t i = 0; i < kBlock; ++i) {
    for (unsigned j = 0; j < set.n; ++j) {
      if (p[i] == set.chars[j]) {
        mask |= uint64_t{1} << i;
        break;
      }
    }
  }
  return mask;
}

uint64_t Pair64Scalar(const unsigned char* p, size_t delta, unsigned char a,
                      unsigned char b) {
  uint64_t mask = 0;
  for (size_t i = 0; i < kBlock; ++i) {
    mask |= static_cast<uint64_t>(p[i] == a && p[i + delta] == b) << i;
  }
  return mask;
}

void EqFillScalar(const unsigned char* p, size_t nblocks, unsigned char c,
                  uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Eq64Scalar(p + kBlock * b, c);
}

void AnyFillScalar(const unsigned char* p, size_t nblocks, const ByteSet& set,
                   uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) {
    out[b] = Any64Scalar(p + kBlock * b, set);
  }
}

void PairFillScalar(const unsigned char* p, size_t nblocks, size_t delta,
                    unsigned char a, unsigned char b, uint64_t* out) {
  for (size_t k = 0; k < nblocks; ++k) {
    out[k] = Pair64Scalar(p + kBlock * k, delta, a, b);
  }
}

constexpr Kernels kScalar = {Isa::kScalar,  Eq64Scalar,    Any64Scalar,
                             Pair64Scalar,  EqFillScalar,  AnyFillScalar,
                             PairFillScalar};

}  // namespace

const Kernels& ScalarKernels() { return kScalar; }

}  // namespace smpx::simd::detail
