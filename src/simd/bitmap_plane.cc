#include "simd/bitmap_plane.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace smpx::simd {
namespace {

std::atomic<int> g_plane_enabled{-1};  // -1 = read SMPX_DISABLE_PLANE first

// kFillChunk-byte chunks covering an n-byte binding.
constexpr size_t ChunkCount(size_t n) {
  return (n + BitmapPlane::kFillChunk - 1) / BitmapPlane::kFillChunk;
}

bool SameSet(const ByteSet& x, const ByteSet& y) {
  if (x.n != y.n) return false;
  for (unsigned j = 0; j < x.n; ++j) {
    if (x.chars[j] != y.chars[j]) return false;
  }
  return true;
}

}  // namespace

bool PlaneEnabled() {
  int v = g_plane_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("SMPX_DISABLE_PLANE");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 0 : 1;
    g_plane_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetPlaneEnabled(bool on) {
  g_plane_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void BitmapPlane::Bind(const char* data, size_t n, uint64_t origin,
                       uint64_t epoch) {
  if (data == data_ && origin == origin_ && epoch == epoch_ && n >= n_) {
    if (n == n_) return;
    // Append-only refill: a classified chunk still describes the same
    // bytes, except around the old end -- the partial word there was
    // masked against the old length, and a pair lane's bits in the
    // trailing `delta` bytes were zeroed because their partner sat past
    // the old end. Re-open exactly the chunks covering those words.
    const size_t n_old = n_;
    n_ = n;
    chunks_ = ChunkCount(n_);
    fill_words_ = (chunks_ + 63) / 64;
    for (Lane& l : lanes_) {
      l.filled.resize(fill_words_, 0);
      if (n_old == 0) continue;
      // First word whose bits could have depended on the old length: the
      // word holding byte n_old - delta (pair partners), or the partial
      // word holding byte n_old when the old end was mid-word.
      size_t stale = n_old - (l.delta < n_old ? l.delta : n_old);
      if (stale == n_old && (n_old % kBlock) == 0) continue;  // whole words
      const size_t w_stale = stale / kBlock;
      const size_t w_last = (n_old - 1) / kBlock;
      for (size_t c = w_stale / kChunkWords; c <= w_last / kChunkWords; ++c) {
        l.filled[c >> 6] &= ~(uint64_t{1} << (c & 63));
      }
    }
    return;
  }
  data_ = data;
  n_ = n;
  chunks_ = ChunkCount(n_);
  fill_words_ = (chunks_ + 63) / 64;
  origin_ = origin;
  epoch_ = epoch;
  for (Lane& l : lanes_) l.filled.assign(fill_words_, 0);  // words reused
}

BitmapPlane::Lane* BitmapPlane::GetLane(LaneKind kind, unsigned char a,
                                        unsigned char b, size_t delta,
                                        const ByteSet* set) {
  ++tick_;
  // Per-kind MRU: probe loops and the engine's scans alternate between a
  // couple of classes of *different* kinds, so the last lane of each kind
  // almost always answers without the linear scan below.
  const unsigned ki = static_cast<unsigned>(kind);
  if (mru_[ki] < lanes_.size()) {
    Lane& l = lanes_[mru_[ki]];
    if (l.kind == kind &&
        (kind == LaneKind::kAny
             ? SameSet(l.set, *set)
             : (l.a == a && (kind != LaneKind::kPair ||
                             (l.b == b && l.delta == delta))))) {
      l.last_use = tick_;
      return &l;
    }
  }
  for (Lane& l : lanes_) {
    if (l.kind != kind) continue;
    if (kind == LaneKind::kAny) {
      if (!SameSet(l.set, *set)) continue;
    } else if (l.a != a ||
               (kind == LaneKind::kPair && (l.b != b || l.delta != delta))) {
      continue;
    }
    l.last_use = tick_;
    mru_[ki] = static_cast<uint8_t>(&l - lanes_.data());
    return &l;
  }
  Lane* lane;
  if (lanes_.size() < kMaxLanes) {
    lanes_.reserve(kMaxLanes);  // keeps existing Lane addresses stable
    lanes_.emplace_back();
    lane = &lanes_.back();
  } else {
    // Evict the least recently used class; its word storage is recycled.
    lane = &lanes_[0];
    for (Lane& l : lanes_) {
      if (l.last_use < lane->last_use) lane = &l;
    }
  }
  lane->kind = kind;
  lane->a = a;
  lane->b = b;
  lane->delta = delta;
  lane->set = set != nullptr ? *set : ByteSet();
  lane->filled.assign(fill_words_, 0);
  lane->last_use = tick_;
  lane->gen = tick_;  // invalidates any LaneRef to the previous class
  mru_[ki] = static_cast<uint8_t>(lane - lanes_.data());
  return lane;
}

// Lazy fill stays strictly per-lane and per-chunk. A speculative co-fill
// (classifying the chunk for every lane streaming through the region while
// its bytes are cache-hot) was measured: it trades memory passes for extra
// classification compute, and at window sizes that fit L3 the compute is
// the scarce resource -- geomean unchanged, worst row noticeably worse.
void BitmapPlane::FillChunk(Lane* lane, size_t c) {
  const size_t total = (n_ + kBlock - 1) / kBlock;
  const size_t w0 = c * kChunkWords;
  size_t w1 = w0 + kChunkWords;
  if (w1 > total) w1 = total;
  if (lane->words.size() < w1) lane->words.resize(w1);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data_);
  const Kernels& kn = Active();

  // Blocks whose kernel reads stay inside the binding go through one bulk
  // call; the remainder stages through the masked-tail helpers (which never
  // read past n_ -- guard-page safe at the window edge).
  size_t bulk = 0;  // exclusive end block of the in-bounds region
  switch (lane->kind) {
    case LaneKind::kEq:
    case LaneKind::kAny:
      bulk = n_ / kBlock;
      break;
    case LaneKind::kPair:
      bulk = n_ >= lane->delta + kBlock ? (n_ - lane->delta) / kBlock : 0;
      break;
  }
  if (bulk > w1) bulk = w1;
  if (w0 < bulk) {
    uint64_t* out = lane->words.data() + w0;
    const unsigned char* q = p + w0 * kBlock;
    switch (lane->kind) {
      case LaneKind::kEq:
        kn.eq_fill(q, bulk - w0, lane->a, out);
        break;
      case LaneKind::kAny:
        kn.any_fill(q, bulk - w0, lane->set, out);
        break;
      case LaneKind::kPair:
        kn.pair_fill(q, bulk - w0, lane->delta, lane->a, lane->b, out);
        break;
    }
  }
  for (size_t w = w0 > bulk ? w0 : bulk; w < w1; ++w) {
    const size_t off = w * kBlock;
    const size_t avail = n_ - off;
    switch (lane->kind) {
      case LaneKind::kEq:
        lane->words[w] =
            EqMaskTail(p + off, avail < kBlock ? avail : kBlock, lane->a);
        break;
      case LaneKind::kAny:
        lane->words[w] =
            AnyMaskTail(p + off, avail < kBlock ? avail : kBlock, lane->set);
        break;
      case LaneKind::kPair:
        lane->words[w] =
            PairMaskTail(p + off, avail, lane->delta, lane->a, lane->b);
        break;
    }
  }
  lane->filled[c >> 6] |= uint64_t{1} << (c & 63);
}

uint64_t BitmapPlane::Extract(Lane* lane, uint64_t abs) {
  const size_t rel = static_cast<size_t>(abs - origin_);
  if (rel >= n_) return 0;
  const size_t w = rel / kBlock;
  const unsigned r = static_cast<unsigned>(rel % kBlock);
  const uint64_t lo = WordAt(lane, w);
  if (r == 0) return lo;
  return (lo >> r) | (WordAt(lane, w + 1) << (kBlock - r));
}

size_t BitmapPlane::ScanLane(Lane* lane, uint64_t abs, size_t len) {
  if (len == 0) return 0;
  const size_t rel = static_cast<size_t>(abs - origin_);
  const size_t rel_end = rel + len;
  const size_t w_end = (rel_end + kBlock - 1) / kBlock;
  size_t w = rel / kBlock;
  // The chunk-filled test is hoisted out of the word loop: within one
  // chunk the walk is raw word loads off the lane array.
  uint64_t head_mask = ~TakeMask(rel - w * kBlock);
  while (w < w_end) {
    const size_t c = w / kChunkWords;
    if (!ChunkFilled(*lane, c)) FillChunk(lane, c);
    size_t w_stop = (c + 1) * kChunkWords;
    if (w_stop > w_end) w_stop = w_end;
    const uint64_t* words = lane->words.data();
    for (; w < w_stop; ++w) {
      uint64_t m = words[w] & head_mask;
      head_mask = ~uint64_t{0};
      if (m != 0) {
        if ((w + 1) * kBlock > rel_end) m &= TakeMask(rel_end - w * kBlock);
        if (m != 0) return w * kBlock + NextSetBit(m) - rel;
      }
    }
  }
  return len;
}

size_t BitmapPlane::FindByte(uint64_t abs, size_t len, unsigned char c) {
  return ScanLane(GetLane(LaneKind::kEq, c, 0, 0, nullptr), abs, len);
}

size_t BitmapPlane::FindAny(uint64_t abs, size_t len, const ByteSet& set) {
  return ScanLane(GetLane(LaneKind::kAny, 0, 0, 0, &set), abs, len);
}

size_t BitmapPlane::FindPattern(uint64_t abs, size_t len,
                                std::string_view term) {
  const size_t tn = term.size();
  if (tn == 0 || len < tn) return tn == 0 ? 0 : len;
  if (tn == 1) {
    return FindByte(abs, len, static_cast<unsigned char>(term[0]));
  }
  Lane* lane = GetLane(LaneKind::kPair, static_cast<unsigned char>(term[0]),
                       static_cast<unsigned char>(term[tn - 1]), tn - 1,
                       nullptr);
  const size_t n_align = len - tn + 1;
  const char* base = data_ + static_cast<size_t>(abs - origin_);
  const char* tmid = term.data() + 1;
  const size_t mid_len = tn > 2 ? tn - 2 : 0;
  for (size_t i = 0; i < n_align; i += kBlock) {
    uint64_t hits = Extract(lane, abs + i);
    if (i + kBlock > n_align) hits &= TakeMask(n_align - i);
    const char* block = base + i + 1;
    while (hits != 0) {
      const unsigned bit = NextSetBit(hits);
      hits = ClearLowestBit(hits);
      if (mid_len == 0 || std::memcmp(block + bit, tmid, mid_len) == 0) {
        return i + bit;
      }
    }
  }
  return len;
}

uint64_t BitmapPlane::EqWord(unsigned char c, uint64_t abs) {
  return Extract(GetLane(LaneKind::kEq, c, 0, 0, nullptr), abs);
}

uint64_t BitmapPlane::AnyWord(const ByteSet& set, uint64_t abs) {
  return Extract(GetLane(LaneKind::kAny, 0, 0, 0, &set), abs);
}

uint64_t BitmapPlane::PairWord(unsigned char a, unsigned char b, size_t delta,
                               uint64_t abs) {
  return Extract(GetLane(LaneKind::kPair, a, b, delta, nullptr), abs);
}

BitmapPlane::LaneRef BitmapPlane::EqLaneRef(unsigned char c) {
  Lane* l = GetLane(LaneKind::kEq, c, 0, 0, nullptr);
  LaneRef r;
  r.lane = l;
  r.gen = l->gen;
  return r;
}

BitmapPlane::LaneRef BitmapPlane::AnyLaneRef(const ByteSet& set) {
  Lane* l = GetLane(LaneKind::kAny, 0, 0, 0, &set);
  LaneRef r;
  r.lane = l;
  r.gen = l->gen;
  return r;
}

BitmapPlane::LaneRef BitmapPlane::PairLaneRef(unsigned char a, unsigned char b,
                                              size_t delta) {
  Lane* l = GetLane(LaneKind::kPair, a, b, delta, nullptr);
  LaneRef r;
  r.lane = l;
  r.gen = l->gen;
  return r;
}

}  // namespace smpx::simd
