// SSE2 tier (x86-64 baseline): 16-byte vector classification. Bodies live
// in kernels_sse.inc.h, shared with the SSE4.2 tier.

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)

#define SMPX_SSE_ISA Isa::kSse2
#define SMPX_SSE_ACCESSOR Sse2Kernels
#include "simd/kernels_sse.inc.h"

#endif
