// SWAR tier: 8-bytes-per-word classification built on the same primitives
// as the matcher skip loops (strmatch/byte_scan.h). Always available on any
// host; the portable performance fallback when no vector unit is usable.
//
// ByteEqMask yields 0x80 in every matching byte; the multiply-compaction
// below gathers those per-byte flags into 8 LSB-first bits. The gather is
// exact: with x holding only 0/1 per byte, x * 0x0102040810204080 places
// byte k's bit at position 7k+7 + ... -- each product bit position has at
// most one (k, weight) contribution (k + j = 7 uniquely), so no carries.

#include "simd/kernels.h"
#include "strmatch/byte_scan.h"

namespace smpx::simd::detail {
namespace {

namespace bs = smpx::strmatch::detail;

/// 0x80-per-byte mask -> 8 LSB-first bits (byte k of w -> bit k).
inline uint64_t Compact(uint64_t high_mask) {
  return ((high_mask >> 7) * 0x0102040810204080ull) >> 56;
}

uint64_t Eq64Swar(const unsigned char* p, unsigned char c) {
  uint64_t mask = 0;
  for (size_t w = 0; w < kBlock / 8; ++w) {
    uint64_t word = bs::LoadWord(reinterpret_cast<const char*>(p) + 8 * w);
    mask |= Compact(bs::ByteEqMask(word, c)) << (8 * w);
  }
  return mask;
}

uint64_t Any64Swar(const unsigned char* p, const ByteSet& set) {
  uint64_t mask = 0;
  for (size_t w = 0; w < kBlock / 8; ++w) {
    uint64_t word = bs::LoadWord(reinterpret_cast<const char*>(p) + 8 * w);
    uint64_t hits = 0;
    for (unsigned j = 0; j < set.n; ++j) {
      hits |= bs::ByteEqMask(word, set.chars[j]);
    }
    mask |= Compact(hits) << (8 * w);
  }
  return mask;
}

uint64_t Pair64Swar(const unsigned char* p, size_t delta, unsigned char a,
                    unsigned char b) {
  uint64_t mask = 0;
  for (size_t w = 0; w < kBlock / 8; ++w) {
    const char* base = reinterpret_cast<const char*>(p) + 8 * w;
    uint64_t hits = bs::ByteEqMask(bs::LoadWord(base), a) &
                    bs::ByteEqMask(bs::LoadWord(base + delta), b);
    mask |= Compact(hits) << (8 * w);
  }
  return mask;
}

void EqFillSwar(const unsigned char* p, size_t nblocks, unsigned char c,
                uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Eq64Swar(p + kBlock * b, c);
}

void AnyFillSwar(const unsigned char* p, size_t nblocks, const ByteSet& set,
                 uint64_t* out) {
  for (size_t b = 0; b < nblocks; ++b) out[b] = Any64Swar(p + kBlock * b, set);
}

void PairFillSwar(const unsigned char* p, size_t nblocks, size_t delta,
                  unsigned char a, unsigned char b, uint64_t* out) {
  for (size_t k = 0; k < nblocks; ++k) {
    out[k] = Pair64Swar(p + kBlock * k, delta, a, b);
  }
}

constexpr Kernels kSwar = {Isa::kSwar,  Eq64Swar,    Any64Swar,   Pair64Swar,
                           EqFillSwar,  AnyFillSwar, PairFillSwar};

}  // namespace

const Kernels& SwarKernels() { return kSwar; }

}  // namespace smpx::simd::detail
