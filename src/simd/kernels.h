// Internal: per-tier kernel table accessors for the dispatcher. Each tier
// lives in its own translation unit so CMake can compile it with the
// matching -m<isa> flags; tiers that do not exist for the host architecture
// are simply not compiled (and not declared here).

#ifndef SMPX_SIMD_KERNELS_H_
#define SMPX_SIMD_KERNELS_H_

#include "simd/simd.h"

namespace smpx::simd::detail {

const Kernels& ScalarKernels();
const Kernels& SwarKernels();

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define SMPX_SIMD_X86 1
const Kernels& Sse2Kernels();
const Kernels& Sse42Kernels();
const Kernels& Avx2Kernels();
#endif

#if defined(__aarch64__) || defined(_M_ARM64)
#define SMPX_SIMD_NEON 1
const Kernels& NeonKernels();
#endif

}  // namespace smpx::simd::detail

#endif  // SMPX_SIMD_KERNELS_H_
