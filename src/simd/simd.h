// Vectorized structural byte classification with runtime CPU dispatch.
//
// The prefilter's remaining serial ceiling is its byte-scanning loops: the
// engine's tag/attribute span scans, the sharder's top-level boundary scan,
// and the BM/CW candidate probes. All of them reduce to the same primitive:
// "which positions of this input hold one of a handful of structural bytes
// ('<', '>', quotes, '-', ']', '?')?" This layer answers that question
// simdjson-style -- 64-bit bitmaps per 64-byte block, one vector pass per
// block -- through a kernel table selected once at startup:
//
//   scalar  per-byte reference loops; the oracle every other tier is
//           differentially verified against (bit-identical by construction)
//   swar    8-bytes-per-word scans built on strmatch/byte_scan.h; always
//           available, the portable performance fallback
//   sse2    16-byte vectors (x86-64 baseline)
//   sse42   the same 16-byte kernels compiled for the SSE4.2 feature level
//   avx2    32-byte vectors
//   neon    16-byte vectors on aarch64
//
// Selection: best available tier by CPUID (x86) / architecture (aarch64),
// overridable with SMPX_FORCE_ISA=scalar|swar|sse2|sse42|avx2|neon (an
// unavailable forced tier falls back to the best available at or below it).
// SetIsa() re-selects in-process for tests and benchmarks.
//
// Bitmap convention: bit i (LSB first) of a mask corresponds to byte p[i],
// so text order equals bit-scan order on every host. Block kernels require
// all 64 bytes readable; the *Tail helpers below never read past the given
// length (window edges, page ends).

#ifndef SMPX_SIMD_SIMD_H_
#define SMPX_SIMD_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace smpx::simd {

inline constexpr size_t kBlock = 64;   ///< bytes per bitmap block
inline constexpr size_t kNpos = ~size_t{0};

enum class Isa : int {
  kScalar = 0,
  kSwar = 1,
  kSse2 = 2,
  kSse42 = 3,
  kAvx2 = 4,
  kNeon = 5,
};

/// A small byte class (at most 8 members) for the any-of kernels.
struct ByteSet {
  unsigned char chars[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  unsigned n = 0;

  constexpr ByteSet() = default;
  constexpr explicit ByteSet(std::string_view members) {
    for (char c : members) {
      chars[n++] = static_cast<unsigned char>(c);
    }
  }
};

/// One dispatch tier: block-granular classification kernels. All function
/// pointers are non-null in every registered tier.
struct Kernels {
  Isa isa;
  /// Bit i = (p[i] == c) over the 64-byte block at p.
  uint64_t (*eq64)(const unsigned char* p, unsigned char c);
  /// Bit i = (p[i] is a member of set) over the 64-byte block at p.
  uint64_t (*any64)(const unsigned char* p, const ByteSet& set);
  /// Bit i = (p[i] == a && p[i + delta] == b). Requires both [p, p+64) and
  /// [p+delta, p+delta+64) readable.
  uint64_t (*pair64)(const unsigned char* p, size_t delta, unsigned char a,
                     unsigned char b);
  /// Bulk stage-1 passes behind simd::BitmapPlane: out[b] = the matching
  /// block kernel over p + 64*b for b in [0, nblocks). One dispatch
  /// indirection per chunk instead of per block; each tier's loop inlines
  /// its own block kernel. eq/any require [p, p + 64*nblocks) readable,
  /// pair additionally delta bytes beyond that.
  void (*eq_fill)(const unsigned char* p, size_t nblocks, unsigned char c,
                  uint64_t* out);
  void (*any_fill)(const unsigned char* p, size_t nblocks, const ByteSet& set,
                   uint64_t* out);
  void (*pair_fill)(const unsigned char* p, size_t nblocks, size_t delta,
                    unsigned char a, unsigned char b, uint64_t* out);
};

namespace detail {
extern std::atomic<const Kernels*> g_active;
/// Slow path: runs CPU detection + SMPX_FORCE_ISA once, publishes the tier.
const Kernels& Init();
}  // namespace detail

/// The active kernel tier. Cheap enough for per-span use; hot loops should
/// still hoist it (`const Kernels& k = simd::Active();`) out of per-block
/// iterations.
inline const Kernels& Active() {
  const Kernels* k = detail::g_active.load(std::memory_order_relaxed);
  return k != nullptr ? *k : detail::Init();
}

inline Isa ActiveIsa() { return Active().isa; }

const char* IsaName(Isa isa);
bool IsaAvailable(Isa isa);
/// Every available tier, ascending (kScalar and kSwar always included).
std::vector<Isa> AvailableIsas();
/// Test/bench hook: re-selects the tier in-process (not thread-safe against
/// concurrent scans). An unavailable tier falls back to the best available
/// at or below it. Returns the tier actually installed.
Isa SetIsa(Isa isa);
/// Parses an SMPX_FORCE_ISA-style name; false on unknown names.
bool ParseIsa(std::string_view name, Isa* out);

// --- bit-scan helpers --------------------------------------------------------

/// Index (0-63) of the lowest set bit; `mask` must be non-zero.
inline unsigned NextSetBit(uint64_t mask) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(mask));
#else
  unsigned i = 0;
  while ((mask & 1) == 0) {
    mask >>= 1;
    ++i;
  }
  return i;
#endif
}

/// Clears the lowest set bit (advance to the next hit in the block).
inline uint64_t ClearLowestBit(uint64_t mask) { return mask & (mask - 1); }

/// Mask of the low `take` bits (all 64 when take >= 64).
inline uint64_t TakeMask(size_t take) {
  return take >= 64 ? ~uint64_t{0} : ((uint64_t{1} << take) - 1);
}

// --- masked tails (window edges) ---------------------------------------------
// The block kernels require 64 readable bytes; at a span or page end the
// remaining bytes are staged through a zeroed local block first, so no tier
// ever reads past `len` (guard-page safe). Bits at and above `len` are 0.

inline uint64_t EqMaskTail(const unsigned char* p, size_t len,
                           unsigned char c) {
  if (len >= kBlock) return Active().eq64(p, c);
  if (len == 0) return 0;
  alignas(64) unsigned char buf[kBlock] = {0};
  std::memcpy(buf, p, len);
  return Active().eq64(buf, c) & TakeMask(len);
}

inline uint64_t AnyMaskTail(const unsigned char* p, size_t len,
                            const ByteSet& set) {
  if (len >= kBlock) return Active().any64(p, set);
  if (len == 0) return 0;
  alignas(64) unsigned char buf[kBlock] = {0};
  std::memcpy(buf, p, len);
  return Active().any64(buf, set) & TakeMask(len);
}

/// Bitmap over alignments i of (p[i] == a && p[i+delta] == b), for
/// i in [0, min(avail - delta, 64)); `avail` = readable bytes at p.
inline uint64_t PairMaskTail(const unsigned char* p, size_t avail,
                             size_t delta, unsigned char a, unsigned char b) {
  if (avail <= delta) return 0;
  const size_t n_align = avail - delta < kBlock ? avail - delta : kBlock;
  return EqMaskTail(p, avail < kBlock ? avail : kBlock, a) &
         EqMaskTail(p + delta, n_align, b) & TakeMask(n_align);
}

// --- span scans --------------------------------------------------------------

/// First index in [0, n) with data[i] == c; n when absent.
inline size_t FindByte(const char* data, size_t n, unsigned char c) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  const Kernels& k = Active();
  size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    uint64_t m = k.eq64(p + i, c);
    if (m != 0) return i + NextSetBit(m);
  }
  if (i < n) {
    uint64_t m = EqMaskTail(p + i, n - i, c);
    if (m != 0) return i + NextSetBit(m);
  }
  return n;
}

/// First index in [0, n) whose byte is a member of `set`; n when absent.
inline size_t FindAny(const char* data, size_t n, const ByteSet& set) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  const Kernels& k = Active();
  size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    uint64_t m = k.any64(p + i, set);
    if (m != 0) return i + NextSetBit(m);
  }
  if (i < n) {
    uint64_t m = AnyMaskTail(p + i, n - i, set);
    if (m != 0) return i + NextSetBit(m);
  }
  return n;
}

/// First start position of `term` in [0, n); n when absent. Candidates are
/// alignments where the first AND last term byte match (shifted-mask AND);
/// longer terms verify the middle bytes per candidate.
inline size_t FindPattern(const char* data, size_t n, std::string_view term) {
  const size_t tn = term.size();
  if (tn == 0 || n < tn) return tn == 0 ? 0 : n;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  const unsigned char t0 = static_cast<unsigned char>(term[0]);
  const unsigned char tl = static_cast<unsigned char>(term[tn - 1]);
  const Kernels& k = Active();
  const size_t n_align = n - tn + 1;
  const unsigned char* tmid =
      reinterpret_cast<const unsigned char*>(term.data()) + 1;
  const size_t mid_len = tn > 2 ? tn - 2 : 0;
  size_t i = 0;
  for (;;) {
    uint64_t hits;
    if (i + kBlock + tn - 1 <= n) {
      hits = k.pair64(p + i, tn - 1, t0, tl);
    } else if (i < n_align) {
      hits = PairMaskTail(p + i, n - i, tn - 1, t0, tl);
    } else {
      break;
    }
    const unsigned char* block = p + i + 1;  // candidate middles, this block
    while (hits != 0) {
      const unsigned bit = NextSetBit(hits);
      hits = ClearLowestBit(hits);
      if (mid_len == 0 || std::memcmp(block + bit, tmid, mid_len) == 0) {
        return i + bit;
      }
    }
    i += kBlock;
    if (i >= n_align) break;
  }
  return n;
}

/// Bitmap-driven byte iterator: serves "next occurrence of c at or after
/// pos" queries over a fixed buffer, computing each 64-byte block's bitmap
/// once and bit-scanning within it. In tag-dense XML ('<' every ~15 bytes)
/// this amortizes to one classification per block instead of one
/// memchr/scan call per structural byte.
class MaskScanner {
 public:
  MaskScanner(const char* data, size_t n, unsigned char c)
      : p_(reinterpret_cast<const unsigned char*>(data)),
        n_(n),
        c_(c),
        kernels_(Active()) {}

  /// First index >= from with data[i] == c_; n when absent.
  size_t Next(size_t from) {
    if (from >= n_) return n_;
    size_t base = from & ~(kBlock - 1);
    uint64_t m;
    if (base == base_ && have_block_) {
      m = mask_;
    } else {
      m = Load(base);
    }
    m &= ~TakeMask(from - base);
    while (m == 0) {
      base += kBlock;
      if (base >= n_) return n_;
      m = Load(base);
    }
    return base + NextSetBit(m);
  }

 private:
  uint64_t Load(size_t base) {
    base_ = base;
    have_block_ = true;
    mask_ = n_ - base >= kBlock ? kernels_.eq64(p_ + base, c_)
                                : EqMaskTail(p_ + base, n_ - base, c_);
    return mask_;
  }

  const unsigned char* p_;
  size_t n_;
  unsigned char c_;
  const Kernels& kernels_;
  size_t base_ = 0;
  uint64_t mask_ = 0;
  bool have_block_ = false;
};

}  // namespace smpx::simd

#endif  // SMPX_SIMD_SIMD_H_
