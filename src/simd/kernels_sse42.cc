// SSE4.2 tier: the 16-byte kernel bodies of kernels_sse.inc.h compiled at
// the SSE4.2 feature level (CMake adds -msse4.2 for this TU), letting the
// compiler schedule for the wider execution resources of that generation.

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)

#define SMPX_SSE_ISA Isa::kSse42
#define SMPX_SSE_ACCESSOR Sse42Kernels
#include "simd/kernels_sse.inc.h"

#endif
