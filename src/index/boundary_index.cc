#include "index/boundary_index.h"

#include <algorithm>
#include <limits>

#include "common/hash.h"
#include "common/strings.h"
#include "index/wire.h"
#include "parallel/shard.h"
#include "simd/simd.h"

namespace smpx::index {
namespace {

constexpr char kMagic[8] = {'S', 'M', 'P', 'X', 'B', 'I', 'X', '1'};
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8;
constexpr size_t kFooterBytes = 8;

/// Entry flag bits (one byte per entry on disk).
constexpr uint8_t kFlagPrologDone = 1;
constexpr uint8_t kFlagJumpPending = 2;

/// Floor for the chunked build's rolling buffer: the structural scan
/// peeks up to 9 bytes ("<![CDATA[") and the pattern searches need room
/// to make progress past their overlap.
constexpr uint64_t kMinChunkBytes = 64;

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt boundary index: " + what);
}

/// The shared stride arithmetic of both build paths: how many split
/// targets the (granularity, max_entries, size) triple yields. The two
/// overloads must agree exactly for their boundary sets to coincide.
uint64_t MaxSplitsFor(uint64_t doc_size, const BoundaryIndexOptions& opts) {
  const uint64_t gran = std::max<uint64_t>(1, opts.granularity_bytes);
  uint64_t max_splits = std::min<uint64_t>(doc_size / gran, opts.max_entries);
  if (doc_size > 0) {
    // FindTopLevelBoundaries needs a stride of at least one byte.
    max_splits = std::min<uint64_t>(max_splits, doc_size - 1);
  }
  return max_splits;
}

/// Rolling-window structural scan primitives over an InputSource: the
/// subset of shard.cc's StructScanner the chunked build needs, with
/// transparent refill so no more than one chunk is resident. Positions
/// are absolute document offsets; every primitive returns size() when the
/// sought byte/pattern is absent -- or on a read error, which sticks in
/// status() and is surfaced once by the caller after the pass.
class StreamScanner {
 public:
  StreamScanner(const InputSource& src, uint64_t chunk)
      : src_(src),
        size_(src.size()),
        chunk_(static_cast<size_t>(
            std::max<uint64_t>(chunk, kMinChunkBytes))) {}

  uint64_t size() const { return size_; }
  const Status& status() const { return status_; }

  uint64_t NextOpen(uint64_t pos) { return FindByteAt(pos, '<'); }

  /// Up to `n` bytes at `pos` (short only at end of input or on error).
  /// `n` must stay below kMinChunkBytes so one refill always suffices.
  std::string_view PeekAt(uint64_t pos, size_t n) {
    if (pos >= size_ || !Ensure(pos)) return {};
    std::string_view w = WindowFrom(pos);
    if (w.size() < n && base_ + buf_len_ < size_) {
      // `pos` sits in the window's tail: refill from it so a peek short
      // of `n` bytes means end of input, never end of buffer.
      if (!Refill(pos)) return {};
      w = WindowFrom(pos);
    }
    return w.substr(0, std::min(n, w.size()));
  }

  char ByteAt(uint64_t pos) {
    std::string_view b = PeekAt(pos, 1);
    return b.empty() ? '\0' : b[0];
  }

  /// Mirrors StructScanner::TagEnd: the '>' closing the tag whose '<'
  /// sits at `from`, skipping quoted attribute values.
  uint64_t TagEnd(uint64_t from) {
    static constexpr simd::ByteSet kTagEnd(">\"'");
    uint64_t r = from + 1;
    for (;;) {
      const uint64_t hit = FindAnyAt(r, kTagEnd);
      if (hit >= size_) return size_;
      const char hc = ByteAt(hit);
      if (hc == '>') return hit;
      const uint64_t end = FindByteAt(hit + 1, hc);
      if (end >= size_) return size_;
      r = end + 1;
    }
  }

  /// Mirrors StructScanner::SkipMarkupConstruct (comment, CDATA, PI,
  /// DOCTYPE-style declaration).
  uint64_t SkipMarkupConstruct(uint64_t t, char next) {
    if (next == '?') return SkipPastTerm(t + 2, "?>");
    std::string_view rest = PeekAt(t, 9);
    if (rest.substr(0, 4) == "<!--") return SkipPastTerm(t + 4, "-->");
    if (rest == "<![CDATA[") return SkipPastTerm(t + 9, "]]>");
    return SkipDeclaration(t);
  }

 private:
  uint64_t SkipPastTerm(uint64_t from, std::string_view term) {
    const uint64_t hit = FindPatternAt(from, term);
    if (hit >= size_) return size_;
    return hit + term.size();
  }

  uint64_t SkipDeclaration(uint64_t from) {
    static constexpr simd::ByteSet kStructural("[]>\"'");
    uint64_t r = from + 2;
    int bracket = 0;
    while (r < size_) {
      const uint64_t hit = FindAnyAt(r, kStructural);
      if (hit >= size_) return size_;
      const char hc = ByteAt(hit);
      if (hc == '[') {
        ++bracket;
        r = hit + 1;
      } else if (hc == ']') {
        --bracket;
        r = hit + 1;
      } else if (hc == '>') {
        if (bracket <= 0) return hit + 1;
        r = hit + 1;
      } else {
        const uint64_t end = FindByteAt(hit + 1, hc);
        if (end >= size_) return size_;
        r = end + 1;
      }
    }
    return size_;
  }

  uint64_t FindByteAt(uint64_t from, char c) {
    while (from < size_) {
      if (!Ensure(from)) return size_;
      std::string_view w = WindowFrom(from);
      const size_t i =
          simd::FindByte(w.data(), w.size(), static_cast<unsigned char>(c));
      if (i < w.size()) return from + i;
      from += w.size();
    }
    return size_;
  }

  uint64_t FindAnyAt(uint64_t from, const simd::ByteSet& set) {
    while (from < size_) {
      if (!Ensure(from)) return size_;
      std::string_view w = WindowFrom(from);
      const size_t i = simd::FindAny(w.data(), w.size(), set);
      if (i < w.size()) return from + i;
      from += w.size();
    }
    return size_;
  }

  uint64_t FindPatternAt(uint64_t from, std::string_view term) {
    // Windows overlap by term.size()-1 bytes so a straddling occurrence
    // is seen whole in the next window.
    while (from + term.size() <= size_) {
      if (!Ensure(from)) return size_;
      std::string_view w = WindowFrom(from);
      if (w.size() < term.size()) return size_;  // EOF tail too short
      const size_t i = simd::FindPattern(w.data(), w.size(), term);
      if (i + term.size() <= w.size()) return from + i;
      from += w.size() - (term.size() - 1);
    }
    return size_;
  }

  /// Makes the window contain `pos`; refills from `pos` when it does not.
  bool Ensure(uint64_t pos) {
    if (!status_.ok()) return false;
    if (pos >= base_ && pos < base_ + buf_len_) return true;
    return Refill(pos);
  }

  /// Unconditionally reloads the window to start at `pos`.
  bool Refill(uint64_t pos) {
    if (!status_.ok()) return false;
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(chunk_, size_ - pos));
    buf_.resize(std::max(buf_.size(), want));
    size_t done = 0;
    while (done < want) {
      auto n = src_.ReadAt(pos + done, buf_.data() + done, want - done);
      if (!n.ok()) {
        status_ = n.status();
        return false;
      }
      if (*n == 0) break;  // source shrank under us; scan what we have
      done += *n;
    }
    base_ = pos;
    buf_len_ = done;
    if (done == 0) {
      status_ = Status::IoError(
          "input source returned no data at offset " + std::to_string(pos) +
          " (size " + std::to_string(size_) + ")");
      return false;
    }
    return true;
  }

  std::string_view WindowFrom(uint64_t pos) const {
    const size_t skip = static_cast<size_t>(pos - base_);
    return std::string_view(buf_.data() + skip, buf_len_ - skip);
  }

  const InputSource& src_;
  const uint64_t size_;
  const size_t chunk_;
  std::vector<char> buf_;
  uint64_t base_ = 0;
  size_t buf_len_ = 0;
  Status status_ = Status::Ok();
};

}  // namespace

StatsPrefix StatsPrefix::FromRunStats(const core::RunStats& s) {
  StatsPrefix p;
  p.matches = s.matches;
  p.false_matches = s.false_matches;
  p.scan_chars = s.scan_chars;
  p.initial_jumps = s.initial_jumps;
  p.initial_jump_chars = s.initial_jump_chars;
  p.bm_searches = s.bm_searches;
  p.cw_searches = s.cw_searches;
  p.search_comparisons = s.search.comparisons;
  p.search_shifts = s.search.shifts;
  p.search_shift_chars = s.search.shift_chars;
  return p;
}

void StatsPrefix::AccumulateInto(core::RunStats* s) const {
  s->matches += matches;
  s->false_matches += false_matches;
  s->scan_chars += scan_chars;
  s->initial_jumps += initial_jumps;
  s->initial_jump_chars += initial_jump_chars;
  s->bm_searches += bm_searches;
  s->cw_searches += cw_searches;
  s->search.comparisons += search_comparisons;
  s->search.shifts += search_shifts;
  s->search.shift_chars += search_shift_chars;
}

Result<BoundaryIndex> BoundaryIndex::Build(const core::RuntimeTables& tables,
                                           std::string_view doc,
                                           parallel::ThreadPool* pool,
                                           const BoundaryIndexOptions& opts) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  if (tables.multi != nullptr) {
    return Status::Unsupported(
        "boundary indexing over multi-query product tables is not supported; "
        "index each query's single-query tables instead");
  }
  BoundaryIndex idx;
  idx.doc_size_ = doc.size();
  idx.doc_digest_ = Hash64(doc);
  idx.tables_fingerprint_ = tables.Fingerprint();

  const uint64_t max_splits = MaxSplitsFor(doc.size(), opts);
  std::vector<uint64_t> bounds;
  if (max_splits > 0) {
    bounds = pool->size() > 1
                 ? parallel::FindTopLevelBoundariesParallel(
                       doc, static_cast<size_t>(max_splits), pool,
                       /*scanned_bytes=*/nullptr, opts.use_bitmap_plane)
                 : parallel::FindTopLevelBoundaries(
                       doc, static_cast<size_t>(max_splits),
                       opts.use_bitmap_plane);
  }

  // The sharded execution pipeline with the output thrown away: speculate
  // every inter-boundary segment in one wave, then resolve the chain in
  // order. Each resolved exit is the serial engine's state at the next
  // boundary -- verified, not assumed -- and the per-segment output byte
  // counts accumulate into the projection offsets.
  parallel::SpeculativeResolver::Options ropts;
  ropts.max_candidate_states = opts.max_candidate_states;
  ropts.capture_output = false;
  ropts.engine = opts.engine;
  parallel::SpeculativeResolver resolver(tables, doc, bounds, ropts);
  const size_t n = resolver.segments();
  resolver.LaunchWave(pool);
  idx.entries_.reserve(bounds.size());
  uint64_t out_offset = 0;
  core::RunStats prefix_stats;
  for (size_t k = 0; k < n; ++k) {
    parallel::ShardResult& r = resolver.Resolve(k);
    if (!r.status.ok()) return r.status;
    out_offset += r.stats.output_bytes;
    parallel::MergeRunStats(&prefix_stats, r.stats);
    if (r.finished) break;  // serial run ends; later boundaries unreachable
    if (k + 1 < n) {
      IndexEntry e;
      e.offset = resolver.seg_begin(k + 1);
      e.out_offset = out_offset;
      e.checkpoint = r.exit;
      e.stats = StatsPrefix::FromRunStats(prefix_stats);
      idx.entries_.push_back(e);
    }
  }

  // Record ordinals: count top-level starts per inter-entry segment in
  // parallel, then prefix-sum. Entry i sits at the start of segment i+1,
  // so its ordinal is the count over segments 0..i. Segment 0 enters at
  // the document start (depth 0); every other segment at a boundary
  // (depth 1, the record at the boundary itself still uncounted).
  const size_t ne = idx.entries_.size();
  if (ne > 0) {
    std::vector<uint64_t> counts(ne);
    pool->RunAndWait(ne, [&](size_t j) {
      const uint64_t begin = j == 0 ? 0 : idx.entries_[j - 1].offset;
      const uint64_t end = idx.entries_[j].offset;
      counts[j] = parallel::CountTopLevelStarts(
          doc, begin, end, j == 0 ? 0 : 1, opts.use_bitmap_plane);
    });
    uint64_t total = 0;
    for (size_t j = 0; j < ne; ++j) {
      total += counts[j];
      idx.entries_[j].record_ordinal = total;
    }
  }
  return idx;
}

Result<BoundaryIndex> BoundaryIndex::Build(const core::RuntimeTables& tables,
                                           const InputSource& src,
                                           parallel::ThreadPool* pool,
                                           const BoundaryIndexOptions& opts) {
  (void)pool;  // single-threaded by design: bounded memory beats wave speed
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  if (tables.multi != nullptr) {
    return Status::Unsupported(
        "boundary indexing over multi-query product tables is not supported; "
        "index each query's single-query tables instead");
  }
  BoundaryIndex idx;
  const uint64_t size = src.size();
  idx.doc_size_ = size;
  idx.tables_fingerprint_ = tables.Fingerprint();

  const uint64_t max_splits = MaxSplitsFor(size, opts);
  const uint64_t stride = max_splits > 0 ? size / (max_splits + 1) : 0;
  const uint64_t chunk = std::max<uint64_t>(opts.chunk_bytes, kMinChunkBytes);

  // One interleaved pass. The structural scan (same rules and target
  // arithmetic as FindTopLevelBoundaries) runs ahead finding selected
  // boundaries and counting records; whenever it selects one, the feed
  // catches the engine up to exactly that offset and the suspension
  // checkpoint becomes the entry. The feed also streams every byte
  // through the content digest. Scan reads and feed reads are separate
  // ReadAt streams, so the source is read about twice -- the price of
  // O(chunk) memory without a shared sliding window between two
  // differently-paced consumers.
  StreamScanner sc(src, chunk);
  Hash64Stream hasher;
  CountingSink discard;
  core::RunStats stats;
  core::PrefilterSession session(tables, &discard, &stats, opts.engine);
  uint64_t feed_pos = 0;
  std::vector<char> feed_buf;
  Status run_status = Status::Ok();

  // Reads [feed_pos, to) in chunks: every byte goes through the digest,
  // and through the engine until it reports itself finished.
  auto feed_to = [&](uint64_t to) -> Status {
    feed_buf.resize(static_cast<size_t>(
        std::min<uint64_t>(chunk, std::max<uint64_t>(to - feed_pos, 1))));
    while (feed_pos < to) {
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(feed_buf.size(), to - feed_pos));
      size_t done = 0;
      while (done < want) {
        SMPX_ASSIGN_OR_RETURN(
            size_t n, src.ReadAt(feed_pos + done, feed_buf.data() + done,
                                 want - done));
        if (n == 0) {
          return Status::IoError("input source shrank at offset " +
                                 std::to_string(feed_pos + done));
        }
        done += n;
      }
      std::string_view piece(feed_buf.data(), done);
      hasher.Update(piece);
      if (run_status.ok() && !session.finished()) {
        run_status = session.Resume(piece);
      }
      feed_pos += done;
    }
    return Status::Ok();
  };

  uint64_t scan_pos = 0;
  uint64_t depth = 0;
  uint64_t records = 0;
  uint64_t target_idx = 1;
  uint64_t splits_found = 0;
  uint64_t prev_boundary = 0;
  const bool scan_enabled = stride > 0 && size >= 2;
  while (scan_enabled && splits_found < max_splits && scan_pos < size) {
    const uint64_t t = sc.NextOpen(scan_pos);
    if (t >= size) break;
    std::string_view head = sc.PeekAt(t, 2);
    if (head.size() < 2) break;
    const char next = head[1];
    if (next == '!' || next == '?') {
      scan_pos = sc.SkipMarkupConstruct(t, next);
      continue;
    }
    if (next == '/') {
      const uint64_t end = sc.TagEnd(t);
      if (depth > 0) --depth;
      scan_pos = end + 1;
      continue;
    }
    if (!IsNameChar(next)) {
      scan_pos = t + 1;  // stray '<' in text
      continue;
    }
    if (depth == 1) {
      if (t >= target_idx * stride) {
        // A selected boundary: bring the engine here and snapshot it.
        SMPX_RETURN_IF_ERROR(feed_to(t));
        if (!run_status.ok()) return run_status;
        if (session.finished()) break;  // later boundaries unreachable
        IndexEntry e;
        e.offset = t;
        // The engine finalizes stats.output_bytes only at the end of a
        // run; mid-stream the sink's own count is the projection offset.
        e.out_offset = discard.bytes_written();
        e.record_ordinal = records;
        e.checkpoint = session.checkpoint();
        if (e.checkpoint.copy_depth == 0) {
          // Out of copy mode, copy_flushed is dormant bookkeeping (the
          // next copy entry resets it) but its VALUE differs by history:
          // the wave's segment runs start it at the segment begin, a
          // serial session leaves the last flush position. Canonicalize
          // to the wave's value so the two builders agree field-for-field
          // and chunked output is chunk-size-invariant.
          e.checkpoint.copy_flushed =
              std::max(e.checkpoint.copy_flushed, prev_boundary);
        }
        e.stats = StatsPrefix::FromRunStats(stats);
        idx.entries_.push_back(e);
        prev_boundary = t;
        ++splits_found;
        while (target_idx <= max_splits && target_idx * stride <= t) {
          ++target_idx;  // collapse targets this boundary already covers
        }
      }
      ++records;
    }
    const uint64_t end = sc.TagEnd(t);
    const bool bachelor =
        end < size && end > t + 1 && sc.ByteAt(end - 1) == '/';
    if (!bachelor) ++depth;
    scan_pos = end + 1;
  }
  SMPX_RETURN_IF_ERROR(sc.status());

  // Tail: engine to end-of-document (a broken document must fail the
  // build, exactly like the in-memory path), digest over every byte.
  SMPX_RETURN_IF_ERROR(feed_to(size));
  if (!run_status.ok()) return run_status;
  if (!session.finished()) {
    SMPX_RETURN_IF_ERROR(session.Finish());
  }
  idx.doc_digest_ = hasher.Digest();
  return idx;
}

int64_t BoundaryIndex::FindEntry(uint64_t byte_target) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), byte_target,
      [](uint64_t t, const IndexEntry& e) { return t < e.offset; });
  return static_cast<int64_t>(it - entries_.begin()) - 1;
}

int64_t BoundaryIndex::FindRecord(uint64_t record_target) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), record_target,
      [](uint64_t t, const IndexEntry& e) { return t < e.record_ordinal; });
  return static_cast<int64_t>(it - entries_.begin()) - 1;
}

Status BoundaryIndex::Matches(std::string_view doc,
                              const core::RuntimeTables& tables) const {
  if (doc.size() != doc_size_) {
    return Status::InvalidArgument(
        "stale boundary index: document size " +
        std::to_string(doc.size()) + " != indexed size " +
        std::to_string(doc_size_));
  }
  if (Hash64(doc) != doc_digest_) {
    return Status::InvalidArgument(
        "stale boundary index: document content digest mismatch");
  }
  if (tables.Fingerprint() != tables_fingerprint_) {
    return Status::InvalidArgument(
        "stale boundary index: built against different runtime tables "
        "(DTD / projection paths / table options changed)");
  }
  return Status::Ok();
}

std::string BoundaryIndex::Serialize() const {
  std::string out;
  out.reserve(kHeaderBytes + 32 * entries_.size() + kFooterBytes);
  out.append(kMagic, sizeof(kMagic));
  wire::PutU32(&out, kVersion);
  wire::PutU32(&out, 0);  // reserved
  wire::PutU64(&out, doc_size_);
  wire::PutU64(&out, doc_digest_);
  wire::PutU64(&out, tables_fingerprint_);
  wire::PutU64(&out, entries_.size());
  uint64_t prev_offset = 0;
  uint64_t prev_out = 0;
  uint64_t prev_records = 0;
  StatsPrefix prev_stats;
  for (const IndexEntry& e : entries_) {
    const core::SessionCheckpoint& c = e.checkpoint;
    wire::PutVarint(&out, e.offset - prev_offset);
    wire::PutVarint(&out, e.out_offset - prev_out);
    wire::PutVarint(&out, static_cast<uint64_t>(c.state));
    // The cursor usually trails the boundary by the keyword-overlap tail,
    // but an initial jump can also carry it past the boundary, so the
    // backset is signed.
    wire::PutVarint(&out, wire::ZigZag(static_cast<int64_t>(e.offset) -
                                       static_cast<int64_t>(c.cursor)));
    wire::PutVarint(&out, c.nesting_depth);
    wire::PutVarint(&out, static_cast<uint64_t>(c.copy_depth));
    wire::PutVarint(&out, wire::ZigZag(static_cast<int64_t>(c.cursor) -
                                       static_cast<int64_t>(c.copy_flushed)));
    out.push_back(static_cast<char>((c.prolog_done ? kFlagPrologDone : 0) |
                                    (c.jump_pending ? kFlagJumpPending : 0)));
    // v2 tail: record ordinal and the stats prefix, all cumulative, all
    // delta-encoded against the previous entry.
    wire::PutVarint(&out, e.record_ordinal - prev_records);
    wire::PutVarint(&out, e.stats.matches - prev_stats.matches);
    wire::PutVarint(&out, e.stats.false_matches - prev_stats.false_matches);
    wire::PutVarint(&out, e.stats.scan_chars - prev_stats.scan_chars);
    wire::PutVarint(&out, e.stats.initial_jumps - prev_stats.initial_jumps);
    wire::PutVarint(&out,
                    e.stats.initial_jump_chars - prev_stats.initial_jump_chars);
    wire::PutVarint(&out, e.stats.bm_searches - prev_stats.bm_searches);
    wire::PutVarint(&out, e.stats.cw_searches - prev_stats.cw_searches);
    wire::PutVarint(
        &out, e.stats.search_comparisons - prev_stats.search_comparisons);
    wire::PutVarint(&out, e.stats.search_shifts - prev_stats.search_shifts);
    wire::PutVarint(
        &out, e.stats.search_shift_chars - prev_stats.search_shift_chars);
    prev_offset = e.offset;
    prev_out = e.out_offset;
    prev_records = e.record_ordinal;
    prev_stats = e.stats;
  }
  wire::PutU64(&out, Hash64(out));
  return out;
}

Status BoundaryIndex::Save(OutputSink* out) const {
  return out->Append(Serialize());
}

Status BoundaryIndex::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, Serialize());
}

Result<BoundaryIndex> BoundaryIndex::Load(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    return Corrupt("truncated (" + std::to_string(bytes.size()) + " bytes)");
  }
  // The trailing hash covers everything before it, so any flipped or
  // missing byte anywhere in the file fails here -- structural checks
  // below only produce better messages (and guard hash collisions).
  wire::Reader footer(bytes.substr(bytes.size() - kFooterBytes));
  uint64_t stored_hash = 0;
  footer.ReadU64(&stored_hash);
  if (Hash64(bytes.substr(0, bytes.size() - kFooterBytes)) != stored_hash) {
    return Corrupt("content hash mismatch");
  }

  wire::Reader r(bytes.substr(0, bytes.size() - kFooterBytes));
  if (bytes.compare(0, sizeof(kMagic),
                    std::string_view(kMagic, sizeof(kMagic))) != 0) {
    return Corrupt("bad magic");
  }
  r.Skip(sizeof(kMagic));
  uint32_t version = 0;
  uint32_t reserved = 0;
  r.ReadU32(&version);
  r.ReadU32(&reserved);
  if (version != kVersion) {
    // Fail closed on version 1 too: it lacks record ordinals and stats
    // prefixes, and fabricating them would corrupt record seeks silently.
    return Status::Unsupported(
        "boundary index version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kVersion) +
        "; rebuild the index with --index-build)");
  }
  BoundaryIndex idx;
  uint64_t count = 0;
  r.ReadU64(&idx.doc_size_);
  r.ReadU64(&idx.doc_digest_);
  r.ReadU64(&idx.tables_fingerprint_);
  r.ReadU64(&count);
  if (r.failed()) return Corrupt("truncated header");
  if (count > idx.doc_size_) {
    // More entries than document bytes is impossible (offsets are
    // strictly increasing); rejecting early also bounds the allocation.
    return Corrupt("entry count " + std::to_string(count) +
                   " exceeds document size");
  }
  idx.entries_.reserve(static_cast<size_t>(count));
  uint64_t prev_offset = 0;
  uint64_t prev_out = 0;
  uint64_t prev_records = 0;
  StatsPrefix prev_stats;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t d_off = 0, d_out = 0, state = 0, cursor_back = 0;
    uint64_t nesting = 0, copy_depth = 0, copy_back = 0;
    uint8_t flags = 0;
    uint64_t d_rec = 0;
    uint64_t d_stats[10] = {0};
    r.ReadVarint(&d_off);
    r.ReadVarint(&d_out);
    r.ReadVarint(&state);
    r.ReadVarint(&cursor_back);
    r.ReadVarint(&nesting);
    r.ReadVarint(&copy_depth);
    r.ReadVarint(&copy_back);
    r.ReadByte(&flags);
    r.ReadVarint(&d_rec);
    for (uint64_t& d : d_stats) r.ReadVarint(&d);
    if (r.failed()) {
      return Corrupt("truncated entry " + std::to_string(i));
    }
    IndexEntry e;
    e.offset = prev_offset + d_off;
    e.out_offset = prev_out + d_out;
    e.record_ordinal = prev_records + d_rec;
    if (e.offset >= idx.doc_size_) {
      return Corrupt("entry " + std::to_string(i) + " offset out of range");
    }
    if (i > 0 && d_off == 0) {
      return Corrupt("entry " + std::to_string(i) + " offset not increasing");
    }
    // Consecutive boundaries always have at least one record between them
    // (the one starting at the earlier boundary), and a record costs at
    // least one byte, so ordinals are strictly increasing and bounded.
    if (i > 0 && d_rec == 0) {
      return Corrupt("entry " + std::to_string(i) +
                     " record ordinal not increasing");
    }
    if (e.record_ordinal > e.offset) {
      return Corrupt("entry " + std::to_string(i) +
                     " record ordinal exceeds offset");
    }
    if (state > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
        copy_depth >
            static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return Corrupt("entry " + std::to_string(i) + " field out of range");
    }
    e.checkpoint.state = static_cast<int>(state);
    e.checkpoint.cursor = static_cast<uint64_t>(
        static_cast<int64_t>(e.offset) - wire::UnZigZag(cursor_back));
    e.checkpoint.nesting_depth = nesting;
    e.checkpoint.copy_depth = static_cast<int>(copy_depth);
    e.checkpoint.copy_flushed = static_cast<uint64_t>(
        static_cast<int64_t>(e.checkpoint.cursor) -
        wire::UnZigZag(copy_back));
    e.checkpoint.prolog_done = (flags & kFlagPrologDone) != 0;
    e.checkpoint.jump_pending = (flags & kFlagJumpPending) != 0;
    e.stats.matches = prev_stats.matches + d_stats[0];
    e.stats.false_matches = prev_stats.false_matches + d_stats[1];
    e.stats.scan_chars = prev_stats.scan_chars + d_stats[2];
    e.stats.initial_jumps = prev_stats.initial_jumps + d_stats[3];
    e.stats.initial_jump_chars = prev_stats.initial_jump_chars + d_stats[4];
    e.stats.bm_searches = prev_stats.bm_searches + d_stats[5];
    e.stats.cw_searches = prev_stats.cw_searches + d_stats[6];
    e.stats.search_comparisons =
        prev_stats.search_comparisons + d_stats[7];
    e.stats.search_shifts = prev_stats.search_shifts + d_stats[8];
    e.stats.search_shift_chars =
        prev_stats.search_shift_chars + d_stats[9];
    idx.entries_.push_back(e);
    prev_offset = e.offset;
    prev_out = e.out_offset;
    prev_records = e.record_ordinal;
    prev_stats = e.stats;
  }
  if (r.remaining() != 0) {
    return Corrupt(std::to_string(r.remaining()) +
                   " trailing bytes after the last entry");
  }
  return idx;
}

Result<BoundaryIndex> BoundaryIndex::LoadFromFile(const std::string& path) {
  SMPX_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return Load(bytes);
}

}  // namespace smpx::index
