#include "index/boundary_index.h"

#include <algorithm>
#include <limits>

#include "common/hash.h"
#include "index/wire.h"
#include "parallel/shard.h"

namespace smpx::index {
namespace {

constexpr char kMagic[8] = {'S', 'M', 'P', 'X', 'B', 'I', 'X', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8;
constexpr size_t kFooterBytes = 8;

/// Entry flag bits (one byte per entry on disk).
constexpr uint8_t kFlagPrologDone = 1;
constexpr uint8_t kFlagJumpPending = 2;

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt boundary index: " + what);
}

}  // namespace

Result<BoundaryIndex> BoundaryIndex::Build(const core::RuntimeTables& tables,
                                           std::string_view doc,
                                           parallel::ThreadPool* pool,
                                           const BoundaryIndexOptions& opts) {
  if (tables.states.empty()) {
    return Status::InvalidArgument("empty runtime tables");
  }
  if (tables.multi != nullptr) {
    return Status::Unsupported(
        "boundary indexing over multi-query product tables is not supported; "
        "index each query's single-query tables instead");
  }
  BoundaryIndex idx;
  idx.doc_size_ = doc.size();
  idx.doc_digest_ = Hash64(doc);
  idx.tables_fingerprint_ = tables.Fingerprint();

  const uint64_t gran = std::max<uint64_t>(1, opts.granularity_bytes);
  uint64_t max_splits = std::min<uint64_t>(doc.size() / gran,
                                           opts.max_entries);
  if (!doc.empty()) {
    // FindTopLevelBoundaries needs a stride of at least one byte.
    max_splits = std::min<uint64_t>(max_splits, doc.size() - 1);
  }
  std::vector<uint64_t> bounds;
  if (max_splits > 0) {
    bounds = pool->size() > 1
                 ? parallel::FindTopLevelBoundariesParallel(
                       doc, static_cast<size_t>(max_splits), pool,
                       /*scanned_bytes=*/nullptr, opts.use_bitmap_plane)
                 : parallel::FindTopLevelBoundaries(
                       doc, static_cast<size_t>(max_splits),
                       opts.use_bitmap_plane);
  }

  // The sharded execution pipeline with the output thrown away: speculate
  // every inter-boundary segment in one wave, then resolve the chain in
  // order. Each resolved exit is the serial engine's state at the next
  // boundary -- verified, not assumed -- and the per-segment output byte
  // counts accumulate into the projection offsets.
  parallel::SpeculativeResolver::Options ropts;
  ropts.max_candidate_states = opts.max_candidate_states;
  ropts.capture_output = false;
  ropts.engine = opts.engine;
  parallel::SpeculativeResolver resolver(tables, doc, bounds, ropts);
  const size_t n = resolver.segments();
  resolver.LaunchWave(pool);
  idx.entries_.reserve(bounds.size());
  uint64_t out_offset = 0;
  for (size_t k = 0; k < n; ++k) {
    parallel::ShardResult& r = resolver.Resolve(k);
    if (!r.status.ok()) return r.status;
    out_offset += r.stats.output_bytes;
    if (r.finished) break;  // serial run ends; later boundaries unreachable
    if (k + 1 < n) {
      IndexEntry e;
      e.offset = resolver.seg_begin(k + 1);
      e.out_offset = out_offset;
      e.checkpoint = r.exit;
      idx.entries_.push_back(e);
    }
  }
  return idx;
}

int64_t BoundaryIndex::FindEntry(uint64_t byte_target) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), byte_target,
      [](uint64_t t, const IndexEntry& e) { return t < e.offset; });
  return static_cast<int64_t>(it - entries_.begin()) - 1;
}

Status BoundaryIndex::Matches(std::string_view doc,
                              const core::RuntimeTables& tables) const {
  if (doc.size() != doc_size_) {
    return Status::InvalidArgument(
        "stale boundary index: document size " +
        std::to_string(doc.size()) + " != indexed size " +
        std::to_string(doc_size_));
  }
  if (Hash64(doc) != doc_digest_) {
    return Status::InvalidArgument(
        "stale boundary index: document content digest mismatch");
  }
  if (tables.Fingerprint() != tables_fingerprint_) {
    return Status::InvalidArgument(
        "stale boundary index: built against different runtime tables "
        "(DTD / projection paths / table options changed)");
  }
  return Status::Ok();
}

std::string BoundaryIndex::Serialize() const {
  std::string out;
  out.reserve(kHeaderBytes + 16 * entries_.size() + kFooterBytes);
  out.append(kMagic, sizeof(kMagic));
  wire::PutU32(&out, kVersion);
  wire::PutU32(&out, 0);  // reserved
  wire::PutU64(&out, doc_size_);
  wire::PutU64(&out, doc_digest_);
  wire::PutU64(&out, tables_fingerprint_);
  wire::PutU64(&out, entries_.size());
  uint64_t prev_offset = 0;
  uint64_t prev_out = 0;
  for (const IndexEntry& e : entries_) {
    const core::SessionCheckpoint& c = e.checkpoint;
    wire::PutVarint(&out, e.offset - prev_offset);
    wire::PutVarint(&out, e.out_offset - prev_out);
    wire::PutVarint(&out, static_cast<uint64_t>(c.state));
    // The cursor usually trails the boundary by the keyword-overlap tail,
    // but an initial jump can also carry it past the boundary, so the
    // backset is signed.
    wire::PutVarint(&out, wire::ZigZag(static_cast<int64_t>(e.offset) -
                                       static_cast<int64_t>(c.cursor)));
    wire::PutVarint(&out, c.nesting_depth);
    wire::PutVarint(&out, static_cast<uint64_t>(c.copy_depth));
    wire::PutVarint(&out, wire::ZigZag(static_cast<int64_t>(c.cursor) -
                                       static_cast<int64_t>(c.copy_flushed)));
    out.push_back(static_cast<char>((c.prolog_done ? kFlagPrologDone : 0) |
                                    (c.jump_pending ? kFlagJumpPending : 0)));
    prev_offset = e.offset;
    prev_out = e.out_offset;
  }
  wire::PutU64(&out, Hash64(out));
  return out;
}

Status BoundaryIndex::Save(OutputSink* out) const {
  return out->Append(Serialize());
}

Status BoundaryIndex::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, Serialize());
}

Result<BoundaryIndex> BoundaryIndex::Load(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) {
    return Corrupt("truncated (" + std::to_string(bytes.size()) + " bytes)");
  }
  // The trailing hash covers everything before it, so any flipped or
  // missing byte anywhere in the file fails here -- structural checks
  // below only produce better messages (and guard hash collisions).
  wire::Reader footer(bytes.substr(bytes.size() - kFooterBytes));
  uint64_t stored_hash = 0;
  footer.ReadU64(&stored_hash);
  if (Hash64(bytes.substr(0, bytes.size() - kFooterBytes)) != stored_hash) {
    return Corrupt("content hash mismatch");
  }

  wire::Reader r(bytes.substr(0, bytes.size() - kFooterBytes));
  if (bytes.compare(0, sizeof(kMagic),
                    std::string_view(kMagic, sizeof(kMagic))) != 0) {
    return Corrupt("bad magic");
  }
  r.Skip(sizeof(kMagic));
  uint32_t version = 0;
  uint32_t reserved = 0;
  r.ReadU32(&version);
  r.ReadU32(&reserved);
  if (version != kVersion) {
    return Status::Unsupported("boundary index version " +
                               std::to_string(version) +
                               " (this build reads version " +
                               std::to_string(kVersion) + ")");
  }
  BoundaryIndex idx;
  uint64_t count = 0;
  r.ReadU64(&idx.doc_size_);
  r.ReadU64(&idx.doc_digest_);
  r.ReadU64(&idx.tables_fingerprint_);
  r.ReadU64(&count);
  if (r.failed()) return Corrupt("truncated header");
  if (count > idx.doc_size_) {
    // More entries than document bytes is impossible (offsets are
    // strictly increasing); rejecting early also bounds the allocation.
    return Corrupt("entry count " + std::to_string(count) +
                   " exceeds document size");
  }
  idx.entries_.reserve(static_cast<size_t>(count));
  uint64_t prev_offset = 0;
  uint64_t prev_out = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t d_off = 0, d_out = 0, state = 0, cursor_back = 0;
    uint64_t nesting = 0, copy_depth = 0, copy_back = 0;
    uint8_t flags = 0;
    r.ReadVarint(&d_off);
    r.ReadVarint(&d_out);
    r.ReadVarint(&state);
    r.ReadVarint(&cursor_back);
    r.ReadVarint(&nesting);
    r.ReadVarint(&copy_depth);
    r.ReadVarint(&copy_back);
    r.ReadByte(&flags);
    if (r.failed()) {
      return Corrupt("truncated entry " + std::to_string(i));
    }
    IndexEntry e;
    e.offset = prev_offset + d_off;
    e.out_offset = prev_out + d_out;
    if (e.offset >= idx.doc_size_) {
      return Corrupt("entry " + std::to_string(i) + " offset out of range");
    }
    if (i > 0 && d_off == 0) {
      return Corrupt("entry " + std::to_string(i) + " offset not increasing");
    }
    if (state > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
        copy_depth >
            static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return Corrupt("entry " + std::to_string(i) + " field out of range");
    }
    e.checkpoint.state = static_cast<int>(state);
    e.checkpoint.cursor = static_cast<uint64_t>(
        static_cast<int64_t>(e.offset) - wire::UnZigZag(cursor_back));
    e.checkpoint.nesting_depth = nesting;
    e.checkpoint.copy_depth = static_cast<int>(copy_depth);
    e.checkpoint.copy_flushed = static_cast<uint64_t>(
        static_cast<int64_t>(e.checkpoint.cursor) -
        wire::UnZigZag(copy_back));
    e.checkpoint.prolog_done = (flags & kFlagPrologDone) != 0;
    e.checkpoint.jump_pending = (flags & kFlagJumpPending) != 0;
    idx.entries_.push_back(e);
    prev_offset = e.offset;
    prev_out = e.out_offset;
  }
  if (r.remaining() != 0) {
    return Corrupt(std::to_string(r.remaining()) +
                   " trailing bytes after the last entry");
  }
  return idx;
}

Result<BoundaryIndex> BoundaryIndex::LoadFromFile(const std::string& path) {
  SMPX_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return Load(bytes);
}

}  // namespace smpx::index
