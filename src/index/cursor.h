// Resumable random-access cursor over an indexed document: the
// server-side pagination primitive the boundary index exists for.
//
// A cursor is a PrefilterSession seeded from a verified index checkpoint.
// OpenAt(byte_target) resumes at the greatest indexed boundary at or
// before the target (the document start when none precedes it) and then
// projects forward; everything it emits is byte-identical to the
// corresponding suffix of a full serial run -- output_position() says
// where in the serial projection that suffix starts. Next(n) advances n
// indexed spans (with a granularity-1 index: n top-level records) and
// stops exactly on a boundary, so a cursor can be converted to a compact
// token at any pause and restored later -- by a different process against
// the same document, index, and compiled tables -- without losing a byte.
// Tokens, like the index itself, carry the document digest and table
// fingerprint plus a trailing content hash: a token from another document,
// another compilation, or a tampered byte stream fails closed.
//
// The index, tables, and document views passed to OpenAt/Restore must
// outlive the cursor.

#ifndef SMPX_INDEX_CURSOR_H_
#define SMPX_INDEX_CURSOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/io.h"
#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "index/boundary_index.h"

namespace smpx::index {

struct CursorOptions {
  core::EngineOptions engine;
  /// Verify index <-> document/tables compatibility on open (full
  /// content digest over the document). Disable only when the caller
  /// already ran BoundaryIndex::Matches on this exact triple.
  bool verify_document = true;
};

class Cursor {
 public:
  /// Opens a cursor at the greatest indexed boundary at or before
  /// `byte_target`; a target before the first boundary (or an entry-less
  /// index) resumes from the document start. Fails closed when the index
  /// does not match the document or tables.
  static Result<Cursor> OpenAt(const BoundaryIndex& index,
                               const core::RuntimeTables& tables,
                               std::string_view doc, uint64_t byte_target,
                               const CursorOptions& opts = {});

  /// Record-addressed variant: opens at the greatest indexed boundary
  /// whose record ordinal is at or before `record_target` (the document
  /// start when none is). With a granularity-1 index this positions the
  /// cursor exactly at record `record_target`; a coarser index lands at
  /// the nearest preceding indexed boundary, mirroring OpenAt's byte
  /// semantics. Requires a version-2 index (ordinals are always present
  /// there; version-1 files no longer load at all).
  static Result<Cursor> OpenAtRecord(const BoundaryIndex& index,
                                     const core::RuntimeTables& tables,
                                     std::string_view doc,
                                     uint64_t record_target,
                                     const CursorOptions& opts = {});

  /// Restores a cursor from a SaveToken() string minted over the same
  /// (document, index, tables) triple; corrupted, foreign, or stale
  /// tokens fail closed with a clear Status.
  static Result<Cursor> Restore(const BoundaryIndex& index,
                                const core::RuntimeTables& tables,
                                std::string_view doc, std::string_view token,
                                const CursorOptions& opts = {});

  /// Projects the next `n_spans` indexed spans into `out` (which may be
  /// null to discard) and suspends on the boundary after them; the last
  /// span of the document extends to the end of the projection. Returns
  /// the number of spans consumed: 0 when the cursor was already at the
  /// end, fewer than requested when fewer spans remained (reaching the
  /// projection's end inside the range still counts the requested spans).
  Result<size_t> Next(size_t n_spans, OutputSink* out);

  /// Projects everything from the cursor to the end of the document.
  Status Drain(OutputSink* out);

  /// True when the projection is complete; Next/Drain emit nothing.
  bool at_end() const { return finished_; }
  /// Document offset of the cursor's resume point (a boundary offset, 0
  /// at the start, doc size at the end).
  uint64_t position() const { return pos_; }
  /// Offset into the full serial projection where this cursor's next
  /// output byte belongs.
  uint64_t output_position() const { return out_pos_; }
  /// Index of the first index entry strictly ahead of the cursor.
  size_t next_entry() const { return next_entry_; }
  /// Record ordinal of the boundary the cursor last resumed from or
  /// paused at (0 at the document start). Exact while the cursor sits on
  /// an indexed boundary; once at_end() it keeps reporting the last
  /// boundary's ordinal.
  uint64_t record_position() const {
    return next_entry_ == 0
               ? 0
               : index_->entries()[next_entry_ - 1].record_ordinal;
  }
  /// Cumulative indexing-pass statistics for the document prefix before
  /// the boundary of record_position() (all-zero at the document start);
  /// lets a seek report whole-document-so-far totals instead of only the
  /// resumed suffix's.
  StatsPrefix stats_prefix() const {
    return next_entry_ == 0
               ? StatsPrefix{}
               : index_->entries()[next_entry_ - 1].stats;
  }

  /// Serializes the cursor state (not the session's window -- cursors
  /// pause only at checkpoints) into a compact opaque token.
  std::string SaveToken() const;

 private:
  Cursor(const BoundaryIndex* index, const core::RuntimeTables* tables,
         std::string_view doc, const CursorOptions& opts)
      : index_(index), tables_(tables), doc_(doc), opts_(opts) {}

  /// Feeds the document up to `feed_end` through a session resumed from
  /// the current checkpoint, forwarding output; with `to_eof` also closes
  /// the run (Finish / final-state checks).
  Status Advance(uint64_t feed_end, bool to_eof, OutputSink* out);

  const BoundaryIndex* index_;
  const core::RuntimeTables* tables_;
  std::string_view doc_;
  CursorOptions opts_;
  bool from_scratch_ = false;  ///< at offset 0, prolog not yet skipped
  core::SessionCheckpoint ckpt_;
  size_t next_entry_ = 0;
  uint64_t pos_ = 0;
  uint64_t out_pos_ = 0;
  bool finished_ = false;
};

}  // namespace smpx::index

#endif  // SMPX_INDEX_CURSOR_H_
