// Boundary skip-index: random access into huge prefiltered documents.
//
// The paper's prefilter is strictly streaming -- entering a document at
// byte k requires prefiltering bytes [0, k) first. The static
// boundary-state analysis (RuntimeTables::boundary_states) plus the
// speculative wave/verify machinery (parallel::SpeculativeResolver) remove
// that restriction: one indexing pass runs the region-parallel top-level
// boundary scan, speculates every inter-boundary segment in a single
// parallel wave, and verifies the chain exit-vs-entry -- exactly the
// ShardedRun pipeline with the projected output discarded. What survives
// is, per boundary, the byte offset, the cumulative projected-output
// offset, and the verified SessionCheckpoint: provably the serial engine's
// state at that offset. A session resumed from any entry therefore
// projects the document's remainder byte-identically to the suffix of a
// full serial run (see cursor.h), without ever touching the prefix.
//
// On-disk format (version 2, little-endian, built for mmap-and-go):
//
//   offset  size  field
//        0     8  magic "SMPXBIX1"
//        8     4  version (2)
//       12     4  reserved (0)
//       16     8  document size in bytes
//       24     8  document content digest (Hash64 over the whole document)
//       32     8  RuntimeTables::Fingerprint() of the compiled tables
//       40     8  entry count
//       48     -  entries, LEB128 varints (see boundary_index.cc):
//                 offset delta, out_offset delta, state, cursor backset,
//                 nesting depth, copy depth, copy-flush backset, flags,
//                 record-ordinal delta, stats-prefix deltas (StatsPrefix
//                 field order)
//      end-8    8  Hash64 over every preceding byte of the file
//
// Version 2 added the per-entry record ordinal (count of top-level
// records preceding the boundary, enabling record-addressed seeks) and
// the cumulative StatsPrefix. Version-1 files fail closed on Load with
// Status::Unsupported -- the new fields cannot be reconstructed without
// re-running the indexing pass, and inventing zeros would silently turn
// record seeks and seek-point stats into lies. Rebuild old indexes.
//
// Loading validates structure (magic, version, monotonicity, exact
// trailing hash, no trailing bytes); *using* an index additionally
// requires Matches(doc, tables) -- size, content digest, and table
// fingerprint -- so a stale or foreign index fails closed with a clear
// Status instead of resuming into garbage.

#ifndef SMPX_INDEX_BOUNDARY_INDEX_H_
#define SMPX_INDEX_BOUNDARY_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "parallel/thread_pool.h"

namespace smpx::index {

/// Cumulative run statistics of the indexing pass for the document prefix
/// before an entry, so a seek can report meaningful totals instead of
/// zeros. `matches` and `false_matches` are exact serial-run prefix
/// counts; the search-effort counters (comparisons, shifts, searches,
/// jumps, scan chars) are as executed by the indexing pass, which
/// restarts its keyword search at every indexed boundary -- within one
/// search-restart of the uninterrupted serial run, close enough for the
/// paper's percentage columns. Field order here is the on-disk varint
/// order.
struct StatsPrefix {
  uint64_t matches = 0;
  uint64_t false_matches = 0;
  uint64_t scan_chars = 0;
  uint64_t initial_jumps = 0;
  uint64_t initial_jump_chars = 0;
  uint64_t bm_searches = 0;
  uint64_t cw_searches = 0;
  uint64_t search_comparisons = 0;
  uint64_t search_shifts = 0;
  uint64_t search_shift_chars = 0;

  /// Snapshots the cumulative counters of `s` (a running total).
  static StatsPrefix FromRunStats(const core::RunStats& s);
  /// Adds this prefix onto `s`, e.g. to complete a resumed run's stats
  /// into whole-document totals.
  void AccumulateInto(core::RunStats* s) const;

  bool operator==(const StatsPrefix& o) const {
    return matches == o.matches && false_matches == o.false_matches &&
           scan_chars == o.scan_chars && initial_jumps == o.initial_jumps &&
           initial_jump_chars == o.initial_jump_chars &&
           bm_searches == o.bm_searches && cw_searches == o.cw_searches &&
           search_comparisons == o.search_comparisons &&
           search_shifts == o.search_shifts &&
           search_shift_chars == o.search_shift_chars;
  }
};

/// One indexed boundary: a resume point for random access.
struct IndexEntry {
  /// Byte offset of the '<' opening a top-level element (child of the
  /// document root).
  uint64_t offset = 0;
  /// Projected bytes the serial engine emits for the document prefix
  /// before this boundary; the resumed suffix starts at exactly this
  /// position of the full serial projection.
  uint64_t out_offset = 0;
  /// Number of top-level records (root children, bachelor tags included)
  /// starting strictly before `offset`; equivalently, the zero-based
  /// ordinal of the record that starts AT this boundary. Strictly
  /// increasing across entries.
  uint64_t record_ordinal = 0;
  /// The serial engine's resumable state at `offset` (cursor may trail the
  /// boundary by the keyword-overlap tail; see SessionCheckpoint).
  core::SessionCheckpoint checkpoint;
  /// Cumulative indexing-pass statistics for the prefix before `offset`.
  StatsPrefix stats;
};

struct BoundaryIndexOptions {
  /// Target byte spacing between consecutive index entries. The scan
  /// places one entry at the first top-level boundary at or after each
  /// `granularity_bytes`-spaced target, so entries are approximately this
  /// far apart; 1 indexes EVERY top-level boundary.
  uint64_t granularity_bytes = 1 << 20;
  /// Hard cap on the number of entries regardless of granularity.
  uint64_t max_entries = 1 << 20;
  /// See parallel::SpeculativeResolver::Options.
  size_t max_candidate_states = 4;
  /// Routes the index-build boundary scan through a simd::BitmapPlane over
  /// the document (classify once, bit-walk everywhere). Throughput only;
  /// the entries are identical either way. Gated additionally on the
  /// process-wide simd::PlaneEnabled().
  bool use_bitmap_plane = false;
  /// Rolling-buffer size for the chunked (InputSource) build overload:
  /// peak resident memory of that path is O(chunk_bytes + window), never
  /// O(document). Ignored by the in-memory overload.
  uint64_t chunk_bytes = 64 << 20;
  core::EngineOptions engine;
};

class BoundaryIndex {
 public:
  /// Builds the index for `doc` against `tables` on `pool`: one
  /// region-parallel boundary scan plus one speculative verification wave
  /// over the whole document. Fails with the engine's Status if the
  /// document does not prefilter cleanly (the checkpoints of a broken run
  /// would be meaningless). Must not be called from a pool thread.
  static Result<BoundaryIndex> Build(const core::RuntimeTables& tables,
                                     std::string_view doc,
                                     parallel::ThreadPool* pool,
                                     const BoundaryIndexOptions& opts = {});

  /// Chunked build: streams `src` through a rolling buffer of
  /// `opts.chunk_bytes`, so documents larger than the address space (or
  /// any mmap window) can be indexed -- the resident set is
  /// O(chunk + engine window) regardless of document size. One serial
  /// pass: the structural boundary scan, the record count, the content
  /// digest, and the engine feed advance together, with the engine
  /// suspended exactly at each selected boundary to capture its
  /// checkpoint. Selects the same boundaries as the in-memory overload
  /// (same stride arithmetic, same structural rules) and agrees with it
  /// on every durable field -- offsets, projection offsets, record
  /// ordinals, checkpoints -- and on the exact StatsPrefix counters
  /// (matches, false matches); only the approximate search-effort
  /// counters differ, because the two builders suspend the engine with
  /// different histories. Chunked builds themselves are fully
  /// deterministic: any two chunk sizes (or sources) produce
  /// byte-identical files as long as no inter-entry span exceeds the
  /// chunk (a larger span forces an extra mid-span suspension, again
  /// perturbing only search counters). Reads the source about twice
  /// (scan + feed), trading I/O for bounded memory. `pool` may be null;
  /// the chunked path is single-threaded.
  static Result<BoundaryIndex> Build(const core::RuntimeTables& tables,
                                     const InputSource& src,
                                     parallel::ThreadPool* pool,
                                     const BoundaryIndexOptions& opts = {});

  /// Entries sorted by strictly increasing offset.
  const std::vector<IndexEntry>& entries() const { return entries_; }
  uint64_t doc_size() const { return doc_size_; }
  uint64_t doc_digest() const { return doc_digest_; }
  uint64_t tables_fingerprint() const { return tables_fingerprint_; }

  /// Index of the greatest entry with offset <= byte_target; -1 when the
  /// target precedes every entry (resume from the document start).
  int64_t FindEntry(uint64_t byte_target) const;

  /// Index of the greatest entry with record_ordinal <= record_target; -1
  /// when the target precedes every entry's ordinal (resume from the
  /// document start). With a granularity-1 index every record has an
  /// entry whose ordinal equals it exactly; coarser indexes land on the
  /// nearest preceding indexed boundary, like FindEntry does for bytes.
  int64_t FindRecord(uint64_t record_target) const;

  /// Fail-closed compatibility check: the document must have the indexed
  /// size and content digest, and `tables` the recorded fingerprint.
  Status Matches(std::string_view doc,
                 const core::RuntimeTables& tables) const;

  /// Serializes in the on-disk format (see file comment).
  Status Save(OutputSink* out) const;
  std::string Serialize() const;
  Status SaveToFile(const std::string& path) const;

  /// Parses and structurally validates a serialized index. Corrupted,
  /// truncated, or version-mismatched bytes fail closed; compatibility
  /// with a document/tables pair is checked separately via Matches().
  static Result<BoundaryIndex> Load(std::string_view bytes);
  static Result<BoundaryIndex> LoadFromFile(const std::string& path);

 private:
  std::vector<IndexEntry> entries_;
  uint64_t doc_size_ = 0;
  uint64_t doc_digest_ = 0;
  uint64_t tables_fingerprint_ = 0;
};

}  // namespace smpx::index

#endif  // SMPX_INDEX_BOUNDARY_INDEX_H_
