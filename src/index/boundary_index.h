// Boundary skip-index: random access into huge prefiltered documents.
//
// The paper's prefilter is strictly streaming -- entering a document at
// byte k requires prefiltering bytes [0, k) first. The static
// boundary-state analysis (RuntimeTables::boundary_states) plus the
// speculative wave/verify machinery (parallel::SpeculativeResolver) remove
// that restriction: one indexing pass runs the region-parallel top-level
// boundary scan, speculates every inter-boundary segment in a single
// parallel wave, and verifies the chain exit-vs-entry -- exactly the
// ShardedRun pipeline with the projected output discarded. What survives
// is, per boundary, the byte offset, the cumulative projected-output
// offset, and the verified SessionCheckpoint: provably the serial engine's
// state at that offset. A session resumed from any entry therefore
// projects the document's remainder byte-identically to the suffix of a
// full serial run (see cursor.h), without ever touching the prefix.
//
// On-disk format (version 1, little-endian, built for mmap-and-go):
//
//   offset  size  field
//        0     8  magic "SMPXBIX1"
//        8     4  version (1)
//       12     4  reserved (0)
//       16     8  document size in bytes
//       24     8  document content digest (Hash64 over the whole document)
//       32     8  RuntimeTables::Fingerprint() of the compiled tables
//       40     8  entry count
//       48     -  entries, LEB128 varints (see boundary_index.cc):
//                 offset delta, out_offset delta, state, cursor backset,
//                 nesting depth, copy depth, copy-flush backset, flags
//      end-8    8  Hash64 over every preceding byte of the file
//
// Loading validates structure (magic, version, monotonicity, exact
// trailing hash, no trailing bytes); *using* an index additionally
// requires Matches(doc, tables) -- size, content digest, and table
// fingerprint -- so a stale or foreign index fails closed with a clear
// Status instead of resuming into garbage.

#ifndef SMPX_INDEX_BOUNDARY_INDEX_H_
#define SMPX_INDEX_BOUNDARY_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/tables.h"
#include "parallel/thread_pool.h"

namespace smpx::index {

/// One indexed boundary: a resume point for random access.
struct IndexEntry {
  /// Byte offset of the '<' opening a top-level element (child of the
  /// document root).
  uint64_t offset = 0;
  /// Projected bytes the serial engine emits for the document prefix
  /// before this boundary; the resumed suffix starts at exactly this
  /// position of the full serial projection.
  uint64_t out_offset = 0;
  /// The serial engine's resumable state at `offset` (cursor may trail the
  /// boundary by the keyword-overlap tail; see SessionCheckpoint).
  core::SessionCheckpoint checkpoint;
};

struct BoundaryIndexOptions {
  /// Target byte spacing between consecutive index entries. The scan
  /// places one entry at the first top-level boundary at or after each
  /// `granularity_bytes`-spaced target, so entries are approximately this
  /// far apart; 1 indexes EVERY top-level boundary.
  uint64_t granularity_bytes = 1 << 20;
  /// Hard cap on the number of entries regardless of granularity.
  uint64_t max_entries = 1 << 20;
  /// See parallel::SpeculativeResolver::Options.
  size_t max_candidate_states = 4;
  /// Routes the index-build boundary scan through a simd::BitmapPlane over
  /// the document (classify once, bit-walk everywhere). Throughput only;
  /// the entries are identical either way. Gated additionally on the
  /// process-wide simd::PlaneEnabled().
  bool use_bitmap_plane = false;
  core::EngineOptions engine;
};

class BoundaryIndex {
 public:
  /// Builds the index for `doc` against `tables` on `pool`: one
  /// region-parallel boundary scan plus one speculative verification wave
  /// over the whole document. Fails with the engine's Status if the
  /// document does not prefilter cleanly (the checkpoints of a broken run
  /// would be meaningless). Must not be called from a pool thread.
  static Result<BoundaryIndex> Build(const core::RuntimeTables& tables,
                                     std::string_view doc,
                                     parallel::ThreadPool* pool,
                                     const BoundaryIndexOptions& opts = {});

  /// Entries sorted by strictly increasing offset.
  const std::vector<IndexEntry>& entries() const { return entries_; }
  uint64_t doc_size() const { return doc_size_; }
  uint64_t doc_digest() const { return doc_digest_; }
  uint64_t tables_fingerprint() const { return tables_fingerprint_; }

  /// Index of the greatest entry with offset <= byte_target; -1 when the
  /// target precedes every entry (resume from the document start).
  int64_t FindEntry(uint64_t byte_target) const;

  /// Fail-closed compatibility check: the document must have the indexed
  /// size and content digest, and `tables` the recorded fingerprint.
  Status Matches(std::string_view doc,
                 const core::RuntimeTables& tables) const;

  /// Serializes in the on-disk format (see file comment).
  Status Save(OutputSink* out) const;
  std::string Serialize() const;
  Status SaveToFile(const std::string& path) const;

  /// Parses and structurally validates a serialized index. Corrupted,
  /// truncated, or version-mismatched bytes fail closed; compatibility
  /// with a document/tables pair is checked separately via Matches().
  static Result<BoundaryIndex> Load(std::string_view bytes);
  static Result<BoundaryIndex> LoadFromFile(const std::string& path);

 private:
  std::vector<IndexEntry> entries_;
  uint64_t doc_size_ = 0;
  uint64_t doc_digest_ = 0;
  uint64_t tables_fingerprint_ = 0;
};

}  // namespace smpx::index

#endif  // SMPX_INDEX_BOUNDARY_INDEX_H_
