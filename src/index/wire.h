// Internal wire-format helpers shared by the boundary-index file format
// and cursor tokens: little-endian fixed-width integers and LEB128
// varints (with zigzag for the rare signed backset fields). Both formats
// end in a Hash64 of everything preceding it, so these helpers only need
// to be deterministic, not self-describing.

#ifndef SMPX_INDEX_WIRE_H_
#define SMPX_INDEX_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace smpx::index::wire {

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

inline void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Cursor over a serialized buffer; every Read* fails (returns false and
/// sets failed()) on truncation, and the caller checks once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) {
    if (failed_ || data_.size() - pos_ < 4) return Fail();
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (failed_ || data_.size() - pos_ < 8) return Fail();
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadVarint(uint64_t* v) {
    if (failed_) return false;
    *v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return Fail();
      unsigned char b = static_cast<unsigned char>(data_[pos_++]);
      *v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return true;
    }
    return Fail();  // > 10 continuation bytes: not a valid u64
  }

  bool ReadByte(uint8_t* v) {
    if (failed_ || pos_ >= data_.size()) return Fail();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool Skip(size_t n) {
    if (failed_ || data_.size() - pos_ < n) return Fail();
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  bool failed() const { return failed_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace smpx::index::wire

#endif  // SMPX_INDEX_WIRE_H_
