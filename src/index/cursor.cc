#include "index/cursor.h"

#include <algorithm>

#include "common/hash.h"
#include "index/wire.h"

namespace smpx::index {
namespace {

constexpr char kTokenMagic[8] = {'S', 'M', 'P', 'X', 'C', 'T', 'K', '1'};

constexpr uint8_t kFlagPrologDone = 1;
constexpr uint8_t kFlagJumpPending = 2;
constexpr uint8_t kFlagFinished = 4;
constexpr uint8_t kFlagFromScratch = 8;

/// Forwards appends to a caller sink (or discards) while counting, so one
/// session can serve many Next() calls with different sinks.
class ForwardSink : public OutputSink {
 public:
  explicit ForwardSink(OutputSink* down) : down_(down) {}
  Status Append(std::string_view data) override {
    bytes_written_ += data.size();
    return down_ != nullptr ? down_->Append(data) : Status::Ok();
  }

 private:
  OutputSink* down_;
};

Status BadToken(const std::string& what) {
  return Status::InvalidArgument("invalid cursor token: " + what);
}

}  // namespace

Result<Cursor> Cursor::OpenAt(const BoundaryIndex& index,
                              const core::RuntimeTables& tables,
                              std::string_view doc, uint64_t byte_target,
                              const CursorOptions& opts) {
  if (opts.verify_document) {
    SMPX_RETURN_IF_ERROR(index.Matches(doc, tables));
  }
  Cursor c(&index, &tables, doc, opts);
  int64_t j = index.FindEntry(byte_target);
  if (j < 0) {
    c.from_scratch_ = true;
  } else {
    const IndexEntry& e = index.entries()[static_cast<size_t>(j)];
    c.ckpt_ = e.checkpoint;
    c.pos_ = e.offset;
    c.out_pos_ = e.out_offset;
    c.next_entry_ = static_cast<size_t>(j) + 1;
  }
  return c;
}

Result<Cursor> Cursor::OpenAtRecord(const BoundaryIndex& index,
                                    const core::RuntimeTables& tables,
                                    std::string_view doc,
                                    uint64_t record_target,
                                    const CursorOptions& opts) {
  if (opts.verify_document) {
    SMPX_RETURN_IF_ERROR(index.Matches(doc, tables));
  }
  Cursor c(&index, &tables, doc, opts);
  int64_t j = index.FindRecord(record_target);
  if (j < 0) {
    c.from_scratch_ = true;
  } else {
    const IndexEntry& e = index.entries()[static_cast<size_t>(j)];
    c.ckpt_ = e.checkpoint;
    c.pos_ = e.offset;
    c.out_pos_ = e.out_offset;
    c.next_entry_ = static_cast<size_t>(j) + 1;
  }
  return c;
}

Status Cursor::Advance(uint64_t feed_end, bool to_eof, OutputSink* out) {
  // A resumed session is fed from the checkpoint's feed position, which
  // can lag the boundary (copy bytes pending emission) or lead it (an
  // initial jump carried the cursor past the next boundary); in the
  // latter case there is nothing to feed for this span.
  uint64_t feed = from_scratch_ ? 0 : ckpt_.feed_begin();
  if (!to_eof && feed >= feed_end) return Status::Ok();
  ForwardSink fwd(out);
  core::RunStats stats;
  core::PrefilterSession session(*tables_, &fwd, &stats, opts_.engine,
                                 from_scratch_ ? nullptr : &ckpt_);
  const uint64_t begin = std::min<uint64_t>(feed, doc_.size());
  const uint64_t end =
      std::max<uint64_t>(begin, std::min<uint64_t>(feed_end, doc_.size()));
  SMPX_RETURN_IF_ERROR(session.Resume(
      doc_.substr(static_cast<size_t>(begin),
                  static_cast<size_t>(end - begin))));
  if (to_eof && !session.finished()) {
    SMPX_RETURN_IF_ERROR(session.Finish());
  }
  from_scratch_ = false;
  ckpt_ = session.checkpoint();
  out_pos_ += fwd.bytes_written();
  if (session.finished() || to_eof) finished_ = true;
  return Status::Ok();
}

Result<size_t> Cursor::Next(size_t n_spans, OutputSink* out) {
  if (n_spans == 0 || finished_) return size_t{0};
  const std::vector<IndexEntry>& entries = index_->entries();
  const size_t remaining_boundaries = entries.size() - next_entry_;
  if (n_spans <= remaining_boundaries) {
    const size_t stop_idx = next_entry_ + n_spans - 1;
    const uint64_t stop = entries[stop_idx].offset;
    SMPX_RETURN_IF_ERROR(Advance(stop, /*to_eof=*/false, out));
    next_entry_ = stop_idx + 1;
    pos_ = stop;
    if (finished_) {
      // The run reached a final state inside the range: the projection is
      // complete and every remaining span is trivially consumed.
      next_entry_ = entries.size();
      pos_ = doc_.size();
    }
    return n_spans;
  }
  // Fewer boundaries remain than requested spans: the last span runs to
  // the end of the document.
  const size_t spans = remaining_boundaries + 1;
  SMPX_RETURN_IF_ERROR(Advance(doc_.size(), /*to_eof=*/true, out));
  next_entry_ = entries.size();
  pos_ = doc_.size();
  return spans;
}

Status Cursor::Drain(OutputSink* out) {
  if (finished_) return Status::Ok();
  SMPX_RETURN_IF_ERROR(Advance(doc_.size(), /*to_eof=*/true, out));
  next_entry_ = index_->entries().size();
  pos_ = doc_.size();
  return Status::Ok();
}

std::string Cursor::SaveToken() const {
  std::string t;
  t.append(kTokenMagic, sizeof(kTokenMagic));
  wire::PutU64(&t, index_->doc_size());
  wire::PutU64(&t, index_->doc_digest());
  wire::PutU64(&t, index_->tables_fingerprint());
  t.push_back(static_cast<char>(
      (ckpt_.prolog_done ? kFlagPrologDone : 0) |
      (ckpt_.jump_pending ? kFlagJumpPending : 0) |
      (finished_ ? kFlagFinished : 0) |
      (from_scratch_ ? kFlagFromScratch : 0)));
  wire::PutVarint(&t, next_entry_);
  wire::PutVarint(&t, pos_);
  wire::PutVarint(&t, out_pos_);
  wire::PutVarint(&t, static_cast<uint64_t>(ckpt_.state));
  wire::PutVarint(&t, ckpt_.cursor);
  wire::PutVarint(&t, ckpt_.nesting_depth);
  wire::PutVarint(&t, static_cast<uint64_t>(ckpt_.copy_depth));
  wire::PutVarint(&t, ckpt_.copy_flushed);
  wire::PutU64(&t, Hash64(t));
  return t;
}

Result<Cursor> Cursor::Restore(const BoundaryIndex& index,
                               const core::RuntimeTables& tables,
                               std::string_view doc, std::string_view token,
                               const CursorOptions& opts) {
  if (token.size() < sizeof(kTokenMagic) + 8) {
    return BadToken("truncated");
  }
  wire::Reader footer(token.substr(token.size() - 8));
  uint64_t stored_hash = 0;
  footer.ReadU64(&stored_hash);
  if (Hash64(token.substr(0, token.size() - 8)) != stored_hash) {
    return BadToken("content hash mismatch");
  }
  if (token.compare(0, sizeof(kTokenMagic),
                    std::string_view(kTokenMagic, sizeof(kTokenMagic))) !=
      0) {
    return BadToken("bad magic");
  }
  wire::Reader r(token.substr(0, token.size() - 8));
  r.Skip(sizeof(kTokenMagic));
  uint64_t doc_size = 0, doc_digest = 0, tables_fp = 0;
  r.ReadU64(&doc_size);
  r.ReadU64(&doc_digest);
  r.ReadU64(&tables_fp);
  if (doc_size != index.doc_size() || doc_digest != index.doc_digest() ||
      tables_fp != index.tables_fingerprint()) {
    return BadToken(
        "minted over a different document, index, or compiled tables");
  }
  if (opts.verify_document) {
    SMPX_RETURN_IF_ERROR(index.Matches(doc, tables));
  }
  uint8_t flags = 0;
  uint64_t next_entry = 0, pos = 0, out_pos = 0;
  uint64_t state = 0, cursor = 0, nesting = 0, copy_depth = 0,
           copy_flushed = 0;
  r.ReadByte(&flags);
  r.ReadVarint(&next_entry);
  r.ReadVarint(&pos);
  r.ReadVarint(&out_pos);
  r.ReadVarint(&state);
  r.ReadVarint(&cursor);
  r.ReadVarint(&nesting);
  r.ReadVarint(&copy_depth);
  r.ReadVarint(&copy_flushed);
  if (r.failed() || r.remaining() != 0) return BadToken("malformed fields");
  if (next_entry > index.entries().size() || pos > doc.size() ||
      state >= static_cast<uint64_t>(tables.states.size())) {
    return BadToken("fields out of range");
  }
  Cursor c(&index, &tables, doc, opts);
  c.from_scratch_ = (flags & kFlagFromScratch) != 0;
  c.finished_ = (flags & kFlagFinished) != 0;
  c.next_entry_ = static_cast<size_t>(next_entry);
  c.pos_ = pos;
  c.out_pos_ = out_pos;
  c.ckpt_.state = static_cast<int>(state);
  c.ckpt_.cursor = cursor;
  c.ckpt_.nesting_depth = nesting;
  c.ckpt_.copy_depth = static_cast<int>(copy_depth);
  c.ckpt_.copy_flushed = copy_flushed;
  c.ckpt_.prolog_done = (flags & kFlagPrologDone) != 0;
  c.ckpt_.jump_pending = (flags & kFlagJumpPending) != 0;
  return c;
}

}  // namespace smpx::index
